//! Workspace-level routing-fault conformance: the acceptance criteria for
//! the fault-aware routing layer, exercised end to end through the facade
//! crate and the testkit's routed-payload oracles.
//!
//! * every seeded crash plan with `f < n/3` must leave [`route_faulted`]
//!   and [`route_balanced_faulted`] delivering **all** payloads between
//!   surviving endpoints, with dead-endpoint demands reported as
//!   structured `Undeliverable` records — judged by
//!   [`cc_testkit::judge_routed_delivery`], bit-identically across pool
//!   shapes `{1, 4, 7}`;
//! * an **empty** crash set must be byte-identical to the unfaulted
//!   schedulers (outputs and wire cost) on every pool shape;
//! * [`route_resilient`] must survive seeded per-link message drops, on
//!   every pool shape, at exactly the analytic
//!   [`resilient_overhead`] price;
//! * the **broadcast-only** and **CONGEST ring** modes must reject the
//!   inherently-unicast routing layer *structurally* — a
//!   [`RouteError::Sim`] topology violation, not a wrong answer.
//!
//! Test names are prefixed `clique_` / `broadcast_only_` / `ring_` so the
//! CI `routing-fault-conformance` matrix can select one communication
//! mode per leg with `cargo test clique_ --test routing_fault_suite`.

use cc_testkit::{
    assert_empty_crash_transparent, differential_route_balanced_faulted,
    differential_route_faulted, judge_routed_delivery, ring_topology, RouteFaultCase, POOL_SHAPES,
};
use congested_clique::prelude::*;
use congested_clique::routing::{resilient_overhead, route, route_resilient, RouteError};
use congested_clique::sim::{FaultPlan, SimError};

/// Seeded demand set used by the transparency and resilience tests: every
/// node ships two short payloads a fixed stride away.
fn demands_for(n: usize) -> Vec<Vec<(NodeId, BitString)>> {
    (0..n)
        .map(|v| {
            [1usize, 3]
                .iter()
                .map(|&d| {
                    let dst = NodeId::from((v + d) % n);
                    let payload: BitString = (0..(5 * v + d) % 23)
                        .map(|i| (v + d + i) % 3 == 0)
                        .collect();
                    (dst, payload)
                })
                .collect()
        })
        .collect()
}

#[test]
fn clique_direct_scheduler_delivers_to_survivors_under_seeded_crashes() {
    let n = 15;
    for (f, seed) in [(1, 11), (2, 22), (4, 44)] {
        let case = RouteFaultCase::new(n, f, seed);
        let (out, _) = differential_route_faulted("routing-fault-suite", &Engine::new(n), &case);
        judge_routed_delivery(&case.to_string(), &case.demands(), &case.crash_set(), &out);
    }
}

#[test]
fn clique_balanced_scheduler_delivers_to_survivors_under_seeded_crashes() {
    let n = 15;
    for (f, seed) in [(1, 13), (2, 26), (4, 52)] {
        let case = RouteFaultCase::new(n, f, seed);
        let (out, _) =
            differential_route_balanced_faulted("routing-fault-suite", &Engine::new(n), &case);
        judge_routed_delivery(&case.to_string(), &case.demands(), &case.crash_set(), &out);
    }
}

#[test]
fn clique_empty_crash_set_is_transparent_across_pool_shapes() {
    let n = 9;
    assert_empty_crash_transparent("routing-fault-suite", &Engine::new(n), || demands_for(n));
}

#[test]
fn clique_resilient_routing_survives_seeded_drops_on_every_pool_shape() {
    let n = 8;
    let repeats = 5;
    let plan = FaultPlan::new(0xD0_05).drop_messages(0.2);

    // The analytic price is fixed by a fault-free reference run.
    let mut clean = Session::new(Engine::new(n));
    let expect = route(&mut clean, demands_for(n)).expect("fault-free routing");
    let price = resilient_overhead(&clean.stats(), repeats);

    for &threads in POOL_SHAPES.iter() {
        let engine = Engine::new(n)
            .with_threads_exact(threads)
            .with_fault_plan(plan.clone());
        let mut session = Session::new(engine);
        let got = route_resilient(&mut session, demands_for(n), repeats)
            .expect("resilient routing under drops");
        assert_eq!(got, expect, "lossy delivery diverged at threads={threads}");
        let stats = session.stats();
        assert_eq!(
            stats.rounds, price.rounds,
            "round price at threads={threads}"
        );
        assert_eq!(
            stats.max_message_bits, price.max_message_bits,
            "bandwidth ceiling at threads={threads}"
        );
        assert!(
            stats.dropped_messages > 0,
            "the plan must actually drop copies at threads={threads}"
        );
    }
}

#[test]
fn broadcast_only_mode_rejects_unicast_routing_structurally() {
    let n = 6;
    let mut session = Session::new(Engine::new(n).broadcast_only(true));
    let err = route(&mut session, demands_for(n)).unwrap_err();
    assert!(
        matches!(err, RouteError::Sim(SimError::BroadcastViolated { .. })),
        "expected a structural broadcast violation, got: {err}"
    );
}

#[test]
fn ring_mode_rejects_chord_routing_structurally() {
    let n = 6;
    let mut session = Session::new(Engine::new(n).with_topology(ring_topology(n)));
    // demands_for ships at stride 3 — a chord on any ring with n > 4.
    let err = route(&mut session, demands_for(n)).unwrap_err();
    assert!(
        matches!(err, RouteError::Sim(SimError::TopologyViolated { .. })),
        "expected a structural topology violation, got: {err}"
    );
}
