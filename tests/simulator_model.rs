//! Model-level invariants of the simulator, exercised through real
//! algorithms (not synthetic programs): bandwidth accounting, input
//! encodings, deterministic parallelism, phase composition.

use congested_clique::prelude::*;
use congested_clique::{graph, paths, routing};

#[test]
fn bandwidth_is_never_exceeded_by_any_algorithm() {
    // The engine would error out on a violation; additionally the recorded
    // max message width must respect the configured budget.
    let n = 24;
    let g = graph::gen::gnp(n, 0.3, 4);
    let mut s = Session::new(Engine::new(n));
    paths::bfs(&mut s, &g, 0).unwrap();
    assert!(s.stats().max_message_bits <= s.bandwidth());

    let wg = graph::gen::gnp_weighted(n, 0.3, 10, 4);
    let mut s2 = Session::new(Engine::new(n));
    paths::apsp_exact(&mut s2, &wg).unwrap();
    assert!(s2.stats().max_message_bits <= s2.bandwidth());
}

#[test]
fn parallel_engine_is_bit_identical_on_real_algorithms() {
    // Round counts and outputs are independent of host-thread count.
    let n = 20;
    let g = graph::gen::gnp(n, 0.25, 77);
    // BFS through a sequential engine...
    let mut s1 = Session::new(Engine::new(n));
    let d1 = paths::bfs(&mut s1, &g, 3).unwrap();
    // ...and a 4-thread engine.
    let mut s2 = Session::new(Engine::new(n).with_threads(4));
    let d2 = paths::bfs(&mut s2, &g, 3).unwrap();
    assert_eq!(d1, d2);
    assert_eq!(s1.stats(), s2.stats());
}

#[test]
fn routing_respects_declared_costs() {
    // The direct schedule's round count equals the max framed per-link
    // stream divided by the bandwidth — measured, not assumed.
    let n = 10;
    let mut s = Session::new(Engine::new(n));
    let payload = cliquesim::BitString::zeros(100);
    let mut demands: Vec<Vec<(NodeId, cliquesim::BitString)>> = vec![Vec::new(); n];
    demands[0].push((NodeId(5), payload));
    routing::route(&mut s, demands).unwrap();
    let expected = (100 + routing::LEN_HEADER_BITS).div_ceil(s.bandwidth());
    assert_eq!(s.stats().rounds, expected);
}

#[test]
fn session_phases_sum_rounds() {
    let n = 12;
    let g = graph::gen::gnp(n, 0.3, 5);
    let mut s = Session::new(Engine::new(n));
    let r0 = s.stats().rounds;
    paths::bfs(&mut s, &g, 0).unwrap();
    let r1 = s.stats().rounds;
    paths::bfs(&mut s, &g, 1).unwrap();
    let r2 = s.stats().rounds;
    assert!(r1 > r0);
    assert!(r2 > r1, "second phase must add rounds on top");
    assert_eq!(s.phases(), 2);
}

#[test]
fn both_paper_input_encodings_reconstruct_the_graph() {
    let g = graph::gen::gnp(15, 0.4, 8);
    // Standard rows.
    for v in 0..15 {
        let row = g.input_row(NodeId::from(v));
        assert_eq!(row.len(), 14);
        for u in 0..15 {
            if u == v {
                continue;
            }
            let slot = if u < v { u } else { u - 1 };
            assert_eq!(row.get(slot), g.has_edge(u, v));
        }
    }
    // Balanced private split: partitions all pairs, each node ≥ ⌊(n−1)/2⌋.
    let total: usize = (0..15).map(|v| graph::Graph::owned_slots(15, v).len()).sum();
    assert_eq!(total, 15 * 14 / 2);
    for v in 0..15 {
        assert!(graph::Graph::owned_slots(15, v).len() >= 7);
    }
}

#[test]
fn bfs_is_a_broadcast_congested_clique_algorithm() {
    // BFS flooding only ever broadcasts identical 1-bit announcements, so
    // it runs unchanged in the broadcast-restricted model (§2) — and the
    // engine would reject it if it ever unicast.
    let n = 20;
    let g = graph::gen::gnp(n, 0.2, 3);
    let mut s = Session::new(Engine::new(n).broadcast_only(true));
    let got = paths::bfs(&mut s, &g, 0).unwrap();
    assert_eq!(got, graph::reference::bfs_distances(&g, 0));
    // The routing layer, by contrast, is inherently unicast.
    let mut s2 = Session::new(Engine::new(4).broadcast_only(true));
    let mut demands: Vec<Vec<(NodeId, cliquesim::BitString)>> = vec![Vec::new(); 4];
    demands[0].push((NodeId(2), cliquesim::BitString::zeros(3)));
    assert!(routing::route(&mut s2, demands).is_err());
}

#[test]
fn relay_broadcast_consistency_across_nodes() {
    let n = 12;
    let mut s = Session::new(Engine::new(n));
    let payload: cliquesim::BitString = (0..n * 7).map(|i| i % 3 == 1).collect();
    let views = routing::relay_broadcast(&mut s, NodeId(4), &payload).unwrap();
    for v in views {
        assert_eq!(v, payload);
    }
}
