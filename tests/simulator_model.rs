//! Model-level invariants of the simulator, exercised through real
//! algorithms (not synthetic programs): bandwidth accounting, input
//! encodings, deterministic parallelism, phase composition.

use congested_clique::prelude::*;
use congested_clique::{graph, paths, routing};

#[test]
fn bandwidth_is_never_exceeded_by_any_algorithm() {
    // The engine would error out on a violation; additionally the recorded
    // max message width must respect the configured budget.
    let n = 24;
    let g = graph::gen::gnp(n, 0.3, 4);
    let mut s = Session::new(Engine::new(n));
    paths::bfs(&mut s, &g, 0).unwrap();
    assert!(s.stats().max_message_bits <= s.bandwidth());

    let wg = graph::gen::gnp_weighted(n, 0.3, 10, 4);
    let mut s2 = Session::new(Engine::new(n));
    paths::apsp_exact(&mut s2, &wg).unwrap();
    assert!(s2.stats().max_message_bits <= s2.bandwidth());
}

#[test]
fn parallel_engine_is_bit_identical_on_real_algorithms() {
    // Round counts and outputs are independent of host-thread count.
    let n = 20;
    let g = graph::gen::gnp(n, 0.25, 77);
    // BFS through a sequential engine...
    let mut s1 = Session::new(Engine::new(n));
    let d1 = paths::bfs(&mut s1, &g, 3).unwrap();
    // ...and a 4-worker pool (exact: not capped by host cores, so the
    // pooled path is exercised even on single-core CI).
    let mut s2 = Session::new(Engine::new(n).with_threads_exact(4));
    let d2 = paths::bfs(&mut s2, &g, 3).unwrap();
    assert_eq!(d1, d2);
    assert_eq!(s1.stats(), s2.stats());
}

#[test]
fn routing_respects_declared_costs() {
    // The direct schedule's round count equals the max framed per-link
    // stream divided by the bandwidth — measured, not assumed.
    let n = 10;
    let mut s = Session::new(Engine::new(n));
    let payload = cliquesim::BitString::zeros(100);
    let mut demands: Vec<Vec<(NodeId, cliquesim::BitString)>> = vec![Vec::new(); n];
    demands[0].push((NodeId(5), payload));
    routing::route(&mut s, demands).unwrap();
    let expected = (100 + routing::LEN_HEADER_BITS).div_ceil(s.bandwidth());
    assert_eq!(s.stats().rounds, expected);
}

#[test]
fn session_phases_sum_rounds() {
    let n = 12;
    let g = graph::gen::gnp(n, 0.3, 5);
    let mut s = Session::new(Engine::new(n));
    let r0 = s.stats().rounds;
    paths::bfs(&mut s, &g, 0).unwrap();
    let r1 = s.stats().rounds;
    paths::bfs(&mut s, &g, 1).unwrap();
    let r2 = s.stats().rounds;
    assert!(r1 > r0);
    assert!(r2 > r1, "second phase must add rounds on top");
    assert_eq!(s.phases(), 2);
}

#[test]
fn both_paper_input_encodings_reconstruct_the_graph() {
    let g = graph::gen::gnp(15, 0.4, 8);
    // Standard rows.
    for v in 0..15 {
        let row = g.input_row(NodeId::from(v));
        assert_eq!(row.len(), 14);
        for u in 0..15 {
            if u == v {
                continue;
            }
            let slot = if u < v { u } else { u - 1 };
            assert_eq!(row.get(slot), g.has_edge(u, v));
        }
    }
    // Balanced private split: partitions all pairs, each node ≥ ⌊(n−1)/2⌋.
    let total: usize = (0..15)
        .map(|v| graph::Graph::owned_slots(15, v).len())
        .sum();
    assert_eq!(total, 15 * 14 / 2);
    for v in 0..15 {
        assert!(graph::Graph::owned_slots(15, v).len() >= 7);
    }
}

#[test]
fn bfs_is_a_broadcast_congested_clique_algorithm() {
    // BFS flooding only ever broadcasts identical 1-bit announcements, so
    // it runs unchanged in the broadcast-restricted model (§2) — and the
    // engine would reject it if it ever unicast.
    let n = 20;
    let g = graph::gen::gnp(n, 0.2, 3);
    let mut s = Session::new(Engine::new(n).broadcast_only(true));
    let got = paths::bfs(&mut s, &g, 0).unwrap();
    assert_eq!(got, graph::reference::bfs_distances(&g, 0));
    // The routing layer, by contrast, is inherently unicast.
    let mut s2 = Session::new(Engine::new(4).broadcast_only(true));
    let mut demands: Vec<Vec<(NodeId, cliquesim::BitString)>> = vec![Vec::new(); 4];
    demands[0].push((NodeId(2), cliquesim::BitString::zeros(3)));
    assert!(routing::route(&mut s2, demands).is_err());
}

mod thread_count_identity {
    //! Property: the engine's outputs, transcripts, and every model-level
    //! stat are independent of the pool shape — across thread counts that
    //! divide `n` unevenly, in broadcast-only mode, and under a CONGEST
    //! ring topology.

    use cliquesim::{
        BitString, Engine, Inbox, NodeCtx, NodeId, NodeProgram, Outbox, RunStats, Status,
        Transcript,
    };
    use proptest::prelude::*;

    /// Deterministic message-mixing program: every round each node folds
    /// its inbox into an accumulator, then unicasts / broadcasts /
    /// ring-casts a bandwidth-wide digest of it. Nodes halt at staggered
    /// rounds, so late messages land on halted receivers and exercise the
    /// undelivered accounting too.
    #[derive(Clone)]
    struct Mixer {
        /// 0 = clique unicast, 1 = broadcast-only, 2 = CONGEST ring.
        mode: u8,
        halt_after: usize,
        acc: u64,
    }

    impl NodeProgram for Mixer {
        type Output = u64;

        fn step(
            &mut self,
            ctx: &NodeCtx,
            round: usize,
            inbox: &Inbox<'_>,
            ob: &mut Outbox<'_>,
        ) -> Status<u64> {
            for (u, m) in inbox.iter() {
                self.acc = self
                    .acc
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(m.as_uint() ^ u.index() as u64);
            }
            if round >= self.halt_after {
                return Status::Halt(self.acc);
            }
            let (me, n) = (ctx.id.index(), ctx.n);
            let width = ctx.bandwidth.min(63);
            let digest = |salt: u64| {
                let mut m = BitString::new();
                m.push_uint(
                    (self.acc ^ round as u64 ^ salt) & ((1u64 << width) - 1),
                    width,
                );
                m
            };
            match self.mode {
                1 => ob.broadcast(&digest(7)),
                2 => {
                    for to in [(me + 1) % n, (me + n - 1) % n] {
                        if to != me {
                            ob.send(NodeId::from(to), digest(to as u64));
                        }
                    }
                }
                _ => {
                    // k ∈ [1, n-1], so the target is never `me`.
                    let to = (me + 1 + round % (n - 1)) % n;
                    ob.send(NodeId::from(to), digest(to as u64));
                }
            }
            Status::Continue
        }
    }

    fn ring(n: usize) -> Vec<bool> {
        let mut adj = vec![false; n * n];
        for v in 0..n {
            let w = (v + 1) % n;
            adj[v * n + w] = true;
            adj[w * n + v] = true;
        }
        adj
    }

    fn run(n: usize, mode: u8, k: usize, threads: usize) -> (Vec<u64>, RunStats, Vec<Transcript>) {
        let mut engine = Engine::new(n).with_transcripts(true);
        engine = match mode {
            1 => engine.broadcast_only(true),
            2 => engine.with_topology(ring(n)),
            _ => engine,
        };
        if threads > 1 {
            // Exact: the pooled path must run even when the host has
            // fewer cores than workers (single-core CI included).
            engine = engine.with_threads_exact(threads);
        }
        let programs = (0..n)
            .map(|v| Mixer {
                mode,
                halt_after: k + (v * 3 + 1) % 4,
                acc: v as u64,
            })
            .collect();
        let out = engine.run(programs).expect("mixer must run clean");
        (
            out.outputs,
            out.stats,
            out.transcripts.expect("recording on"),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn engine_is_bit_identical_across_thread_counts(
            n in 5usize..24,       // includes primes: no thread count divides evenly
            mode in 0u8..3,
            k in 1usize..5,
        ) {
            let (out0, stats0, tr0) = run(n, mode, k, 1);
            prop_assert!(stats0.rounds >= k, "mixers run at least k rounds");
            for threads in [2usize, 3, 4, 7] {
                let (out, stats, tr) = run(n, mode, k, threads);
                prop_assert_eq!(&out0, &out, "outputs differ at {} threads", threads);
                prop_assert_eq!(&stats0, &stats, "stats differ at {} threads", threads);
                prop_assert_eq!(&tr0, &tr, "transcripts differ at {} threads", threads);
            }
        }
    }
}

#[test]
fn relay_broadcast_consistency_across_nodes() {
    let n = 12;
    let mut s = Session::new(Engine::new(n));
    let payload: cliquesim::BitString = (0..n * 7).map(|i| i % 3 == 1).collect();
    let views = routing::relay_broadcast(&mut s, NodeId(4), &payload).unwrap();
    for v in views {
        assert_eq!(v, payload);
    }
}
