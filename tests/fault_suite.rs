//! Workspace-level fault conformance: the acceptance criteria for the
//! fault-injection adversary, exercised end to end through the facade
//! crate and the resilient wrappers.
//!
//! * an **empty** [`FaultPlan`] is byte-identical to no plan at all, on
//!   every pool shape;
//! * the **same** plan replayed under pool shapes {1, 4, 7} yields the
//!   same outputs, stats, transcripts, and fault events;
//! * with `f < n/3` seeded crash faults, echo-broadcast still reaches a
//!   correct unanimous output among survivors, and the overhead is
//!   visible in [`RunStats`];
//! * the resilient wrappers degrade as documented under drop and
//!   corruption plans.

use cc_testkit::{assert_empty_plan_transparent, differential_faulted};
use congested_clique::prelude::*;
use congested_clique::resilient::{echo_broadcast, max_gossip, RepeatBroadcast};
use congested_clique::sim::FaultedOutcome;

fn exchange_programs(n: usize) -> Vec<RepeatBroadcast> {
    (0..n as u64)
        .map(|v| RepeatBroadcast::new(v * 5 + 1, 8, 3))
        .collect()
}

#[test]
fn empty_plan_is_transparent_for_a_real_protocol() {
    let n = 9;
    assert_empty_plan_transparent(
        "repeat-broadcast",
        &Engine::new(n).with_bandwidth(8),
        || exchange_programs(n),
    );
}

#[test]
fn one_plan_one_behaviour_across_pool_shapes() {
    // n = 15 ≥ 2·7 keeps the 7-worker pooled path genuinely engaged.
    let n = 15;
    let plan = FaultPlan::new(2024)
        .with_random_crashes(n, 3, 2, &[])
        .drop_messages(0.15)
        .corrupt_messages(0.1)
        .truncate_messages(0.05);
    let (outputs, stats, _, faults) = differential_faulted(
        "repeat-broadcast",
        &Engine::new(n).with_bandwidth(8),
        &plan,
        || exchange_programs(n),
    );
    assert_eq!(stats.dead_nodes, 3, "all three scheduled crashes fired");
    assert_eq!(outputs.iter().filter(|o| o.is_none()).count(), 3);
    assert!(stats.dropped_messages > 0, "{plan}: nothing dropped");
    assert!(!faults.is_empty());
}

#[test]
fn echo_broadcast_survives_a_third_of_the_clique_crashing() {
    // n = 10, f = 3 < n/3: the source is spared, so every survivor must
    // end unanimous on the source's value.
    let n = 10;
    let source = NodeId(0);
    let value = 0xB7u64;

    // Fault-free baseline for the overhead comparison.
    let mut clean = Session::new(Engine::new(n).with_bandwidth(8));
    let baseline = echo_broadcast(&mut clean, source, value, 8).unwrap();
    assert_eq!(baseline.unanimous(), Some(&Some(value)));

    let plan = FaultPlan::new(77).with_random_crashes(n, 3, 2, &[source]);
    let mut session = Session::new(
        Engine::new(n)
            .with_bandwidth(8)
            .with_fault_plan(plan.clone()),
    );
    let out: FaultedOutcome<Option<u64>> = echo_broadcast(&mut session, source, value, 8).unwrap();

    assert_eq!(
        out.unanimous(),
        Some(&Some(value)),
        "{plan}: survivors disagree or lost the value"
    );
    let survivors = out.outputs.iter().filter(|o| o.is_some()).count();
    assert_eq!(survivors, n - 3, "{plan}: expected exactly 3 casualties");

    // The resilience overhead is measured, not hidden: the faulted run
    // still pays the full echo round (more than a bare one-round
    // broadcast's n-1 messages), and every crash shows up in the ledger.
    assert_eq!(out.stats.rounds, baseline.stats.rounds);
    assert!(
        out.stats.messages > (n as u64 - 1),
        "echo round was charged"
    );
    assert_eq!(out.stats.dead_nodes, 3);
    assert!(out.stats.undelivered_messages > 0, "crash losses accounted");
}

#[test]
fn gossip_aggregation_beats_crashes_and_drops() {
    let n = 12;
    let values: Vec<u64> = (0..n as u64).map(|v| (v * 37) % 100).collect();
    let expect = *values.iter().max().unwrap();
    let holder = values.iter().position(|&v| v == expect).unwrap();
    let plan = FaultPlan::new(5)
        .with_random_crashes(n, 3, 3, &[NodeId::from(holder)])
        .drop_messages(0.2);
    let mut session = Session::new(Engine::new(n).with_bandwidth(8).with_fault_plan(plan));
    let out = max_gossip(&mut session, &values, 8, 5).unwrap();
    assert_eq!(out.unanimous(), Some(&expect));
    assert_eq!(out.stats.dead_nodes, 3);
    assert!(out.stats.dropped_messages > 0);
}
