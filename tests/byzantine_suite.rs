//! Workspace-level Byzantine conformance: the acceptance criteria for the
//! Byzantine sender tier, exercised end to end through the facade crate,
//! the testkit runners, and the resilient wrappers.
//!
//! * an **empty** [`ByzantinePlan`] is byte-identical to no plan at all,
//!   on every pool shape (mirror of the fault suite's transparency test);
//! * a **single equivocating traitor** forges `RepeatBroadcast`'s per-link
//!   majority — two honest nodes end up with different, locally
//!   majority-backed values for the traitor (the negative result that
//!   motivates the quorum layer);
//! * Bracha-style reliable broadcast reaches **honest-node agreement** for
//!   every seeded `f < n/3` plan, bit-identically across pool shapes
//!   {1, 4, 7}, with an honest source's value delivered intact;
//! * Bracha composes with a **concurrent crash** [`FaultPlan`]: crashed
//!   nodes report `None` slots while surviving honest nodes stay unanimous,
//!   and both adversaries' counters land in the same ledger.

use cc_testkit::{
    assert_empty_byzantine_transparent, differential_byzantine, equivocation_witness,
};
use congested_clique::prelude::*;
use congested_clique::resilient::{bracha_broadcast, BrachaBroadcast, RepeatBroadcast};
use congested_clique::sim::Lie;

fn exchange_programs(n: usize) -> Vec<RepeatBroadcast> {
    (0..n as u64)
        .map(|v| RepeatBroadcast::new(v * 5 + 1, 8, 3))
        .collect()
}

fn bracha_programs(n: usize, source: NodeId, value: u64, f: usize) -> Vec<BrachaBroadcast> {
    (0..n)
        .map(|_| BrachaBroadcast::new(source, value, 8, f))
        .collect()
}

#[test]
fn empty_byzantine_plan_is_transparent_for_a_real_protocol() {
    let n = 9;
    assert_empty_byzantine_transparent(
        "repeat-broadcast",
        &Engine::new(n).with_bandwidth(8),
        || exchange_programs(n),
    );
}

#[test]
fn one_equivocating_traitor_forges_repeat_broadcast() {
    // RepeatBroadcast's defence is a per-link majority over k copies — it
    // assumes every copy on a link is an attempt at the same truth. A
    // traitor garbling per recipient sends each peer a *consistent* lie
    // (well, three independent ones here, but each link still votes), so
    // honest nodes end up with majority-backed values for the traitor that
    // disagree with each other. That is the forgery this test pins down,
    // and it survives every pool shape bit-identically.
    let n = 9;
    let plan = ByzantinePlan::new(1009).traitor(NodeId(4)).garble(1.0);
    let (outputs, stats, _, _, byz) = differential_byzantine(
        "repeat-broadcast",
        &Engine::new(n).with_bandwidth(8),
        &plan,
        || exchange_programs(n),
    );
    assert!(stats.forged_messages > 0, "{plan}: the traitor never lied");
    assert_eq!(stats.traitor_nodes, 1);
    assert_eq!(byz.liars(), vec![NodeId(4)]);
    let (a, b, t) = equivocation_witness(&outputs, &plan)
        .unwrap_or_else(|| panic!("{plan}: no equivocation witness — per-link majority held?!"));
    assert_eq!(t, NodeId(4));
    let va = outputs[a.index()].as_ref().unwrap()[t.index()];
    let vb = outputs[b.index()].as_ref().unwrap()[t.index()];
    assert_ne!(
        va, vb,
        "{plan}: witness nodes {a:?} and {b:?} actually agree"
    );
    // Honest nodes still learn each *honest* node's value correctly: the
    // forgery is confined to the traitor's slots.
    for (v, out) in outputs.iter().enumerate() {
        if plan.is_traitor(NodeId::from(v)) {
            continue;
        }
        let view = out.as_ref().unwrap();
        for (u, slot) in view.iter().enumerate() {
            if plan.is_traitor(NodeId::from(u)) {
                continue;
            }
            assert_eq!(*slot, Some(u as u64 * 5 + 1), "honest slot damaged");
        }
    }
}

#[test]
fn bracha_agrees_for_every_traitor_count_below_a_third() {
    // n = 15 ≥ 2·7 keeps the 7-worker pooled path genuinely engaged, and
    // n/3 = 5 gives the sweep f ∈ {0, 1, 4} = {0, 1, n/3 - 1}.
    let n = 15;
    let source = NodeId(0);
    let value = 0xC3u64;
    for f in [0usize, 1, 4] {
        let plan = ByzantinePlan::new(7000 + f as u64)
            .with_random_traitors(n, f, &[source])
            .garble(1.0)
            .replay(0.4)
            .silence(0.2);
        let (outputs, stats, _, _, byz) = differential_byzantine(
            "bracha-broadcast",
            &Engine::new(n).with_bandwidth(10),
            &plan,
            || bracha_programs(n, source, value, 4),
        );
        if f > 0 {
            assert!(!byz.is_empty(), "{plan}: traitors never lied");
            assert!(stats.forged_messages + stats.silenced_messages > 0);
        }
        // Honest-node agreement on the honest source's exact value.
        let honest: Vec<&Option<Option<u64>>> = (0..n)
            .filter(|v| !plan.is_traitor(NodeId::from(*v)))
            .map(|v| &outputs[v])
            .collect();
        for o in &honest {
            assert_eq!(
                **o,
                Some(Some(value)),
                "{plan}: an honest node missed the honest source's value"
            );
        }
        assert_eq!(stats.rounds, 2 * 4 + 6, "fixed 2f + 6 round schedule");
    }
}

#[test]
fn bracha_agrees_even_when_the_source_is_the_traitor() {
    // The hardest single-traitor case: the source itself equivocates its
    // INIT. Honest nodes must not split — whatever each pool shape
    // computes, all honest nodes compute the same Option.
    let n = 15;
    let source = NodeId(3);
    let plan = ByzantinePlan::new(5151).traitor(source).garble(1.0);
    let (outputs, _, _, _, byz) = differential_byzantine(
        "bracha-traitor-source",
        &Engine::new(n).with_bandwidth(10),
        &plan,
        || bracha_programs(n, source, 0x2A, 4),
    );
    assert!(!byz.is_empty());
    let honest: Vec<&Option<Option<u64>>> = (0..n)
        .filter(|v| !plan.is_traitor(NodeId::from(*v)))
        .map(|v| &outputs[v])
        .collect();
    assert!(
        honest.windows(2).all(|w| w[0] == w[1]),
        "{plan}: honest nodes split on a traitor source"
    );
}

#[test]
fn forced_lie_ready_drip_cannot_split_honest_nodes() {
    // Regression: this exact forced-lie plan beat the old `f + 4` schedule
    // (n = 7, f = 1, traitor source). The traitor silences its INIT toward
    // nodes 5 and 6, silences its ECHO entirely, then drip-feeds its READY:
    // replayed (as a late ECHO) to node 1, intact to node 2 only, silent to
    // the rest. Under `f + 4` one honest node crossed `2f + 1` READY votes
    // on the final round and delivered while the rest sat at `f + 1` with
    // no rounds left to join. The `2f + 6` window gives the late READY
    // quorum time to amplify to every honest node, on every pool shape.
    let n = 7;
    let source = NodeId(0);
    let mut plan = ByzantinePlan::new(0).traitor(source);
    plan = plan.force(0, source, NodeId(5), Lie::Silence);
    plan = plan.force(0, source, NodeId(6), Lie::Silence);
    for u in 1..n {
        plan = plan.force(1, source, NodeId(u as u32), Lie::Silence);
    }
    plan = plan.force(2, source, NodeId(1), Lie::Replay);
    for u in 3..n {
        plan = plan.force(2, source, NodeId(u as u32), Lie::Silence);
    }
    let (outputs, _, _, _, byz) = differential_byzantine(
        "bracha-forced-lie-drip",
        &Engine::new(n).with_bandwidth(10),
        &plan,
        || bracha_programs(n, source, 0x5A, 1),
    );
    assert!(!byz.is_empty(), "{plan}: the traitor never lied");
    let honest: Vec<&Option<Option<u64>>> = (1..n).map(|v| &outputs[v]).collect();
    assert!(
        honest.windows(2).all(|w| w[0] == w[1]),
        "{plan}: honest nodes split: {outputs:?}"
    );
}

#[test]
fn bracha_composes_with_a_concurrent_crash_plan() {
    // Byzantine lies and crash-stop faults at once: two nodes crash
    // mid-protocol (sparing the source and the traitor so both adversary
    // tiers stay in play), one traitor garbles everything. Surviving honest
    // nodes still deliver the source's value unanimously, and every
    // adversary counter is visible in one ledger.
    let n = 13;
    let source = NodeId(0);
    let traitor = NodeId(5);
    let value = 0x77u64;
    let f = 2; // Bracha sized for two traitors; one real traitor + slack
    let byz = ByzantinePlan::new(88).traitor(traitor).garble(1.0);
    let crashes = FaultPlan::new(99).with_random_crashes(n, 2, 3, &[source, traitor]);
    let mut session = Session::new(
        Engine::new(n)
            .with_bandwidth(10)
            .with_byzantine_plan(byz.clone())
            .with_fault_plan(crashes.clone()),
    );
    let out = bracha_broadcast(&mut session, source, value, 8, f).unwrap();

    assert_eq!(out.stats.dead_nodes, 2, "{crashes}: both crashes fired");
    assert!(
        out.stats.forged_messages > 0,
        "{byz}: the traitor never lied"
    );
    assert_eq!(out.outputs.iter().filter(|o| o.is_none()).count(), 2);
    let honest_survivors: Vec<&Option<u64>> = out
        .survivors()
        .filter(|(v, _)| !byz.is_traitor(*v))
        .map(|(_, o)| o)
        .collect();
    assert!(honest_survivors.len() >= n - 3);
    for o in &honest_survivors {
        assert_eq!(
            **o,
            Some(value),
            "{byz} + {crashes}: an honest survivor lost the value"
        );
    }
    // Session ledger carries both adversaries' counters plus the phase cost.
    let stats = session.stats();
    assert_eq!(stats.rounds, 2 * f + 6);
    assert_eq!(stats.dead_nodes, 2);
    assert!(stats.forged_messages > 0);
    assert_eq!(stats.traitor_nodes, 1);
}
