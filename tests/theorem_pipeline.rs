//! End-to-end theorem experiments spanning crates: the paper's results
//! exercised as whole pipelines rather than per-module units.

use congested_clique::prelude::*;
use congested_clique::theory::{self, NondetProblem};
use congested_clique::{graph, param};
use graph::reference;

#[test]
fn thm3_normal_form_across_problem_zoo() {
    // Normal-form completeness + label bound for several NCLIQUE(1)
    // members at once.
    type Workload = Box<dyn Fn(usize) -> graph::Graph>;
    let problems: Vec<(Box<dyn NondetProblem>, Workload)> = vec![
        (
            Box::new(theory::NormalForm::new(theory::KColoring { k: 3 })),
            Box::new(|s| graph::gen::k_colorable(7, 3, 0.5, s as u64).0),
        ),
        (
            Box::new(theory::NormalForm::new(theory::SetProblem {
                kind: theory::SetKind::DominatingSet,
                k: 2,
            })),
            Box::new(|s| graph::gen::planted_dominating_set(7, 2, 0.2, s as u64).0),
        ),
        (
            Box::new(theory::NormalForm::new(theory::Connectivity)),
            Box::new(|_| graph::gen::path(7)),
        ),
    ];
    for (p, make) in &problems {
        for seed in 0..3 {
            let g = make(seed);
            assert!(
                p.contains(&g),
                "{}: workload must be a yes-instance",
                p.name()
            );
            let verdict = theory::prove_and_verify(p.as_ref(), &g).unwrap().unwrap();
            assert!(verdict.accepted, "{} seed {seed}", p.name());
        }
    }
}

#[test]
fn thm9_thm11_cover_dominates() {
    // Structural interplay: in a graph with no isolated vertices, any
    // vertex cover is a dominating set, so γ(G) ≤ τ(G). Run both of the
    // paper's algorithms and check the implied consistency.
    for seed in 0..3 {
        let (g, _) = graph::gen::planted_dominating_set(18, 2, 0.25, seed);
        // Ensure no isolated vertices (planted construction guarantees it).
        assert!((0..18).all(|v| g.degree(v) > 0));
        let mut s = Session::new(Engine::new(18));
        let ds = param::dominating_set(&mut s, &g, 2).unwrap();
        assert!(ds.is_some(), "planted 2-DS found");
        // If a 2-cover exists, it must also dominate.
        let (vc, _) = param::vertex_cover_rounds(&g, 2).unwrap();
        if let Some(c) = vc {
            assert!(reference::is_dominating_set(&g, &c));
        }
    }
}

#[test]
fn thm7_sigma2_decides_clique_hard_languages() {
    // The Σ₂ protocol decides languages far outside NCLIQUE(1)'s obvious
    // reach — e.g. "G has NO triangle" (a co-nondeterministic property).
    let alg = theory::Sigma2Universal::new(|g: &graph::Graph| reference::count_triangles(g) == 0);
    let yes = graph::gen::cycle(5); // triangle-free
    let no = graph::Graph::complete(4);
    let honest_yes = theory::Sigma2Universal::honest_guess(&yes);
    assert!(alg.accepts_all_challenges(&yes, &honest_yes).unwrap());
    let honest_no = theory::Sigma2Universal::honest_guess(&no);
    assert!(!alg.accepts_all_challenges(&no, &honest_no).unwrap());
}

#[test]
fn thm6_edge_labelling_roundtrip_with_normal_form() {
    // Theorem 6 builds on Theorem 3: canonical edge labels are per-edge
    // transcripts. Verify the full chain on a set problem.
    let p = theory::SetProblem {
        kind: theory::SetKind::IndependentSet,
        k: 2,
    };
    for seed in 0..3 {
        let (g, _) = graph::gen::planted_independent_set(6, 2, 0.6, seed);
        let lab = theory::canonical_labelling(&p, &g).expect("yes-instance");
        assert!(theory::check_labelling(&p, &g, &lab), "seed {seed}");
        // Per Theorem 6, labels are O(log n) for constant-round verifiers.
        assert!(lab.max_label_bits() < 64);
    }
}

#[test]
fn nondet_time_hierarchy_ingredients() {
    // Theorem 4's two ingredients, checked together: the normal form
    // compresses certificates to O(T·n·log n) bits (measured), and the
    // counting inequality holds for the theorem's parameters.
    let nf = theory::NormalForm::new(theory::KColoring { k: 3 });
    let (g, _) = graph::gen::k_colorable(10, 3, 0.5, 1);
    let z = nf.prove(&g).unwrap();
    assert!(z.max_label_bits() <= nf.label_bound(10));
    for n in [64usize, 512] {
        assert!(theory::thm4_condition(n, 4));
    }
}

#[test]
fn unanimity_is_preserved_across_all_deciders() {
    // The model requires decision algorithms to be unanimous; spot-check
    // the big deciders end to end on one instance each.
    let g = graph::gen::gnp(16, 0.2, 9);
    let mut s = Session::new(Engine::new(16));
    let _ = congested_clique::subgraph::detect_triangle(&mut s, &g).unwrap();
    let (cover, _) = param::vertex_cover_rounds(&g, 3).unwrap();
    let _ = cover;
    // (Each helper already asserts unanimity internally; reaching this
    // point without panics is the test.)
}
