//! Scratch: adversarial forced-lie plan against BrachaBroadcast's fixed
//! f+4 schedule. n=7, f=1, traitor source. Delete after review.

use congested_clique::prelude::*;
use congested_clique::resilient::bracha_broadcast;
use congested_clique::sim::Lie;

#[test]
fn forced_lie_plan_splits_honest_nodes() {
    let n = 7;
    let f = 1;
    let source = NodeId(0);
    let mut plan = ByzantinePlan::new(0).traitor(source);
    // Round 0: INIT silenced toward nodes 5 and 6 (only 1..=4 decode it).
    plan = plan.force(0, source, NodeId(5), Lie::Silence);
    plan = plan.force(0, source, NodeId(6), Lie::Silence);
    // Round 1: the source's ECHO silenced toward everyone.
    for u in 1..n {
        plan = plan.force(1, source, NodeId(u as u32), Lie::Silence);
    }
    // Round 2: the source's READY — replayed (as a late ECHO) toward node 1,
    // delivered intact to node 2 only, silenced toward the rest.
    plan = plan.force(2, source, NodeId(1), Lie::Replay);
    for u in 3..n {
        plan = plan.force(2, source, NodeId(u as u32), Lie::Silence);
    }
    let mut session = Session::new(
        Engine::new(n)
            .with_bandwidth(10)
            .with_byzantine_plan(plan.clone()),
    );
    let out = bracha_broadcast(&mut session, source, 0x5A, 8, f).unwrap();
    println!("outputs: {:?}", out.outputs);
    println!("events: {:#?}", out.byzantine.events);
    assert!(
        out.honest_unanimous(&plan).is_some(),
        "honest nodes split: {:?}",
        out.outputs
    );
}
