//! Matmul strategy conformance: the sparse tier's acceptance criteria.
//!
//! * On seeded sparse instances with `m ≤ n^{3/2}` (n ∈ {64, 125, 216}),
//!   the sparse path's measured `RunStats.rounds` strictly beats the dense
//!   3D schedule, with bit-identical outputs.
//! * Every strategy agrees bit-for-bit with the independent serial oracle
//!   across the full differential grid (delivery backends × pool shapes).
//! * The analytic ledger `mm_sparse_overhead` equals the simulated
//!   `RunStats` field-for-field.
//! * Degenerate shapes (n = 1, all-zero, single nonzero, density pinned
//!   exactly at the `MmStrategy::Auto` crossover) behave and agree.

use cc_matmul::{mm_sparse, mm_sparse_overhead, mm_three_d, mm_with_strategy, MmStrategy, RingI64};
use cc_testkit::{differential_matmul, matmul_corpus, MmCase, MmFamily, MM_WIDTH};
use cliquesim::{Engine, Session};

fn session(n: usize) -> Session {
    Session::new(Engine::new(n))
}

fn ring() -> RingI64 {
    RingI64::with_width(MM_WIDTH)
}

/// The tentpole acceptance: strictly fewer rounds than dense 3D on the
/// paper's sparse regime, identical outputs, exact analytic ledger.
#[test]
fn sparse_beats_dense_rounds_in_le_gall_regime() {
    let sr = ring();
    for n in [64usize, 125, 216] {
        // m = n·⌊√n⌋ / 2 ≤ n^{3/2}: squarely in the sparse regime.
        let m = n * (n as f64).sqrt() as usize / 2;
        let case = MmCase::new(MmFamily::Sparse, n, m, 1);
        let (a, b) = case.pair();

        let mut s_sparse = session(n);
        let sparse = mm_sparse(&mut s_sparse, &sr, &a, &b).unwrap();
        let mut s_dense = session(n);
        let dense = mm_three_d(&mut s_dense, &sr, &a, &b).unwrap();

        assert_eq!(sparse, dense, "{case}: outputs diverge");
        let (rs, rd) = (s_sparse.stats().rounds, s_dense.stats().rounds);
        assert!(
            rs < rd,
            "{case}: sparse must strictly beat dense, got {rs} vs {rd} rounds"
        );

        let analytic = mm_sparse_overhead(n, s_sparse.bandwidth(), &sr, &a, &b);
        assert_eq!(
            analytic,
            s_sparse.stats(),
            "{case}: analytic ledger diverges from simulation"
        );
    }
}

/// Auto must pick the sparse path (and therefore inherit its round win)
/// in the sparse regime.
#[test]
fn auto_picks_the_winning_path_on_sparse_instances() {
    let sr = ring();
    let n = 64;
    let case = MmCase::new(MmFamily::Sparse, n, 256, 5);
    let (a, b) = case.pair();
    let mut s_auto = session(n);
    let run = mm_with_strategy(&mut s_auto, &sr, MmStrategy::Auto, &a, &b).unwrap();
    assert_eq!(run.resolved, MmStrategy::Sparse, "{case}");
    let mut s_dense = session(n);
    let dense = mm_three_d(&mut s_dense, &sr, &a, &b).unwrap();
    assert_eq!(run.rows, dense, "{case}");
    assert!(
        s_auto.stats().rounds < s_dense.stats().rounds,
        "{case}: auto (incl. its gossip) should still beat dense: {} vs {}",
        s_auto.stats().rounds,
        s_dense.stats().rounds
    );
}

/// Full differential grid: every family × strategy, all delivery backends
/// and pool shapes, judged against the independent serial oracle.
#[test]
fn strategy_grid_is_bit_identical_across_backends_and_shapes() {
    let sr = ring();
    let strategies = [MmStrategy::Auto, MmStrategy::Dense3D, MmStrategy::Sparse];
    for case in matmul_corpus(&[16, 27], &[0, 1]) {
        let (a, b) = case.pair();
        let mut products = Vec::new();
        for strategy in strategies {
            let got = differential_matmul(&case, |s, a, b| {
                mm_with_strategy(s, &sr, strategy, a, b).unwrap().rows
            });
            products.push(got);
        }
        assert_eq!(products[0], products[1], "{case}: auto vs dense3d");
        assert_eq!(products[0], products[2], "{case}: auto vs sparse");
        let _ = (a, b);
    }
}

/// One larger grid cell so the pooled paths see a nontrivial blocking
/// (t = 4) at least once per run.
#[test]
fn large_sparse_cell_survives_the_grid() {
    let sr = ring();
    let case = MmCase::new(MmFamily::Sparse, 64, 200, 3);
    differential_matmul(&case, |s, a, b| {
        mm_with_strategy(s, &sr, MmStrategy::Auto, a, b)
            .unwrap()
            .rows
    });
}

/// The analytic ledger holds across families, not just the flagship
/// sparse instances — including skewed (banded) and empty inputs.
#[test]
fn overhead_is_exact_across_families() {
    let sr = ring();
    for case in matmul_corpus(&[16, 27], &[2]) {
        let (a, b) = case.pair();
        let mut s = session(case.n);
        mm_sparse(&mut s, &sr, &a, &b).unwrap();
        let analytic = mm_sparse_overhead(case.n, s.bandwidth(), &sr, &a, &b);
        assert_eq!(analytic, s.stats(), "{case}");
    }
}

/// Degenerate shapes: n = 1, all-zero, and single-nonzero inputs run
/// through the full grid under both forced strategies.
#[test]
fn degenerate_shapes_run_the_full_grid() {
    let sr = ring();
    let cases = [
        MmCase::new(MmFamily::AllZero, 1, 0, 0),
        MmCase::new(MmFamily::SingleNonzero, 1, 1, 0),
        MmCase::new(MmFamily::AllZero, 16, 0, 0),
        MmCase::new(MmFamily::SingleNonzero, 16, 1, 4),
    ];
    for case in cases {
        let mut products = Vec::new();
        for strategy in [MmStrategy::Dense3D, MmStrategy::Sparse, MmStrategy::Auto] {
            products.push(differential_matmul(&case, |s, a, b| {
                mm_with_strategy(s, &sr, strategy, a, b).unwrap().rows
            }));
        }
        assert_eq!(products[0], products[1], "{case}");
        assert_eq!(products[0], products[2], "{case}");
    }
}

/// Density pinned exactly at the Auto crossover: `nnz = n·⌊√n⌋` resolves
/// sparse, `nnz = n·⌊√n⌋ + 1` resolves dense, and the two sides produce
/// byte-identical products.
#[test]
fn auto_crossover_is_pinned_and_both_sides_agree() {
    let sr = ring();
    let n = 16;
    let thr = MmStrategy::sparse_threshold(n);
    assert_eq!(thr, 64, "crossover moved; update the pinned cases");

    let at = MmCase::new(MmFamily::Sparse, n, thr, 9);
    let above = MmCase::new(MmFamily::Sparse, n, thr + 1, 9);
    for (case, want) in [(at, MmStrategy::Sparse), (above, MmStrategy::Dense3D)] {
        let (a, b) = case.pair();
        assert_eq!(MmCase::nnz(&a), case.m, "{case}: generator broke density");
        let mut s = session(n);
        let run = mm_with_strategy(&mut s, &sr, MmStrategy::Auto, &a, &b).unwrap();
        assert_eq!(run.resolved, want, "{case}");
        // Byte-identical to the other side's path, forced.
        let other = match want {
            MmStrategy::Sparse => MmStrategy::Dense3D,
            _ => MmStrategy::Sparse,
        };
        let mut s2 = session(n);
        let forced = mm_with_strategy(&mut s2, &sr, other, &a, &b).unwrap();
        assert_eq!(run.rows, forced.rows, "{case}: crossover sides diverge");
        // And to the serial oracle, across the whole grid.
        differential_matmul(&case, |s, a, b| {
            mm_with_strategy(s, &sr, MmStrategy::Auto, a, b)
                .unwrap()
                .rows
        });
    }
}
