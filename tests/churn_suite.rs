//! Workspace-level churn conformance: the acceptance criteria for the
//! crash/rejoin tier, exercised end to end through the facade crate, the
//! testkit's churn families, and the routing layer's wave re-planning.
//!
//! * every corpus [`ChurnCase`] must replay **bit-identically** across
//!   pool shapes `{1, 4, 7}` and both delivery backends, with the sync
//!   ledger closed against the fault report and the plan's downtime
//!   windows ([`judge_churn_accounting`]);
//! * under **continuous Poisson churn**, wave-structured balanced routing
//!   (windowed [`CrashSet`]s + the session fault clock) must deliver 100%
//!   of survivor-pair traffic and account every shortfall as a structured
//!   `Undeliverable` record — judged by [`judge_routed_delivery`], on
//!   every pool shape and backend;
//! * the state-sync bill must match [`sync_overhead`]'s analytic price
//!   exactly on an all-chatter workload, and the rejoiners' backfilled
//!   transcripts must pass the bandwidth auditor;
//! * a **zero-rate** churn schedule must be byte-identical to the plain
//!   plan it decorates (proptest-pinned: crash-only plans take the exact
//!   pre-churn code path).
//!
//! Every panic carries a replayable `churn[n=…, seed=…]` label.

use cc_testkit::{
    assert_transcripts_conform, churn_corpus, differential_churn, judge_churn_accounting,
    judge_routed_delivery, AuditSpec, ChurnCase, BACKENDS, POOL_SHAPES,
};
use congested_clique::prelude::*;
use congested_clique::routing::route_balanced_faulted;
use congested_clique::sim::{sync_overhead, Inbox, Outbox};
use proptest::prelude::*;

/// Broadcast-until-`horizon` chatter: every live node broadcasts a 1-bit
/// beacon each round and counts what it hears. Maximum-bandwidth workload
/// for the sync ledger, and order-sensitive enough to expose any replay
/// nondeterminism.
#[derive(Clone)]
struct Chatter {
    horizon: usize,
    heard: u64,
}

impl NodeProgram for Chatter {
    type Output = u64;
    fn step(
        &mut self,
        _ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<u64> {
        self.heard += inbox.iter().count() as u64;
        if round < self.horizon {
            let mut m = BitString::new();
            m.push_uint(1, 1);
            outbox.broadcast(&m);
            return Status::Continue;
        }
        Status::Halt(self.heard)
    }
}

fn chatter(n: usize, horizon: usize) -> Vec<Chatter> {
    (0..n).map(|_| Chatter { horizon, heard: 0 }).collect()
}

#[test]
fn churn_corpus_replays_bit_identically_with_a_closed_ledger() {
    let mut any_rejoined = false;
    for case in churn_corpus() {
        let horizon = case.max_round + 2;
        let (outputs, stats, _, report) =
            differential_churn(&case, &Engine::new(case.n), || chatter(case.n, horizon));
        judge_churn_accounting(&case.to_string(), &case.plan(), &stats, &report);
        assert!(outputs[0].is_some(), "{case}: spared node 0 must finish");
        any_rejoined |= stats.rejoined_nodes > 0;
    }
    assert!(any_rejoined, "corpus never exercised a rejoin");
}

#[test]
fn routing_waves_deliver_all_survivor_traffic_under_continuous_churn() {
    // Two fixed-cadence waves over one absolute churn timeline: wave 1
    // spans the whole churn horizon (nodes crash and rejoin *while the
    // wave's megastream is in flight*), wave 2 starts after it, with every
    // recovered node re-admitted as intermediate and endpoint. Identical
    // outcomes are required on every pool shape and delivery backend.
    for &(n, seed) in &[(12usize, 1u64), (15, 2)] {
        let case = ChurnCase::new(n, seed);
        let label = case.to_string();
        let cadence = case.max_round + 1;
        let wave1 = case.crash_set_for(0..cadence);
        let wave2 = case.crash_set_for(cadence..usize::MAX);
        assert!(
            wave2.len() < wave1.len(),
            "{label}: wave 2 re-admitted nobody"
        );
        let mut reference = None;
        for &mode in BACKENDS.iter() {
            for &threads in POOL_SHAPES.iter() {
                let tag = format!("{label}@{} threads={threads}", mode.tag());
                let engine = Engine::new(n)
                    .with_threads_exact(threads)
                    .with_delivery(mode)
                    .with_fault_plan(case.plan());
                let mut session = Session::new(engine);
                let out1 = route_balanced_faulted(&mut session, case.demands(), &wave1)
                    .unwrap_or_else(|e| panic!("{tag}: wave 1 failed: {e}"));
                judge_routed_delivery(&tag, &case.demands(), &wave1, &out1);
                // Advance the fault clock to the wave boundary: the churn
                // horizon is behind us, recovered nodes carry again.
                session.set_fault_offset(cadence);
                let out2 = route_balanced_faulted(&mut session, case.demands(), &wave2)
                    .unwrap_or_else(|e| panic!("{tag}: wave 2 failed: {e}"));
                judge_routed_delivery(&tag, &case.demands(), &wave2, &out2);
                let run = (
                    (out1.delivered, out1.undeliverable, out1.report),
                    (out2.delivered, out2.undeliverable, out2.report),
                    session.stats(),
                );
                match &reference {
                    None => reference = Some(run),
                    Some(r) => assert!(*r == run, "{tag}: waves diverged"),
                }
            }
        }
    }
}

#[test]
fn state_sync_price_matches_the_analytic_model_and_passes_the_auditor() {
    // All-chatter is exactly the workload `sync_overhead` prices: every
    // live node fills every slot every round, so each missed slot is a
    // real re-delivery and the analytic bill must match the simulated
    // ledger bit for bit — and the backfilled transcripts must satisfy
    // the bandwidth auditor like any honest run.
    let case = ChurnCase::new(10, 3);
    let plan = case.plan();
    let predicted = sync_overhead(case.n, &plan, 1);
    assert!(predicted.rejoins > 0, "{case}: no rejoin fires");
    let horizon = case.max_round + 1;
    let out = Engine::new(case.n)
        .with_transcripts(true)
        .with_fault_plan(plan.clone())
        .run_faulted(chatter(case.n, horizon))
        .unwrap_or_else(|e| panic!("{case}: engine error: {e}"));
    assert_eq!(out.stats.rejoined_nodes, predicted.rejoins, "{case}");
    assert_eq!(out.stats.sync_rounds, predicted.sync_rounds, "{case}");
    assert_eq!(out.stats.sync_messages, predicted.sync_messages, "{case}");
    assert_eq!(out.stats.sync_bits, predicted.sync_bits, "{case}");
    let transcripts = out.transcripts.expect("transcripts were requested");
    assert_transcripts_conform(
        &case.to_string(),
        &transcripts,
        &out.stats,
        &AuditSpec::model(case.n),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn prop_zero_rate_churn_is_byte_identical_to_the_plain_plan(
        seed in any::<u64>(),
        n in 4usize..10,
        f in 0usize..3,
    ) {
        // A churn schedule sampled at rate zero adds nothing, and a plan
        // without rejoins must take the exact pre-churn code path: same
        // outputs, stats, transcripts, and fault events across every pool
        // shape and delivery backend.
        let plain = FaultPlan::new(seed).with_random_crashes(n, f, 3, &[]);
        let churned = plain.clone().with_random_churn(n, 0, 0, 12, &[]);
        prop_assert_eq!(&plain, &churned, "zero-rate churn changed the plan");
        let a = cc_testkit::differential_faulted("plain", &Engine::new(n), &plain, || {
            chatter(n, 4)
        });
        let b = cc_testkit::differential_faulted("churned", &Engine::new(n), &churned, || {
            chatter(n, 4)
        });
        prop_assert_eq!(&a, &b, "zero-rate churn changed a crash-only run");
    }
}
