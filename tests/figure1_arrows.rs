//! Cross-crate validation of Figure 1's arrows: for each implemented
//! reduction/specialisation, run both sides on shared instances and check
//! they agree (the correctness backbone behind the exponent atlas).

use congested_clique::prelude::*;
use congested_clique::{graph, matmul, paths, reductions, subgraph};
use graph::reference;

#[test]
fn triangle_arrow_boolean_mm() {
    // "Triangle ← Boolean MM" + "Triangle ← size-3 subgraph": the MM-based
    // and partition-based detectors agree with ground truth.
    for seed in 0..5 {
        let g = graph::gen::gnp(18, 0.2, seed);
        let expect = reference::count_triangles(&g) > 0;
        let mut s1 = Session::new(Engine::new(18));
        assert_eq!(
            subgraph::triangle_via_mm(&mut s1, &g).unwrap().is_some(),
            expect
        );
        let mut s2 = Session::new(Engine::new(18));
        assert_eq!(
            subgraph::detect_triangle(&mut s2, &g).unwrap().is_some(),
            expect
        );
    }
}

#[test]
fn apsp_arrow_min_plus_mm() {
    // "APSP ← (min,+) MM": distributed APSP built on the 3D multiplier is
    // exact.
    let g = graph::gen::gnp_weighted(20, 0.3, 40, 3);
    let mut s = Session::new(Engine::new(20));
    let apsp = paths::apsp_exact(&mut s, &g).unwrap();
    assert_eq!(apsp, reference::floyd_warshall(&g));
}

#[test]
fn transitive_closure_arrow_boolean_mm() {
    let g = graph::gen::cliques(12, 4);
    let mut s = Session::new(Engine::new(12));
    let tc = paths::transitive_closure(&mut s, &g).unwrap();
    let comp = reference::components(&g);
    for u in 0..12 {
        for v in 0..12 {
            assert_eq!(tc[u][v], comp[u] == comp[v]);
        }
    }
}

#[test]
fn dhz_arrow_boolean_mm_via_approx_apsp() {
    // "Boolean MM ← (2−ε)-approx APSP" (Dor–Halperin–Zwick).
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
    let n = 6;
    let a: Vec<Vec<bool>> = (0..n)
        .map(|_| (0..n).map(|_| rng.gen_bool(0.4)).collect())
        .collect();
    let b: Vec<Vec<bool>> = (0..n)
        .map(|_| (0..n).map(|_| rng.gen_bool(0.4)).collect())
        .collect();
    let (via_apsp, _) = reductions::boolean_mm_via_approx_apsp(&a, &b, 0.5).unwrap();
    let expect = matmul::mm_local(
        &matmul::BoolSemiring,
        &matmul::Matrix::from_rows(a),
        &matmul::Matrix::from_rows(b),
    );
    for (i, row) in via_apsp.iter().enumerate() {
        for (j, &bit) in row.iter().enumerate() {
            assert_eq!(bit, expect.get(i, j));
        }
    }
}

#[test]
fn thm10_arrow_k_is_via_k_ds() {
    // "k-IS ← k-DS" (Theorem 10): pipeline output agrees with the direct
    // Dolev detector and with brute force.
    for seed in 0..4 {
        let g = graph::gen::gnp(8, 0.5, 100 + seed);
        let out = reductions::independent_set_via_dominating_set(&g, 2).unwrap();
        let expect = reference::find_independent_set(&g, 2).is_some();
        assert_eq!(out.independent_set.is_some(), expect, "seed {seed}");
        let mut s = Session::new(Engine::new(8));
        let direct = subgraph::detect_independent_set(&mut s, &g, 2).unwrap();
        assert_eq!(direct.is_some(), expect, "seed {seed}");
    }
}

#[test]
fn coloring_arrow_k_col_via_max_is() {
    // "k-COL ← MaxIS" (clique blow-up).
    let (g, _) = graph::gen::k_colorable(7, 3, 0.5, 5);
    let (coloring, _) = reductions::k_coloring_via_max_is(&g, 3).unwrap();
    assert!(coloring.is_some());
    let (no_coloring, _) =
        reductions::k_coloring_via_max_is(&graph::Graph::complete(5), 3).unwrap();
    assert!(no_coloring.is_none());
}

#[test]
fn atlas_is_internally_consistent() {
    for k in [3usize, 4, 6, 10] {
        reductions::Atlas::validate(k).unwrap();
    }
    let dot = reductions::Atlas::to_dot();
    assert!(dot.lines().count() > 30);
}

#[test]
fn semiring_mm_agreement_across_carriers() {
    // The same 3D schedule is exact over all three semirings (the
    // "MM backbone" of the atlas).
    use rand::{Rng, SeedableRng};
    let n = 9;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
    // Boolean.
    let a = matmul::Matrix::from_fn(n, |_, _| rng.gen_bool(0.5));
    let b = matmul::Matrix::from_fn(n, |_, _| rng.gen_bool(0.5));
    let mut s = Session::new(Engine::new(n));
    let c = matmul::mm_three_d(&mut s, &matmul::BoolSemiring, &a.to_rows(), &b.to_rows()).unwrap();
    assert_eq!(
        matmul::Matrix::from_rows(c),
        matmul::mm_local(&matmul::BoolSemiring, &a, &b)
    );
    // Ring.
    let sr = matmul::RingI64::with_width(32);
    let a = matmul::Matrix::from_fn(n, |_, _| rng.gen_range(-9i64..9));
    let b = matmul::Matrix::from_fn(n, |_, _| rng.gen_range(-9i64..9));
    let mut s = Session::new(Engine::new(n));
    let c = matmul::mm_three_d(&mut s, &sr, &a.to_rows(), &b.to_rows()).unwrap();
    assert_eq!(matmul::Matrix::from_rows(c), matmul::mm_local(&sr, &a, &b));
}
