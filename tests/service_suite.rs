//! Workspace-level session-service conformance: the acceptance criteria
//! for `cc-service`, exercised end to end through the facade crate and
//! the testkit's fleet differentials.
//!
//! * any generated batch — mixed families, workloads, pool shapes,
//!   delivery backends, seed-addressed adversaries, dependency edges —
//!   must yield outcomes **byte-identical** to the serial oracle
//!   (`Batch::run_serial`) at every scheduler width in `{1, 4, 8}`; a
//!   mismatch panics with the job's `family[n=…, seed=…]@backend` label;
//! * a cyclic batch is rejected with a structured
//!   [`BatchError::DependencyCycle`] naming a witness cycle — never
//!   accepted, never hung on;
//! * a panicking job function fails only itself; its dependents are
//!   skipped with a deterministic witness, unrelated jobs complete, the
//!   pool survives for the next batch — and the whole story is *still*
//!   byte-identical to the serial oracle;
//! * under `SERVICE_STRESS=1` (no `#[ignore]` — the gate is the env
//!   var, so CI can flip it per leg): a 520-job, 8-tenant soak checks
//!   the per-tenant starvation bound and that per-worker arena
//!   footprints are a function of job *shapes*, never job *count*.
//!
//! Test names are prefixed `width1_` / `width4_` / `width8_` / `stress_`
//! so the CI `service-conformance` matrix can select one scheduler width
//! per leg with e.g. `cargo test width4_ --test service_suite`.

use std::sync::Arc;

use cc_testkit::fleet::strategies::arb_fleet;
use cc_testkit::fleet::{Adversary, FleetJob, Workload};
use cc_testkit::{assert_fleet_matches_serial, fleet_batch, Family, Instance};
use congested_clique::service::{
    Batch, BatchError, EngineSpec, JobFailure, JobId, JobSpec, JobStatus, Service, TenantId,
};
use congested_clique::sim::DeliveryMode;
use proptest::prelude::*;

/// The deterministic conformance fleet: one cell per interesting regime —
/// clean/faulted/Byzantine, dense/sparse/auto, engine pool shapes 1/2/4,
/// plus a dependency diamond whose leaf hashes its parents' bytes.
fn conformance_fleet() -> Vec<FleetJob> {
    let mut jobs = Vec::new();
    for (tenant, (family, n, seed)) in [
        (Family::ErMedium, 8, 3),
        (Family::Star, 6, 0),
        (Family::PlantedClique, 9, 7),
        (Family::TwoCliques, 10, 1),
    ]
    .into_iter()
    .enumerate()
    {
        let mut gossip = FleetJob::new(
            tenant as u32,
            Instance::new(family, n, seed),
            Workload::Gossip { rounds: 2 },
        );
        gossip.threads = [1, 2, 4][tenant % 3];
        gossip.delivery = [
            DeliveryMode::Auto,
            DeliveryMode::Dense,
            DeliveryMode::Sparse,
        ][tenant % 3];
        jobs.push(gossip);
    }
    let mut faulted = FleetJob::new(
        0,
        Instance::new(Family::ErDense, 8, 11),
        Workload::DegreeSum,
    );
    faulted.adversary = Adversary::Faults { seed: 42 };
    faulted.threads = 2;
    jobs.push(faulted);
    let mut byz = FleetJob::new(2, Instance::new(Family::Complete, 7, 5), Workload::MinId);
    byz.adversary = Adversary::Byzantine {
        seed: 9,
        traitors: 2,
    };
    jobs.push(byz);
    // Diamond: both echoes read the first two jobs; the tip reads both
    // echoes, so dependency *values* flow through two scheduler hops.
    let mut left = FleetJob::new(1, Instance::new(Family::Path, 5, 0), Workload::EchoDeps);
    left.deps = vec![0, 1];
    let left_idx = jobs.len();
    jobs.push(left);
    let mut right = FleetJob::new(3, Instance::new(Family::Cycle, 5, 0), Workload::EchoDeps);
    right.deps = vec![0, 4];
    let right_idx = jobs.len();
    jobs.push(right);
    let mut tip = FleetJob::new(0, Instance::new(Family::Empty, 4, 0), Workload::EchoDeps);
    tip.deps = vec![left_idx, right_idx];
    jobs.push(tip);
    jobs
}

#[test]
fn width1_fleet_matches_serial_oracle() {
    let outcomes = assert_fleet_matches_serial(&conformance_fleet(), &[1]);
    assert!(outcomes.iter().all(|o| o.status.is_success()));
}

#[test]
fn width4_fleet_matches_serial_oracle() {
    assert_fleet_matches_serial(&conformance_fleet(), &[4]);
}

#[test]
fn width8_fleet_matches_serial_oracle() {
    assert_fleet_matches_serial(&conformance_fleet(), &[8]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The central property: ANY generated batch is byte-identical to its
    /// serial in-order execution, at every width in the acceptance set.
    #[test]
    fn width_any_random_fleets_match_serial(jobs in arb_fleet(8, 4)) {
        assert_fleet_matches_serial(&jobs, &[1, 4, 8]);
    }
}

#[test]
fn width_any_cyclic_batches_are_rejected_structurally() {
    // A 3-cycle threaded through add_dependency (push-time `after` edges
    // alone cannot express a cycle, which is exactly why the post-push
    // API exists: to prove submission rejects what construction allows).
    let noop = |tenant: u32, label: &str| {
        JobSpec::new(
            TenantId(tenant),
            label,
            EngineSpec::new(2),
            Arc::new(|_s, _d| Ok(Vec::new())),
        )
    };
    let mut batch = Batch::new();
    let a = batch.push(noop(0, "a"));
    let b = batch.push(noop(0, "b"));
    let c = batch.push(noop(1, "c"));
    batch.add_dependency(a, b);
    batch.add_dependency(b, c);
    batch.add_dependency(c, a);
    let service = Service::new(4);
    match service.submit(batch) {
        Err(BatchError::DependencyCycle { cycle }) => {
            assert_eq!(cycle.len(), 3, "witness names each cycle member once");
        }
        Ok(_) => panic!("cyclic batch accepted"),
        Err(other) => panic!("wrong rejection: {other}"),
    }
    // Dangling edges get their own structured error.
    let mut batch = Batch::new();
    let a = batch.push(noop(0, "a"));
    batch.add_dependency(a, JobId(99));
    match service.submit(batch) {
        Err(BatchError::UnknownDependency { job, dep }) => {
            assert_eq!((job, dep), (a, JobId(99)));
        }
        other => panic!("expected UnknownDependency, got {:?}", other.err()),
    }
}

#[test]
fn width_any_panicking_job_is_contained_and_oracle_identical() {
    // bomb panics; child (depends on bomb) and grandchild (depends on
    // child) are skipped with the *bomb* as witness for child, and the
    // child for grandchild; bystanders complete. The fleet must tell the
    // exact same story as the serial oracle, bytes and all.
    let mut batch = Batch::new();
    let bomb = batch.push(JobSpec::new(
        TenantId(0),
        "bomb",
        EngineSpec::new(3),
        Arc::new(|_s, _d| panic!("deliberate test panic")),
    ));
    let ok = |tenant: u32, label: &str| {
        JobSpec::new(
            TenantId(tenant),
            label,
            EngineSpec::new(3),
            Arc::new(|s: &mut congested_clique::sim::Session, _d: &_| {
                Ok(s.n().to_le_bytes().to_vec())
            }),
        )
    };
    let child = batch.push(ok(0, "child").after(bomb));
    let grandchild = batch.push(ok(1, "grandchild").after(child));
    let bystander = batch.push(ok(1, "bystander"));
    let serial = batch.run_serial().expect("valid DAG");
    assert_eq!(
        serial[bomb.0].status,
        JobStatus::Failed(JobFailure::Panicked("deliberate test panic".into()))
    );
    assert_eq!(serial[child.0].status, JobStatus::Skipped { dep: bomb });
    assert_eq!(
        serial[grandchild.0].status,
        JobStatus::Skipped { dep: child }
    );
    assert!(serial[bystander.0].status.is_success());
    for width in [1, 4, 8] {
        let service = Service::new(width);
        let fleet = service.submit(batch.clone()).expect("valid DAG").join();
        assert_eq!(fleet, serial, "width {width} diverged after a panic");
        // The pool survives: a fresh batch on the same service runs clean.
        let mut again = Batch::new();
        again.push(ok(0, "aftermath"));
        let aftermath = service.submit(again).expect("valid DAG").join();
        assert!(aftermath[0].status.is_success(), "width {width} pool died");
    }
}

/// Stress/soak: enabled by `SERVICE_STRESS=1` (a cheap no-op otherwise,
/// deliberately not `#[ignore]` so the gate is visible in every run).
fn stress_enabled() -> bool {
    std::env::var("SERVICE_STRESS")
        .map(|v| v == "1")
        .unwrap_or(false)
}

#[test]
fn stress_soak_fairness_and_arena_steady_state() {
    if !stress_enabled() {
        return;
    }
    const TENANTS: u32 = 8;
    const JOBS: usize = 520;
    const WIDTH: usize = 8;
    const N: usize = 4;
    // All jobs share one dense shape so the arena invariant is exact:
    // each worker parks either nothing or one dense pair (2·n²), no
    // matter how many jobs it ran.
    let tiny = |i: usize| {
        let mut job = FleetJob::new(
            (i as u32) % TENANTS,
            Instance::new(Family::ErSparse, N, i as u64),
            Workload::Gossip { rounds: 1 },
        );
        job.delivery = DeliveryMode::Dense;
        job
    };
    let service = Service::new(WIDTH);
    let jobs: Vec<FleetJob> = (0..JOBS).map(tiny).collect();
    let handle = service.submit(fleet_batch(&jobs)).expect("valid batch");
    // Drain in completion order, recording each outcome's tenant.
    let mut completion: Vec<u32> = Vec::with_capacity(JOBS);
    let mut seen = 0usize;
    for outcome in handle.iter() {
        assert!(
            outcome.status.is_success(),
            "{}: stress job failed: {:?}",
            outcome.label,
            outcome.status
        );
        completion.push(outcome.tenant.0);
        seen += 1;
    }
    assert_eq!(seen, JOBS, "every job streams exactly one outcome");

    // Starvation bound: while a tenant still has jobs outstanding, the
    // round-robin cursor must serve it at least once every
    // `TENANTS · (WIDTH + window)` completions (window = 2·WIDTH is the
    // service default); double it for channel-order slack. With fair
    // rotation the observed gap is ≈ TENANTS.
    let bound = (TENANTS as usize) * (WIDTH + 2 * WIDTH) * 2;
    for tenant in 0..TENANTS {
        let positions: Vec<usize> = completion
            .iter()
            .enumerate()
            .filter_map(|(i, &t)| (t == tenant).then_some(i))
            .collect();
        assert!(!positions.is_empty(), "tenant{tenant} starved outright");
        assert!(
            positions[0] < bound,
            "tenant{tenant}: first service at {} ≥ bound {bound}",
            positions[0]
        );
        for gap in positions.windows(2) {
            assert!(
                gap[1] - gap[0] < bound,
                "tenant{tenant}: starved for {} completions (bound {bound})",
                gap[1] - gap[0]
            );
        }
    }

    // Arena steady state: each worker retains at most one dense pair for
    // the single shape it saw — 520 jobs, zero slot growth beyond it.
    let per_shape = 2 * N * N;
    let footprints = service.arena_footprint();
    assert_eq!(footprints.len(), WIDTH);
    for (worker, slots) in footprints.iter().enumerate() {
        assert!(
            *slots == 0 || *slots == per_shape,
            "worker {worker} retains {slots} slots; leak past the {per_shape}-slot pair"
        );
    }
    let total_after_first = footprints.iter().sum::<usize>();

    // Soak a second, same-shape wave: the total footprint may only move
    // toward full warm-up (idle workers touching the shape for the first
    // time), never past one pair per worker.
    let jobs: Vec<FleetJob> = (0..JOBS).map(tiny).collect();
    let outcomes = service
        .submit(fleet_batch(&jobs))
        .expect("valid batch")
        .join();
    assert_eq!(outcomes.len(), JOBS);
    let total_after_second = service.arena_footprint().iter().sum::<usize>();
    assert!(
        total_after_second <= WIDTH * per_shape,
        "retained {total_after_second} slots > one pair per worker"
    );
    assert!(
        total_after_second >= total_after_first,
        "warm arenas were dropped between waves"
    );
}
