//! The §2 motivation, measured: the congested clique is CONGEST without
//! bottlenecks. The same aggregation task needs Θ(diameter) rounds on a
//! path topology and O(1) on the clique.

use congested_clique::prelude::*;
use congested_clique::sim::{Inbox, Outbox};

/// Flood the maximum id: each round, send your current maximum to every
/// *reachable* peer (restricted by the engine's topology); halt once the
/// value has been stable for one round after a known horizon.
struct MaxFlood {
    /// Peers this node is allowed to talk to (topology-aware).
    peers: Vec<u32>,
    current: u64,
    horizon: usize,
}

impl NodeProgram for MaxFlood {
    type Output = u64;

    fn init(&mut self, ctx: &NodeCtx) {
        self.current = ctx.id.0 as u64;
    }

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<u64> {
        for (_, msg) in inbox.iter() {
            let v = msg.reader().read_uint(ctx.id_width()).expect("max id");
            self.current = self.current.max(v);
        }
        if round == self.horizon {
            return Status::Halt(self.current);
        }
        let mut m = BitString::new();
        m.push_uint(self.current, ctx.id_width());
        for &p in &self.peers {
            outbox.send(NodeId(p), m.clone());
        }
        Status::Continue
    }
}

fn path_topology(n: usize) -> Vec<bool> {
    let mut adj = vec![false; n * n];
    for v in 1..n {
        adj[(v - 1) * n + v] = true;
        adj[v * n + (v - 1)] = true;
    }
    adj
}

#[test]
fn clique_aggregates_in_one_round() {
    let n = 32;
    let programs: Vec<MaxFlood> = (0..n)
        .map(|v| MaxFlood {
            peers: (0..n as u32).filter(|&u| u != v as u32).collect(),
            current: 0,
            horizon: 1,
        })
        .collect();
    let out = Engine::new(n).run(programs).unwrap();
    assert_eq!(out.outputs, vec![n as u64 - 1; n]);
    assert_eq!(out.stats.rounds, 1);
}

#[test]
fn path_topology_needs_diameter_rounds() {
    let n = 32;
    // On the path, node v may only talk to v−1 and v+1; the max id needs
    // n−1 hops to reach node 0.
    let make = |horizon: usize| -> Vec<MaxFlood> {
        (0..n)
            .map(|v| {
                let mut peers = Vec::new();
                if v > 0 {
                    peers.push(v as u32 - 1);
                }
                if v + 1 < n {
                    peers.push(v as u32 + 1);
                }
                MaxFlood {
                    peers,
                    current: 0,
                    horizon,
                }
            })
            .collect()
    };
    // With horizon n−1 the flood completes…
    let out = Engine::new(n)
        .with_topology(path_topology(n))
        .run(make(n - 1))
        .unwrap();
    assert_eq!(out.outputs, vec![n as u64 - 1; n]);
    // …with a shorter horizon node 0 has not heard from the far end.
    let out_short = Engine::new(n)
        .with_topology(path_topology(n))
        .run(make(n / 2))
        .unwrap();
    assert_ne!(
        out_short.outputs[0],
        n as u64 - 1,
        "information cannot outrun the bottleneck"
    );
}

#[test]
fn clique_program_violates_path_topology() {
    // Running the all-to-all variant on the path topology is a model
    // violation, caught by the engine rather than silently simulated.
    let n = 8;
    let programs: Vec<MaxFlood> = (0..n)
        .map(|v| MaxFlood {
            peers: (0..n as u32).filter(|&u| u != v as u32).collect(),
            current: 0,
            horizon: 1,
        })
        .collect();
    let err = Engine::new(n)
        .with_topology(path_topology(n))
        .run(programs)
        .unwrap_err();
    assert!(matches!(
        err,
        congested_clique::sim::SimError::TopologyViolated { .. }
    ));
}
