//! Workspace-level authenticated-tier conformance: the acceptance
//! criteria for the top rung of the adversary ladder
//! (docs/THREAT-MODEL.md), exercised end to end through the facade
//! crate, the testkit runners, and the resilient wrappers.
//!
//! * the **`f = ⌈n/3⌉` boundary is pinned by a paired test**: on a
//!   byte-identical adversary plan, Bracha sized at `f = ⌈n/3⌉` strands
//!   every honest node at `None` while Dolev–Strong delivers the honest
//!   source's value — signatures, and nothing else, move the ceiling;
//! * Dolev–Strong reaches **honest agreement for every seeded `f < n/2`
//!   case** in the `auth_corpus()` sweep, bit-identically across
//!   delivery backends × pool shapes {1, 4, 7}, and for `f < n` via the
//!   classic wrapper;
//! * **forgery accounting closes**: `rejected_tags` counts exactly the
//!   adversary's forged tags (and, composed with a link-fault plan, the
//!   wire-corrupted signed frames) and never honest traffic;
//! * an engine **without a keyring is transparently tag-free**: zero
//!   auth counters, bit-identical behaviour (property-tested);
//! * two equivocating frames from one run upgrade into a transferable
//!   [`EquivocationProof`] via `equivocation_accusation`;
//! * [`dolev_strong_overhead`]'s analytic `RunStats` equals the
//!   simulated ledger outright.

use cc_testkit::{auth_corpus, differential_authenticated, differential_programs, AuthCase};
use congested_clique::prelude::*;
use congested_clique::resilient::{
    dolev_strong_broadcast, dolev_strong_overhead, equivocation_accusation, BrachaBroadcast,
    DolevStrongBroadcast, EquivocationProof, SignedClaim,
};
use congested_clique::sim::{ByzantineEvent, Inbox, NodeProgram, Outbox, TAG_BITS};
use proptest::prelude::*;

const WIDTH: usize = 8;
const VALUE: u64 = 0x5C;

/// Bandwidth for a full `f + 1`-entry Dolev–Strong chain.
fn ds_bandwidth(n: usize, f: usize) -> usize {
    WIDTH + (f + 1) * (BitString::width_for(n) + TAG_BITS)
}

fn ds_programs(case: &AuthCase, source: NodeId) -> Vec<DolevStrongBroadcast> {
    (0..case.n)
        .map(|_| DolevStrongBroadcast::new(source, VALUE, WIDTH, case.f, case.keyring()))
        .collect()
}

/// The boundary plan both halves of the paired test run: `⌈n/3⌉`
/// seed-drawn traitors (sparing the source) that withhold every message.
/// Withholding is the *weakest* Byzantine behaviour — no forged content
/// at all — which makes the verdict about the protocols, not the lies.
fn boundary_plan(n: usize, source: NodeId) -> ByzantinePlan {
    ByzantinePlan::new(31)
        .with_random_traitors(n, n.div_ceil(3), &[source])
        .silence(1.0)
}

#[test]
fn bracha_fails_on_the_boundary_plan_at_f_equals_ceil_n_over_3() {
    // n = 9, f = ⌈9/3⌉ = 3: Bracha's echo quorum is ⌊(n+f)/2⌋ + 1 = 7,
    // but only 6 honest nodes exist — with the traitors withholding, no
    // quorum can ever assemble and every honest node is stranded at
    // `None`. Agreement survives; validity is gone. (The wrapper refuses
    // to even build this configuration — its `3f < n` assert is the
    // static half of this boundary — so the program is built directly.)
    let n = 9usize;
    let source = NodeId(0);
    let f = n.div_ceil(3);
    let plan = boundary_plan(n, source);
    let (outputs, _, _, _, byz) = cc_testkit::differential_byzantine(
        "bracha-at-the-boundary",
        &Engine::new(n).with_bandwidth(WIDTH + 2),
        &plan,
        || {
            (0..n)
                .map(|_| BrachaBroadcast::new(source, VALUE, WIDTH, f))
                .collect::<Vec<_>>()
        },
    );
    assert!(!byz.is_empty(), "{plan}: the traitors never withheld");
    for (v, out) in outputs.iter().enumerate() {
        if !plan.is_traitor(NodeId::from(v)) {
            assert_eq!(
                *out,
                Some(None),
                "{plan}: node {v} delivered without a quorum?!"
            );
        }
    }
}

#[test]
fn dolev_strong_succeeds_on_the_byte_identical_boundary_plan() {
    // The paired half: same n, same f, the *equal* adversary plan — only
    // the keyring is new. Signature chains replace quorums, so 6 honest
    // nodes suffice against 3 withholding traitors and everyone delivers
    // the source's value in f + 1 = 4 rounds.
    let n = 9usize;
    let source = NodeId(0);
    let case = AuthCase::new(n, n.div_ceil(3), 31);
    let plan = boundary_plan(n, source);
    assert_eq!(
        plan,
        boundary_plan(n, source),
        "the boundary plan must be reproducible for the pairing to mean anything"
    );
    let (outputs, stats, _, _, _) = differential_authenticated(
        "dolev-strong-at-the-boundary",
        &Engine::new(n).with_bandwidth(ds_bandwidth(n, case.f)),
        &case.keyring(),
        &plan,
        || ds_programs(&case, source),
    );
    for (v, out) in outputs.iter().enumerate() {
        if !plan.is_traitor(NodeId::from(v)) {
            assert_eq!(
                *out,
                Some(Some(VALUE)),
                "{plan}: honest node {v} missed the signed value"
            );
        }
    }
    assert_eq!(stats.rounds, case.f + 1, "fixed f + 1 round schedule");
    assert_eq!(stats.rejected_tags, 0, "withholding forges nothing");
}

#[test]
fn dolev_strong_agrees_for_every_seeded_honest_majority_case() {
    // The acceptance sweep: every corpus case (f up to ⌈n/2⌉ − 1,
    // traitors garbling, withholding, and forging tags) must deliver the
    // honest source's value to every honest node, bit-identically across
    // the backends × pool-shapes grid.
    let source = NodeId(0);
    for case in auth_corpus() {
        let plan = case.plan(&[source]);
        let (outputs, stats, _, _, byz) = differential_authenticated(
            "dolev-strong-sweep",
            &Engine::new(case.n).with_bandwidth(ds_bandwidth(case.n, case.f)),
            &case.keyring(),
            &plan,
            || ds_programs(&case, source),
        );
        if case.f > 0 {
            assert!(!byz.is_empty(), "{case}: traitors never lied");
        }
        for (v, out) in outputs.iter().enumerate() {
            if !plan.is_traitor(NodeId::from(v)) {
                assert_eq!(
                    *out,
                    Some(Some(VALUE)),
                    "{case}: honest node {v} broke agreement"
                );
            }
        }
        assert_eq!(stats.rounds, case.f + 1, "{case}: schedule drifted");
    }
}

#[test]
fn the_classic_wrapper_agrees_with_a_traitor_majority() {
    // f = 4 of n = 7 — past any honest majority. Unauthenticated
    // broadcast is impossible here for *any* protocol; signature chains
    // keep both agreement and (honest-source) validity.
    let n = 7;
    let f = 4;
    let source = NodeId(2);
    let plan = ByzantinePlan::new(77)
        .with_random_traitors(n, f, &[source])
        .garble(1.0)
        .silence(0.4);
    let mut session = Session::new(
        Engine::new(n)
            .with_auth(AuthKeyring::from_seed(n, 5))
            .with_bandwidth(ds_bandwidth(n, f))
            .with_byzantine_plan(plan.clone()),
    );
    let out = congested_clique::resilient::dolev_strong_broadcast_classic(
        &mut session,
        source,
        VALUE,
        WIDTH,
        f,
    )
    .unwrap();
    assert_eq!(out.honest_unanimous(&plan), Some(&Some(VALUE)), "{plan}");
}

/// Three rounds of id gossip under the envelope: the forgery-accounting
/// fixture. Payload prefix is read, the trailing tag ignored, so the
/// same program runs with and without a keyring.
#[derive(Clone)]
struct Gossip {
    heard: Vec<u64>,
}

impl NodeProgram for Gossip {
    type Output = Vec<u64>;
    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<Vec<u64>> {
        for (u, m) in inbox.iter() {
            if let Ok(v) = m.reader().read_uint(ctx.id_width()) {
                self.heard.push(u.0 as u64 * 1000 + v);
            }
        }
        if round < 3 {
            let mut m = BitString::new();
            m.push_uint(ctx.id.0 as u64, ctx.id_width());
            outbox.broadcast(&m);
            return Status::Continue;
        }
        Status::Halt(self.heard.clone())
    }
}

fn gossip(n: usize) -> Vec<Gossip> {
    (0..n).map(|_| Gossip { heard: Vec::new() }).collect()
}

#[test]
fn rejected_tags_counts_every_forgery_and_no_honest_traffic() {
    // One traitor forging on every link: 3 send rounds × (n − 1) peers
    // = 21 forged tags. Every one of them — and *only* them — must land
    // in `rejected_tags`, closing the counter against the adversary's
    // own event log.
    let n = 8;
    let keyring = AuthKeyring::from_seed(n, 17);
    let plan = ByzantinePlan::new(17).traitor(NodeId(2)).forge(1.0);
    let (_, stats, _, _, byz) =
        differential_authenticated("forge-accounting", &Engine::new(n), &keyring, &plan, || {
            gossip(n)
        });
    let forged = byz
        .events
        .iter()
        .filter(|e| matches!(e, ByzantineEvent::ForgedTag { .. }))
        .count() as u64;
    assert_eq!(forged, 3 * (n as u64 - 1), "{plan}: forgery schedule");
    assert_eq!(
        stats.rejected_tags, forged,
        "{plan}: every forgery rejected, zero false rejections"
    );
    assert_eq!(stats.forged_messages, forged);
    assert_eq!(stats.signed_messages, 3 * (n as u64) * (n as u64 - 1));

    // The honest control: same keyring, no adversary — nothing rejected.
    let (_, honest_stats, _) =
        differential_programs("honest-control", &Engine::new(n).with_auth(keyring), || {
            gossip(n)
        });
    assert!(honest_stats.signed_messages > 0);
    assert_eq!(honest_stats.rejected_tags, 0, "honest traffic rejected?!");
}

#[test]
fn dolev_strong_composes_with_wire_corruption() {
    // Tier 2 (link faults) under tier 4 (signatures): wire damage lands
    // *after* signing, so every corrupted signed frame is detected and
    // cleared — `rejected_tags` closes against `corrupted_messages` —
    // and the protocol still reaches honest agreement, because a cleared
    // frame is just an omission and Dolev–Strong relays route around it.
    let n = 11;
    let f = 2;
    let source = NodeId(0);
    let byz = ByzantinePlan::new(23)
        .with_random_traitors(n, f, &[source])
        .garble(1.0);
    let wire = FaultPlan::new(29).corrupt_messages(0.05);
    let mut session = Session::new(
        Engine::new(n)
            .with_auth(AuthKeyring::from_seed(n, 23))
            .with_bandwidth(ds_bandwidth(n, f))
            .with_byzantine_plan(byz.clone())
            .with_fault_plan(wire.clone()),
    );
    let out = dolev_strong_broadcast(&mut session, source, VALUE, WIDTH, f).unwrap();
    assert_eq!(out.honest_unanimous(&byz), Some(&Some(VALUE)), "{wire}");
    assert!(
        out.stats.corrupted_messages > 0,
        "{wire}: the wire never bit"
    );
    assert_eq!(
        out.stats.rejected_tags, out.stats.corrupted_messages,
        "{wire}: every wire-corrupted signed frame must be detected"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn prop_an_engine_without_a_keyring_is_transparently_tag_free(
        n in 4usize..12,
    ) {
        // Transparency, the ladder's standing invariant, for the new
        // tier: no keyring ⇒ no auth counters, no tag bits, frames
        // exactly as long as the program sent them — bit-identically
        // across the whole backends × pool-shapes grid (which the
        // differential runner itself asserts).
        let (outputs, stats, transcripts) =
            differential_programs("no-keyring", &Engine::new(n), || gossip(n));
        prop_assert_eq!(stats.signed_messages, 0);
        prop_assert_eq!(stats.auth_bits, 0);
        prop_assert_eq!(stats.rejected_tags, 0);
        prop_assert_eq!(outputs.len(), n);
        // Every recorded frame is the bare id — no trailing tag.
        for t in &transcripts {
            for round in &t.rounds {
                for (_, m) in round.sent.iter().filter(|(_, m)| !m.is_empty()) {
                    prop_assert_eq!(m.len(), BitString::width_for(n));
                }
            }
        }
    }
}

/// One equivocating broadcast round: every node outputs the raw frame it
/// received from the designated suspect, tag and all.
#[derive(Clone)]
struct FrameTap {
    suspect: NodeId,
    frame: BitString,
}

impl NodeProgram for FrameTap {
    type Output = BitString;
    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<BitString> {
        if round == 0 {
            let mut m = BitString::new();
            m.push_uint(ctx.id.0 as u64, ctx.id_width());
            outbox.broadcast(&m);
            return Status::Continue;
        }
        self.frame = inbox.from(self.suspect).clone();
        Status::Halt(self.frame.clone())
    }
}

#[test]
fn an_equivocation_witness_upgrades_into_a_transferable_proof() {
    // A traitor garbles per recipient *before* the engine signs, so each
    // lie arrives validly tagged — exactly the evidence the accusation
    // needs. Two honest recipients' conflicting frames convict the
    // traitor to any third party holding the keyring; `cc-testkit`'s
    // unauthenticated `equivocation_witness` could only ever shrug.
    let n = 6;
    let suspect = NodeId(3);
    let keyring = AuthKeyring::from_seed(n, 41);
    let plan = ByzantinePlan::new(41).traitor(suspect).garble(1.0);
    let (outputs, _, _, _, _) =
        differential_authenticated("accusation", &Engine::new(n), &keyring, &plan, || {
            (0..n)
                .map(|_| FrameTap {
                    suspect,
                    frame: BitString::new(),
                })
                .collect::<Vec<_>>()
        });
    let claims: Vec<SignedClaim> = (0..n)
        .filter(|&v| v != suspect.index())
        .filter_map(|v| SignedClaim::from_frame(suspect, 0, outputs[v].as_ref().unwrap()))
        .collect();
    assert!(claims.len() >= 2, "{plan}: not enough testimony");
    let conflicting = claims
        .iter()
        .flat_map(|a| claims.iter().map(move |b| (a, b)))
        .find_map(|(a, b)| equivocation_accusation(&keyring, a, b).ok())
        .unwrap_or_else(|| panic!("{plan}: a garbling traitor that never equivocated?!"));
    assert!(
        conflicting.verify(&keyring),
        "{plan}: the proof must convict from its own fields"
    );
    assert_eq!(conflicting.signer, suspect);
    // Serialisable conviction: a structurally equal copy still verifies.
    let copy = EquivocationProof {
        signer: conflicting.signer,
        round: conflicting.round,
        first: conflicting.first.clone(),
        second: conflicting.second.clone(),
    };
    assert!(copy.verify(&keyring), "the proof transfers by value");
}

#[test]
fn the_analytic_overhead_is_the_simulated_ledger() {
    // Not approximately — outright. `dolev_strong_overhead` must price a
    // fault-free phase so exactly that `Session::charge` of the analytic
    // stats is indistinguishable from running the protocol.
    for (n, f) in [(16, 3), (16, 0), (32, 7)] {
        let mut session = Session::new(
            Engine::new(n)
                .with_auth(AuthKeyring::from_seed(n, 2))
                .with_bandwidth(ds_bandwidth(n, f)),
        );
        let out = dolev_strong_broadcast(&mut session, NodeId(1), VALUE, WIDTH, f).unwrap();
        assert_eq!(
            out.stats,
            dolev_strong_overhead(n, f, WIDTH),
            "n={n} f={f}: the analytic ledger drifted from the simulation"
        );
    }
}
