//! Workspace-level conformance: one instance corpus driven through
//! several algorithm crates in sequence, every output re-judged by the
//! testkit oracles, every session checked against the model bandwidth.
//! Per-crate depth lives in each crate's own `tests/conformance.rs`;
//! this suite pins down the cross-crate contracts.

use cc_testkit::{corpus, differential_session, oracle, weighted_corpus, Family, Instance};
use congested_clique::prelude::*;
use congested_clique::{graph, mst, param, paths, subgraph};

#[test]
fn one_session_composes_judged_phases_across_crates() {
    for inst in corpus(&[12], &[9, 17]) {
        let g = inst.graph();
        let n = g.n();
        let label = inst.label();
        let mut s = Session::new(Engine::new(n));

        let dists = paths::bfs(&mut s, &g, 0).unwrap();
        oracle::judge_bfs(&label, &g, 0, &dists);

        let triangles = subgraph::count_triangles_distributed(&mut s, &g).unwrap();
        oracle::judge_triangle_count(&label, &g, triangles);

        let cover = param::vertex_cover(&mut s, &g, 3).unwrap();
        oracle::judge_vertex_cover(&label, &g, 3, &cover);

        // Every phase above ran inside the single model-bandwidth session.
        oracle::assert_bandwidth(&label, &s.stats(), s.bandwidth());
        assert!(s.phases() >= 3, "{label}: phases not accumulated");
    }
}

#[test]
fn weighted_pipeline_is_internally_consistent() {
    // APSP, SSSP and MST must tell one coherent story about the same
    // weighted instance — and each is judged independently.
    for inst in weighted_corpus(&[10], &[4]) {
        let wg = inst.graph();
        let n = wg.n();
        let label = inst.label();

        let apsp = differential_session(&label, n, |s| paths::apsp_exact(s, &wg).unwrap());
        oracle::judge_apsp(&label, &wg, &apsp);

        let sssp = differential_session(&label, n, |s| paths::bellman_ford(s, &wg, 0).unwrap());
        oracle::judge_sssp(&label, &wg, 0, &sssp);
        for (v, &d) in sssp.iter().enumerate() {
            assert_eq!(
                apsp.get(0, v),
                d,
                "{label}: APSP row 0 disagrees with SSSP at {v}"
            );
        }

        let forest = differential_session(&label, n, |s| {
            let mut f = mst::boruvka_mst(s, &wg).unwrap();
            f.sort_unstable();
            f
        });
        oracle::judge_spanning_forest(&label, &wg, &forest);
    }
}

#[test]
fn unweighted_apsp_agrees_with_bfs_from_every_source() {
    let inst = Instance::new(Family::ErMedium, 13, 21);
    let g = inst.graph();
    let label = inst.label();
    let apsp = differential_session(&label, g.n(), |s| paths::apsp_unweighted(s, &g).unwrap());
    for src in 0..g.n() {
        let bfs = graph::reference::bfs_distances(&g, src);
        for (v, &d) in bfs.iter().enumerate() {
            assert_eq!(
                apsp.get(src, v),
                d,
                "{label}: APSP disagrees with BFS at ({src},{v})"
            );
        }
    }
}
