//! # congested-clique
//!
//! A complexity-theory workbench for the **congested clique** model of
//! distributed computing, reproducing Korhonen & Suomela, *"Towards a
//! complexity theory for the congested clique"* (SPAA 2018,
//! arXiv:1705.03284).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`sim`] — the bandwidth-exact simulator (`cliquesim`);
//! * [`graph`] — graph substrate, generators, reference solvers;
//! * [`routing`] — oblivious static scheduling and dynamic routing;
//! * [`matmul`] — distributed semiring matrix multiplication;
//! * [`paths`] — APSP / SSSP / BFS / transitive closure;
//! * [`subgraph`] — Dolev et al. subgraph detection, colour-coding k-path;
//! * [`param`] — Theorem 9 (k-dominating set) and Theorem 11 (k-vertex cover);
//! * [`mst`] — distributed Borůvka MST (the §2/§8 flagship problem);
//! * [`reductions`] — Theorem 10's gadget, the Figure 1 atlas;
//! * [`theory`] — NCLIQUE, the normal form (Thm 3), decision hierarchies
//!   (Thms 7/8), counting arguments (Lemma 1, Thms 2/4), exponents (§7);
//! * [`resilient`] — fault-tolerant wrappers (echo-broadcast,
//!   k-retransmission, crash-tolerant aggregation, Bracha-style reliable
//!   broadcast, and Dolev–Strong authenticated broadcast over
//!   [`sim::AuthKeyring`] signed messages) for runs under the simulator's
//!   deterministic [`sim::FaultPlan`] and [`sim::ByzantinePlan`]
//!   adversaries; see `docs/THREAT-MODEL.md` for the tier-by-tier
//!   guarantees;
//! * [`service`] — the multi-tenant session service: DAG-scheduled
//!   simulation fleets over a shared work-stealing worker pool, with a
//!   serial oracle (`Batch::run_serial`) the fleet is differentially
//!   tested against.
//!
//! See `examples/quickstart.rs` for a guided tour.

pub use cc_core as theory;
pub use cc_graph as graph;
pub use cc_matmul as matmul;
pub use cc_mst as mst;
pub use cc_param as param;
pub use cc_paths as paths;
pub use cc_reductions as reductions;
pub use cc_resilient as resilient;
pub use cc_routing as routing;
pub use cc_service as service;
pub use cc_subgraph as subgraph;
pub use cliquesim as sim;

/// Commonly used items, for `use congested_clique::prelude::*`.
pub mod prelude {
    pub use cc_graph::{Graph, WeightedGraph};
    pub use cliquesim::{
        AuthKeyring, BitString, ByzantinePlan, Engine, FaultPlan, NodeCtx, NodeId, NodeProgram,
        RunStats, Session, Status,
    };
}
