//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses — the
//! [`proptest!`] macro, `prop_assert*`, [`strategy::Strategy`] for ranges,
//! tuples and [`collection::vec`], [`arbitrary::any`], and
//! [`test_runner::ProptestConfig`] — on top of a deterministic per-test RNG.
//!
//! Differences from upstream: no shrinking (a failing case reports the seed
//! and case number instead), and value streams differ. Each test's RNG is
//! seeded from the test name, so failures reproduce exactly across runs;
//! set `PROPTEST_CASES` to change the case count globally.

pub mod test_runner {
    //! Test configuration, RNG, and failure plumbing.

    use std::fmt;

    /// Per-test configuration (`cases` = number of generated inputs).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` inputs.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Self { cases }
        }
    }

    /// A failed property (produced by the `prop_assert*` macros).
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Wrap a failure message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic generator: SplitMix64 seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary label (the `proptest!` macro passes the
        /// test function's name) so distinct tests get distinct streams.
        pub fn deterministic(label: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `0..span` (`span > 0`), bias-free.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            if span.is_power_of_two() {
                return self.next_u64() & (span - 1);
            }
            let zone = u64::MAX - (u64::MAX - span + 1) % span;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % span;
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators for ranges and tuples.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy yielding a single constant value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                    (self.start as $u).wrapping_add(rng.below(span) as $u) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as $u).wrapping_add(rng.below(span + 1) as $u) as $t
                }
            }
        )*}
    }
    range_strategy!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
    );

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()`: whole-domain strategies for primitive types.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one value uniformly over the domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*}
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy for the whole domain of `T` (see [`any`]).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length bounds for [`vec()`](vec()), inclusive of `lo`, exclusive of `hi`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    /// Anything accepted as the length argument of [`vec()`](vec()) — mirrors
    /// upstream's `Into<SizeRange>`, which lets untyped literals like
    /// `0..300` (inferred `i32`) work.
    pub trait IntoSizeRange {
        /// Convert into concrete bounds.
        fn into_size_range(self) -> SizeRange;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> SizeRange {
            SizeRange {
                lo: self,
                hi: self + 1,
            }
        }
    }

    macro_rules! size_range_from {
        ($($t:ty),*) => {$(
            impl IntoSizeRange for std::ops::Range<$t> {
                fn into_size_range(self) -> SizeRange {
                    assert!(self.start < self.end, "empty size range");
                    SizeRange { lo: self.start as usize, hi: self.end as usize }
                }
            }
            impl IntoSizeRange for std::ops::RangeInclusive<$t> {
                fn into_size_range(self) -> SizeRange {
                    assert!(self.start() <= self.end(), "empty size range");
                    SizeRange { lo: *self.start() as usize, hi: *self.end() as usize + 1 }
                }
            }
        )*}
    }
    size_range_from!(usize, u32, i32);

    /// Strategy for `Vec<S::Value>` with a random in-bounds length.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.len.lo + rng.below((self.len.hi - self.len.lo) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` values whose length is drawn uniformly from
    /// `len` (e.g. `vec(any::<bool>(), 0..300)`).
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into_size_range(),
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fail the current case with a message (early-returns a `TestCaseError`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!(a == b)` with value diagnostics.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// `prop_assert!(a != b)` with value diagnostics.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

/// Define property tests: each `fn name(pat in strategy, …) { body }` item
/// becomes a `#[test]` running `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::sample(&($strat), &mut rng),)+
                    );
                    #[allow(clippy::redundant_closure_call)]
                    (|| { $body ::std::result::Result::Ok(()) })()
                };
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        let s = crate::collection::vec((any::<u64>(), 1usize..=64), 0..20);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v.len() < 20);
            for (_, w) in v {
                assert!((1..=64).contains(&w));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_generates_and_asserts(x in 0usize..10, flag in any::<bool>(), v in crate::collection::vec(any::<u8>(), 0..5)) {
            prop_assert!(x < 10);
            prop_assert_eq!(flag, flag);
            prop_assert!(v.len() < 5, "len {} out of bounds", v.len());
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "failed at case")]
        fn failing_property_panics(x in 0u32..5) {
            prop_assert!(x > 100);
        }
    }
}
