//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface this workspace's benches use —
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`], plus the [`criterion_group!`]/[`criterion_main!`]
//! macros — with honest wall-clock measurement: per sample the routine runs
//! enough iterations to exceed a minimum window, and the report gives
//! `[min median mean]` per-iteration times. No plots, no statistics engine;
//! numbers print to stdout where `cargo bench` shows them.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Minimum measured time per sample; short routines are batched up to this.
const SAMPLE_WINDOW: Duration = Duration::from_millis(4);

/// Top-level harness handle, passed to every bench target.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters benchmark ids; flag-style
        // arguments the real harness accepts are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            harness: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Run a standalone benchmark (group of one).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut group = self.benchmark_group(String::new());
        group.bench_function(id, f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    harness: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1);
        self.sample_size = n;
        self
    }

    /// Measure one routine. `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] exactly like under real criterion.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        if !self.harness.matches(&full) {
            return self;
        }

        // Calibration sample: also serves as warm-up.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters = (SAMPLE_WINDOW.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{full:<40} time: [{} {} {}]  ({} samples × {iters} iters)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            samples.len(),
        );
        self
    }

    /// End the group (layout parity with real criterion; no-op).
    pub fn finish(self) {}
}

/// Times the routine passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the routine `iters` times, recording total wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundle bench targets into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups (for `harness = false` benches).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        c.benchmark_group("g").bench_function("id", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(!ran);
    }

    #[test]
    fn time_formatting_spans_units() {
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(2e-3), "2.000 ms");
        assert_eq!(fmt_time(2e-6), "2.000 µs");
        assert_eq!(fmt_time(2e-9), "2.0 ns");
    }
}
