//! Offline stand-in for `rand_chacha`: [`ChaCha8Rng`] is a genuine ChaCha
//! keystream generator (8 rounds, RFC 7539 state layout) implementing the
//! workspace's vendored `rand` traits. Output is high-quality and fully
//! deterministic per seed, though the stream differs from the upstream crate
//! (which nothing in this workspace depends on — every consumer seeds
//! explicitly and only needs reproducibility).

use rand::{RngCore, SeedableRng};

/// The ChaCha quarter round.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

macro_rules! chacha_rng {
    ($name:ident, $doc:literal, $rounds:expr) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name {
            /// Input block: constants, key, counter, nonce.
            input: [u32; 16],
            /// Current keystream block.
            buf: [u32; 16],
            /// Next unread word of `buf` (16 = exhausted).
            idx: usize,
        }

        impl $name {
            fn refill(&mut self) {
                let mut x = self.input;
                for _ in 0..($rounds / 2) {
                    // Column round.
                    quarter(&mut x, 0, 4, 8, 12);
                    quarter(&mut x, 1, 5, 9, 13);
                    quarter(&mut x, 2, 6, 10, 14);
                    quarter(&mut x, 3, 7, 11, 15);
                    // Diagonal round.
                    quarter(&mut x, 0, 5, 10, 15);
                    quarter(&mut x, 1, 6, 11, 12);
                    quarter(&mut x, 2, 7, 8, 13);
                    quarter(&mut x, 3, 4, 9, 14);
                }
                for (o, i) in x.iter_mut().zip(self.input.iter()) {
                    *o = o.wrapping_add(*i);
                }
                self.buf = x;
                self.idx = 0;
                // 64-bit block counter in words 12–13.
                let (lo, carry) = self.input[12].overflowing_add(1);
                self.input[12] = lo;
                if carry {
                    self.input[13] = self.input[13].wrapping_add(1);
                }
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> Self {
                let mut input = [0u32; 16];
                // "expand 32-byte k"
                input[0] = 0x6170_7865;
                input[1] = 0x3320_646e;
                input[2] = 0x7962_2d32;
                input[3] = 0x6b20_6574;
                for i in 0..8 {
                    input[4 + i] =
                        u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().expect("4 bytes"));
                }
                // Counter and nonce start at zero.
                Self {
                    input,
                    buf: [0; 16],
                    idx: 16,
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.idx >= 16 {
                    self.refill();
                }
                let w = self.buf[self.idx];
                self.idx += 1;
                w
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    "ChaCha with 8 rounds: fast, seedable, reproducible.",
    8
);
chacha_rng!(ChaCha12Rng, "ChaCha with 12 rounds.", 12);
chacha_rng!(
    ChaCha20Rng,
    "ChaCha with 20 rounds (the RFC 7539 cipher core).",
    20
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha20_matches_rfc7539_keystream() {
        // RFC 7539 §2.3.2 test vector: key = 00 01 ... 1f, counter = 1,
        // nonce = 000000090000004a00000000. Our nonce/counter start at zero,
        // so instead check the zero-key zero-nonce vector from the original
        // ChaCha reference: first word of block 0 is ade0b876.
        let rng = &mut ChaCha20Rng::from_seed([0u8; 32]);
        assert_eq!(rng.next_u32(), 0xade0_b876);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn block_counter_advances() {
        let mut r = ChaCha8Rng::from_seed([7u8; 32]);
        let first_block: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn bernoulli_is_roughly_fair() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads={heads}");
    }
}
