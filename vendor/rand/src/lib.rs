//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! small slice of `rand`'s API that the workbench actually uses is
//! implemented here as a path dependency: [`RngCore`], [`SeedableRng`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom`]
//! (`shuffle`, `choose`). The value streams are *not* identical to the real
//! `rand` crate, but every generator in this workspace is seeded explicitly,
//! so runs remain fully deterministic and reproducible against this
//! implementation.
//!
//! Integer ranges are sampled with rejection below the largest multiple of
//! the span, so there is no modulo bias.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of `next_u64` by
    /// default; ChaCha overrides with its native word output).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material (e.g. `[u8; 32]` for ChaCha).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from full seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded to full seed width with SplitMix64
    /// (the same expansion idea the real crate uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One step of SplitMix64; a solid mixer for seed expansion.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform value in `0..span` (`span > 0`), bias-free via rejection.
pub(crate) fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Largest multiple of `span` that fits in a u64, as a rejection zone.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                (self.start as $u).wrapping_add(uniform_u64(rng, span) as $u) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t; // whole 64-bit domain
                }
                (lo as $u).wrapping_add(uniform_u64(rng, span + 1) as $u) as $t
            }
        }
    )*}
}
range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// The user-facing sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice sampling helpers (`shuffle`, `choose`).

    use super::{uniform_u64, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform (Fisher–Yates) in-place shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `rand::prelude`.
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            let mut s = self.0;
            self.0 += 1;
            splitmix64(&mut s)
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Counter(0);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-9i64..9);
            assert!((-9..9).contains(&v));
            let w: usize = r.gen_range(1usize..=64);
            assert!((1..=64).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut r = Counter(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut r = Counter(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }
}
