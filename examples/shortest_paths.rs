//! Shortest paths on the congested clique: the APSP/SSSP corner of
//! Figure 1.
//!
//! Runs exact APSP (tropical squaring on top of the 3D matrix
//! multiplication), `(1+ε)`-approximate APSP, BFS and Bellman–Ford, and
//! checks everything against centralised references.
//!
//! Run with: `cargo run --release --example shortest_paths`

use congested_clique::prelude::*;
use congested_clique::{graph, paths};
use graph::reference;

fn main() {
    println!("== shortest paths on the congested clique ==\n");

    for n in [16usize, 27, 64] {
        let wg = graph::gen::gnp_weighted(n, 0.25, 50, n as u64);
        let exact_ref = reference::floyd_warshall(&wg);

        // Exact APSP via (min,+) squaring: O(n^{1/3} log n) rounds.
        let mut s = Session::new(Engine::new(n));
        let apsp = paths::apsp_exact(&mut s, &wg).expect("simulation ok");
        assert_eq!(apsp, exact_ref, "distributed APSP must be exact");
        println!(
            "n={n:3}  exact APSP      : {:5} rounds  ({} squaring phases, {} KiB shipped)",
            s.stats().rounds,
            s.phases(),
            s.stats().bits / 8192
        );

        // (1+ε)-approximate APSP by weight rounding.
        let mut s2 = Session::new(Engine::new(n));
        let approx = paths::apsp_approx(&mut s2, &wg, 0.25).expect("simulation ok");
        let err = approx.max_relative_error(&exact_ref);
        println!(
            "n={n:3}  (1+¼)-apx APSP  : {:5} rounds  (max relative error {:.3})",
            s2.stats().rounds,
            err
        );
        assert!(err <= 0.25 + 1e-9);

        // SSSP baselines.
        let skel = wg.skeleton();
        let mut s3 = Session::new(Engine::new(n));
        let bfs = paths::bfs(&mut s3, &skel, 0).expect("simulation ok");
        assert_eq!(bfs, reference::bfs_distances(&skel, 0));
        let mut s4 = Session::new(Engine::new(n));
        let bf = paths::bellman_ford(&mut s4, &wg, 0).expect("simulation ok");
        assert_eq!(bf, reference::dijkstra(&wg, 0));
        println!(
            "n={n:3}  BFS / B-Ford    : {:5} / {:5} rounds  (O(ecc) and O(hop-radius) baselines)\n",
            s3.stats().rounds,
            s4.stats().rounds
        );
    }
    println!("all distances verified against Floyd–Warshall / Dijkstra ✓");
}
