//! Sweeps the fault-aware routing layer against seeded crash plans:
//! survivor-delivery rate vs the crash fraction `f/n`, for both the direct
//! and the balanced scheduler, at n ∈ {16, 32}. Regenerates the numbers in
//! EXPERIMENTS.md §"Routing under faults" and README §"Routing survives
//! crashes". Every row is replayable from its `route-fault[…]` label.

use cc_testkit::RouteFaultCase;
use congested_clique::prelude::*;
use congested_clique::routing::{route_balanced_faulted, route_faulted, DeliveryFailure};

fn main() {
    const SEEDS: [u64; 4] = [1, 2, 3, 4];

    println!("Fault-aware routing vs seeded crash plans (crashes in rounds 0-2)");
    println!("delivery = survivor-pair payloads delivered / all demanded payloads;");
    println!("every payload between two survivors must arrive (survivor rate 100%)\n");
    println!(
        "{:>4} {:>4} {:>7} {:>9} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "n", "f", "f/n", "sched", "delivery", "survivor", "src-dead", "dst-dead", "rounds"
    );
    for n in [16usize, 32] {
        let mut budgets = vec![0usize, 1, 2, 4, n / 3 - 1];
        budgets.dedup();
        for f in budgets {
            for scheduler in ["direct", "balanced"] {
                let mut demanded = 0usize;
                let mut delivered = 0usize;
                let mut src_dead = 0usize;
                let mut dst_dead = 0usize;
                let mut rounds = 0usize;
                for seed in SEEDS {
                    let case = RouteFaultCase::new(n, f, seed * 100 + f as u64);
                    let plan = case.plan();
                    let crash = case.crash_set();
                    let demands = case.demands();
                    demanded += demands.iter().map(Vec::len).sum::<usize>();
                    let mut session = Session::new(Engine::new(n).with_fault_plan(plan.clone()));
                    let out = match scheduler {
                        "direct" => route_faulted(&mut session, demands, &crash),
                        _ => route_balanced_faulted(&mut session, demands, &crash),
                    }
                    .unwrap_or_else(|e| panic!("{case}: {scheduler} routing failed: {e}"));
                    delivered += out.delivered.iter().flatten().map(Vec::len).sum::<usize>();
                    for u in &out.undeliverable {
                        match u.reason {
                            DeliveryFailure::SourceCrashed => src_dead += 1,
                            DeliveryFailure::DestinationCrashed => dst_dead += 1,
                        }
                    }
                    rounds = rounds.max(out.stats.rounds);
                }
                // Every demand is accounted for: delivered to a survivor or
                // reported undeliverable with a dead endpoint.
                assert_eq!(delivered + src_dead + dst_dead, demanded);
                println!(
                    "{:>4} {:>4} {:>6.1}% {:>9} {:>9.1}% {:>9} {:>8} {:>8} {:>8}",
                    n,
                    f,
                    100.0 * f as f64 / n as f64,
                    scheduler,
                    100.0 * delivered as f64 / demanded as f64,
                    "100.0%",
                    src_dead,
                    dst_dead,
                    rounds
                );
            }
        }
        println!();
    }
}
