//! Sweeps the fault-aware routing layer against seeded crash plans:
//! survivor-delivery rate vs the crash fraction `f/n`, for both the direct
//! and the balanced scheduler, at n ∈ {16, 32}. Regenerates the numbers in
//! EXPERIMENTS.md §"Routing under faults" and README §"Routing survives
//! crashes". Every row is replayable from its `route-fault[…]` label.
//!
//! Since PR 7 the sweep itself is a `cc-service` fleet: each
//! `(n, f, scheduler, seed)` cell is one job (the two schedulers are two
//! tenants sharing the pool), the whole grid is submitted as a single
//! batch, and the fleet outcomes are asserted byte-identical to the
//! serial oracle (`Batch::run_serial`) before the table is printed from
//! them. The footer reports both wall times — the serial-vs-fleet row in
//! EXPERIMENTS.md §"Session service" comes from here.

use std::sync::Arc;
use std::time::Instant;

use cc_testkit::RouteFaultCase;
use congested_clique::routing::{route_balanced_faulted, route_faulted, DeliveryFailure};
use congested_clique::service::{Batch, EngineSpec, JobSpec, JobStatus, Service, TenantId};

const SEEDS: [u64; 4] = [1, 2, 3, 4];

/// One sweep cell: everything needed to rebuild the job anywhere.
#[derive(Clone, Copy)]
struct Cell {
    n: usize,
    f: usize,
    balanced: bool,
    seed: u64,
}

impl Cell {
    fn case(&self) -> RouteFaultCase {
        RouteFaultCase::new(self.n, self.f, self.seed * 100 + self.f as u64)
    }

    /// The cell as a service job. Output bytes: five little-endian u64s —
    /// demanded, delivered, src-dead, dst-dead, rounds.
    fn job(&self) -> JobSpec {
        let cell = *self;
        let case = self.case();
        JobSpec::new(
            TenantId(self.balanced as u32),
            format!(
                "{case}+{}",
                if self.balanced { "balanced" } else { "direct" }
            ),
            EngineSpec::new(self.n).fault(case.plan()),
            Arc::new(move |session, _deps| {
                let case = cell.case();
                let crash = case.crash_set();
                let demands = case.demands();
                let demanded = demands.iter().map(Vec::len).sum::<usize>();
                let out = if cell.balanced {
                    route_balanced_faulted(session, demands, &crash)
                } else {
                    route_faulted(session, demands, &crash)
                }
                .map_err(|e| format!("{case}: routing failed: {e}"))?;
                let delivered = out.delivered.iter().flatten().map(Vec::len).sum::<usize>();
                let (mut src_dead, mut dst_dead) = (0usize, 0usize);
                for u in &out.undeliverable {
                    match u.reason {
                        DeliveryFailure::SourceCrashed => src_dead += 1,
                        DeliveryFailure::DestinationCrashed => dst_dead += 1,
                    }
                }
                Ok([demanded, delivered, src_dead, dst_dead, out.stats.rounds]
                    .iter()
                    .flat_map(|v| (*v as u64).to_le_bytes())
                    .collect())
            }),
        )
    }
}

fn cells() -> Vec<Cell> {
    let mut cells = Vec::new();
    for n in [16usize, 32] {
        let mut budgets = vec![0usize, 1, 2, 4, n / 3 - 1];
        budgets.dedup();
        for f in budgets {
            for balanced in [false, true] {
                for seed in SEEDS {
                    cells.push(Cell {
                        n,
                        f,
                        balanced,
                        seed,
                    });
                }
            }
        }
    }
    cells
}

fn decode(bytes: &[u8]) -> [u64; 5] {
    let mut vals = [0u64; 5];
    for (i, chunk) in bytes.chunks_exact(8).take(5).enumerate() {
        vals[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
    }
    vals
}

fn main() {
    let cells = cells();
    let batch = || {
        let mut b = Batch::new();
        for cell in &cells {
            b.push(cell.job());
        }
        b
    };

    // Serial oracle first, then the fleet — and the fleet must agree byte
    // for byte before any number is printed.
    let start = Instant::now();
    let serial = batch().run_serial().expect("sweep batch is a valid DAG");
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;

    let width = 4;
    let service = Service::new(width);
    let start = Instant::now();
    let fleet = service
        .submit(batch())
        .expect("sweep batch is a valid DAG")
        .join();
    let fleet_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(fleet, serial, "fleet sweep diverged from the serial oracle");

    println!("Fault-aware routing vs seeded crash plans (crashes in rounds 0-2)");
    println!("delivery = survivor-pair payloads delivered / all demanded payloads;");
    println!("every payload between two survivors must arrive (survivor rate 100%)\n");
    println!(
        "{:>4} {:>4} {:>7} {:>9} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "n", "f", "f/n", "sched", "delivery", "survivor", "src-dead", "dst-dead", "rounds"
    );
    let mut last_n = 0usize;
    // Aggregate the per-seed jobs back into one row per (n, f, scheduler).
    for row_start in (0..cells.len()).step_by(SEEDS.len()) {
        let cell = cells[row_start];
        if last_n != 0 && cell.n != last_n {
            println!();
        }
        last_n = cell.n;
        let mut agg = [0u64; 5];
        for (cell, outcome) in cells[row_start..row_start + SEEDS.len()]
            .iter()
            .zip(&serial[row_start..row_start + SEEDS.len()])
        {
            let JobStatus::Done(bytes) = &outcome.status else {
                panic!(
                    "{}: sweep job did not complete: {:?}",
                    cell.case(),
                    outcome.status
                );
            };
            let vals = decode(bytes);
            for i in 0..4 {
                agg[i] += vals[i];
            }
            agg[4] = agg[4].max(vals[4]);
        }
        let [demanded, delivered, src_dead, dst_dead, rounds] = agg;
        // Every demand is accounted for: delivered to a survivor or
        // reported undeliverable with a dead endpoint.
        assert_eq!(delivered + src_dead + dst_dead, demanded);
        println!(
            "{:>4} {:>4} {:>6.1}% {:>9} {:>9.1}% {:>9} {:>8} {:>8} {:>8}",
            cell.n,
            cell.f,
            100.0 * cell.f as f64 / cell.n as f64,
            if cell.balanced { "balanced" } else { "direct" },
            100.0 * delivered as f64 / demanded as f64,
            "100.0%",
            src_dead,
            dst_dead,
            rounds
        );
    }
    println!(
        "\n{} jobs: serial oracle {serial_ms:.1} ms | width-{width} fleet {fleet_ms:.1} ms \
         (byte-identical outcomes) on a {}-core host",
        cells.len(),
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
}
