//! Minimum spanning trees — the congested clique's flagship problem
//! (§2 and §8 of the paper). Runs distributed Borůvka across sizes and
//! verifies the forests against Kruskal; the phase count stays ≤ ⌈log₂ n⌉
//! regardless of n.
//!
//! Run with: `cargo run --release --example mst`

use congested_clique::prelude::*;
use congested_clique::{graph, mst};

fn main() {
    println!("== MST on the congested clique (distributed Borůvka) ==\n");
    println!(
        "{:>6} {:>8} {:>8} {:>10} {:>12}",
        "n", "phases", "rounds", "|forest|", "weight ok"
    );
    for n in [16usize, 32, 64, 128, 256] {
        let g = graph::gen::gnp_weighted(n, 0.2, 1000, n as u64);
        let mut s = Session::new(Engine::new(n).with_bandwidth_multiplier(12));
        let forest = mst::boruvka_mst(&mut s, &g).expect("simulation ok");
        assert!(mst::is_spanning_forest(&g, &forest));
        let total: u64 = forest.iter().map(|e| e.2).sum();
        let ok = total == mst::reference_mst_weight(&g);
        println!(
            "{:>6} {:>8} {:>8} {:>10} {:>12}",
            n,
            s.phases(),
            s.stats().rounds,
            forest.len(),
            ok
        );
        assert!(ok);
    }
    println!("\nphases ≤ ⌈log₂ n⌉ + 1 (Borůvka halving); the paper's §8 highlights");
    println!("the gap to the O(log log n) deterministic and O(1)-expected");
    println!("randomised algorithms [25, 32, 45] — see DESIGN.md for scope.");
}
