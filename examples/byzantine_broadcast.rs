//! Sweeps Bracha reliable broadcast against seeded Byzantine sender plans:
//! agreement rate among honest nodes and round/message overhead vs the
//! traitor budget `f`, at n ∈ {16, 32, 64}. Regenerates the numbers in
//! EXPERIMENTS.md §"Byzantine broadcast"; the adversary ladder itself is
//! documented in docs/THREAT-MODEL.md.

use congested_clique::prelude::*;
use congested_clique::resilient::{bracha_broadcast, bracha_overhead};

fn main() {
    const WIDTH: usize = 8;
    const VALUE: u64 = 0xB7;
    const SEEDS: [u64; 3] = [1, 2, 3];

    println!("Bracha broadcast vs Byzantine senders (honest source, width = {WIDTH} bits)");
    println!("plans: garble 1.0, replay 0.4, silence 0.2, traitors random sparing the source\n");
    println!(
        "{:>4} {:>4} {:>18} {:>10} {:>10} {:>12} {:>8}",
        "n", "f", "agreement", "rounds", "overhead", "messages", "forged"
    );
    for n in [16usize, 32, 64] {
        let source = NodeId(0);
        for f in [0usize, 1, n / 3 - 1] {
            let mut agree = 0usize;
            let mut honest_total = 0usize;
            let mut forged = 0u64;
            let mut rounds = 0usize;
            let mut messages = 0u64;
            for seed in SEEDS {
                let plan = ByzantinePlan::new(seed * 1000 + f as u64)
                    .with_random_traitors(n, f, &[source])
                    .garble(1.0)
                    .replay(0.4)
                    .silence(0.2);
                let mut session = Session::new(
                    Engine::new(n)
                        .with_bandwidth(WIDTH + 2)
                        .with_byzantine_plan(plan.clone()),
                );
                let out = bracha_broadcast(&mut session, source, VALUE, WIDTH, f)
                    .expect("fault-free links: no node can crash");
                for v in 0..n {
                    if plan.is_traitor(NodeId::from(v)) {
                        continue;
                    }
                    honest_total += 1;
                    if out.outputs[v] == Some(Some(VALUE)) {
                        agree += 1;
                    }
                }
                forged += out.stats.forged_messages + out.stats.silenced_messages;
                rounds = out.stats.rounds;
                messages = out.stats.messages;
            }
            // Baseline: a bare 1-round broadcast of the same value.
            let analytic = bracha_overhead(n, f, WIDTH);
            assert_eq!(analytic.rounds, rounds, "analytic model drifted");
            println!(
                "{:>4} {:>4} {:>13}/{:<4} {:>10} {:>9}x {:>12} {:>8}",
                n,
                f,
                agree,
                honest_total,
                rounds,
                rounds, // baseline broadcast = 1 round
                messages,
                forged / SEEDS.len() as u64,
            );
        }
    }
    println!(
        "\nagreement counts honest nodes delivering the source's exact value,\n\
         summed over seeds {SEEDS:?}; overhead is rounds vs a 1-round bare\n\
         broadcast; forged averages lies per run across the seeds."
    );
}
