//! Sweeps Bracha reliable broadcast against seeded Byzantine sender plans:
//! agreement rate among honest nodes and round/message overhead vs the
//! traitor budget `f`, at n ∈ {16, 32, 64}. Regenerates the numbers in
//! EXPERIMENTS.md §"Byzantine broadcast"; the adversary ladder itself is
//! documented in docs/THREAT-MODEL.md.
//!
//! Since PR 8 the sweep is a `cc-service` fleet, the same shape as
//! `routing_faults`: each `(n, f, seed)` cell is one job (each clique size
//! is a tenant sharing the pool), the grid is submitted as a single batch,
//! and the fleet outcomes are asserted byte-identical to the serial oracle
//! (`Batch::run_serial`) before the table is printed from them. The footer
//! reports both wall times — the serial-vs-fleet row in EXPERIMENTS.md
//! §"Session service" comes from here.

use std::sync::Arc;
use std::time::Instant;

use congested_clique::prelude::*;
use congested_clique::resilient::{bracha_broadcast, bracha_overhead};
use congested_clique::service::{Batch, EngineSpec, JobSpec, JobStatus, Service, TenantId};

const WIDTH: usize = 8;
const VALUE: u64 = 0xB7;
const SEEDS: [u64; 3] = [1, 2, 3];

/// One sweep cell: everything needed to rebuild the job anywhere.
#[derive(Clone, Copy)]
struct Cell {
    n: usize,
    f: usize,
    seed: u64,
}

impl Cell {
    fn plan(&self) -> ByzantinePlan {
        ByzantinePlan::new(self.seed * 1000 + self.f as u64)
            .with_random_traitors(self.n, self.f, &[NodeId(0)])
            .garble(1.0)
            .replay(0.4)
            .silence(0.2)
    }

    /// The cell as a service job. Output bytes: five little-endian u64s —
    /// agreeing honest nodes, honest nodes, forged+silenced lies, rounds,
    /// messages.
    fn job(&self) -> JobSpec {
        let cell = *self;
        JobSpec::new(
            TenantId(self.n as u32),
            format!("bracha[n={}, f={}, seed={}]", self.n, self.f, self.seed),
            EngineSpec::new(self.n)
                .bandwidth(WIDTH + 2)
                .byzantine(self.plan()),
            Arc::new(move |session, _deps| {
                let plan = cell.plan();
                let out = bracha_broadcast(session, NodeId(0), VALUE, WIDTH, cell.f)
                    .map_err(|e| format!("bracha failed: {e}"))?;
                let (mut agree, mut honest) = (0u64, 0u64);
                for v in 0..cell.n {
                    if plan.is_traitor(NodeId::from(v)) {
                        continue;
                    }
                    honest += 1;
                    if out.outputs[v] == Some(Some(VALUE)) {
                        agree += 1;
                    }
                }
                let forged = out.stats.forged_messages + out.stats.silenced_messages;
                Ok([
                    agree,
                    honest,
                    forged,
                    out.stats.rounds as u64,
                    out.stats.messages,
                ]
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect())
            }),
        )
    }
}

fn cells() -> Vec<Cell> {
    let mut cells = Vec::new();
    for n in [16usize, 32, 64] {
        for f in [0usize, 1, n / 3 - 1] {
            for seed in SEEDS {
                cells.push(Cell { n, f, seed });
            }
        }
    }
    cells
}

fn decode(bytes: &[u8]) -> [u64; 5] {
    let mut vals = [0u64; 5];
    for (i, chunk) in bytes.chunks_exact(8).take(5).enumerate() {
        vals[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
    }
    vals
}

fn main() {
    let cells = cells();
    let batch = || {
        let mut b = Batch::new();
        for cell in &cells {
            b.push(cell.job());
        }
        b
    };

    // Serial oracle first, then the fleet — and the fleet must agree byte
    // for byte before any number is printed.
    let start = Instant::now();
    let serial = batch().run_serial().expect("sweep batch is a valid DAG");
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;

    let width = 4;
    let service = Service::new(width);
    let start = Instant::now();
    let fleet = service
        .submit(batch())
        .expect("sweep batch is a valid DAG")
        .join();
    let fleet_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(fleet, serial, "fleet sweep diverged from the serial oracle");

    println!("Bracha broadcast vs Byzantine senders (honest source, width = {WIDTH} bits)");
    println!("plans: garble 1.0, replay 0.4, silence 0.2, traitors random sparing the source\n");
    println!(
        "{:>4} {:>4} {:>18} {:>10} {:>10} {:>12} {:>8}",
        "n", "f", "agreement", "rounds", "overhead", "messages", "forged"
    );
    // Aggregate the per-seed jobs back into one row per (n, f).
    for row_start in (0..cells.len()).step_by(SEEDS.len()) {
        let cell = cells[row_start];
        let mut agg = [0u64; 5];
        for outcome in &serial[row_start..row_start + SEEDS.len()] {
            let JobStatus::Done(bytes) = &outcome.status else {
                panic!(
                    "{}: sweep job did not complete: {:?}",
                    outcome.label, outcome.status
                );
            };
            let vals = decode(bytes);
            agg[0] += vals[0];
            agg[1] += vals[1];
            agg[2] += vals[2];
            agg[3] = vals[3];
            agg[4] = vals[4];
        }
        let [agree, honest, forged, rounds, messages] = agg;
        // Baseline: a bare 1-round broadcast of the same value.
        let analytic = bracha_overhead(cell.n, cell.f, WIDTH);
        assert_eq!(analytic.rounds as u64, rounds, "analytic model drifted");
        println!(
            "{:>4} {:>4} {:>13}/{:<4} {:>10} {:>9}x {:>12} {:>8}",
            cell.n,
            cell.f,
            agree,
            honest,
            rounds,
            rounds, // baseline broadcast = 1 round
            messages,
            forged / SEEDS.len() as u64,
        );
    }
    println!(
        "\nagreement counts honest nodes delivering the source's exact value,\n\
         summed over seeds {SEEDS:?}; overhead is rounds vs a 1-round bare\n\
         broadcast; forged averages lies per run across the seeds."
    );
    println!(
        "{} jobs: serial oracle {serial_ms:.1} ms | width-{width} fleet {fleet_ms:.1} ms \
         (byte-identical outcomes) on a {}-core host",
        cells.len(),
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
}
