//! Regenerate a small-scale version of Figure 1: measure round counts of
//! the implemented algorithms across n, fit exponents, and print them next
//! to the paper's bounds. (The full sweep lives in `cargo bench --bench
//! fig1_exponents`; this example is the quick look.)
//!
//! Since PR 10 the sweep runs as a `cc-service` fleet, the same shape as
//! `byzantine_broadcast`: each `(problem, n)` measurement cell is one job
//! (each clique size is a tenant sharing the pool), the grid is submitted
//! as a single batch, and the fleet outcomes are asserted byte-identical
//! to the serial oracle (`Batch::run_serial`) before any exponent is
//! fitted. The footer reports both wall times — the serial-vs-fleet row in
//! EXPERIMENTS.md §"Session service" comes from here. The table also
//! carries the sparse-multiplication rows next to their dense-3D baseline
//! (EXPERIMENTS.md §"Exponent atlas").
//!
//! Run with: `cargo run --release --example exponent_atlas`

use std::sync::Arc;
use std::time::Instant;

use congested_clique::prelude::*;
use congested_clique::service::{Batch, EngineSpec, JobSpec, JobStatus, Service, TenantId};
use congested_clique::{graph, matmul, param, paths, reductions, subgraph, theory};

/// The atlas problems, in table order.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Problem {
    /// Dense `(min,+)` MM, 3D schedule.
    MmDense3D,
    /// The same sparse instance under the dense 3D schedule (baseline).
    MmDenseOnSparse,
    /// The same sparse instance under the sparse (Le Gall) path.
    MmSparse,
    /// Combinatorial triangle detection.
    Triangle,
    /// Theorem 9's 2-dominating set.
    DomSet,
    /// Theorem 11's 4-vertex cover kernelisation.
    VertexCover,
    /// Weighted APSP by distance-product squaring.
    Apsp,
    /// Naive MaxIS gather.
    MaxIs,
}

impl Problem {
    const ALL: [Problem; 8] = [
        Problem::MmDense3D,
        Problem::MmDenseOnSparse,
        Problem::MmSparse,
        Problem::Triangle,
        Problem::DomSet,
        Problem::VertexCover,
        Problem::Apsp,
        Problem::MaxIs,
    ];

    fn title(self) -> &'static str {
        match self {
            Problem::MmDense3D => "(min,+) MM (3D, dense)",
            Problem::MmDenseOnSparse => "(min,+) MM 3D @ sparse inst",
            Problem::MmSparse => "(min,+) MM sparse (Le Gall)",
            Problem::Triangle => "triangle (Dolev et al.)",
            Problem::DomSet => "2-dominating set (Thm 9)",
            Problem::VertexCover => "4-vertex cover (Thm 11)",
            Problem::Apsp => "APSP weighted (squaring)",
            Problem::MaxIs => "MaxIS (gather)",
        }
    }

    fn paper_bound(self) -> &'static str {
        match self {
            Problem::MmDense3D => "1/3",
            Problem::MmDenseOnSparse => "1/3",
            Problem::MmSparse => "→0 (m≤n^1.5)",
            Problem::Triangle => "1/3*",
            Problem::DomSet => "1-1/k=1/2",
            Problem::VertexCover => "0",
            Problem::Apsp => "1/3*",
            Problem::MaxIs => "1",
        }
    }

    fn ns(self) -> &'static [usize] {
        match self {
            Problem::MmDense3D | Problem::MmDenseOnSparse | Problem::MmSparse => &[27, 64, 125],
            Problem::DomSet => &[32, 64, 128, 256],
            Problem::VertexCover => &[64, 128, 256, 512],
            Problem::MaxIs => &[12, 18, 24, 36],
            _ => &[27, 64, 125],
        }
    }

    /// The seed-addressed sparse tropical instance shared by the two
    /// sparse-vs-dense rows: a G(n, 0.08) weighted graph's matrix, whose
    /// off-edges are `INF` (the tropical zero), so `nnz ≈ 0.08·n² ≪ n^{3/2}`.
    fn sparse_rows(n: usize) -> Vec<Vec<u64>> {
        let wg = graph::gen::gnp_weighted(n, 0.08, 30, n as u64);
        (0..n).map(|v| wg.row(v).to_vec()).collect()
    }

    /// Run the measurement inside the job's session; returns rounds.
    fn run(self, session: &mut Session, n: usize) -> Result<u64, String> {
        let rounds = match self {
            Problem::MmDense3D => {
                let sr = matmul::TropicalSemiring::for_max_value(1000);
                let a = matmul::Matrix::filled(n, 3u64);
                matmul::mm_three_d(session, &sr, &a.to_rows(), &a.to_rows())
                    .map_err(|e| e.to_string())?;
                session.stats().rounds
            }
            Problem::MmDenseOnSparse | Problem::MmSparse => {
                let rows = Self::sparse_rows(n);
                let sr = matmul::TropicalSemiring::for_max_value(30 * n as u64);
                if self == Problem::MmSparse {
                    matmul::mm_sparse(session, &sr, &rows, &rows).map_err(|e| e.to_string())?;
                } else {
                    matmul::mm_three_d(session, &sr, &rows, &rows).map_err(|e| e.to_string())?;
                }
                session.stats().rounds
            }
            Problem::Triangle => {
                let g = graph::gen::gnp(n, 0.15, n as u64);
                subgraph::detect_triangle(session, &g).map_err(|e| e.to_string())?;
                session.stats().rounds
            }
            Problem::DomSet => {
                let (g, _) = graph::gen::planted_dominating_set(n, 2, 0.05, n as u64);
                param::dominating_set(session, &g, 2).map_err(|e| e.to_string())?;
                session.stats().rounds
            }
            Problem::VertexCover => {
                // Kernelisation is priced analytically; the session idles.
                let g = graph::gen::star(n);
                let (_, stats) = param::vertex_cover_rounds(&g, 4).map_err(|e| e.to_string())?;
                stats.rounds
            }
            Problem::Apsp => {
                let wg = graph::gen::gnp_weighted(n, 0.2, 30, n as u64);
                paths::apsp_exact(session, &wg).map_err(|e| e.to_string())?;
                session.stats().rounds
            }
            Problem::MaxIs => {
                // Exponential *local* time (free in the model, not on this
                // machine) — instance sizes stay small and sparse.
                let g = graph::gen::gnp(n, 0.18, n as u64);
                reductions::max_independent_set_naive(session, &g).map_err(|e| e.to_string())?;
                session.stats().rounds
            }
        };
        Ok(rounds as u64)
    }

    /// The cell as a service job. Output bytes: one little-endian u64 —
    /// the measured round count.
    fn job(self, n: usize) -> JobSpec {
        JobSpec::new(
            TenantId(n as u32),
            format!("atlas[{}, n={}]", self.title(), n),
            EngineSpec::new(n),
            Arc::new(move |session, _deps| self.run(session, n).map(|r| r.to_le_bytes().to_vec())),
        )
    }
}

fn main() {
    // The grid, flattened in table order: one job per (problem, n) cell.
    let cells: Vec<(Problem, usize)> = Problem::ALL
        .iter()
        .flat_map(|&p| p.ns().iter().map(move |&n| (p, n)))
        .collect();
    let batch = || {
        let mut b = Batch::new();
        for &(p, n) in &cells {
            b.push(p.job(n));
        }
        b
    };

    // Serial oracle first, then the fleet — and the fleet must agree byte
    // for byte before any exponent is fitted.
    let start = Instant::now();
    let serial = batch().run_serial().expect("atlas batch is a valid DAG");
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;

    let width = 4;
    let service = Service::new(width);
    let start = Instant::now();
    let fleet = service
        .submit(batch())
        .expect("atlas batch is a valid DAG")
        .join();
    let fleet_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(fleet, serial, "fleet sweep diverged from the serial oracle");

    println!("== measured exponents vs Figure 1 bounds (small-scale) ==\n");
    println!(
        "{:28} {:>8} {:>13}   rounds by n",
        "problem", "δ̂ (fit)", "paper δ ≤"
    );

    let mut idx = 0;
    for p in Problem::ALL {
        let mut samples = Vec::new();
        for &n in p.ns() {
            let outcome = &serial[idx];
            idx += 1;
            let JobStatus::Done(bytes) = &outcome.status else {
                panic!(
                    "{}: cell did not complete: {:?}",
                    outcome.label, outcome.status
                );
            };
            let rounds =
                u64::from_le_bytes(bytes[..8].try_into().expect("8-byte cell output")) as usize;
            samples.push((n, rounds));
        }
        let fit = theory::fit_exponent(&samples).expect("atlas sweeps span distinct n");
        let row = samples
            .iter()
            .map(|(n, r)| format!("{n}:{r}"))
            .collect::<Vec<_>>()
            .join("  ");
        println!(
            "{:28} {:>8.3} {:>13}   {row}",
            p.title(),
            fit.delta,
            p.paper_bound()
        );
    }

    println!("\n(*) plus log factors; the paper's 1−2/ω ring-MM bound needs fast");
    println!("    rectangular multiplication, substituted by the 3D semiring");
    println!("    algorithm — see DESIGN.md. The sparse row is the same");
    println!("    instance as its 3D baseline row: the gap is the Le Gall");
    println!("    tier's constant-factor round win in the m ≤ n^1.5 regime.\n");

    println!(
        "{} jobs: serial oracle {serial_ms:.1} ms | width-{width} fleet {fleet_ms:.1} ms \
         (byte-identical outcomes) on a {}-core host",
        cells.len(),
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );

    println!(
        "\nFigure 1 arrow-closure validation: {:?}",
        reductions::Atlas::validate(4)
    );
    println!("\nGraphviz of the atlas (paste into `dot -Tsvg`):\n");
    println!("{}", reductions::Atlas::to_dot());
}
