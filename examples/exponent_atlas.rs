//! Regenerate a small-scale version of Figure 1: measure round counts of
//! the implemented algorithms across n, fit exponents, and print them next
//! to the paper's bounds. (The full sweep lives in `cargo bench --bench
//! fig1_exponents`; this example is the quick look.)
//!
//! Run with: `cargo run --release --example exponent_atlas`

use congested_clique::prelude::*;
use congested_clique::{graph, matmul, param, paths, reductions, subgraph, theory};

fn measure(ns: &[usize], mut run: impl FnMut(usize) -> usize) -> (f64, String) {
    let samples: Vec<(usize, usize)> = ns.iter().map(|&n| (n, run(n))).collect();
    let fit = theory::fit_exponent(&samples);
    let row = samples
        .iter()
        .map(|(n, r)| format!("{n}:{r}"))
        .collect::<Vec<_>>()
        .join("  ");
    (fit.delta, row)
}

fn main() {
    println!("== measured exponents vs Figure 1 bounds (small-scale) ==\n");
    println!(
        "{:28} {:>8} {:>10}   rounds by n",
        "problem", "δ̂ (fit)", "paper δ ≤"
    );

    let ns = [27usize, 64, 125];

    let (d, row) = measure(&ns, |n| {
        let sr = matmul::TropicalSemiring::for_max_value(1000);
        let a = matmul::Matrix::filled(n, 3u64);
        let mut s = Session::new(Engine::new(n));
        matmul::mm_three_d(&mut s, &sr, &a.to_rows(), &a.to_rows()).unwrap();
        s.stats().rounds
    });
    println!("{:28} {:>8.3} {:>10}   {row}", "(min,+) MM (3D)", d, "1/3");

    let (d, row) = measure(&ns, |n| {
        let g = graph::gen::gnp(n, 0.15, n as u64);
        let mut s = Session::new(Engine::new(n));
        subgraph::detect_triangle(&mut s, &g).unwrap();
        s.stats().rounds
    });
    println!(
        "{:28} {:>8.3} {:>10}   {row}",
        "triangle (Dolev et al.)", d, "1/3*"
    );

    let (d, row) = measure(&[32, 64, 128, 256], |n| {
        let (g, _) = graph::gen::planted_dominating_set(n, 2, 0.05, n as u64);
        let mut s = Session::new(Engine::new(n));
        param::dominating_set(&mut s, &g, 2).unwrap();
        s.stats().rounds
    });
    println!(
        "{:28} {:>8.3} {:>10}   {row}",
        "2-dominating set (Thm 9)", d, "1-1/k=1/2"
    );

    let (d, row) = measure(&[64, 128, 256, 512], |n| {
        let g = graph::gen::star(n);
        let (_, stats) = param::vertex_cover_rounds(&g, 4).unwrap();
        stats.rounds
    });
    println!(
        "{:28} {:>8.3} {:>10}   {row}",
        "4-vertex cover (Thm 11)", d, "0"
    );

    let (d, row) = measure(&ns, |n| {
        let wg = graph::gen::gnp_weighted(n, 0.2, 30, n as u64);
        let mut s = Session::new(Engine::new(n));
        paths::apsp_exact(&mut s, &wg).unwrap();
        s.stats().rounds
    });
    println!(
        "{:28} {:>8.3} {:>10}   {row}",
        "APSP weighted (squaring)", d, "1/3*"
    );

    // MaxIS pays exponential *local* time (free in the model, not on this
    // machine) — keep the instance sizes small and sparse.
    let (d, row) = measure(&[12, 18, 24, 36], |n| {
        let g = graph::gen::gnp(n, 0.18, n as u64);
        let mut s = Session::new(Engine::new(n));
        reductions::max_independent_set_naive(&mut s, &g).unwrap();
        s.stats().rounds
    });
    println!("{:28} {:>8.3} {:>10}   {row}", "MaxIS (gather)", d, "1");

    println!("\n(*) plus log factors; the paper's 1−2/ω ring-MM bound needs fast");
    println!("    rectangular multiplication, substituted by the 3D semiring");
    println!("    algorithm — see DESIGN.md.\n");

    println!(
        "Figure 1 arrow-closure validation: {:?}",
        reductions::Atlas::validate(4)
    );
    println!("\nGraphviz of the atlas (paste into `dot -Tsvg`):\n");
    println!("{}", reductions::Atlas::to_dot());
}
