//! Quickstart: a guided tour of the congested clique workbench.
//!
//! Builds a random graph, runs deterministic algorithms (triangle
//! detection two ways, Theorem 11's k-vertex-cover), and verifies an
//! NCLIQUE(1) certificate — printing the round/bit accounting the
//! simulator measures for each.
//!
//! Run with: `cargo run --release --example quickstart`

use congested_clique::prelude::*;
use congested_clique::{graph, param, reductions, subgraph, theory};

fn main() {
    let n = 32;
    let g = graph::gen::gnp(n, 0.15, 42);
    println!("== congested clique workbench quickstart ==");
    println!("input: G(n={n}, p=0.15), {} edges\n", g.edge_count());

    // --- Triangle detection, two ways (Figure 1's `Triangle ≤ Boolean MM`).
    let mut s1 = Session::new(Engine::new(n));
    let dolev = subgraph::detect_triangle(&mut s1, &g).expect("simulation ok");
    println!(
        "triangle via Dolev et al. partitioning : {:?}  ({} rounds, {} bits)",
        dolev,
        s1.stats().rounds,
        s1.stats().bits
    );
    let mut s2 = Session::new(Engine::new(n));
    let mm = subgraph::triangle_via_mm(&mut s2, &g).expect("simulation ok");
    println!(
        "triangle via Boolean matrix squaring  : {:?}  ({} rounds, {} bits)",
        mm,
        s2.stats().rounds,
        s2.stats().bits
    );
    assert_eq!(
        dolev.is_some(),
        mm.is_some(),
        "the two detectors must agree"
    );

    // --- Theorem 11: k-vertex cover in O(k) rounds, independent of n.
    for k in [2usize, 4, 6] {
        let (cover, stats) = param::vertex_cover_rounds(&g, k).expect("simulation ok");
        println!(
            "vertex cover ≤ {k}                      : {}  ({} rounds — Θ(k), not Θ(n))",
            match &cover {
                Some(c) => format!("found size {}", c.len()),
                None => "none".into(),
            },
            stats.rounds
        );
    }

    // --- NCLIQUE(1): verify a 3-colouring certificate (completeness), and
    //     watch an adversarial certificate bounce (soundness).
    let (colorable, colors) = graph::gen::k_colorable(n, 3, 0.2, 7);
    let problem = theory::KColoring { k: 3 };
    let cw = BitString::width_for(3);
    let honest = theory::Labelling(
        colors
            .iter()
            .map(|&c| {
                let mut b = BitString::new();
                b.push_uint(c as u64, cw);
                b
            })
            .collect(),
    );
    let verdict = theory::verify(&problem, &colorable, &honest).expect("simulation ok");
    println!(
        "\nNCLIQUE(1) 3-colouring certificate     : accepted={} ({} rounds)",
        verdict.accepted, verdict.stats.rounds
    );
    let mut forged = honest.clone();
    // Give one endpoint of an edge its neighbour's colour: a real conflict.
    let (u, v) = colorable.edges().next().expect("graph has edges");
    forged.0[v] = forged.0[u].clone();
    let forged_verdict = theory::verify(&problem, &colorable, &forged).expect("simulation ok");
    println!(
        "same certificate, tampered             : accepted={}",
        forged_verdict.accepted
    );

    // --- The Figure 1 atlas renders to DOT for comparison with the paper.
    let dot = reductions::Atlas::to_dot();
    println!(
        "\nFigure 1 atlas: {} problems, {} arrows (DOT export: {} bytes; see EXPERIMENTS.md)",
        reductions::ProblemId::all().len(),
        reductions::Atlas::arrows().len(),
        dot.len()
    );
    reductions::Atlas::validate(4).expect("atlas bounds consistent");
    println!("atlas bound-closure validation: ok");
}
