//! Theorem 11 in action: vertex cover of size k in O(k) rounds.
//!
//! The round count of the distributed Buss kernelisation depends on the
//! parameter k only — the fixed-parameter phenomenon the paper contrasts
//! with k-IS (`n^{1−2/k}` rounds) and k-DS (`n^{1−1/k}` rounds). This
//! example sweeps both axes and prints the measured rounds; compare the
//! flat n-rows with the k-column.
//!
//! Run with: `cargo run --release --example kernelization`

use congested_clique::{graph, param};

fn main() {
    println!("== Theorem 11: k-vertex cover in O(k) rounds ==\n");

    // Sweep n at fixed k: rounds must not grow.
    let k = 5;
    println!("fixed k = {k}, growing n (planted size-{k} covers):");
    println!("{:>8} {:>8} {:>10}", "n", "rounds", "cover");
    for n in [64usize, 128, 256, 512, 1024] {
        let (g, _) = graph::gen::planted_vertex_cover(n, k, 4, n as u64);
        let (cover, stats) = param::vertex_cover_rounds(&g, k).expect("simulation ok");
        println!(
            "{:>8} {:>8} {:>10}",
            n,
            stats.rounds,
            cover
                .map(|c| c.len().to_string())
                .unwrap_or_else(|| "-".into())
        );
    }

    // Sweep k at fixed n: rounds grow linearly in k.
    let n = 256;
    println!("\nfixed n = {n}, growing k (planted size-k covers):");
    println!("{:>8} {:>8} {:>10}", "k", "rounds", "cover");
    for k in [1usize, 2, 4, 8, 12] {
        let (g, _) = graph::gen::planted_vertex_cover(n, k, 4, k as u64 + 9);
        let (cover, stats) = param::vertex_cover_rounds(&g, k).expect("simulation ok");
        println!(
            "{:>8} {:>8} {:>10}",
            k,
            stats.rounds,
            cover
                .map(|c| c.len().to_string())
                .unwrap_or_else(|| "-".into())
        );
    }

    println!("\nrounds ≤ k + 2 in every row, independent of n ✓ (Theorem 11)");
}
