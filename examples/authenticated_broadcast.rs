//! Sweeps Dolev–Strong authenticated broadcast against seeded Byzantine
//! sender plans *past* Bracha's `f < n/3` ceiling: agreement rate among
//! honest nodes and round/message overhead vs the traitor budget `f`, up
//! to the honest-majority maximum `⌈n/2⌉ − 1`, at n ∈ {16, 32, 64}.
//! Regenerates the numbers in EXPERIMENTS.md §"Authenticated broadcast";
//! the full adversary ladder is documented in docs/THREAT-MODEL.md.
//!
//! Like `byzantine_broadcast`, the sweep is a `cc-service` fleet: each
//! `(n, f, seed)` cell is one job carrying an `EngineSpec::auth` seeded
//! keyring (each clique size is a tenant sharing the pool), the grid is
//! submitted as a single batch, and the fleet outcomes are asserted
//! byte-identical to the serial oracle (`Batch::run_serial`) before the
//! table is printed from them. The footer reports both wall times — the
//! serial-vs-fleet row in EXPERIMENTS.md §"Session service" includes it.

use std::sync::Arc;
use std::time::Instant;

use congested_clique::prelude::*;
use congested_clique::resilient::{dolev_strong_broadcast, dolev_strong_overhead};
use congested_clique::service::{Batch, EngineSpec, JobSpec, JobStatus, Service, TenantId};
use congested_clique::sim::TAG_BITS;

const WIDTH: usize = 8;
const VALUE: u64 = 0xD5;
const SEEDS: [u64; 3] = [1, 2, 3];

/// One sweep cell: everything needed to rebuild the job anywhere.
#[derive(Clone, Copy)]
struct Cell {
    n: usize,
    f: usize,
    seed: u64,
}

impl Cell {
    fn plan(&self) -> ByzantinePlan {
        ByzantinePlan::new(self.seed * 1000 + self.f as u64)
            .with_random_traitors(self.n, self.f, &[NodeId(0)])
            .garble(1.0)
            .silence(0.2)
            .forge(0.2)
    }

    /// Engine bandwidth for a full `f + 1`-entry signature chain.
    fn bandwidth(&self) -> usize {
        WIDTH + (self.f + 1) * (BitString::width_for(self.n) + TAG_BITS)
    }

    /// The cell as a service job. Output bytes: six little-endian u64s —
    /// agreeing honest nodes, honest nodes, rejected tags, rounds,
    /// messages, auth bits.
    fn job(&self) -> JobSpec {
        let cell = *self;
        JobSpec::new(
            TenantId(self.n as u32),
            format!("auth[n={}, f={}, seed={}]", self.n, self.f, self.seed),
            EngineSpec::new(self.n)
                .bandwidth(self.bandwidth())
                .byzantine(self.plan())
                .auth(self.seed),
            Arc::new(move |session, _deps| {
                let plan = cell.plan();
                let out = dolev_strong_broadcast(session, NodeId(0), VALUE, WIDTH, cell.f)
                    .map_err(|e| format!("dolev-strong failed: {e}"))?;
                let (mut agree, mut honest) = (0u64, 0u64);
                for v in 0..cell.n {
                    if plan.is_traitor(NodeId::from(v)) {
                        continue;
                    }
                    honest += 1;
                    if out.outputs[v] == Some(Some(VALUE)) {
                        agree += 1;
                    }
                }
                Ok([
                    agree,
                    honest,
                    out.stats.rejected_tags,
                    out.stats.rounds as u64,
                    out.stats.messages,
                    out.stats.auth_bits,
                ]
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect())
            }),
        )
    }
}

fn cells() -> Vec<Cell> {
    let mut cells = Vec::new();
    for n in [16usize, 32, 64] {
        // f = n/3 is Bracha's first impossible rung; ⌈n/2⌉ − 1 is the
        // honest-majority maximum the default wrapper tolerates.
        for f in [0usize, n / 3, n.div_ceil(2) - 1] {
            for seed in SEEDS {
                cells.push(Cell { n, f, seed });
            }
        }
    }
    cells
}

fn decode(bytes: &[u8]) -> [u64; 6] {
    let mut vals = [0u64; 6];
    for (i, chunk) in bytes.chunks_exact(8).take(6).enumerate() {
        vals[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
    }
    vals
}

fn main() {
    let cells = cells();
    let batch = || {
        let mut b = Batch::new();
        for cell in &cells {
            b.push(cell.job());
        }
        b
    };

    // Serial oracle first, then the fleet — and the fleet must agree byte
    // for byte before any number is printed.
    let start = Instant::now();
    let serial = batch().run_serial().expect("sweep batch is a valid DAG");
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;

    let width = 4;
    let service = Service::new(width);
    let start = Instant::now();
    let fleet = service
        .submit(batch())
        .expect("sweep batch is a valid DAG")
        .join();
    let fleet_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(fleet, serial, "fleet sweep diverged from the serial oracle");

    println!(
        "Dolev-Strong authenticated broadcast vs Byzantine senders \
         (honest source, width = {WIDTH} bits, {TAG_BITS}-bit tags)"
    );
    println!("plans: garble 1.0, silence 0.2, forge 0.2, traitors random sparing the source\n");
    println!(
        "{:>4} {:>4} {:>18} {:>10} {:>12} {:>12} {:>10}",
        "n", "f", "agreement", "rounds", "messages", "auth bits", "rejected"
    );
    // Aggregate the per-seed jobs back into one row per (n, f).
    for row_start in (0..cells.len()).step_by(SEEDS.len()) {
        let cell = cells[row_start];
        let mut agg = [0u64; 6];
        for outcome in &serial[row_start..row_start + SEEDS.len()] {
            let JobStatus::Done(bytes) = &outcome.status else {
                panic!(
                    "{}: sweep job did not complete: {:?}",
                    outcome.label, outcome.status
                );
            };
            let vals = decode(bytes);
            agg[0] += vals[0];
            agg[1] += vals[1];
            agg[2] += vals[2];
            agg[3] = vals[3];
            agg[4] = vals[4];
            agg[5] = vals[5];
        }
        let [agree, honest, rejected, rounds, messages, auth_bits] = agg;
        assert_eq!(
            agree, honest,
            "n={} f={}: an honest node broke agreement",
            cell.n, cell.f
        );
        let analytic = dolev_strong_overhead(cell.n, cell.f, WIDTH);
        assert_eq!(analytic.rounds as u64, rounds, "analytic model drifted");
        println!(
            "{:>4} {:>4} {:>13}/{:<4} {:>10} {:>12} {:>12} {:>10}",
            cell.n,
            cell.f,
            agree,
            honest,
            rounds,
            messages,
            auth_bits,
            rejected / SEEDS.len() as u64,
        );
    }
    println!(
        "\nagreement counts honest nodes delivering the source's exact value,\n\
         summed over seeds {SEEDS:?} (the middle f rung is n/3 — already\n\
         past Bracha's ceiling); auth bits are the envelope tags' cost on\n\
         top of payload bits; rejected averages detected forgeries and\n\
         garbled signed frames per run across the seeds."
    );
    println!(
        "{} jobs: serial oracle {serial_ms:.1} ms | width-{width} fleet {fleet_ms:.1} ms \
         (byte-identical outcomes) on a {}-core host",
        cells.len(),
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
}
