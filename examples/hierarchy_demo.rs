//! The complexity-theory side of the paper, live:
//!
//! * Lemma 1's counting inequality across the theorems' parameter ranges;
//! * the complete protocol census at n = 2 and the lexicographically-first
//!   hard function (Theorem 2's diagonal language run end-to-end);
//! * Theorem 3's normal form: certificate sizes measured against the
//!   `O(T·n·log n)` bound;
//! * Theorem 7's Σ₂ protocol deciding an arbitrary language.
//!
//! Run with: `cargo run --release --example hierarchy_demo`

use congested_clique::prelude::*;
use congested_clique::theory::NondetProblem;
use congested_clique::{graph, theory};
use graph::reference;

fn main() {
    println!("== counting arguments (Lemma 1, Theorems 2/4/8) ==");
    for n in [64usize, 256, 1024, 4096] {
        let log_n = BitString::width_for(n);
        let t_max = n / (4 * log_n);
        println!(
            "n={n:5}: Thm2 hard f_n exists for T up to n/(4 log n) = {t_max:4} : {}",
            (2..=t_max).all(|t| theory::thm2_condition(n, t))
        );
    }
    println!(
        "Thm4 inequality at (n, T) = (64, 4): {}   Thm8 at (n=256, T=6, k=1..6): {}",
        theory::thm4_condition(64, 4),
        (1..=6).all(|k| theory::thm8_condition(256, 6, k))
    );

    println!("\n== exhaustive protocol census at n = 2, b = 1 ==");
    for (l, t) in [(1usize, 0usize), (1, 1), (2, 0), (2, 1)] {
        let census = theory::census_two_nodes(l, t);
        println!(
            "L={l}, t={t}: {:5} / {:5} functions computable; first hard f: {:?}",
            census.computable_count(),
            census.total(),
            census.first_hard_function()
        );
    }

    println!("\n== Theorem 2 end-to-end at toy scale ==");
    let lang = theory::ToyHardLanguage { l: 2, t: 1 };
    let f = lang.hard_function().expect("census finds a hard function");
    let (verdict, stats) = lang.decide_distributed(2, 3);
    println!(
        "diagonal language for f* = {f:#06x}: decidable in T = {} rounds (b = 1 bit), \
         yet the census certifies no t = 1-round protocol computes f*",
        stats.rounds
    );
    let _ = verdict;

    println!("\n== Theorem 3: normal-form certificate sizes ==");
    for n in [6usize, 9, 12] {
        let (g, _) = graph::gen::k_colorable(n, 3, 0.5, n as u64);
        let nf = theory::NormalForm::new(theory::KColoring { k: 3 });
        let z = nf.prove(&g).expect("colourable");
        println!(
            "n={n:2}: transcript certificate {:5} bits  (bound O(T·n·log n) = {} bits)",
            z.max_label_bits(),
            nf.label_bound(n)
        );
        let verdict = theory::verify(&nf, &g, &z).expect("simulation ok");
        assert!(verdict.accepted);
    }

    println!("\n== Theorem 7: every language is in Σ₂ (unlimited labels) ==");
    let alg = theory::Sigma2Universal::new(reference::is_connected);
    for (g, name) in [
        (graph::gen::path(4), "P4 (connected)"),
        (graph::gen::cliques(4, 2), "2×K2 (disconnected)"),
    ] {
        let honest = theory::Sigma2Universal::honest_guess(&g);
        let all_pass = alg
            .accepts_all_challenges(&g, &honest)
            .expect("simulation ok");
        println!("{name:22}: honest guess survives every universal challenge = {all_pass}");
    }
    let g = graph::gen::path(4);
    let mut lying = theory::Sigma2Universal::honest_guess(&g);
    lying.0[1] = theory::Sigma2Universal::encode_graph(&g.complement());
    let caught = alg
        .find_rejecting_challenge(&g, &lying)
        .expect("simulation ok");
    println!("a node guessing the wrong graph is caught by challenge {caught:?}");
}
