//! Self-healing routing under continuous Poisson churn: nodes crash *and
//! rejoin* on a seeded timeline while wave-structured balanced routing
//! keeps delivering. Each wave re-plans against a round-windowed
//! `CrashSet` — recovered nodes are re-admitted as intermediates and
//! endpoints — and the session fault clock keeps the absolute churn
//! timeline aligned across waves. Regenerates the numbers in
//! EXPERIMENTS.md §"Routing under churn"; the guarantees are documented in
//! docs/THREAT-MODEL.md. Every row is replayable from its `churn[…]`
//! label.

use cc_testkit::ChurnCase;
use congested_clique::prelude::*;
use congested_clique::routing::route_balanced_faulted;
use congested_clique::sim::sync_overhead;

const SEEDS: [u64; 3] = [1, 2, 3];

fn main() {
    println!("Wave-structured balanced routing under seeded Poisson churn");
    println!("(80‰ crash / 400‰ rejoin per round over rounds 1-12, node 0 spared;");
    println!("wave 1 spans the churn horizon, wave 2 re-plans after it)\n");
    println!(
        "{:>20} {:>7} {:>8} {:>10} {:>10} {:>10} {:>10} {:>6}",
        "case", "churned", "readmit", "w1 deliv", "w1 undel", "w2 deliv", "w2 undel", "rounds"
    );
    for n in [12usize, 16] {
        for seed in SEEDS {
            let case = ChurnCase::new(n, seed);
            let plan = case.plan();
            let cadence = case.max_round + 1;
            let wave1 = case.crash_set_for(0..cadence);
            let wave2 = case.crash_set_for(cadence..usize::MAX);
            let demanded = case.demands().iter().map(Vec::len).sum::<usize>();

            let mut session = Session::new(Engine::new(n).with_fault_plan(plan.clone()));
            let out1 = route_balanced_faulted(&mut session, case.demands(), &wave1)
                .unwrap_or_else(|e| panic!("{case}: wave 1 failed: {e}"));
            session.set_fault_offset(cadence);
            let out2 = route_balanced_faulted(&mut session, case.demands(), &wave2)
                .unwrap_or_else(|e| panic!("{case}: wave 2 failed: {e}"));

            let delivered = |out: &congested_clique::routing::RoutedOutcome| {
                out.delivered.iter().flatten().map(Vec::len).sum::<usize>()
            };
            let (d1, d2) = (delivered(&out1), delivered(&out2));
            // Every demand is accounted: delivered to a survivor or
            // reported undeliverable against a dead endpoint.
            assert_eq!(
                d1 + out1.undeliverable.len(),
                demanded,
                "{case}: wave 1 leak"
            );
            assert_eq!(
                d2 + out2.undeliverable.len(),
                demanded,
                "{case}: wave 2 leak"
            );
            assert!(
                wave2.len() <= wave1.len(),
                "{case}: recovery never shrinks the dead set"
            );

            let stats = session.stats();
            println!(
                "{:>20} {:>7} {:>8} {:>6}/{:<3} {:>10} {:>6}/{:<3} {:>10} {:>6}",
                case.to_string(),
                wave1.len(),
                wave1.len() - wave2.len(),
                d1,
                demanded,
                out1.undeliverable.len(),
                d2,
                demanded,
                out2.undeliverable.len(),
                stats.rounds,
            );
            // The analytic ceiling: all-chatter sync at the routing width
            // bounds whatever the megastream actually re-delivered.
            let ceiling = sync_overhead(n, &plan, session.bandwidth());
            assert!(
                stats.sync_bits <= ceiling.sync_bits,
                "{case}: sync bill exceeds the all-chatter ceiling"
            );
        }
    }
    println!(
        "\nchurned = nodes dead at some point of wave 1; readmit = nodes back\n\
         for wave 2; deliv counts survivor-pair payloads (all of them arrive);\n\
         undel are structured dead-endpoint records; rounds spans both waves.\n\
         The engine's transcript-replay state sync is priced in the churn\n\
         conformance suite (tests/churn_suite.rs) against sync_overhead."
    );
}
