//! Prints the engine's step/delivery wall-time split for the APSP workload
//! used by the `engine_parallel` bench (handy when tuning the scheduler).

use cliquesim::{Engine, Session};

fn main() {
    let n = 64;
    let wg = cc_graph::gen::gnp_weighted(n, 0.2, 20, 20180705);
    for threads in [1usize, 4] {
        // Exact pool shape: show the pool's cost even on hosts with fewer
        // cores (the capped `with_threads` would fall back to sequential).
        let mut s = Session::new(Engine::new(n).with_threads_exact(threads));
        cc_paths::apsp_exact(&mut s, &wg).unwrap();
        let st = s.stats();
        println!(
            "threads={threads}: rounds={} wall={:.1}ms step={:.1}ms delivery={:.1}ms peak_live={}B undelivered={}",
            st.rounds,
            st.timing.total_ns() as f64 / 1e6,
            st.timing.step_ns as f64 / 1e6,
            st.timing.delivery_ns as f64 / 1e6,
            st.peak_live_payload_bytes,
            st.undelivered_messages,
        );
    }
}
