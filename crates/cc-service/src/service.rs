//! The multi-tenant session service: a fixed-width worker pool executing
//! submitted [`Batch`]es and streaming [`JobOutcome`]s back over bounded
//! channels.
//!
//! Lifecycle of one batch:
//!
//! 1. [`Service::submit`] validates the dependency edges (structured
//!    [`BatchError`] on a dangling edge or a cycle — a cyclic batch is
//!    rejected, never parked), registers the jobs with the scheduler, and
//!    returns a [`BatchHandle`].
//! 2. Workers pick jobs (see [`crate::scheduler`] for the policy), run
//!    each simulation with a warm per-worker arena, and stream one
//!    [`JobOutcome`] per job — including skipped and cancelled jobs — over
//!    the handle's channel.
//! 3. The channel is a `sync_channel` with a bounded window: when the
//!    consumer lags `window` outcomes behind, the producing worker blocks
//!    on the send, so an unread batch cannot pile unbounded results into
//!    memory. Other workers keep running.
//!
//! Failure containment mirrors the engine's own (PR 3): a panicking job
//! function is caught on the worker, fails only itself (and skips its
//! dependents); the worker and the pool stay usable.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cliquesim::RunStats;

use crate::batch::{execute_job, Batch, BatchError};
use crate::job::{JobOutcome, JobStatus};
use crate::scheduler::{Dispatch, SchedState};
use crate::worker::ArenaPool;

/// Shared core: the scheduler state, the wakeup signal, and each worker's
/// arena pool (its own mutex, held only while that worker runs a job —
/// so [`Service::arena_footprint`] can probe pools without stopping the
/// scheduler).
struct Inner {
    state: Mutex<SchedState>,
    work: Condvar,
    pools: Vec<Mutex<ArenaPool>>,
}

/// A fixed-width, multi-tenant batch execution service.
///
/// Dropping the service is a graceful shutdown: workers finish every job
/// of every in-flight batch, then exit. Handles stay readable after the
/// service is gone — outcomes already streamed sit in their channels.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    window: usize,
}

impl Service {
    /// Spawn a service with `width` workers (clamped to at least 1) and
    /// the default outcome window of `2 × width`.
    pub fn new(width: usize) -> Self {
        Self::with_window(width, 2 * width.max(1))
    }

    /// Spawn a service with an explicit outcome window per batch: the
    /// maximum number of unconsumed outcomes before producers block.
    pub fn with_window(width: usize, window: usize) -> Self {
        let width = width.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(SchedState::new(width)),
            work: Condvar::new(),
            pools: (0..width).map(|_| Mutex::new(ArenaPool::new())).collect(),
        });
        let workers = (0..width)
            .map(|idx| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("cc-service-{idx}"))
                    .spawn(move || worker_loop(&inner, idx))
                    .expect("spawn service worker")
            })
            .collect();
        Self {
            inner,
            workers,
            window: window.max(1),
        }
    }

    /// Number of workers.
    pub fn width(&self) -> usize {
        self.workers.len()
    }

    /// Validate and enqueue a batch. Jobs start as soon as workers free
    /// up; outcomes stream through the returned handle.
    pub fn submit(&self, batch: Batch) -> Result<BatchHandle, BatchError> {
        batch.topo_order()?;
        let total = batch.len();
        let (tx, rx) = sync_channel(self.window);
        let cancel = Arc::new(AtomicBool::new(false));
        {
            let mut st = self.inner.state.lock().expect("scheduler lock");
            st.register(batch.jobs().to_vec(), tx, Arc::clone(&cancel));
        }
        self.inner.work.notify_all();
        Ok(BatchHandle { rx, cancel, total })
    }

    /// Message slots parked in each worker's arena pool. In steady state
    /// this is a function of the distinct job shapes each worker has
    /// seen — never of how many jobs have run (the stress suite's leak
    /// check). Blocks briefly on workers that are mid-job.
    pub fn arena_footprint(&self) -> Vec<usize> {
        self.inner
            .pools
            .iter()
            .map(|p| p.lock().expect("arena pool lock").retained_slots())
            .collect()
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().expect("scheduler lock");
            st.shutdown = true;
        }
        self.inner.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Streaming side of one submitted batch.
///
/// Iterate to receive outcomes in completion order (bounded by the
/// service's window), or [`BatchHandle::join`] to collect all of them in
/// [`crate::JobId`] order. Dropping the handle without draining cancels
/// the rest of the batch: once the channel closes, workers flag the batch
/// and resolve its remaining jobs as [`JobStatus::Cancelled`].
pub struct BatchHandle {
    rx: Receiver<JobOutcome>,
    cancel: Arc<AtomicBool>,
    total: usize,
}

impl BatchHandle {
    /// Number of jobs in the batch — exactly this many outcomes will be
    /// streamed (counting skipped and cancelled ones).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Request cooperative cancellation: jobs not yet started resolve as
    /// [`JobStatus::Cancelled`]; in-flight simulations abort at their next
    /// round boundary (`SimError::Cancelled`) and resolve the same way.
    /// Outcomes keep streaming — every job still yields exactly one.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Receive the next outcome, blocking until one is ready or the batch
    /// is fully drained (`None`).
    pub fn recv(&self) -> Option<JobOutcome> {
        self.rx.recv().ok()
    }

    /// Iterate outcomes in completion order.
    pub fn iter(&self) -> std::sync::mpsc::Iter<'_, JobOutcome> {
        self.rx.iter()
    }

    /// Drain the batch and return all outcomes sorted by job id — the
    /// same order [`Batch::run_serial`] returns, for direct comparison.
    pub fn join(self) -> Vec<JobOutcome> {
        let mut outcomes: Vec<JobOutcome> = self.rx.iter().collect();
        outcomes.sort_by_key(|o| o.job);
        outcomes
    }
}

impl IntoIterator for BatchHandle {
    type Item = JobOutcome;
    type IntoIter = std::sync::mpsc::IntoIter<JobOutcome>;
    fn into_iter(self) -> Self::IntoIter {
        self.rx.into_iter()
    }
}

/// One worker: pick under the lock, simulate outside it, record and
/// stream. Exits when the service shuts down and no live jobs remain.
fn worker_loop(inner: &Inner, idx: usize) {
    loop {
        let dispatch = {
            let mut st = inner.state.lock().expect("scheduler lock");
            loop {
                if let Some(d) = st.pick(idx) {
                    break Some(d);
                }
                if st.shutdown && st.live_jobs == 0 {
                    break None;
                }
                st = inner.work.wait(st).expect("scheduler lock");
            }
        };
        let Some(Dispatch {
            gj,
            spec,
            cancel,
            deps,
        }) = dispatch
        else {
            // Wake siblings so they observe the exit condition too.
            inner.work.notify_all();
            return;
        };
        let outcome = if cancel.load(Ordering::Relaxed) {
            terminal(gj.job, &spec, JobStatus::Cancelled, idx)
        } else {
            match deps {
                Err(dep) => terminal(gj.job, &spec, JobStatus::Skipped { dep }, idx),
                Ok(outputs) => {
                    let mut pool = inner.pools[idx].lock().expect("arena pool lock");
                    execute_job(
                        gj.job,
                        &spec,
                        &outputs,
                        Some(cancel.clone()),
                        &mut pool,
                        Some(idx),
                    )
                }
            }
        };
        let tx: SyncSender<JobOutcome> = {
            let mut st = inner.state.lock().expect("scheduler lock");
            st.complete(idx, gj, outcome.status.clone())
        };
        inner.work.notify_all();
        // Stream outside the lock: a full window blocks only this worker.
        // A dropped handle closes the channel; treat that as cancellation
        // so the rest of the batch drains cheaply.
        if tx.send(outcome).is_err() {
            cancel.store(true, Ordering::Relaxed);
        }
    }
}

/// An outcome for a job that never ran (skipped or cancelled before
/// start): zero stats, zero wall-clock, worker recorded for telemetry.
fn terminal(
    job: crate::job::JobId,
    spec: &crate::job::JobSpec,
    status: JobStatus,
    worker: usize,
) -> JobOutcome {
    JobOutcome {
        job,
        tenant: spec.tenant,
        label: spec.label.clone(),
        status,
        stats: RunStats::default(),
        wall: Duration::ZERO,
        worker: Some(worker),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{DepOutputs, EngineSpec, JobFailure, JobSpec, TenantId};
    use cliquesim::{Inbox, NodeCtx, NodeProgram, Outbox, Status};

    /// n-node program that spins for `rounds` rounds doing nothing — used
    /// to keep a simulation cancellable mid-flight.
    struct Spin {
        rounds: usize,
    }
    impl NodeProgram for Spin {
        type Output = u64;
        fn step(
            &mut self,
            _ctx: &NodeCtx,
            round: usize,
            _inbox: &Inbox<'_>,
            _outbox: &mut Outbox<'_>,
        ) -> Status<u64> {
            if round + 1 >= self.rounds {
                Status::Halt(round as u64)
            } else {
                Status::Continue
            }
        }
    }

    fn spin_job(tenant: u32, label: &str, rounds: usize) -> JobSpec {
        JobSpec::new(
            TenantId(tenant),
            label,
            EngineSpec::new(3),
            Arc::new(move |s: &mut cliquesim::Session, _d: &DepOutputs| {
                let out = s
                    .run((0..3).map(|_| Spin { rounds }).collect())
                    .map_err(|e| e.to_string())?;
                Ok(out.outputs.iter().flat_map(|v| v.to_le_bytes()).collect())
            }),
        )
    }

    #[test]
    fn fleet_matches_the_serial_oracle_on_a_diamond() {
        let mut batch = Batch::new();
        let a = batch.push(spin_job(0, "a", 2));
        let b = batch.push(spin_job(0, "b", 3).after(a));
        let c = batch.push(spin_job(1, "c", 4).after(a));
        let _d = batch.push(spin_job(1, "d", 2).after(b).after(c));
        let serial = batch.run_serial().unwrap();
        for width in [1, 4] {
            let service = Service::new(width);
            let fleet = service.submit(batch.clone()).unwrap().join();
            assert_eq!(fleet, serial, "width {width} diverged from serial");
        }
    }

    #[test]
    fn a_panicking_job_fails_alone_and_the_pool_survives() {
        let mut batch = Batch::new();
        let bomb = batch.push(JobSpec::new(
            TenantId(0),
            "bomb",
            EngineSpec::new(2),
            Arc::new(|_s: &mut cliquesim::Session, _d: &DepOutputs| panic!("kaboom")),
        ));
        let child = batch.push(spin_job(0, "child", 2).after(bomb));
        let bystander = batch.push(spin_job(1, "bystander", 2));
        let service = Service::new(2);
        let outcomes = service.submit(batch).unwrap().join();
        assert_eq!(
            outcomes[bomb.0].status,
            JobStatus::Failed(JobFailure::Panicked("kaboom".into()))
        );
        assert_eq!(outcomes[child.0].status, JobStatus::Skipped { dep: bomb });
        assert!(outcomes[bystander.0].status.is_success());
        // The pool is still usable for a fresh batch.
        let mut again = Batch::new();
        again.push(spin_job(0, "after", 2));
        let outcomes = service.submit(again).unwrap().join();
        assert!(outcomes[0].status.is_success());
    }

    #[test]
    fn cancel_resolves_every_remaining_job() {
        // One long job occupies the single worker; the rest are parked.
        let mut batch = Batch::new();
        for i in 0..6 {
            batch.push(spin_job(i % 2, &format!("spin{i}"), 2_000_000));
        }
        let service = Service::new(1);
        let handle = service.submit(batch).unwrap();
        handle.cancel();
        let outcomes = handle.join();
        assert_eq!(outcomes.len(), 6, "every job yields exactly one outcome");
        assert!(
            outcomes.iter().all(|o| o.status == JobStatus::Cancelled),
            "all cancelled: {outcomes:?}"
        );
    }

    #[test]
    fn a_cyclic_batch_is_rejected_at_submit() {
        let mut batch = Batch::new();
        let a = batch.push(spin_job(0, "a", 2));
        let b = batch.push(spin_job(0, "b", 2).after(a));
        batch.add_dependency(a, b);
        let service = Service::new(2);
        match service.submit(batch) {
            Err(BatchError::DependencyCycle { cycle }) => assert_eq!(cycle.len(), 2),
            other => panic!("expected cycle rejection, got {:?}", other.err()),
        }
    }

    #[test]
    fn window_backpressure_still_drains_completely() {
        let mut batch = Batch::new();
        for i in 0..40 {
            batch.push(spin_job(i % 4, &format!("j{i}"), 2));
        }
        let service = Service::with_window(3, 1);
        let handle = service.submit(batch).unwrap();
        assert_eq!(handle.total(), 40);
        let outcomes = handle.join();
        assert_eq!(outcomes.len(), 40);
        assert!(outcomes.iter().all(|o| o.status.is_success()));
    }
}
