//! The scheduler state machine: which job runs next, and where.
//!
//! All scheduling state lives behind one mutex ([`SchedState`]); workers
//! take the lock only to *pick* and to *record*, never while a simulation
//! runs. Jobs are whole simulations (milliseconds to seconds), so a single
//! lock is nowhere near contention — the interesting policy is in the pick
//! order:
//!
//! 1. **Own local deque, front.** When a job completes, its newly-ready
//!    dependents land on the completing worker's local deque — that worker
//!    holds the warm [`crate::ArenaPool`] arena for the family's shape, so
//!    dependency chains stay allocation-free.
//! 2. **Global tenant queues, round-robin.** Dependency-free ready jobs sit
//!    in per-tenant FIFO queues; a rotating cursor serves tenants in
//!    [`TenantId`] order, so one tenant's 500-job burst cannot starve
//!    another tenant's two jobs (the stress suite pins a bound on this).
//! 3. **Steal, back.** An idle worker steals from the *back* of another
//!    worker's local deque — the coldest entry, leaving the victim its
//!    warm front.
//!
//! Determinism note: pick order decides *placement and timing* only. Job
//! outcomes are byte-identical regardless (the `service_suite`
//! differential), so the policy here is free to chase locality and
//! fairness without touching the model's determinism contract.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::AtomicBool;
use std::sync::mpsc::SyncSender;
use std::sync::Arc;

use crate::job::{JobId, JobOutcome, JobSpec, JobStatus, TenantId};

/// Identifies a submitted batch within its service.
pub(crate) type BatchId = u64;

/// A job address: which batch, which job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct GlobalJob {
    pub batch: BatchId,
    pub job: JobId,
}

/// Per-batch bookkeeping while the batch is in flight.
pub(crate) struct BatchState {
    pub jobs: Vec<JobSpec>,
    /// Terminal status per job, `None` while pending/running.
    pub statuses: Vec<Option<JobStatus>>,
    /// Unresolved dependency count per job.
    pub indegree: Vec<usize>,
    /// Reverse edges: `dependents[j]` wait on `j`.
    pub dependents: Vec<Vec<usize>>,
    /// Streaming side of the handle's bounded outcome channel.
    pub tx: SyncSender<JobOutcome>,
    /// Cooperative cancellation flag, shared with the handle and with
    /// every engine built for this batch.
    pub cancel: Arc<AtomicBool>,
    /// Jobs without a recorded terminal status.
    pub remaining: usize,
}

/// What a worker should do with a picked job, decided under the lock.
pub(crate) struct Dispatch {
    pub gj: GlobalJob,
    pub spec: JobSpec,
    pub cancel: Arc<AtomicBool>,
    /// Outputs of all deps if every one succeeded, else the smallest
    /// unsuccessful dep (→ `Skipped`).
    pub deps: Result<Vec<Arc<Vec<u8>>>, JobId>,
}

/// Everything workers share, guarded by one mutex in the service.
pub(crate) struct SchedState {
    pub batches: HashMap<BatchId, BatchState>,
    pub next_batch: BatchId,
    /// Dependency-free ready jobs, bucketed per tenant. Emptied entries
    /// are removed, so the map only holds tenants with waiting work.
    pub ready: BTreeMap<TenantId, VecDeque<GlobalJob>>,
    /// Last tenant served from the global queues.
    pub cursor: Option<TenantId>,
    /// Per-worker local deques (dependents of completed jobs).
    pub local: Vec<VecDeque<GlobalJob>>,
    /// Jobs registered but without a terminal status yet, across batches.
    pub live_jobs: usize,
    /// Set by the service's `Drop`; workers exit once no work remains.
    pub shutdown: bool,
}

impl SchedState {
    pub fn new(width: usize) -> Self {
        Self {
            batches: HashMap::new(),
            next_batch: 0,
            ready: BTreeMap::new(),
            cursor: None,
            local: vec![VecDeque::new(); width],
            live_jobs: 0,
            shutdown: false,
        }
    }

    /// Register a validated batch: build the dependency bookkeeping and
    /// enqueue its root jobs into the tenant queues. Returns the batch id.
    pub fn register(
        &mut self,
        jobs: Vec<JobSpec>,
        tx: SyncSender<JobOutcome>,
        cancel: Arc<AtomicBool>,
    ) -> BatchId {
        let id = self.next_batch;
        self.next_batch += 1;
        let n = jobs.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (j, spec) in jobs.iter().enumerate() {
            indegree[j] = spec.deps.len();
            for dep in &spec.deps {
                dependents[dep.0].push(j);
            }
        }
        for (j, spec) in jobs.iter().enumerate() {
            if indegree[j] == 0 {
                self.ready
                    .entry(spec.tenant)
                    .or_default()
                    .push_back(GlobalJob {
                        batch: id,
                        job: JobId(j),
                    });
            }
        }
        self.live_jobs += n;
        self.batches.insert(
            id,
            BatchState {
                jobs,
                statuses: vec![None; n],
                indegree,
                dependents,
                tx,
                cancel,
                remaining: n,
            },
        );
        id
    }

    /// Pick the next job for `worker`: local front, then fair global, then
    /// steal from another worker's back. Returns a full [`Dispatch`] so
    /// the caller can drop the lock before running anything.
    pub fn pick(&mut self, worker: usize) -> Option<Dispatch> {
        let gj = self.local[worker]
            .pop_front()
            .or_else(|| self.pick_global())
            .or_else(|| self.steal(worker))?;
        let batch = self
            .batches
            .get(&gj.batch)
            .expect("picked job's batch is in flight");
        let spec = batch.jobs[gj.job.0].clone();
        let deps = match crate::batch::resolve_deps(&spec, &batch.statuses) {
            crate::batch::DepResolution::Ready(outputs) => Ok(outputs),
            crate::batch::DepResolution::Skip(dep) => Err(dep),
        };
        Some(Dispatch {
            gj,
            cancel: Arc::clone(&batch.cancel),
            spec,
            deps,
        })
    }

    /// Round-robin over tenants with waiting jobs: the first tenant
    /// strictly after the cursor (wrapping), so interleaved submissions
    /// share the pool no matter how lopsided the per-tenant queue depths
    /// are.
    fn pick_global(&mut self) -> Option<GlobalJob> {
        let tenant = match self.cursor {
            Some(c) => self
                .ready
                .range((std::ops::Bound::Excluded(c), std::ops::Bound::Unbounded))
                .map(|(t, _)| *t)
                .next()
                .or_else(|| self.ready.keys().next().copied()),
            None => self.ready.keys().next().copied(),
        }?;
        let queue = self.ready.get_mut(&tenant)?;
        let gj = queue.pop_front();
        if queue.is_empty() {
            self.ready.remove(&tenant);
        }
        self.cursor = Some(tenant);
        gj
    }

    /// Steal the coldest entry (back) from the first non-empty victim
    /// after `worker`, in ring order.
    fn steal(&mut self, worker: usize) -> Option<GlobalJob> {
        let width = self.local.len();
        (1..width)
            .map(|off| (worker + off) % width)
            .find_map(|victim| self.local[victim].pop_back())
    }

    /// Record a terminal status for `gj` and release newly-ready
    /// dependents onto `worker`'s local deque (warm-arena locality).
    /// Returns the sender to stream the outcome on (outside the lock) —
    /// and drops the batch's own sender if this was its last job, closing
    /// the handle's channel once the in-flight send completes.
    pub fn complete(
        &mut self,
        worker: usize,
        gj: GlobalJob,
        status: JobStatus,
    ) -> SyncSender<JobOutcome> {
        let batch = self
            .batches
            .get_mut(&gj.batch)
            .expect("completed job's batch is in flight");
        debug_assert!(batch.statuses[gj.job.0].is_none(), "one outcome per job");
        batch.statuses[gj.job.0] = Some(status);
        batch.remaining -= 1;
        self.live_jobs -= 1;
        for d in batch.dependents[gj.job.0].clone() {
            batch.indegree[d] -= 1;
            if batch.indegree[d] == 0 {
                self.local[worker].push_back(GlobalJob {
                    batch: gj.batch,
                    job: JobId(d),
                });
            }
        }
        let tx = self.batches[&gj.batch].tx.clone();
        if self.batches[&gj.batch].remaining == 0 {
            self.batches.remove(&gj.batch);
        }
        tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{EngineSpec, JobFailure};
    use std::sync::mpsc::sync_channel;

    fn job(tenant: u32, deps: &[usize]) -> JobSpec {
        let mut spec = JobSpec::new(
            TenantId(tenant),
            format!("t{tenant}"),
            EngineSpec::new(2),
            Arc::new(|_s, _d| Ok(Vec::new())),
        );
        spec.deps = deps.iter().map(|&d| JobId(d)).collect();
        spec
    }

    fn state_with(
        width: usize,
        jobs: Vec<JobSpec>,
    ) -> (SchedState, std::sync::mpsc::Receiver<JobOutcome>) {
        let mut st = SchedState::new(width);
        let (tx, rx) = sync_channel(64);
        st.register(jobs, tx, Arc::new(AtomicBool::new(false)));
        (st, rx)
    }

    #[test]
    fn global_picks_round_robin_across_tenants() {
        // Tenant 0 floods five jobs; tenant 1 and 2 have one each. The
        // rotation serves 0,1,2,0,0,… — the minority tenants wait behind
        // at most one majority job each.
        let mut jobs: Vec<JobSpec> = (0..5).map(|_| job(0, &[])).collect();
        jobs.push(job(1, &[]));
        jobs.push(job(2, &[]));
        let (mut st, _rx) = state_with(1, jobs);
        let tenants: Vec<u32> = std::iter::from_fn(|| st.pick(0))
            .map(|d| d.spec.tenant.0)
            .collect();
        assert_eq!(tenants, vec![0, 1, 2, 0, 0, 0, 0]);
    }

    #[test]
    fn dependents_land_on_the_completing_workers_deque() {
        // job0 -> job1: worker 3 completes job0, so job1 must appear on
        // worker 3's local deque and be picked by it before any steal.
        let (mut st, _rx) = state_with(4, vec![job(0, &[]), job(0, &[0])]);
        let d0 = st.pick(3).expect("root is ready");
        assert_eq!(d0.gj.job, JobId(0));
        st.complete(3, d0.gj, JobStatus::Done(Arc::new(Vec::new())));
        assert_eq!(st.local[3].len(), 1, "dependent parked locally");
        let d1 = st.pick(3).expect("dependent ready locally");
        assert_eq!(d1.gj.job, JobId(1));
        assert!(d1.deps.is_ok());
    }

    #[test]
    fn idle_worker_steals_from_the_back() {
        let (mut st, _rx) = state_with(2, vec![job(0, &[]), job(0, &[0]), job(0, &[0])]);
        let d0 = st.pick(0).expect("root");
        st.complete(0, d0.gj, JobStatus::Done(Arc::new(Vec::new())));
        assert_eq!(st.local[0].len(), 2);
        // Worker 1 has nothing local or global: it steals worker 0's
        // *back* entry (job2), leaving job1 warm at the front.
        let stolen = st.pick(1).expect("steals");
        assert_eq!(stolen.gj.job, JobId(2));
        assert_eq!(st.local[0].front().map(|g| g.job), Some(JobId(1)));
    }

    #[test]
    fn failed_dependency_resolves_dependents_to_the_smallest_witness() {
        // job2 depends on job0 (fails) and job1 (succeeds): the dispatch
        // carries Err(job0) however completions interleave.
        let (mut st, _rx) = state_with(1, vec![job(0, &[]), job(0, &[]), job(0, &[0, 1])]);
        let d0 = st.pick(0).expect("job0");
        let d1 = st.pick(0).expect("job1");
        st.complete(0, d1.gj, JobStatus::Done(Arc::new(Vec::new())));
        st.complete(0, d0.gj, JobStatus::Failed(JobFailure::Failed("x".into())));
        let d2 = st.pick(0).expect("job2 ready");
        assert_eq!(d2.deps, Err(JobId(0)));
    }
}
