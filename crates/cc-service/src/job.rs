//! The job model: what one unit of fleet work looks like.
//!
//! A [`JobSpec`] pairs an [`EngineSpec`] (pure data: clique size, pool
//! shape, delivery backend, adversary plans) with a *job function* — a
//! deterministic closure that drives a [`cliquesim::Session`] built from
//! that spec and returns its result as bytes. Bytes are the service's
//! output currency on purpose: the serial oracle and the fleet compare
//! outcomes for **byte identity**, so a job's result must not depend on
//! which worker ran it, when, or what else was in flight.
//!
//! # Determinism contract
//!
//! The job function must be a pure function of the spec and its
//! dependency outputs: same `(EngineSpec, dep bytes)` → same output bytes
//! or same error string. Everything the engine does is already
//! deterministic across pool shapes and delivery backends (PR 1/PR 6
//! bit-identity); a job that reaches outside (time, ambient randomness,
//! global state) forfeits the differential guarantee — exactly like the
//! "factory must produce identical programs" rule in `cc-testkit`.

use std::fmt;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use cliquesim::{AuthKeyring, ByzantinePlan, DeliveryMode, Engine, FaultPlan, RunStats, Session};

/// Index of a job within its [`crate::Batch`], assigned by
/// [`crate::Batch::push`] in submission order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub usize);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Owner of a job, for fairness accounting. Tenants are just numbers; the
/// scheduler round-robins ready jobs across them so one tenant's burst
/// cannot starve another's queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Pure-data engine configuration for one job — the request-format half
/// of a job. Everything here is `Clone + Send`, so a spec can be shipped
/// to any worker and materialised there with [`EngineSpec::build`].
#[derive(Clone, Debug)]
pub struct EngineSpec {
    /// Number of nodes in the clique.
    pub n: usize,
    /// Engine pool shape (node-stepping threads *within* the simulation;
    /// independent of the service's worker width). Pinned exactly, like
    /// `Engine::with_threads_exact`, so a job's stats never depend on the
    /// host the worker runs on.
    pub threads: usize,
    /// Delivery backend for the run.
    pub delivery: DeliveryMode,
    /// Restrict to the broadcast congested clique (paper §2).
    pub broadcast_only: bool,
    /// Per-message bandwidth override in bits (`None` = `⌈log₂ n⌉`).
    pub bandwidth: Option<usize>,
    /// Round cap (`None` = engine default).
    pub max_rounds: Option<usize>,
    /// Wall-clock watchdog for the job's runs.
    pub deadline: Option<Duration>,
    /// Link-fault / crash / churn adversary for the job.
    pub fault: Option<FaultPlan>,
    /// Fault-clock offset: the plan (crash, rejoin, and link-fault
    /// schedules alike) is addressed at `offset + local round`, so one
    /// absolute churn timeline can be split across wave-structured jobs
    /// (see `Engine::with_fault_offset`).
    pub fault_offset: usize,
    /// Byzantine sender adversary for the job.
    pub byzantine: Option<ByzantinePlan>,
    /// Seed for a signed-message keyring (`AuthKeyring::from_seed(n,
    /// seed)` attached via `Engine::with_auth`); `None` = unauthenticated.
    pub auth_seed: Option<u64>,
}

impl EngineSpec {
    /// A plain clique spec: sequential stepping, auto delivery, no
    /// adversary.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            threads: 1,
            delivery: DeliveryMode::Auto,
            broadcast_only: false,
            bandwidth: None,
            max_rounds: None,
            deadline: None,
            fault: None,
            fault_offset: 0,
            byzantine: None,
            auth_seed: None,
        }
    }

    /// Set the engine pool shape (exact, host-independent).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the delivery backend.
    pub fn delivery(mut self, mode: DeliveryMode) -> Self {
        self.delivery = mode;
        self
    }

    /// Restrict to the broadcast-only model.
    pub fn broadcast_only(mut self, on: bool) -> Self {
        self.broadcast_only = on;
        self
    }

    /// Override the per-message bit budget.
    pub fn bandwidth(mut self, bits: usize) -> Self {
        self.bandwidth = Some(bits);
        self
    }

    /// Attach a fault plan.
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Address the fault plan at `offset + local round` (churn waves).
    pub fn fault_offset(mut self, offset: usize) -> Self {
        self.fault_offset = offset;
        self
    }

    /// Attach a Byzantine plan.
    pub fn byzantine(mut self, plan: ByzantinePlan) -> Self {
        self.byzantine = Some(plan);
        self
    }

    /// Attach a seeded signed-message keyring (authenticated tier).
    pub fn auth(mut self, seed: u64) -> Self {
        self.auth_seed = Some(seed);
        self
    }

    /// Materialise the engine, wiring in the service's cancellation flag
    /// so an in-flight job aborts at its next round boundary when the
    /// batch is cancelled.
    pub fn build(&self, cancel: Option<Arc<AtomicBool>>) -> Engine {
        let mut engine = Engine::new(self.n)
            .with_threads_exact(self.threads)
            .with_delivery(self.delivery)
            .broadcast_only(self.broadcast_only);
        if let Some(bits) = self.bandwidth {
            engine = engine.with_bandwidth(bits);
        }
        if let Some(limit) = self.max_rounds {
            engine = engine.with_max_rounds(limit);
        }
        if let Some(limit) = self.deadline {
            engine = engine.with_deadline(limit);
        }
        if let Some(plan) = &self.fault {
            engine = engine.with_fault_plan(plan.clone());
        }
        if self.fault_offset != 0 {
            engine = engine.with_fault_offset(self.fault_offset);
        }
        if let Some(plan) = &self.byzantine {
            engine = engine.with_byzantine_plan(plan.clone());
        }
        if let Some(seed) = self.auth_seed {
            engine = engine.with_auth(AuthKeyring::from_seed(self.n, seed));
        }
        if let Some(flag) = cancel {
            engine = engine.with_cancel(flag);
        }
        engine
    }
}

/// Output bytes of completed dependencies, in the order the job declared
/// them. Shared, not copied: wide fan-outs read one allocation.
pub type DepOutputs = [Arc<Vec<u8>>];

/// The job function: drive the session, return result bytes (or a
/// deterministic error string). See the module docs for the determinism
/// contract.
pub type JobFn = Arc<dyn Fn(&mut Session, &DepOutputs) -> Result<Vec<u8>, String> + Send + Sync>;

/// One schedulable unit: a tenant-owned, seed-addressed simulation run.
#[derive(Clone)]
pub struct JobSpec {
    /// Owning tenant (fairness bucket).
    pub tenant: TenantId,
    /// Replayable repro label, e.g. `er-medium[n=16, seed=3]@sparse` — the
    /// same labelling discipline as `cc-testkit` instance labels.
    pub label: String,
    /// Engine configuration.
    pub engine: EngineSpec,
    /// Jobs that must complete *successfully* before this one runs. Their
    /// output bytes are handed to the job function in this order.
    pub deps: Vec<JobId>,
    /// The work itself.
    pub run: JobFn,
}

impl fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobSpec")
            .field("tenant", &self.tenant)
            .field("label", &self.label)
            .field("engine", &self.engine)
            .field("deps", &self.deps)
            .finish_non_exhaustive()
    }
}

impl JobSpec {
    /// A dependency-free job.
    pub fn new(tenant: TenantId, label: impl Into<String>, engine: EngineSpec, run: JobFn) -> Self {
        Self {
            tenant,
            label: label.into(),
            engine,
            deps: Vec::new(),
            run,
        }
    }

    /// Declare a dependency (may reference any job id of the batch; edges
    /// are validated as a DAG at submission).
    pub fn after(mut self, dep: JobId) -> Self {
        self.deps.push(dep);
        self
    }
}

/// Why a job did not produce output bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobFailure {
    /// The job function returned an error (deterministic: part of the
    /// byte-identity comparison).
    Failed(String),
    /// The job function panicked; the worker caught it and stayed usable
    /// (the PR 3 `catch_unwind` shape, one layer up).
    Panicked(String),
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobFailure::Failed(e) => write!(f, "failed: {e}"),
            JobFailure::Panicked(m) => write!(f, "panicked: {m}"),
        }
    }
}

/// Terminal state of one job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// The job function returned bytes.
    Done(Arc<Vec<u8>>),
    /// The job function failed or panicked.
    Failed(JobFailure),
    /// A dependency did not complete successfully; the job never ran.
    /// `dep` is the *smallest* unsuccessful dependency id — smallest, not
    /// first-observed, so the status is deterministic under any
    /// completion order the fleet produces.
    Skipped {
        /// Smallest dependency that failed, was skipped, or was cancelled.
        dep: JobId,
    },
    /// The batch was cancelled before (or while) the job ran.
    Cancelled,
}

impl JobStatus {
    /// Whether dependents of this job may run.
    pub fn is_success(&self) -> bool {
        matches!(self, JobStatus::Done(_))
    }
}

/// One streamed result. Equality deliberately ignores [`JobOutcome::wall`]
/// and [`JobOutcome::worker`] — wall-clock and placement are
/// nondeterministic, while everything else is part of the fleet-vs-serial
/// byte-identity contract (the same convention as [`RunStats`]'s
/// timing-blind equality).
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Which job this is.
    pub job: JobId,
    /// Owning tenant.
    pub tenant: TenantId,
    /// The job's repro label.
    pub label: String,
    /// Terminal state (output bytes live in [`JobStatus::Done`]).
    pub status: JobStatus,
    /// Accumulated session statistics of the job's runs (zeroed for jobs
    /// that never ran). Timing fields are populated but excluded from
    /// equality, per [`RunStats`]'s own contract.
    pub stats: RunStats,
    /// Wall-clock the job spent executing (zero for skipped/cancelled
    /// jobs). Excluded from equality.
    pub wall: Duration,
    /// Index of the worker that ran it (`None` for the serial oracle and
    /// for jobs that never ran). Excluded from equality.
    pub worker: Option<usize>,
}

impl PartialEq for JobOutcome {
    fn eq(&self, other: &Self) -> bool {
        // `wall` and `worker` intentionally omitted: see type docs.
        self.job == other.job
            && self.tenant == other.tenant
            && self.label == other.label
            && self.status == other.status
            && self.stats == other.stats
    }
}

impl Eq for JobOutcome {}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> JobOutcome {
        JobOutcome {
            job: JobId(3),
            tenant: TenantId(1),
            label: "x".into(),
            status: JobStatus::Done(Arc::new(vec![1, 2, 3])),
            stats: RunStats::default(),
            wall: Duration::from_millis(5),
            worker: Some(2),
        }
    }

    #[test]
    fn outcome_equality_ignores_wall_and_worker() {
        let a = outcome();
        let mut b = outcome();
        b.wall = Duration::from_secs(9);
        b.worker = None;
        assert_eq!(a, b, "placement and wall-clock are not model state");
        let mut c = outcome();
        c.status = JobStatus::Done(Arc::new(vec![1, 2, 4]));
        assert_ne!(a, c, "output bytes are model state");
    }

    #[test]
    fn engine_spec_builds_the_configured_engine() {
        let spec = EngineSpec::new(9)
            .threads(4)
            .delivery(DeliveryMode::Sparse)
            .broadcast_only(true)
            .fault_offset(5);
        let engine = spec.build(None);
        assert_eq!(engine.n(), 9);
        assert_eq!(engine.resolved_delivery(), DeliveryMode::Sparse);
        assert_eq!(engine.fault_offset(), 5);
    }
}
