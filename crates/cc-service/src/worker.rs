//! Per-worker arena pooling.
//!
//! Each service worker (and the serial oracle) owns one [`ArenaPool`]: a
//! small map from clique size to a parked [`DeliveryArena`]. A job checks
//! the arena for its `n` out, threads it through the session
//! ([`cliquesim::Session::with_arena`] / `into_arena`), and checks it back
//! in afterwards — so back-to-back jobs of the same shape allocate no
//! message slots, exactly like back-to-back phases within one session.
//!
//! Pool discipline, not cache: one arena is parked per clique size, and
//! the pool never grows with job *count*, only with the number of distinct
//! shapes a worker has seen. The stress suite checks this via
//! [`ArenaPool::retained_slots`].

use std::collections::HashMap;

use cliquesim::DeliveryArena;

/// Parked delivery arenas, keyed by clique size.
#[derive(Debug, Default)]
pub struct ArenaPool {
    parked: HashMap<usize, DeliveryArena>,
}

impl ArenaPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the parked arena for clique size `n`, or a fresh one if none
    /// is parked (first job of this shape, or a checkout while another
    /// job of the same shape is somehow in flight — the fresh arena just
    /// allocates lazily like any cold session).
    pub fn checkout(&mut self, n: usize) -> DeliveryArena {
        self.parked.remove(&n).unwrap_or_default()
    }

    /// Park an arena for reuse by the next job of clique size `n`.
    pub fn checkin(&mut self, n: usize, arena: DeliveryArena) {
        self.parked.insert(n, arena);
    }

    /// Number of distinct clique sizes with a parked arena.
    pub fn shapes(&self) -> usize {
        self.parked.len()
    }

    /// Total message slots currently parked across all shapes — the
    /// worker-side analogue of [`cliquesim::Session::delivery_footprint`].
    /// Steady state means this is a function of the distinct job shapes,
    /// never of how many jobs have run.
    pub fn retained_slots(&self) -> usize {
        self.parked.values().map(|a| a.slot_footprint()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesim::{DeliveryMode, Engine, Session};

    struct Quiet;
    impl cliquesim::NodeProgram for Quiet {
        type Output = ();
        fn step(
            &mut self,
            _ctx: &cliquesim::NodeCtx,
            _round: usize,
            _inbox: &cliquesim::Inbox<'_>,
            _outbox: &mut cliquesim::Outbox<'_>,
        ) -> cliquesim::Status<()> {
            cliquesim::Status::Halt(())
        }
    }

    fn run_once(pool: &mut ArenaPool, n: usize) {
        let engine = Engine::new(n).with_delivery(DeliveryMode::Dense);
        let mut session = Session::with_arena(engine, pool.checkout(n));
        session.run((0..n).map(|_| Quiet).collect()).unwrap();
        pool.checkin(n, session.into_arena());
    }

    #[test]
    fn pool_retains_one_arena_per_shape_not_per_job() {
        let mut pool = ArenaPool::new();
        for _ in 0..10 {
            run_once(&mut pool, 4);
        }
        assert_eq!(pool.shapes(), 1);
        assert_eq!(pool.retained_slots(), 2 * 4 * 4, "dense pair for n=4");
        run_once(&mut pool, 6);
        assert_eq!(pool.shapes(), 2);
        assert_eq!(pool.retained_slots(), 2 * 4 * 4 + 2 * 6 * 6);
        // Another hundred n=4 jobs change nothing.
        let before = pool.retained_slots();
        for _ in 0..100 {
            run_once(&mut pool, 4);
        }
        assert_eq!(pool.retained_slots(), before, "steady state");
    }
}
