//! `cc-service`: a multi-tenant session service for congested-clique
//! simulation fleets.
//!
//! The engine (PR 1–6) made one simulation fast, deterministic, and
//! adversary-aware. This crate makes *many* simulations a first-class
//! workload: a [`Batch`] of seed-addressed jobs — each an
//! [`EngineSpec`] (clique size, pool shape, delivery backend, optional
//! fault/Byzantine plans) plus a deterministic job function — is resolved
//! into a dependency DAG and executed across a shared work-stealing
//! worker pool ([`Service`]), with per-tenant round-robin fairness, warm
//! per-worker delivery arenas, cooperative cancellation, and a bounded
//! outcome window streaming [`JobOutcome`]s back as they finish.
//!
//! # The serial oracle
//!
//! Scheduling must not be able to change results. The reference semantics
//! of a batch is [`Batch::run_serial`] — the same jobs on one thread, in
//! the deterministic topological order — and the test suite's central
//! property is that a [`Service`] of *any* width produces outcomes
//! **byte-identical** to that oracle (same output bytes, same error
//! strings, same skip witnesses, same [`cliquesim::RunStats`]). This is
//! the same differential discipline `cc-testkit` applies to pool shapes
//! and delivery backends, lifted to fleet scheduling.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use cc_service::{Batch, EngineSpec, JobSpec, Service, TenantId};
//!
//! let mut batch = Batch::new();
//! let probe = batch.push(JobSpec::new(
//!     TenantId(0),
//!     "probe[n=4]@auto",
//!     EngineSpec::new(4),
//!     Arc::new(|session, _deps| {
//!         // Drive any cliquesim phases here; return bytes.
//!         Ok(session.n().to_le_bytes().to_vec())
//!     }),
//! ));
//! // A dependent job sees the probe's bytes, in declaration order.
//! batch.push(
//!     JobSpec::new(
//!         TenantId(1),
//!         "echo",
//!         EngineSpec::new(4),
//!         Arc::new(|_session, deps| Ok(deps[0].to_vec())),
//!     )
//!     .after(probe),
//! );
//!
//! let service = Service::new(4);
//! let outcomes = service.submit(batch).unwrap().join();
//! assert!(outcomes.iter().all(|o| o.status.is_success()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod job;
mod scheduler;
mod service;
mod worker;

pub use batch::{Batch, BatchError};
pub use job::{
    DepOutputs, EngineSpec, JobFailure, JobFn, JobId, JobOutcome, JobSpec, JobStatus, TenantId,
};
pub use service::{BatchHandle, Service};
pub use worker::ArenaPool;
