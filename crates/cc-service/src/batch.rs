//! Batches: ordered collections of jobs with dependency edges, validated
//! into a DAG, plus the **serial oracle** the fleet is differentially
//! tested against.
//!
//! The shape is lifted from the para-dflow exemplar named in ROADMAP: a
//! dependency structure is decomposed into a DAG, executed in parallel,
//! and judged against a sequential reference execution. Here the "nodes"
//! are whole simulation jobs, and the reference is
//! [`Batch::run_serial`] — same jobs, same deterministic topological
//! order, one thread, one warm arena.

use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cliquesim::RunStats;

use crate::job::{JobFailure, JobId, JobOutcome, JobSpec, JobStatus};
use crate::worker::ArenaPool;

/// A set of jobs plus dependency edges. Build with [`Batch::push`] /
/// [`JobSpec::after`] (or [`Batch::add_dependency`] for edges decided
/// late), then hand to [`crate::Service::submit`] or [`Batch::run_serial`].
/// Cloning is cheap: job functions are shared behind `Arc`.
#[derive(Clone, Default)]
pub struct Batch {
    jobs: Vec<JobSpec>,
}

/// Structural rejection of a batch. Every variant names the offending
/// jobs, so a bad submission is debuggable without re-running anything.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchError {
    /// A job depends on an id the batch does not contain.
    UnknownDependency {
        /// The depending job.
        job: JobId,
        /// The dangling id it references.
        dep: JobId,
    },
    /// The dependency edges contain a cycle, so no execution order
    /// exists. `cycle` lists the job ids on one witness cycle, in edge
    /// order (each entry depends on the next, and the last depends on the
    /// first). Detected at submission — a cyclic batch is *rejected*,
    /// never deadlocked on.
    DependencyCycle {
        /// One witness cycle through the dependency graph.
        cycle: Vec<JobId>,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::UnknownDependency { job, dep } => {
                write!(f, "{job} depends on {dep}, which is not in the batch")
            }
            BatchError::DependencyCycle { cycle } => {
                write!(f, "dependency cycle: ")?;
                for id in cycle {
                    write!(f, "{id} -> ")?;
                }
                match cycle.first() {
                    Some(first) => write!(f, "{first}"),
                    None => Ok(()),
                }
            }
        }
    }
}

impl std::error::Error for BatchError {}

impl Batch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a job; its [`JobId`] is its submission index.
    pub fn push(&mut self, spec: JobSpec) -> JobId {
        self.jobs.push(spec);
        JobId(self.jobs.len() - 1)
    }

    /// Add a dependency edge after the fact: `job` will wait for `dep`.
    /// Both ids must already be in the batch (checked again, with
    /// structured errors, at validation).
    pub fn add_dependency(&mut self, job: JobId, dep: JobId) {
        if let Some(spec) = self.jobs.get_mut(job.0) {
            spec.deps.push(dep);
        }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the batch holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The jobs, indexed by [`JobId`].
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Validate edges and return a deterministic topological order:
    /// Kahn's algorithm with a min-id frontier, so the order is a pure
    /// function of the batch (the serial oracle's execution order). A
    /// dangling or cyclic edge set is rejected with a structured
    /// [`BatchError`] instead of hanging the scheduler.
    pub fn topo_order(&self) -> Result<Vec<JobId>, BatchError> {
        let n = self.jobs.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (j, spec) in self.jobs.iter().enumerate() {
            for dep in &spec.deps {
                if dep.0 >= n {
                    return Err(BatchError::UnknownDependency {
                        job: JobId(j),
                        dep: *dep,
                    });
                }
                indegree[j] += 1;
                dependents[dep.0].push(j);
            }
        }
        // Min-heap on job id keeps the frontier order deterministic.
        let mut frontier: BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
            .filter(|&j| indegree[j] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(j)) = frontier.pop() {
            order.push(JobId(j));
            for &d in &dependents[j] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    frontier.push(std::cmp::Reverse(d));
                }
            }
        }
        if order.len() == n {
            return Ok(order);
        }
        // Jobs remain with indegree > 0: walk unresolved dependencies
        // from the smallest stuck job until one repeats — that suffix is
        // a witness cycle.
        let stuck: Vec<bool> = indegree.iter().map(|&d| d > 0).collect();
        let start = stuck.iter().position(|&s| s).unwrap_or_default();
        let mut path = vec![start];
        let mut seen = vec![usize::MAX; n];
        seen[start] = 0;
        loop {
            let cur = *path.last().unwrap_or(&start);
            // Follow the smallest still-stuck dependency (deterministic).
            let next = self.jobs[cur]
                .deps
                .iter()
                .map(|d| d.0)
                .filter(|&d| stuck[d])
                .min()
                .unwrap_or(cur);
            if seen[next] != usize::MAX {
                let cycle = path[seen[next]..].iter().map(|&j| JobId(j)).collect();
                return Err(BatchError::DependencyCycle { cycle });
            }
            seen[next] = path.len();
            path.push(next);
        }
    }

    /// The serial oracle: execute the batch on the calling thread in
    /// [`Batch::topo_order`], one job at a time, reusing one warm
    /// [`ArenaPool`] exactly like a fleet worker does. Returns one
    /// [`JobOutcome`] per job, ordered by [`JobId`]. This is the
    /// reference the fleet must match byte for byte.
    pub fn run_serial(&self) -> Result<Vec<JobOutcome>, BatchError> {
        let order = self.topo_order()?;
        let mut arenas = ArenaPool::new();
        let mut statuses: Vec<Option<JobStatus>> = vec![None; self.jobs.len()];
        let mut outcomes: Vec<Option<JobOutcome>> = vec![None; self.jobs.len()];
        for id in order {
            let spec = &self.jobs[id.0];
            let outcome = match resolve_deps(spec, &statuses) {
                DepResolution::Ready(deps) => execute_job(id, spec, &deps, None, &mut arenas, None),
                DepResolution::Skip(dep) => JobOutcome {
                    job: id,
                    tenant: spec.tenant,
                    label: spec.label.clone(),
                    status: JobStatus::Skipped { dep },
                    stats: RunStats::default(),
                    wall: Duration::ZERO,
                    worker: None,
                },
            };
            statuses[id.0] = Some(outcome.status.clone());
            outcomes[id.0] = Some(outcome);
        }
        Ok(outcomes.into_iter().flatten().collect())
    }
}

/// Whether a job whose dependencies have all resolved may run.
pub(crate) enum DepResolution {
    /// All dependencies succeeded; their output bytes, in declaration
    /// order.
    Ready(Vec<Arc<Vec<u8>>>),
    /// At least one dependency did not succeed; the smallest such id.
    Skip(JobId),
}

/// Resolve a job's dependencies against the terminal statuses recorded so
/// far. Callers guarantee every dependency *has* a status (the scheduler
/// only releases a job once all its deps resolved). The skip witness is
/// the smallest unsuccessful dep id, which makes the decision independent
/// of completion order.
pub(crate) fn resolve_deps(spec: &JobSpec, statuses: &[Option<JobStatus>]) -> DepResolution {
    let mut blocked: Option<JobId> = None;
    let mut outputs = Vec::with_capacity(spec.deps.len());
    for dep in &spec.deps {
        match statuses.get(dep.0).and_then(|s| s.as_ref()) {
            Some(JobStatus::Done(bytes)) => outputs.push(Arc::clone(bytes)),
            _ => blocked = Some(blocked.map_or(*dep, |b| b.min(*dep))),
        }
    }
    match blocked {
        Some(dep) => DepResolution::Skip(dep),
        None => DepResolution::Ready(outputs),
    }
}

/// Run one job to a terminal outcome: build the engine from the spec
/// (wiring in the cancel flag, if any), check a warm arena out of the
/// worker's pool, drive the job function under `catch_unwind`, and check
/// the arena back in — even when the job fails, so a poisoned job cannot
/// leak its delivery buffers.
pub(crate) fn execute_job(
    id: JobId,
    spec: &JobSpec,
    deps: &[Arc<Vec<u8>>],
    cancel: Option<Arc<std::sync::atomic::AtomicBool>>,
    arenas: &mut ArenaPool,
    worker: Option<usize>,
) -> JobOutcome {
    let start = Instant::now();
    let engine = spec.engine.build(cancel);
    let mut session = cliquesim::Session::with_arena(engine, arenas.checkout(spec.engine.n));
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        (spec.run)(&mut session, deps)
    }));
    let stats = session.stats();
    arenas.checkin(spec.engine.n, session.into_arena());
    let status = match caught {
        Ok(Ok(bytes)) => JobStatus::Done(Arc::new(bytes)),
        Ok(Err(e)) => match is_cancelled(&e) {
            true => JobStatus::Cancelled,
            false => JobStatus::Failed(JobFailure::Failed(e)),
        },
        Err(payload) => JobStatus::Failed(JobFailure::Panicked(panic_message(payload))),
    };
    JobOutcome {
        job: id,
        tenant: spec.tenant,
        label: spec.label.clone(),
        status,
        stats,
        wall: start.elapsed(),
        worker,
    }
}

/// Jobs surface engine errors as strings (see [`crate::job::JobFn`]); a
/// cooperative cancellation is recognised by the `SimError::Cancelled`
/// display prefix so the outcome reads `Cancelled`, not `Failed`.
fn is_cancelled(err: &str) -> bool {
    err.starts_with("run cancelled cooperatively")
}

/// Extract a printable message from a panic payload (same policy as the
/// engine's `NodeProgramPanicked`).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{EngineSpec, TenantId};

    fn noop_job(tenant: u32, label: &str) -> JobSpec {
        JobSpec::new(
            TenantId(tenant),
            label,
            EngineSpec::new(2),
            Arc::new(|_s, _d| Ok(vec![0])),
        )
    }

    #[test]
    fn topo_order_is_deterministic_and_dependency_respecting() {
        let mut b = Batch::new();
        let a = b.push(noop_job(0, "a"));
        let c = b.push(noop_job(0, "c"));
        let d = b.push(noop_job(1, "d").after(c).after(a));
        let order = b.topo_order().unwrap();
        assert_eq!(order, vec![a, c, d]);
    }

    #[test]
    fn unknown_dependency_is_a_structured_error() {
        let mut b = Batch::new();
        let a = b.push(noop_job(0, "a"));
        b.add_dependency(a, JobId(7));
        assert_eq!(
            b.topo_order().unwrap_err(),
            BatchError::UnknownDependency {
                job: a,
                dep: JobId(7)
            }
        );
    }

    #[test]
    fn cycle_is_rejected_with_a_witness_not_a_hang() {
        let mut b = Batch::new();
        let a = b.push(noop_job(0, "a"));
        let c = b.push(noop_job(0, "c"));
        let d = b.push(noop_job(0, "d"));
        b.add_dependency(a, c);
        b.add_dependency(c, d);
        b.add_dependency(d, a);
        let err = b.topo_order().unwrap_err();
        match err {
            BatchError::DependencyCycle { cycle } => {
                assert_eq!(cycle.len(), 3, "witness visits each cycle job once");
                // Each listed job depends on the next (cyclically).
                for (i, id) in cycle.iter().enumerate() {
                    let next = cycle[(i + 1) % cycle.len()];
                    assert!(
                        b.jobs()[id.0].deps.contains(&next),
                        "{id} should depend on {next}"
                    );
                }
            }
            other => panic!("expected a cycle, got {other:?}"),
        }
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut b = Batch::new();
        let a = b.push(noop_job(0, "a"));
        b.add_dependency(a, a);
        assert_eq!(
            b.topo_order().unwrap_err(),
            BatchError::DependencyCycle { cycle: vec![a] }
        );
    }

    #[test]
    fn serial_oracle_runs_jobs_and_skips_dependents_of_failures() {
        let mut b = Batch::new();
        let ok = b.push(JobSpec::new(
            TenantId(0),
            "ok",
            EngineSpec::new(2),
            Arc::new(|_s, _d| Ok(vec![42])),
        ));
        let bad = b.push(JobSpec::new(
            TenantId(0),
            "bad",
            EngineSpec::new(2),
            Arc::new(|_s, _d| Err("boom".to_string())),
        ));
        let child = b.push(
            JobSpec::new(
                TenantId(1),
                "child",
                EngineSpec::new(2),
                Arc::new(|_s, deps: &crate::job::DepOutputs| Ok(deps[0].to_vec())),
            )
            .after(ok)
            .after(bad),
        );
        let outcomes = b.run_serial().unwrap();
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[ok.0].status, JobStatus::Done(Arc::new(vec![42])));
        assert_eq!(
            outcomes[bad.0].status,
            JobStatus::Failed(JobFailure::Failed("boom".into()))
        );
        assert_eq!(outcomes[child.0].status, JobStatus::Skipped { dep: bad });
    }

    #[test]
    fn dep_outputs_arrive_in_declaration_order() {
        let mut b = Batch::new();
        let one = b.push(JobSpec::new(
            TenantId(0),
            "one",
            EngineSpec::new(2),
            Arc::new(|_s, _d| Ok(vec![1])),
        ));
        let two = b.push(JobSpec::new(
            TenantId(0),
            "two",
            EngineSpec::new(2),
            Arc::new(|_s, _d| Ok(vec![2])),
        ));
        // Declared two-then-one: outputs must arrive in that order, not
        // id order.
        let cat = b.push(
            JobSpec::new(
                TenantId(0),
                "cat",
                EngineSpec::new(2),
                Arc::new(|_s, deps: &crate::job::DepOutputs| {
                    Ok(deps.iter().flat_map(|d| d.iter().copied()).collect())
                }),
            )
            .after(two)
            .after(one),
        );
        let outcomes = b.run_serial().unwrap();
        assert_eq!(
            outcomes[cat.0].status,
            JobStatus::Done(Arc::new(vec![2, 1]))
        );
    }
}
