//! Counting arguments and the time hierarchy (§3 "Counting arguments",
//! §4 Theorem 2, §5.3 Theorem 4, §6.2 Theorem 8).
//!
//! Lemma 1 bounds the number of `(n, b, L, t)`-protocols by
//! `2^{2bn · 2^{L + bt(n−1)}}`, while there are `2^{2^{nL}}` functions
//! `{0,1}^{nL} → {0,1}` — so for `t` below roughly `L/b`, *most* functions
//! have no protocol. The theorems instantiate this with specific `L`, `M`
//! and `t` and pick the lexicographically-first hard function `f_n` as a
//! (uniform but wildly expensive) diagonal language.
//!
//! The hard functions are *non-constructive at scale* — deciding
//! membership requires enumerating all protocols, which is doubly
//! exponential (`repro_why` in DESIGN.md). This module therefore provides
//! two things:
//!
//! * exact evaluation of the counting inequalities for arbitrary
//!   parameters (the existence proofs, checked numerically);
//! * a **complete toy-scale constructivisation** at `n = 2, b = 1`:
//!   [`census_two_nodes`] enumerates every protocol, marks every
//!   computable function, and [`ToyHardLanguage`] is the uniform
//!   Theorem 2 language run end-to-end on the simulator.

use cliquesim::{BitString, Engine, Inbox, NodeCtx, NodeId, NodeProgram, Outbox, RunStats, Status};

// =====================================================================
// Lemma 1 and the theorem inequalities
// =====================================================================

/// `log₂ log₂` of Lemma 1's protocol-count bound:
/// `log₂(2bn) + L + b·t·(n−1)`.
pub fn lemma1_loglog(n: usize, b: usize, l: usize, t: usize) -> f64 {
    ((2 * b * n) as f64).log2() + (l + b * t * (n - 1)) as f64
}

/// `log₂ log₂` of the number of functions `{0,1}^{nL} → {0,1}`: `n·L`.
pub fn functions_loglog(n: usize, l: usize) -> f64 {
    (n * l) as f64
}

/// Does Lemma 1 guarantee a function with no `(n, b, L, t)`-protocol?
pub fn hard_function_exists(n: usize, b: usize, l: usize, t: usize) -> bool {
    lemma1_loglog(n, b, l, t) < functions_loglog(n, l)
}

/// The paper's sufficient condition: `t < L/b − 1` implies most functions
/// have no protocol (for large n).
pub fn sufficient_threshold(b: usize, l: usize) -> f64 {
    l as f64 / b as f64 - 1.0
}

/// Theorem 2 instantiation: with `L = T·log n`, bandwidth `log n` and
/// protocol budget `t = T/2`, a hard `f_n` exists (for the theorem's range
/// `T ≤ n / (4 log n)`).
pub fn thm2_condition(n: usize, t_rounds: usize) -> bool {
    let log_n = BitString::width_for(n).max(1);
    let l = t_rounds * log_n;
    hard_function_exists(n, log_n, l, t_rounds / 2)
}

/// Theorem 4's displayed inequality for the nondeterministic
/// `(n, log n, M+L, T/4)`-protocols:
/// `M + L + (T/4)(n−1)·log n ≤ (1/2 + 1/n)·T·n·log n < (3/4)·T·n·log n = (3/4)·nL`
/// with `L = T log n`, `M = T·n·log n / 4`.
pub fn thm4_condition(n: usize, t_rounds: usize) -> bool {
    let log_n = BitString::width_for(n).max(1) as f64;
    let t = t_rounds as f64;
    let nf = n as f64;
    let l = t * log_n;
    let m = t * nf * log_n / 4.0;
    m + l + 0.25 * t * (nf - 1.0) * log_n < 0.75 * t * nf * log_n
        && (0.75 * t * nf * log_n - 0.75 * nf * l).abs() < 1e-6
}

/// Theorem 8's displayed inequality with `L = T²·log n`,
/// `M = T·n·log n/4`, level `k ≤ T`:
/// `k·M + L + (1/4)·T²·(n−1)·log n < (3/4)·T²·n·log n = (3/4)·nL`.
pub fn thm8_condition(n: usize, t_param: usize, k: usize) -> bool {
    assert!(k <= t_param, "the theorem only needs levels k ≤ T(n)");
    let log_n = BitString::width_for(n).max(1) as f64;
    let t = t_param as f64;
    let nf = n as f64;
    let l = t * t * log_n;
    let m = t * nf * log_n / 4.0;
    k as f64 * m + l + 0.25 * t * t * (nf - 1.0) * log_n < 0.75 * t * t * nf * log_n
        && (0.75 * t * t * nf * log_n - 0.75 * nf * l).abs() < 1e-6
}

// =====================================================================
// Toy-scale protocol census (n = 2, b = 1)
// =====================================================================

/// Exhaustive census of which functions `{0,1}^{2L} → {0,1}` are
/// computable by a two-node, 1-bit-bandwidth protocol in `t ∈ {0, 1}`
/// rounds, where *both* nodes must output the value.
///
/// Input convention: node 0 holds the low `l` bits of the input index,
/// node 1 the high `l` bits. A function is a truth table over
/// `2^{2l}` inputs.
#[derive(Clone, Debug)]
pub struct ToyCensus {
    /// Bits per node.
    pub l: usize,
    /// Protocol rounds.
    pub t: usize,
    /// `computable[f]` for every truth table `f` (bit `i` of `f` =
    /// output on input index `i`).
    pub computable: Vec<bool>,
}

impl ToyCensus {
    /// Number of computable functions.
    pub fn computable_count(&self) -> usize {
        self.computable.iter().filter(|c| **c).count()
    }

    /// Total number of functions.
    pub fn total(&self) -> usize {
        self.computable.len()
    }

    /// The lexicographically-first hard function, under the paper's
    /// convention of reading a function as the bit vector
    /// `(f(0), f(1), …)` — i.e. `f(0)` is the most significant position.
    pub fn first_hard_function(&self) -> Option<u64> {
        let entries = 2usize.pow(2 * self.l as u32);
        // Lexicographic on (f(0), f(1), ...): sort key is the value read
        // with f(0) as the MSB.
        let mut tables: Vec<u64> = (0..self.computable.len() as u64).collect();
        tables.sort_by_key(|&f| {
            let mut key = 0u64;
            for i in 0..entries {
                key = (key << 1) | ((f >> i) & 1);
            }
            key
        });
        tables.into_iter().find(|&f| !self.computable[f as usize])
    }
}

/// Union-find for the census component computation.
fn find(parent: &mut [usize], x: usize) -> usize {
    if parent[x] != x {
        parent[x] = find(parent, parent[x]);
    }
    parent[x]
}

fn union(parent: &mut [usize], a: usize, b: usize) {
    let (ra, rb) = (find(parent, a), find(parent, b));
    if ra != rb {
        parent[ra] = rb;
    }
}

/// Run the census for `l ∈ {1, 2}` bits per node and `t ∈ {0, 1}` rounds.
///
/// For `t = 1`, a protocol is a pair of message functions
/// `m_i : {0,1}^l → {0,1}` plus output functions; `f` is computable with
/// `(m_0, m_1)` iff it is constant on every class of node 0's view
/// `(x_0, m_1(x_1))` *and* of node 1's view `(x_1, m_0(x_0))` — i.e.
/// constant on the connected components of the two view partitions'
/// overlap. For `t = 0` the views are `x_0` and `x_1` alone.
pub fn census_two_nodes(l: usize, t: usize) -> ToyCensus {
    assert!(
        (1..=2).contains(&l),
        "census limited to 1–2 input bits per node"
    );
    assert!(t <= 1, "census limited to t = 0 or 1");
    let per_node = 1usize << l; // inputs per node
    let inputs = per_node * per_node; // joint inputs
    let functions = 1usize << inputs;
    let mut computable = vec![false; functions];

    // Message function space: all maps {0,1}^l → {0,1}; for t = 0 there is
    // effectively a single (empty) message function.
    let msg_space: usize = if t == 0 { 1 } else { 1 << per_node };

    for m0 in 0..msg_space {
        for m1 in 0..msg_space {
            // Build the component structure over joint inputs.
            let mut parent: Vec<usize> = (0..inputs).collect();
            // Node 0's view: (x0, m1(x1)) — union inputs with equal views.
            // Node 1's view: (x1, m0(x0)).
            let view0 = |x0: usize, x1: usize| {
                if t == 0 {
                    x0
                } else {
                    (x0 << 1) | ((m1 >> x1) & 1)
                }
            };
            let view1 = |x0: usize, x1: usize| {
                if t == 0 {
                    x1
                } else {
                    (x1 << 1) | ((m0 >> x0) & 1)
                }
            };
            // Group by views: first occurrence per view value.
            let mut seen0 = vec![usize::MAX; 2 * per_node];
            let mut seen1 = vec![usize::MAX; 2 * per_node];
            for x0 in 0..per_node {
                for x1 in 0..per_node {
                    let idx = x1 * per_node + x0;
                    let v0 = view0(x0, x1);
                    if seen0[v0] == usize::MAX {
                        seen0[v0] = idx;
                    } else {
                        union(&mut parent, seen0[v0], idx);
                    }
                    let v1 = view1(x0, x1);
                    if seen1[v1] == usize::MAX {
                        seen1[v1] = idx;
                    } else {
                        union(&mut parent, seen1[v1], idx);
                    }
                }
            }
            // Components.
            let mut comp_of = vec![usize::MAX; inputs];
            let mut comps = 0;
            for i in 0..inputs {
                let r = find(&mut parent, i);
                if comp_of[r] == usize::MAX {
                    comp_of[r] = comps;
                    comps += 1;
                }
            }
            // All functions constant on components are computable.
            for assignment in 0u64..(1 << comps) {
                let mut f = 0u64;
                for i in 0..inputs {
                    let c = comp_of[find(&mut parent, i)];
                    if (assignment >> c) & 1 == 1 {
                        f |= 1 << i;
                    }
                }
                computable[f as usize] = true;
            }
        }
    }
    ToyCensus { l, t, computable }
}

// =====================================================================
// Theorem 2 end-to-end at toy scale
// =====================================================================

/// The uniform Theorem 2 diagonal language at `n = 2, b = 1`: decide
/// `f* = ` the lexicographically-first function with no
/// `(2, 1, L, t)`-protocol, by broadcasting the inputs (`L` rounds at one
/// bit of bandwidth) and evaluating `f*` locally — where "locally" means
/// actually running the protocol census, exactly as the theorem's decider
/// enumerates protocols.
#[derive(Clone, Copy, Debug)]
pub struct ToyHardLanguage {
    /// Input bits per node.
    pub l: usize,
    /// Protocol budget the hard function must evade.
    pub t: usize,
}

impl ToyHardLanguage {
    /// The hard truth table (computed by census; `None` if every function
    /// has a protocol at this budget).
    pub fn hard_function(&self) -> Option<u64> {
        census_two_nodes(self.l, self.t).first_hard_function()
    }

    /// Ground-truth membership of input `(x0, x1)`.
    pub fn contains(&self, x0: u64, x1: u64) -> bool {
        let f = self.hard_function().expect("hard function exists");
        let idx = (x1 as usize) * (1 << self.l) + x0 as usize;
        (f >> idx) & 1 == 1
    }

    /// Decide membership distributively: both nodes exchange their inputs
    /// at one bit per round and evaluate `f*`. Returns the (unanimous)
    /// verdict and the run statistics — `rounds == L`, i.e. `T(n)` in the
    /// theorem's parametrisation, while the census certifies no `t`-round
    /// protocol decides the same language.
    pub fn decide_distributed(&self, x0: u64, x1: u64) -> (bool, RunStats) {
        let l = self.l;
        let f = self.hard_function().expect("hard function exists");
        let engine = Engine::new(2).with_bandwidth(1);
        let programs = vec![
            ToyDeciderNode {
                l,
                input: x0,
                other: 0,
                f,
            },
            ToyDeciderNode {
                l,
                input: x1,
                other: 0,
                f,
            },
        ];
        let out = engine.run(programs).expect("toy decider runs");
        let verdict = *out.unanimous().expect("decider is unanimous");
        (verdict, out.stats)
    }
}

struct ToyDeciderNode {
    l: usize,
    input: u64,
    other: u64,
    f: u64,
}

impl NodeProgram for ToyDeciderNode {
    type Output = bool;

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<bool> {
        let peer = NodeId(1 - ctx.id.0);
        if round > 0 {
            let got = inbox.from(peer);
            if !got.is_empty() && got.get(0) {
                self.other |= 1 << (round - 1);
            }
        }
        if round < self.l {
            let mut m = BitString::new();
            m.push((self.input >> round) & 1 == 1);
            outbox.send(peer, m);
            Status::Continue
        } else {
            let (x0, x1) = if ctx.id.0 == 0 {
                (self.input, self.other)
            } else {
                (self.other, self.input)
            };
            let idx = (x1 as usize) * (1 << self.l) + x0 as usize;
            Status::Halt((self.f >> idx) & 1 == 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_inequality_behaviour() {
        // Larger t → more protocols; eventually every function is covered.
        assert!(hard_function_exists(64, 6, 60, 1));
        assert!(!hard_function_exists(64, 6, 6, 100));
        // The paper's sufficient threshold: t < L/b − 1.
        let (n, b, l) = (256, 8, 128);
        let thr = sufficient_threshold(b, l);
        assert!(hard_function_exists(n, b, l, thr.floor() as usize - 1));
    }

    #[test]
    fn theorem_conditions_hold_in_their_ranges() {
        // Theorem 2: T(n) ≤ n/(4 log n).
        for n in [64usize, 256, 1024] {
            let log_n = BitString::width_for(n);
            let t_max = n / (4 * log_n);
            for t in [2usize, t_max.max(2) / 2, t_max.max(2)] {
                assert!(thm2_condition(n, t), "thm2 fails at n={n} t={t}");
            }
        }
        // Theorem 4 needs n large enough that 1/2 + 1/n < 3/4.
        for n in [8usize, 64, 512] {
            assert!(thm4_condition(n, 4), "thm4 fails at n={n}");
        }
        assert!(!thm4_condition(2, 4), "thm4's margin needs n > 4");
        // Theorem 8 for all levels k ≤ T.
        for k in 1..=6 {
            assert!(thm8_condition(256, 6, k), "thm8 fails at k={k}");
        }
    }

    #[test]
    fn census_t0_only_constants() {
        // Without communication, both nodes can only agree on constants.
        let c = census_two_nodes(2, 0);
        assert_eq!(c.computable_count(), 2);
        assert!(c.computable[0]); // f ≡ 0
        assert!(c.computable[c.total() - 1]); // f ≡ 1
    }

    #[test]
    fn census_t1_l1_everything_computable() {
        // One exchanged bit reveals the whole 1-bit input: all 16
        // functions of 2 bits are computable.
        let c = census_two_nodes(1, 1);
        assert_eq!(c.computable_count(), 16);
        assert_eq!(c.first_hard_function(), None);
    }

    #[test]
    fn census_t1_l2_has_hard_functions() {
        // One round of 1-bit messages cannot convey 2-bit inputs: hard
        // functions exist, matching Lemma 1's regime t < L/b − 1.
        let c = census_two_nodes(2, 1);
        assert!(c.computable_count() < c.total());
        let hard = c.first_hard_function().expect("hard function exists");
        assert!(!c.computable[hard as usize]);
        // The census is monotone: everything computable at t=0 stays
        // computable at t=1.
        let c0 = census_two_nodes(2, 0);
        for f in 0..c.total() {
            if c0.computable[f] {
                assert!(c.computable[f], "monotonicity violated at {f}");
            }
        }
    }

    #[test]
    fn census_is_stronger_than_lemma1_at_n2() {
        // At n = 2 Lemma 1's bound is too loose to certify hardness
        // (log-log 5 vs 4), yet the exhaustive census still finds hard
        // functions — the census is the stronger tool at toy scale, the
        // counting bound takes over asymptotically.
        assert!(
            !hard_function_exists(2, 1, 2, 1),
            "Lemma 1 is loose at n = 2"
        );
        let c = census_two_nodes(2, 1);
        assert!(
            c.computable_count() < c.total(),
            "census finds hard functions anyway"
        );
        // Asymptotically the inequality certifies hardness at the same
        // (b, L, t) once n grows.
        assert!(hard_function_exists(8, 1, 2, 1));
    }

    #[test]
    fn toy_hard_language_end_to_end() {
        // Theorem 2 at n = 2: the diagonal language is decidable in
        // T = L rounds but (by census) by no t = 1-round protocol.
        let lang = ToyHardLanguage { l: 2, t: 1 };
        let f = lang.hard_function().expect("exists");
        for x0 in 0..4u64 {
            for x1 in 0..4u64 {
                let (verdict, stats) = lang.decide_distributed(x0, x1);
                assert_eq!(verdict, lang.contains(x0, x1), "input ({x0},{x1})");
                assert_eq!(stats.rounds, 2, "decider uses T = L = 2 rounds");
                assert_eq!(stats.max_message_bits, 1, "bandwidth b = 1 respected");
            }
        }
        // And the census certifies the lower bound side.
        let census = census_two_nodes(2, 1);
        assert!(
            !census.computable[f as usize],
            "f* must evade every 1-round protocol"
        );
    }
}
