//! Theorem 6: canonical edge-labelling problems for NCLIQUE(1).
//!
//! Any NCLIQUE(1) verifier `A` induces an *edge labelling problem*: label
//! every edge of the **clique** with the `O(log n)` bits of communication
//! that `A` exchanges over that edge in some accepting run; the local
//! constraint at node `u` accepts its incident labels iff some original
//! label `z′_u` makes `A`'s local execution reproduce exactly those
//! per-edge message sequences and accept. By construction,
//!
//! > the labelling problem is solvable **iff** `G ∈ L`,
//!
//! which is the paper's canonical-completeness statement (Theorem 6): a
//! deterministic `O(T(n))`-round solver for all edge labelling problems
//! would put all of NCLIQUE(1) inside CLIQUE(T(n)).

use cc_graph::Graph;
use cliquesim::{BitString, Engine, NodeId, RoundTranscript, Session, Transcript};

use crate::nondet::{BoolNode, NondetProblem};
use crate::normal_form::local_search;

/// A labelling of all clique edges (unordered pairs), in canonical pair
/// order (`(0,1), (0,2), …`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeLabelling {
    n: usize,
    labels: Vec<BitString>,
}

/// Canonical index of pair `(a, c)`, `a < c`.
fn pair_index(n: usize, a: usize, c: usize) -> usize {
    debug_assert!(a < c && c < n);
    a * n - a * (a + 1) / 2 + (c - a - 1)
}

impl EdgeLabelling {
    /// An all-empty labelling.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            labels: vec![BitString::new(); n * (n - 1) / 2],
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Label of the clique edge `{u, v}`.
    pub fn get(&self, u: usize, v: usize) -> &BitString {
        let (a, c) = (u.min(v), u.max(v));
        &self.labels[pair_index(self.n, a, c)]
    }

    /// Set the label of `{u, v}`.
    pub fn set(&mut self, u: usize, v: usize, label: BitString) {
        let (a, c) = (u.min(v), u.max(v));
        self.labels[pair_index(self.n, a, c)] = label;
    }

    /// Largest label, in bits (Theorem 6 wants `O(log n)` for `T = O(1)`).
    pub fn max_label_bits(&self) -> usize {
        self.labels.iter().map(|l| l.len()).max().unwrap_or(0)
    }
}

/// Encode the two per-round message sequences of one clique edge
/// (`lo → hi` then `hi → lo` per round): `rounds:8`, then per round and
/// direction `len:8 || payload`.
fn encode_edge(rounds: usize, lo_to_hi: &[BitString], hi_to_lo: &[BitString]) -> BitString {
    let mut out = BitString::new();
    out.push_uint(rounds as u64, 8);
    for r in 0..rounds {
        for msgs in [lo_to_hi, hi_to_lo] {
            let m = msgs.get(r).cloned().unwrap_or_default();
            out.push_uint(m.len() as u64, 8);
            out.extend_from(&m);
        }
    }
    out
}

/// Decode one edge label; `None` on malformed input.
fn decode_edge(bits: &BitString) -> Option<(usize, Vec<BitString>, Vec<BitString>)> {
    let mut r = bits.reader();
    let rounds = r.read_uint(8).ok()? as usize;
    let mut lo_to_hi = Vec::with_capacity(rounds);
    let mut hi_to_lo = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        for dir in 0..2 {
            let len = r.read_uint(8).ok()? as usize;
            let payload = r.read_bits(len).ok()?;
            if dir == 0 {
                lo_to_hi.push(payload);
            } else {
                hi_to_lo.push(payload);
            }
        }
    }
    r.expect_end().ok()?;
    Some((rounds, lo_to_hi, hi_to_lo))
}

/// The canonical edge labelling induced by an accepting run of the inner
/// verifier on the honest certificate; `None` when `g ∉ L` (no accepting
/// run exists, so no valid labelling does either).
pub fn canonical_labelling<P: NondetProblem + ?Sized>(
    problem: &P,
    g: &Graph,
) -> Option<EdgeLabelling> {
    let n = g.n();
    let z = problem.prove(g)?;
    let engine = Engine::new(n)
        .with_bandwidth_multiplier(problem.bandwidth_multiplier())
        .with_transcripts(true);
    let mut session = Session::new(engine);
    let programs: Vec<BoolNode> = (0..n)
        .map(|v| {
            let id = NodeId::from(v);
            problem.verifier_node(n, id, &g.input_row(id), &z.0[v])
        })
        .collect();
    let out = session.run(programs).ok()?;
    if !out.outputs.iter().all(|a| *a) {
        return None;
    }
    let transcripts = out.transcripts.expect("recording enabled");
    let rounds = transcripts
        .iter()
        .map(|t| t.rounds.len())
        .max()
        .unwrap_or(0);

    let mut labelling = EdgeLabelling::empty(n);
    for a in 0..n {
        for c in (a + 1)..n {
            // Messages *sent* in round r on each direction of {a, c}.
            let dir = |t: &Transcript, dst: usize| -> Vec<BitString> {
                (0..rounds)
                    .map(|r| {
                        t.rounds
                            .get(r)
                            .and_then(|rt| {
                                rt.sent
                                    .iter()
                                    .find(|(d, _)| d.index() == dst)
                                    .map(|(_, m)| m.clone())
                            })
                            .unwrap_or_default()
                    })
                    .collect()
            };
            let a_to_c = dir(&transcripts[a], c);
            let c_to_a = dir(&transcripts[c], a);
            labelling.set(a, c, encode_edge(rounds, &a_to_c, &c_to_a));
        }
    }
    Some(labelling)
}

/// Evaluate node `u`'s local constraint: its incident labels must be
/// well-formed, agree on the round count, and admit an original label
/// `z′_u` whose local run reproduces them and accepts. This is the
/// neighbourhood constraint `C` of Theorem 6 (local computation only).
pub fn constraint_holds<P: NondetProblem + ?Sized>(
    problem: &P,
    g: &Graph,
    labelling: &EdgeLabelling,
    u: usize,
) -> bool {
    let n = g.n();
    let mut rounds = None;
    // Rebuild u's node transcript from its incident edge labels: the label
    // stores messages *sent in round r*; the node transcript's round-r
    // receptions are the peer's round-(r−1) sends.
    let mut sent_per_round: Vec<Vec<(NodeId, BitString)>> = Vec::new();
    let mut peer_sends: Vec<Vec<BitString>> = vec![Vec::new(); n];
    for v in 0..n {
        if v == u {
            continue;
        }
        let Some((r, lo_to_hi, hi_to_lo)) = decode_edge(labelling.get(u, v)) else {
            return false;
        };
        match rounds {
            None => rounds = Some(r),
            Some(prev) if prev == r => {}
            _ => return false, // inconsistent round counts
        }
        let (mine, theirs) = if u < v {
            (lo_to_hi, hi_to_lo)
        } else {
            (hi_to_lo, lo_to_hi)
        };
        if sent_per_round.len() < r {
            sent_per_round.resize(r, Vec::new());
        }
        for (ri, m) in mine.into_iter().enumerate() {
            if !m.is_empty() {
                sent_per_round[ri].push((NodeId::from(v), m));
            }
        }
        peer_sends[v] = theirs;
    }
    let rounds = rounds.unwrap_or(0);
    let mut transcript = Transcript::default();
    for r in 0..rounds {
        let mut rt = RoundTranscript::default();
        if r > 0 {
            for (v, sends) in peer_sends.iter().enumerate() {
                if let Some(m) = sends.get(r - 1) {
                    if !m.is_empty() {
                        rt.received.push((NodeId::from(v), m.clone()));
                    }
                }
            }
        }
        rt.sent = sent_per_round.get(r).cloned().unwrap_or_default();
        rt.sent.sort_by_key(|(d, _)| d.index());
        transcript.rounds.push(rt);
    }
    local_search(
        problem,
        n,
        NodeId::from(u),
        &g.input_row(NodeId::from(u)),
        &transcript,
    )
}

/// Check the whole labelling: every node's constraint holds.
pub fn check_labelling<P: NondetProblem + ?Sized>(
    problem: &P,
    g: &Graph,
    labelling: &EdgeLabelling,
) -> bool {
    (0..g.n()).all(|u| constraint_holds(problem, g, labelling, u))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{KColoring, SetKind, SetProblem};
    use cc_graph::gen;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pair_index_is_canonical() {
        let n = 5;
        let mut seen = std::collections::HashSet::new();
        for a in 0..n {
            for c in (a + 1)..n {
                assert!(seen.insert(pair_index(n, a, c)));
            }
        }
        assert_eq!(seen.len(), 10);
        assert!(seen.iter().all(|&i| i < 10));
    }

    #[test]
    fn edge_codec_roundtrip() {
        let a = vec![BitString::from_bits([true]), BitString::new()];
        let b = vec![BitString::new(), BitString::from_bits([false, true])];
        let enc = encode_edge(2, &a, &b);
        let (r, da, db) = decode_edge(&enc).unwrap();
        assert_eq!(r, 2);
        assert_eq!(da, a);
        assert_eq!(db, b);
        assert!(decode_edge(&BitString::from_bits([true; 3])).is_none());
    }

    #[test]
    fn canonical_labelling_solves_yes_instances() {
        // Theorem 6, completeness direction: G ∈ L ⟹ the canonical
        // labelling exists and satisfies every node constraint.
        let p = KColoring { k: 3 };
        for seed in 0..3 {
            let (g, _) = gen::k_colorable(6, 3, 0.6, seed);
            let lab = canonical_labelling(&p, &g).expect("yes-instance");
            assert!(check_labelling(&p, &g, &lab), "seed {seed}");
        }
    }

    #[test]
    fn labels_are_log_n_sized_for_constant_round_verifiers() {
        let p = KColoring { k: 3 };
        for n in [5usize, 8, 12] {
            let (g, _) = gen::k_colorable(n, 3, 0.5, n as u64);
            let lab = canonical_labelling(&p, &g).unwrap();
            // T = O(1) rounds, O(log n) bits per message: the per-edge
            // label is O(log n).
            let bound = 8 + 3 * (16 + 2 * cliquesim::BitString::width_for(n));
            assert!(
                lab.max_label_bits() <= bound,
                "n={n}: {} > {bound}",
                lab.max_label_bits()
            );
        }
    }

    #[test]
    fn no_instance_admits_no_labelling() {
        // Theorem 6, soundness direction: on a no-instance, neither the
        // canonical construction nor adversarial labellings satisfy all
        // constraints.
        let p = KColoring { k: 2 };
        let c5 = gen::cycle(5);
        assert!(canonical_labelling(&p, &c5).is_none());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10 {
            let mut lab = EdgeLabelling::empty(5);
            for u in 0..5 {
                for v in (u + 1)..5 {
                    let len = rng.gen_range(0..40);
                    lab.set(u, v, (0..len).map(|_| rng.gen_bool(0.5)).collect());
                }
            }
            assert!(!check_labelling(&p, &c5, &lab));
        }
        // Transplanted labellings from a 2-colourable graph on the same
        // node count must also fail.
        let p4 = gen::path(5);
        let honest = canonical_labelling(&p, &p4).unwrap();
        assert!(!check_labelling(&p, &c5, &honest));
    }

    #[test]
    fn tampering_with_one_edge_label_is_caught() {
        let p = SetProblem {
            kind: SetKind::IndependentSet,
            k: 2,
        };
        let g = gen::cycle(5);
        let lab = canonical_labelling(&p, &g).expect("C5 has a 2-IS");
        assert!(check_labelling(&p, &g, &lab));
        let mut bad = lab.clone();
        let mut tweaked = bad.get(1, 3).clone();
        if tweaked.len() > 10 {
            tweaked.set(10, !tweaked.get(10));
            bad.set(1, 3, tweaked);
            assert!(!check_labelling(&p, &g, &bad));
        }
    }

    #[test]
    fn solvable_iff_member_exhaustive_tiny() {
        // The full Theorem 6 equivalence on all 4-node graphs for 1-VC:
        // canonical solvable ⟺ G ∈ L. (The ⟸ direction uses the honest
        // construction; the ⟹ direction is vacuous here because canonical
        // returns None on no-instances, and adversarial checks above cover
        // soundness.)
        let p = SetProblem {
            kind: SetKind::VertexCover,
            k: 1,
        };
        for g in Graph::enumerate_all(4) {
            let lab = canonical_labelling(&p, &g);
            assert_eq!(lab.is_some(), p.contains(&g), "graph {g:?}");
            if let Some(lab) = lab {
                assert!(check_labelling(&p, &g, &lab), "graph {g:?}");
            }
        }
    }
}
