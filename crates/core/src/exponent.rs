//! Problem exponents (§7): `δ(L) = inf{δ : L solvable in O(n^δ) rounds}`.
//!
//! The fine-grained experiments measure round counts across a range of
//! `n` and fit `rounds ≈ c · n^δ` by least squares in log-log space; the
//! fitted `δ̂` is compared against the paper's exponent upper bounds
//! (Figure 1 / `cc-reductions::atlas`).

/// Result of a log-log regression `ln rounds = δ·ln n + ln c`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExponentFit {
    /// Fitted exponent `δ̂`.
    pub delta: f64,
    /// Fitted constant `c` (rounds at n = 1 by extrapolation).
    pub coeff: f64,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
}

/// Why a `(n, rounds)` sample set cannot be fitted. Carries enough of the
/// offending input to reproduce the failure from the message alone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExponentFitError {
    /// Fewer than two samples were supplied.
    TooFewSamples {
        /// Number of samples actually supplied.
        got: usize,
    },
    /// A sample had `n = 0` or `rounds = 0`, which has no logarithm.
    NonPositiveSample {
        /// Problem size of the offending sample.
        n: usize,
        /// Round count of the offending sample.
        rounds: usize,
    },
    /// All samples share a single `n`, so the slope is undetermined.
    DuplicateN {
        /// The repeated problem size.
        n: usize,
        /// Number of samples collapsed onto that size.
        count: usize,
    },
}

impl std::fmt::Display for ExponentFitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooFewSamples { got } => {
                write!(f, "need at least two samples, got {got}")
            }
            Self::NonPositiveSample { n, rounds } => {
                write!(
                    f,
                    "samples must be positive, got (n = {n}, rounds = {rounds})"
                )
            }
            Self::DuplicateN { n, count } => {
                write!(
                    f,
                    "need at least two distinct n values, got {count} samples all at n = {n}"
                )
            }
        }
    }
}

impl std::error::Error for ExponentFitError {}

/// Fit an exponent to `(n, rounds)` samples. Requires ≥ 2 samples with
/// distinct `n` and positive round counts; degenerate sample sets return
/// a typed [`ExponentFitError`] naming the offending input.
pub fn fit_exponent(samples: &[(usize, usize)]) -> Result<ExponentFit, ExponentFitError> {
    if samples.len() < 2 {
        return Err(ExponentFitError::TooFewSamples { got: samples.len() });
    }
    for &(n, r) in samples {
        if n < 1 || r < 1 {
            return Err(ExponentFitError::NonPositiveSample { n, rounds: r });
        }
    }
    let first_n = samples[0].0;
    if samples.iter().all(|&(n, _)| n == first_n) {
        return Err(ExponentFitError::DuplicateN {
            n: first_n,
            count: samples.len(),
        });
    }
    let pts: Vec<(f64, f64)> = samples
        .iter()
        .map(|&(n, r)| ((n as f64).ln(), (r as f64).ln()))
        .collect();
    let count = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = count * sxx - sx * sx;
    let delta = (count * sxy - sx * sy) / denom;
    let intercept = (sy - delta * sx) / count;

    let mean_y = sy / count;
    let ss_tot: f64 = pts.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = pts
        .iter()
        .map(|p| (p.1 - (delta * p.0 + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot < 1e-12 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Ok(ExponentFit {
        delta,
        coeff: intercept.exp(),
        r_squared,
    })
}

/// Measure an algorithm's round counts across sizes: `run(n)` must return
/// the number of rounds consumed at size `n`.
pub fn measure_rounds(ns: &[usize], mut run: impl FnMut(usize) -> usize) -> Vec<(usize, usize)> {
    ns.iter().map(|&n| (n, run(n))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_planted_exponents() {
        for (delta, coeff) in [(0.5, 2.0), (1.0, 1.0), (1.0 / 3.0, 5.0)] {
            let samples: Vec<(usize, usize)> = [32usize, 64, 128, 256, 512]
                .iter()
                .map(|&n| (n, (coeff * (n as f64).powf(delta)).round() as usize))
                .collect();
            let fit = fit_exponent(&samples).unwrap();
            assert!(
                (fit.delta - delta).abs() < 0.05,
                "planted {delta}, fitted {}",
                fit.delta
            );
            assert!(fit.r_squared > 0.99);
        }
    }

    #[test]
    fn flat_data_fits_zero_exponent() {
        let samples = vec![(16, 7), (32, 7), (64, 7), (128, 7)];
        let fit = fit_exponent(&samples).unwrap();
        assert!(fit.delta.abs() < 1e-9);
        assert!((fit.coeff - 7.0).abs() < 1e-6);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn noisy_data_reports_imperfect_r2() {
        let samples = vec![(16, 10), (32, 30), (64, 25), (128, 90)];
        let fit = fit_exponent(&samples).unwrap();
        assert!(fit.r_squared < 1.0);
        assert!(fit.delta > 0.0);
    }

    #[test]
    fn rejects_degenerate_input() {
        assert_eq!(
            fit_exponent(&[(8, 3), (8, 4)]),
            Err(ExponentFitError::DuplicateN { n: 8, count: 2 })
        );
        assert_eq!(
            fit_exponent(&[(8, 3)]),
            Err(ExponentFitError::TooFewSamples { got: 1 })
        );
        assert_eq!(
            fit_exponent(&[]),
            Err(ExponentFitError::TooFewSamples { got: 0 })
        );
        assert_eq!(
            fit_exponent(&[(8, 3), (16, 0)]),
            Err(ExponentFitError::NonPositiveSample { n: 16, rounds: 0 })
        );
        let msg = fit_exponent(&[(8, 3), (8, 4)]).unwrap_err().to_string();
        assert!(msg.contains("distinct n"), "repro message was {msg:?}");
        assert!(msg.contains("n = 8"), "repro message was {msg:?}");
    }

    #[test]
    fn measure_helper() {
        let samples = measure_rounds(&[2, 4, 8], |n| n * n);
        assert_eq!(samples, vec![(2, 4), (4, 16), (8, 64)]);
    }
}
