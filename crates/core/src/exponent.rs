//! Problem exponents (§7): `δ(L) = inf{δ : L solvable in O(n^δ) rounds}`.
//!
//! The fine-grained experiments measure round counts across a range of
//! `n` and fit `rounds ≈ c · n^δ` by least squares in log-log space; the
//! fitted `δ̂` is compared against the paper's exponent upper bounds
//! (Figure 1 / `cc-reductions::atlas`).

/// Result of a log-log regression `ln rounds = δ·ln n + ln c`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExponentFit {
    /// Fitted exponent `δ̂`.
    pub delta: f64,
    /// Fitted constant `c` (rounds at n = 1 by extrapolation).
    pub coeff: f64,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
}

/// Fit an exponent to `(n, rounds)` samples. Requires ≥ 2 samples with
/// distinct `n` and positive round counts.
pub fn fit_exponent(samples: &[(usize, usize)]) -> ExponentFit {
    assert!(samples.len() >= 2, "need at least two samples");
    let pts: Vec<(f64, f64)> = samples
        .iter()
        .map(|&(n, r)| {
            assert!(n >= 1 && r >= 1, "samples must be positive");
            ((n as f64).ln(), (r as f64).ln())
        })
        .collect();
    let count = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = count * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "need at least two distinct n values");
    let delta = (count * sxy - sx * sy) / denom;
    let intercept = (sy - delta * sx) / count;

    let mean_y = sy / count;
    let ss_tot: f64 = pts.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = pts
        .iter()
        .map(|p| (p.1 - (delta * p.0 + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot < 1e-12 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    ExponentFit {
        delta,
        coeff: intercept.exp(),
        r_squared,
    }
}

/// Measure an algorithm's round counts across sizes: `run(n)` must return
/// the number of rounds consumed at size `n`.
pub fn measure_rounds(ns: &[usize], mut run: impl FnMut(usize) -> usize) -> Vec<(usize, usize)> {
    ns.iter().map(|&n| (n, run(n))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_planted_exponents() {
        for (delta, coeff) in [(0.5, 2.0), (1.0, 1.0), (1.0 / 3.0, 5.0)] {
            let samples: Vec<(usize, usize)> = [32usize, 64, 128, 256, 512]
                .iter()
                .map(|&n| (n, (coeff * (n as f64).powf(delta)).round() as usize))
                .collect();
            let fit = fit_exponent(&samples);
            assert!(
                (fit.delta - delta).abs() < 0.05,
                "planted {delta}, fitted {}",
                fit.delta
            );
            assert!(fit.r_squared > 0.99);
        }
    }

    #[test]
    fn flat_data_fits_zero_exponent() {
        let samples = vec![(16, 7), (32, 7), (64, 7), (128, 7)];
        let fit = fit_exponent(&samples);
        assert!(fit.delta.abs() < 1e-9);
        assert!((fit.coeff - 7.0).abs() < 1e-6);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn noisy_data_reports_imperfect_r2() {
        let samples = vec![(16, 10), (32, 30), (64, 25), (128, 90)];
        let fit = fit_exponent(&samples);
        assert!(fit.r_squared < 1.0);
        assert!(fit.delta > 0.0);
    }

    #[test]
    #[should_panic(expected = "distinct n")]
    fn rejects_degenerate_input() {
        fit_exponent(&[(8, 3), (8, 4)]);
    }

    #[test]
    fn measure_helper() {
        let samples = measure_rounds(&[2, 4, 8], |n| n * n);
        assert_eq!(samples, vec![(2, 4), (4, 16), (8, 64)]);
    }
}
