//! NCLIQUE(1)-labelling problems (§8 "NCLIQUE(1) as an LCL analogue").
//!
//! The paper defines a class of *search* problems analogous to LCLs in the
//! LOCAL model: a problem is a set of pairs `(G, z)` where `z` is an
//! output labelling and membership is decidable in constant rounds; the
//! task is to *find* a valid `z` (or reject when none exists). "This class
//! captures many natural graph problems of interest, but we do not have
//! lower bounds for any problem in this class."
//!
//! We package the class as a trait: a constant-round *checker* (a
//! [`NondetProblem`] verifier reused label-for-label) plus a centralised
//! *solution oracle* standing in for whatever algorithm solves the search
//! problem. The trivial gather-based solver (an upper bound of exponent 1)
//! is provided for every problem.

use cc_graph::Graph;
use cliquesim::{RunStats, Session};

use crate::nondet::{verify, Labelling, NondetProblem};

/// A search problem whose solutions are checkable in constant rounds.
pub trait LabellingSearch {
    /// The constant-round checker: `(G, z) ∈ L` iff the verifier accepts.
    type Checker: NondetProblem;

    /// Access the checker.
    fn checker(&self) -> &Self::Checker;

    /// A centralised solution oracle (ground truth; may be exponential).
    fn solve(&self, g: &Graph) -> Option<Labelling>;
}

/// Outcome of a distributed search run.
#[derive(Debug)]
pub struct SearchOutcome {
    /// The output labelling, if the instance is solvable.
    pub labelling: Option<Labelling>,
    /// Rounds spent producing and checking it.
    pub stats: RunStats,
}

/// The trivial exponent-1 upper bound for every NCLIQUE(1)-labelling
/// problem: gather the whole graph at every node (`O(n/log n)` rounds),
/// solve locally with the oracle (all nodes compute the same
/// lexicographic solution), then run the constant-round checker once to
/// certify the output.
pub fn solve_by_gather<S: LabellingSearch>(
    search: &S,
    g: &Graph,
) -> Result<SearchOutcome, cc_routing::RouteError> {
    let n = g.n();
    let mut session = Session::new(cliquesim::Engine::new(n));

    // Gather: every node broadcasts its row; afterwards everyone holds G.
    let payloads = (0..n)
        .map(|v| g.input_row(cliquesim::NodeId::from(v)))
        .collect();
    let _views = cc_routing::all_to_all_broadcast(&mut session, payloads)?;

    // Local solve (all nodes run the same deterministic oracle).
    let solution = search.solve(g);
    let mut stats = session.stats();
    if let Some(z) = &solution {
        // Distributed certification of the output labelling.
        let verdict = verify(search.checker(), g, z).expect("checker runs");
        assert!(verdict.accepted, "oracle produced an invalid labelling");
        stats.absorb(&verdict.stats);
    }
    Ok(SearchOutcome {
        labelling: solution,
        stats,
    })
}

/// Search version of k-colouring: output a proper colouring.
#[derive(Clone, Copy, Debug)]
pub struct ColoringSearch {
    checker: crate::problems::KColoring,
}

impl ColoringSearch {
    /// Search for a proper `k`-colouring.
    pub fn new(k: usize) -> Self {
        Self {
            checker: crate::problems::KColoring { k },
        }
    }
}

impl LabellingSearch for ColoringSearch {
    type Checker = crate::problems::KColoring;

    fn checker(&self) -> &Self::Checker {
        &self.checker
    }

    fn solve(&self, g: &Graph) -> Option<Labelling> {
        self.checker.prove(g)
    }
}

/// Search version of "spanning tree": output a rooted spanning tree
/// certificate (the connectivity proof labelling).
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanningTreeSearch {
    checker: crate::problems::Connectivity,
}

impl LabellingSearch for SpanningTreeSearch {
    type Checker = crate::problems::Connectivity;

    fn checker(&self) -> &Self::Checker {
        &self.checker
    }

    fn solve(&self, g: &Graph) -> Option<Labelling> {
        self.checker.prove(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::gen;

    #[test]
    fn coloring_search_finds_and_certifies() {
        let s = ColoringSearch::new(3);
        let (g, _) = gen::k_colorable(8, 3, 0.6, 4);
        let out = solve_by_gather(&s, &g).unwrap();
        assert!(out.labelling.is_some());
        assert!(out.stats.rounds > 0);
    }

    #[test]
    fn coloring_search_rejects_unsolvable() {
        let s = ColoringSearch::new(2);
        let out = solve_by_gather(&s, &gen::cycle(5)).unwrap();
        assert!(out.labelling.is_none());
    }

    #[test]
    fn spanning_tree_search() {
        let s = SpanningTreeSearch::default();
        let out = solve_by_gather(&s, &gen::path(7)).unwrap();
        assert!(out.labelling.is_some());
        let out2 = solve_by_gather(&s, &gen::cliques(6, 2)).unwrap();
        assert!(
            out2.labelling.is_none(),
            "disconnected graphs have no spanning tree"
        );
    }

    #[test]
    fn gather_cost_is_linear_in_n_over_log_n() {
        // The exponent-1 upper bound the paper assigns this class.
        let s = SpanningTreeSearch::default();
        let mut rounds = Vec::new();
        for n in [16usize, 32, 64] {
            let out = solve_by_gather(&s, &gen::path(n)).unwrap();
            rounds.push((n, out.stats.rounds));
        }
        assert!(
            rounds[2].1 > rounds[0].1,
            "gather cost grows with n: {rounds:?}"
        );
    }
}
