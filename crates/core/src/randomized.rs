//! Randomness (§8 "Conclusions — Randomness").
//!
//! The paper observes that a one-sided Monte Carlo algorithm converts to
//! a nondeterministic one: if the algorithm never accepts a no-instance,
//! then "some coin outcome accepts" is exactly `∃z : A(G, z) = 1` with the
//! coins as the certificate. Hence Theorem 4 also separates one-sided
//! Monte Carlo time from deterministic time.
//!
//! [`MonteCarloAdapter`] implements the conversion generically: wrap any
//! one-sided randomized decider and obtain a [`NondetProblem`] whose
//! labels are the per-node coin strings. The adapter's prover *samples*
//! coins (with a deterministic seed schedule) — completeness holds with
//! the algorithm's success probability amplified by repetition, soundness
//! is inherited unconditionally.

use cc_graph::Graph;
use cliquesim::{BitString, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::nondet::{BoolNode, Labelling, NondetProblem};

/// A one-sided Monte Carlo congested clique algorithm: given per-node coin
/// strings it runs a deterministic verifier that **never accepts a
/// no-instance**, and accepts a yes-instance with probability at least
/// `success_probability` over uniform coins.
pub trait OneSidedMonteCarlo {
    /// Report name.
    fn name(&self) -> String;

    /// Ground-truth membership (tests/experiments only).
    fn contains(&self, g: &Graph) -> bool;

    /// Coins used per node, in bits.
    fn coin_bits(&self, n: usize) -> usize;

    /// Verifier time bound in rounds.
    fn time_bound(&self, n: usize) -> usize;

    /// Per-success-trial acceptance probability lower bound, for
    /// amplification bookkeeping.
    fn success_probability(&self, n: usize) -> f64;

    /// Build node `v`'s program from its local input and coin string.
    fn node(&self, n: usize, v: NodeId, row: &BitString, coins: &BitString) -> BoolNode;
}

/// The §8 conversion: coins become certificates.
#[derive(Clone, Debug)]
pub struct MonteCarloAdapter<A> {
    /// The randomized algorithm.
    pub algorithm: A,
    /// How many independent coin samples the prover tries before giving
    /// up (amplification factor; failure probability ≤ (1−p)^attempts).
    pub prover_attempts: usize,
    /// Seed for the prover's deterministic coin schedule.
    pub seed: u64,
}

impl<A: OneSidedMonteCarlo> MonteCarloAdapter<A> {
    /// Wrap an algorithm with a replayable prover.
    pub fn new(algorithm: A, prover_attempts: usize, seed: u64) -> Self {
        Self {
            algorithm,
            prover_attempts,
            seed,
        }
    }

    fn sample(&self, n: usize, attempt: usize) -> Labelling {
        let bits = self.algorithm.coin_bits(n);
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9));
        Labelling(
            (0..n)
                .map(|_| (0..bits).map(|_| rng.gen_bool(0.5)).collect())
                .collect(),
        )
    }
}

impl<A: OneSidedMonteCarlo + Clone + Send + 'static> NondetProblem for MonteCarloAdapter<A> {
    fn name(&self) -> String {
        format!("mc-to-nondet({})", self.algorithm.name())
    }

    fn contains(&self, g: &Graph) -> bool {
        self.algorithm.contains(g)
    }

    fn label_size(&self, n: usize) -> usize {
        self.algorithm.coin_bits(n)
    }

    fn time_bound(&self, n: usize) -> usize {
        self.algorithm.time_bound(n)
    }

    fn prove(&self, g: &Graph) -> Option<Labelling> {
        // Sample coin certificates until the verifier accepts (bounded
        // repetition — the ∃ quantifier made effective by amplification).
        for attempt in 0..self.prover_attempts {
            let z = self.sample(g.n(), attempt);
            if let Ok(v) = crate::nondet::verify(self, g, &z) {
                if v.accepted {
                    return Some(z);
                }
            }
        }
        None
    }

    fn verifier_node(&self, n: usize, v: NodeId, row: &BitString, label: &BitString) -> BoolNode {
        self.algorithm.node(n, v, row, label)
    }
}

/// A concrete one-sided Monte Carlo algorithm: randomized k-colouring.
/// Each node's coins are a candidate colour; the verifier broadcasts and
/// checks properness. Never accepts a non-k-colourable graph; accepts a
/// k-colourable one whenever the sampled colouring happens to be proper.
#[derive(Clone, Copy, Debug)]
pub struct RandomizedColoring {
    /// Number of colours.
    pub k: usize,
}

impl OneSidedMonteCarlo for RandomizedColoring {
    fn name(&self) -> String {
        format!("randomized-{}-colouring", self.k)
    }

    fn contains(&self, g: &Graph) -> bool {
        cc_graph::reference::find_coloring(g, self.k).is_some()
    }

    fn coin_bits(&self, _n: usize) -> usize {
        BitString::width_for(self.k.max(2))
    }

    fn time_bound(&self, _n: usize) -> usize {
        1
    }

    fn success_probability(&self, n: usize) -> f64 {
        // At least one proper colouring out of k^n assignments (crude).
        (self.k as f64).powi(-(n as i32))
    }

    fn node(&self, n: usize, v: NodeId, row: &BitString, coins: &BitString) -> BoolNode {
        crate::problems::KColoring { k: self.k }.verifier_node(n, v, row, coins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nondet::{prove_and_verify, verify};
    use cc_graph::gen;

    fn adapter() -> MonteCarloAdapter<RandomizedColoring> {
        // Triangle-free-ish sparse graphs are easy to 3-colour by luck
        // with enough attempts at small n.
        MonteCarloAdapter::new(RandomizedColoring { k: 3 }, 5000, 99)
    }

    #[test]
    fn conversion_completeness_by_amplification() {
        let a = adapter();
        let g = gen::cycle(6); // 2-colourable, certainly 3-colourable
        let verdict = prove_and_verify(&a, &g)
            .unwrap()
            .expect("prover finds coins");
        assert!(verdict.accepted);
    }

    #[test]
    fn conversion_soundness_is_unconditional() {
        // K5 is not 3-colourable: no coin string can make it accept.
        let a = adapter();
        let g = Graph::complete(5);
        assert!(a.prove(&g).is_none(), "prover must fail on a no-instance");
        // Even adversarial coins.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        for _ in 0..30 {
            let z = Labelling(
                (0..5)
                    .map(|_| (0..a.label_size(5)).map(|_| rng.gen_bool(0.5)).collect())
                    .collect(),
            );
            assert!(!verify(&a, &g, &z).unwrap().accepted);
        }
    }

    #[test]
    fn adapter_is_a_first_class_nondet_problem() {
        // It composes with the Theorem 3 normal form like any other
        // NCLIQUE problem — the §8 remark made executable.
        let nf = crate::normal_form::NormalForm::new(adapter());
        let g = gen::cycle(6);
        let verdict = prove_and_verify(&nf, &g)
            .unwrap()
            .expect("normal-form certificate");
        assert!(verdict.accepted);
    }

    #[test]
    fn success_probability_bookkeeping() {
        let r = RandomizedColoring { k: 3 };
        assert!(r.success_probability(4) > 0.0);
        assert!(r.success_probability(4) <= 1.0);
        assert_eq!(r.coin_bits(10), 2);
    }
}
