//! # cc-core — complexity theory for the congested clique
//!
//! The primary contribution of Korhonen & Suomela, *"Towards a complexity
//! theory for the congested clique"* (SPAA 2018), implemented on the
//! bandwidth-exact simulator of `cliquesim`:
//!
//! | Paper | Module |
//! |---|---|
//! | §5.1 nondeterministic congested clique, `NCLIQUE(T)` | [`nondet`] |
//! | §6.1 concrete NCLIQUE(1) members (k-colouring, Hamiltonian path, …) | [`problems`] |
//! | §5.2 Theorem 3: transcript normal form | [`normal_form`] |
//! | §6.1 Theorem 6: canonical edge-labelling problems | [`labelling`] |
//! | §6.2 Σk/Πk hierarchy; Theorem 7: Σ₂ collapse protocol | [`hierarchy`] |
//! | §3–§5.3, §6.2: Lemma 1 counting, Theorems 2/4/8 inequalities, toy-scale diagonalisation | [`counting`] |
//! | §7 problem exponents `δ(L)` and log-log fitting | [`exponent`] |
//!
//! The non-constructive results (hard functions `f_n`) are evaluated two
//! ways: their existence inequalities numerically for the theorems' exact
//! parameter ranges, and a complete protocol census at `n = 2` that makes
//! the diagonal language concrete end-to-end (see DESIGN.md).

#![warn(missing_docs)]
// Index-driven loops over multiple parallel per-node arrays are the
// dominant shape in this codebase; the iterator rewrites clippy suggests
// obscure the node-id arithmetic.
#![allow(clippy::needless_range_loop)]

pub mod counting;
pub mod exponent;
pub mod hierarchy;
pub mod labelling;
pub mod nondet;
pub mod normal_form;
pub mod problems;
pub mod randomized;
pub mod search;

pub use counting::{
    census_two_nodes, functions_loglog, hard_function_exists, lemma1_loglog, sufficient_threshold,
    thm2_condition, thm4_condition, thm8_condition, ToyCensus, ToyHardLanguage,
};
pub use exponent::{fit_exponent, measure_rounds, ExponentFit, ExponentFitError};
pub use hierarchy::{
    eval_alternating, log_hierarchy_label_budget, run_klabelling, KLabelling, Negation,
    Sigma2Universal,
};
pub use labelling::{canonical_labelling, check_labelling, constraint_holds, EdgeLabelling};
pub use nondet::{
    exists_certificate, prove_and_verify, verify, BoolNode, Labelling, NondetProblem, Verdict,
};
pub use normal_form::{local_search, replay_matches, NormalForm};
pub use problems::{
    all_problems, Connectivity, HamiltonianPath, KColoring, PerfectMatching, SetKind, SetProblem,
    TriangleExists,
};
pub use randomized::{MonteCarloAdapter, OneSidedMonteCarlo, RandomizedColoring};
pub use search::{
    solve_by_gather, ColoringSearch, LabellingSearch, SearchOutcome, SpanningTreeSearch,
};
