//! The constant-round decision hierarchy (§6.2) and Theorem 7.
//!
//! A `k`-labelling algorithm takes `k` certificate labellings
//! `z_1, …, z_k`; the class Σ_k quantifies them alternately starting with
//! ∃, Π_k starting with ∀. Two flavours matter:
//!
//! * **unlimited** label size — Theorem 7 shows the hierarchy collapses:
//!   *every* decision problem is in Σ₂ = Π₂, via the guess-the-whole-graph
//!   protocol implemented here as [`Sigma2Universal`];
//! * **logarithmic** (`O(n log n)` bits per node) — Theorem 8 shows some
//!   problems escape every level; that separation is non-constructive and
//!   lives in [`crate::counting`].

use std::sync::Arc;

use cc_graph::Graph;
use cliquesim::{
    BitString, Engine, Inbox, NodeCtx, NodeId, NodeProgram, Outbox, Session, SimError, Status,
};

use crate::nondet::{BoolNode, Labelling};

/// A constant-round algorithm taking `k` labellings (§6.2).
pub trait KLabelling {
    /// Report name.
    fn name(&self) -> String;

    /// Number of quantified labellings.
    fn k(&self) -> usize;

    /// Per-node, per-labelling certificate size in bits.
    fn label_size(&self, n: usize) -> usize;

    /// Bandwidth constant (multiples of `⌈log₂ n⌉`).
    fn bandwidth_multiplier(&self) -> usize {
        1
    }

    /// Build node `v` from local data and its `k` local labels.
    fn node(&self, n: usize, v: NodeId, row: &BitString, labels: &[BitString]) -> BoolNode;
}

/// Run a k-labelling algorithm on `(g, z_1, …, z_k)`; true iff every node
/// accepts.
pub fn run_klabelling<A: KLabelling + ?Sized>(
    alg: &A,
    g: &Graph,
    labellings: &[Labelling],
) -> Result<bool, SimError> {
    let n = g.n();
    assert_eq!(labellings.len(), alg.k(), "need exactly k labellings");
    for z in labellings {
        assert_eq!(z.n(), n);
    }
    let engine = Engine::new(n).with_bandwidth_multiplier(alg.bandwidth_multiplier());
    let mut session = Session::new(engine);
    let programs: Vec<BoolNode> = (0..n)
        .map(|v| {
            let id = NodeId::from(v);
            let labels: Vec<BitString> = labellings.iter().map(|z| z.0[v].clone()).collect();
            alg.node(n, id, &g.input_row(id), &labels)
        })
        .collect();
    let out = session.run(programs)?;
    Ok(out.outputs.iter().all(|a| *a))
}

/// Exhaustively evaluate the alternating quantifier prefix over all
/// labellings in which every node's label has exactly `bits` bits.
/// `first_existential = true` gives Σ_k semantics, `false` gives Π_k.
/// Exponential (`2^{k·n·bits}` runs) — toy sizes only.
pub fn eval_alternating<A: KLabelling + ?Sized>(
    alg: &A,
    g: &Graph,
    bits: usize,
    first_existential: bool,
) -> Result<bool, SimError> {
    let n = g.n();
    assert!(
        n * bits <= 12,
        "quantifier evaluation is exponential; keep n·bits ≤ 12"
    );

    fn labelling_from_mask(n: usize, bits: usize, mask: u64) -> Labelling {
        Labelling(
            (0..n)
                .map(|v| {
                    let mut b = BitString::with_capacity(bits);
                    for i in 0..bits {
                        b.push((mask >> (v * bits + i)) & 1 == 1);
                    }
                    b
                })
                .collect(),
        )
    }

    fn rec<A: KLabelling + ?Sized>(
        alg: &A,
        g: &Graph,
        bits: usize,
        existential: bool,
        chosen: &mut Vec<Labelling>,
    ) -> Result<bool, SimError> {
        if chosen.len() == alg.k() {
            return run_klabelling(alg, g, chosen);
        }
        let n = g.n();
        let combos: u64 = 1 << (n * bits);
        for mask in 0..combos {
            chosen.push(labelling_from_mask(n, bits, mask));
            let sub = rec(alg, g, bits, !existential, chosen)?;
            chosen.pop();
            if existential && sub {
                return Ok(true);
            }
            if !existential && !sub {
                return Ok(false);
            }
        }
        Ok(!existential)
    }

    rec(alg, g, bits, first_existential, &mut Vec::new())
}

/// The logarithmic-hierarchy label budget: `O(n log n)` bits per node
/// (`O(log n)` per edge). [`run_klabelling`] callers can police labellings
/// against it when exercising the Σ^log_k regime of Theorem 8.
pub fn log_hierarchy_label_budget(n: usize) -> usize {
    n * BitString::width_for(n)
}

// =====================================================================
// Complementation: if L ∈ Σ_k then L̄ ∈ Π_k (§6.2 "Basic properties")
// =====================================================================

/// The complement of a k-labelling algorithm.
///
/// `A` accepts when *every* node outputs 1, so its negation must accept
/// when *some* node outputs 0 — which takes one extra verdict-broadcast
/// round, after which all nodes agree on `¬(∧ verdicts)`. Swapping the
/// quantifier prefix (Σ ↔ Π) then decides exactly the complement
/// language: `∃z₁∀z₂… A = 1` fails iff `∀z₁∃z₂… ¬A = 1` holds.
pub struct Negation<A>(pub A);

impl<A: KLabelling> KLabelling for Negation<A> {
    fn name(&self) -> String {
        format!("not({})", self.0.name())
    }

    fn k(&self) -> usize {
        self.0.k()
    }

    fn label_size(&self, n: usize) -> usize {
        self.0.label_size(n)
    }

    fn bandwidth_multiplier(&self) -> usize {
        self.0.bandwidth_multiplier()
    }

    fn node(&self, n: usize, v: NodeId, row: &BitString, labels: &[BitString]) -> BoolNode {
        Box::new(NegationNode {
            inner: self.0.node(n, v, row, labels),
            verdict: None,
        })
    }
}

struct NegationNode {
    inner: BoolNode,
    /// The inner node's verdict, once it halts.
    verdict: Option<bool>,
}

impl cliquesim::NodeProgram for NegationNode {
    type Output = bool;

    fn init(&mut self, ctx: &NodeCtx) {
        self.inner.init(ctx);
    }

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<bool> {
        match self.verdict {
            None => {
                // Drive the inner verifier until it halts; then broadcast
                // its local verdict.
                match self.inner.step(ctx, round, inbox, outbox) {
                    Status::Continue => Status::Continue,
                    Status::Halt(v) => {
                        self.verdict = Some(v);
                        let mut m = BitString::new();
                        m.push(v);
                        outbox.broadcast(&m);
                        Status::Continue
                    }
                }
            }
            Some(mine) => {
                // Collect everyone's verdicts; accept iff some node
                // rejected. (All inner verifiers in this workspace halt in
                // the same round, so every verdict arrives together.)
                let mut all_accepted = mine;
                for (_, msg) in inbox.iter() {
                    if msg.len() == 1 && !msg.get(0) {
                        all_accepted = false;
                    }
                }
                Status::Halt(!all_accepted)
            }
        }
    }
}

// =====================================================================
// Theorem 7: the Σ₂ universal protocol
// =====================================================================

/// Shared decision predicate (the arbitrary, centrally computable language
/// `L` of Theorem 7).
pub type Predicate = Arc<dyn Fn(&Graph) -> bool + Send + Sync>;

/// Theorem 7's two-labelling algorithm showing every decision problem is
/// in Σ₂:
///
/// * `z_1` (existential): every node guesses the *entire* input graph
///   (`n(n−1)/2` bits — this needs the unlimited hierarchy);
/// * `z_2` (universal): every node picks one bit position of the encoding;
///   it broadcasts that bit of its own guess with its index, and everyone
///   cross-checks the announcements against their own guess and their
///   local view of `G`;
/// * finally every node locally evaluates `L` on its guess.
pub struct Sigma2Universal {
    /// The language being decided.
    pub predicate: Predicate,
}

impl Sigma2Universal {
    /// Wrap a predicate.
    pub fn new(predicate: impl Fn(&Graph) -> bool + Send + Sync + 'static) -> Self {
        Self {
            predicate: Arc::new(predicate),
        }
    }

    /// Bits in the graph encoding.
    pub fn encoding_len(n: usize) -> usize {
        n * (n - 1) / 2
    }

    /// Canonical position of pair `(a, c)`, `a < c`.
    pub fn pair_index(n: usize, a: usize, c: usize) -> usize {
        assert!(a < c && c < n);
        a * n - a * (a + 1) / 2 + (c - a - 1)
    }

    /// Inverse of [`Sigma2Universal::pair_index`].
    pub fn index_pair(n: usize, idx: usize) -> (usize, usize) {
        let mut a = 0;
        let mut base = 0;
        loop {
            let row = n - a - 1;
            if idx < base + row {
                return (a, a + 1 + (idx - base));
            }
            base += row;
            a += 1;
        }
    }

    /// Encode a graph as its canonical edge bit vector.
    pub fn encode_graph(g: &Graph) -> BitString {
        let n = g.n();
        let mut bits = BitString::with_capacity(Self::encoding_len(n));
        for a in 0..n {
            for c in (a + 1)..n {
                bits.push(g.has_edge(a, c));
            }
        }
        bits
    }

    /// The honest existential labelling: everyone guesses `g` itself.
    pub fn honest_guess(g: &Graph) -> Labelling {
        Labelling(vec![Self::encode_graph(g); g.n()])
    }

    /// A universal labelling from per-node index choices.
    pub fn challenge(n: usize, indices: &[usize]) -> Labelling {
        let m = Self::encoding_len(n);
        let iw = BitString::width_for(m.max(2));
        Labelling(
            indices
                .iter()
                .map(|&i| {
                    assert!(i < m);
                    let mut b = BitString::new();
                    b.push_uint(i as u64, iw);
                    b
                })
                .collect(),
        )
    }

    /// Run `A(G, z1, z2)`.
    pub fn run(&self, g: &Graph, z1: &Labelling, z2: &Labelling) -> Result<bool, SimError> {
        run_klabelling(self, g, &[z1.clone(), z2.clone()])
    }

    /// `∀z2` over all per-node index choices (`m^n` runs — toy sizes).
    pub fn accepts_all_challenges(&self, g: &Graph, z1: &Labelling) -> Result<bool, SimError> {
        let n = g.n();
        let m = Self::encoding_len(n);
        assert!(
            m.pow(n as u32) <= 200_000,
            "challenge enumeration too large"
        );
        let mut indices = vec![0usize; n];
        loop {
            let z2 = Self::challenge(n, &indices);
            if !self.run(g, z1, &z2)? {
                return Ok(false);
            }
            // Increment the mixed-radix counter.
            let mut pos = 0;
            loop {
                if pos == n {
                    return Ok(true);
                }
                indices[pos] += 1;
                if indices[pos] < m {
                    break;
                }
                indices[pos] = 0;
                pos += 1;
            }
        }
    }

    /// Search for a rejecting universal challenge (`∃z2 : A = 0`).
    pub fn find_rejecting_challenge(
        &self,
        g: &Graph,
        z1: &Labelling,
    ) -> Result<Option<Vec<usize>>, SimError> {
        let n = g.n();
        let m = Self::encoding_len(n);
        // Single-deviation challenges suffice by the theorem's proof: some
        // node points at a disputed position, everyone else at 0.
        for v in 0..n {
            for i in 0..m {
                let mut indices = vec![0usize; n];
                indices[v] = i;
                if !self.run(g, z1, &Self::challenge(n, &indices))? {
                    return Ok(Some(indices));
                }
            }
        }
        Ok(None)
    }
}

impl KLabelling for Sigma2Universal {
    fn name(&self) -> String {
        "sigma2-universal".into()
    }

    fn k(&self) -> usize {
        2
    }

    fn label_size(&self, n: usize) -> usize {
        Self::encoding_len(n) // dominated by the existential guess
    }

    fn bandwidth_multiplier(&self) -> usize {
        3 // index (≤ 2·log n bits) + announced bit
    }

    fn node(&self, n: usize, v: NodeId, row: &BitString, labels: &[BitString]) -> BoolNode {
        Box::new(Sigma2Node {
            predicate: Arc::clone(&self.predicate),
            me: v,
            row: row.clone(),
            guess: labels[0].clone(),
            chall: labels[1].clone(),
            n,
        })
    }
}

struct Sigma2Node {
    predicate: Predicate,
    me: NodeId,
    row: BitString,
    guess: BitString,
    chall: BitString,
    n: usize,
}

impl NodeProgram for Sigma2Node {
    type Output = bool;

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<bool> {
        let n = self.n;
        let m = Sigma2Universal::encoding_len(n);
        let iw = BitString::width_for(m.max(2));
        match round {
            0 => {
                // Validate own labels.
                if self.guess.len() != m {
                    return Status::Halt(false);
                }
                let idx = match self.chall.reader().read_uint(iw) {
                    Ok(i) if (i as usize) < m => i,
                    _ => return Status::Halt(false),
                };
                let mut msg = BitString::new();
                msg.push_uint(idx, iw);
                msg.push(self.guess.get(idx as usize));
                outbox.broadcast(&msg);
                Status::Continue
            }
            _ => {
                let me = self.me.index();
                // Own announcement also gets checked against the local view.
                let mut announcements: Vec<(usize, bool)> = Vec::with_capacity(n);
                let own_idx = self
                    .chall
                    .reader()
                    .read_uint(iw)
                    .expect("validated in round 0") as usize;
                announcements.push((own_idx, self.guess.get(own_idx)));
                for (_, msg) in inbox.iter() {
                    let mut r = msg.reader();
                    match (r.read_uint(iw), r.read_bit()) {
                        (Ok(i), Ok(b)) if (i as usize) < m => announcements.push((i as usize, b)),
                        _ => return Status::Halt(false),
                    }
                }
                if announcements.len() != n {
                    return Status::Halt(false);
                }
                for (i, b) in announcements {
                    // Consistent with my guess?
                    if self.guess.get(i) != b {
                        return Status::Halt(false);
                    }
                    // Consistent with my local view of G, if I can see it?
                    let (a, c) = Sigma2Universal::index_pair(n, i);
                    if a == me || c == me {
                        let other = if a == me { c } else { a };
                        let slot = if other < me { other } else { other - 1 };
                        if self.row.get(slot) != b {
                            return Status::Halt(false);
                        }
                    }
                }
                // Step 3: evaluate L on the guess locally.
                let mut guessed = Graph::empty(n);
                for i in 0..m {
                    if self.guess.get(i) {
                        let (a, c) = Sigma2Universal::index_pair(n, i);
                        guessed.add_edge(a, c);
                    }
                }
                let _ = ctx;
                Status::Halt((self.predicate)(&guessed))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{gen, reference};

    #[test]
    fn pair_index_roundtrip() {
        for n in [2usize, 3, 5, 8] {
            let m = Sigma2Universal::encoding_len(n);
            for i in 0..m {
                let (a, c) = Sigma2Universal::index_pair(n, i);
                assert!(a < c && c < n);
                assert_eq!(Sigma2Universal::pair_index(n, a, c), i, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn honest_guess_accepted_for_all_challenges_iff_in_language() {
        // L = "G is connected". Theorem 7 completeness: the honest z1
        // passes every universal challenge exactly when G ∈ L.
        let alg = Sigma2Universal::new(reference::is_connected);
        for (g, expect) in [
            (gen::path(4), true),
            (gen::cliques(4, 2), false),
            (Graph::complete(4), true),
            (Graph::empty(4), false),
        ] {
            let z1 = Sigma2Universal::honest_guess(&g);
            assert_eq!(
                alg.accepts_all_challenges(&g, &z1).unwrap(),
                expect,
                "graph {g:?}"
            );
        }
    }

    #[test]
    fn lying_guess_caught_by_some_challenge() {
        // L = "G has a triangle". G = C4 (no triangle). A prover whose
        // guess adds a chord to fake a triangle must be caught by some
        // universal challenge.
        let alg = Sigma2Universal::new(|g: &Graph| reference::count_triangles(g) > 0);
        let g = gen::cycle(4);
        let mut lying = g.clone();
        lying.add_edge(0, 2); // now contains a triangle
        let z1 = Labelling(vec![Sigma2Universal::encode_graph(&lying); 4]);
        let reject = alg.find_rejecting_challenge(&g, &z1).unwrap();
        assert!(reject.is_some(), "the lie must be catchable");
        // And indeed the honest guess fails only because G ∉ L (step 3).
        let honest = Sigma2Universal::honest_guess(&g);
        assert!(!alg.accepts_all_challenges(&g, &honest).unwrap());
    }

    #[test]
    fn disagreeing_guesses_caught() {
        // Nodes guessing *different* graphs are caught by cross-checking
        // (the case analysis in the proof of Theorem 7).
        let alg = Sigma2Universal::new(|_| true); // trivial L: everything accepted at step 3
        let g = gen::path(4);
        let mut z1 = Sigma2Universal::honest_guess(&g);
        // Node 2 guesses the complement instead.
        z1.0[2] = Sigma2Universal::encode_graph(&g.complement());
        let reject = alg.find_rejecting_challenge(&g, &z1).unwrap();
        assert!(reject.is_some());
    }

    #[test]
    fn full_sigma2_semantics_exhaustive_n3() {
        // For every graph on 3 nodes and L = "has at least one edge":
        // ∃z1 ∀z2 A(G, z1, z2) = 1 ⟺ G ∈ L, quantifiers fully enumerated.
        let alg = Sigma2Universal::new(|g: &Graph| g.edge_count() >= 1);
        let n = 3;
        let m = Sigma2Universal::encoding_len(n);
        for g in Graph::enumerate_all(n) {
            let mut exists = false;
            'z1: for mask in 0u64..(1 << (m * n)) {
                let z1 = Labelling(
                    (0..n)
                        .map(|v| {
                            let mut b = BitString::with_capacity(m);
                            for i in 0..m {
                                b.push((mask >> (v * m + i)) & 1 == 1);
                            }
                            b
                        })
                        .collect(),
                );
                if alg.accepts_all_challenges(&g, &z1).unwrap() {
                    exists = true;
                    break 'z1;
                }
            }
            assert_eq!(exists, g.edge_count() >= 1, "graph {g:?}");
        }
    }

    /// A 1-labelling toy algorithm for the generic quantifier evaluator:
    /// "accept iff node 0's label bit equals [graph has an edge]".
    struct EdgeFlag;
    struct EdgeFlagNode {
        label: bool,
        row_has_edge: bool,
        any_edge: bool,
    }
    impl NodeProgram for EdgeFlagNode {
        type Output = bool;
        fn step(
            &mut self,
            _ctx: &NodeCtx,
            round: usize,
            inbox: &Inbox<'_>,
            outbox: &mut Outbox<'_>,
        ) -> Status<bool> {
            if round == 0 {
                let mut m = BitString::new();
                m.push(self.row_has_edge);
                outbox.broadcast(&m);
                Status::Continue
            } else {
                self.any_edge = self.row_has_edge || inbox.iter().any(|(_, m)| m.get(0));
                Status::Halt(self.label == self.any_edge)
            }
        }
    }
    impl KLabelling for EdgeFlag {
        fn name(&self) -> String {
            "edge-flag".into()
        }
        fn k(&self) -> usize {
            1
        }
        fn label_size(&self, _n: usize) -> usize {
            1
        }
        fn node(&self, _n: usize, _v: NodeId, row: &BitString, labels: &[BitString]) -> BoolNode {
            Box::new(EdgeFlagNode {
                label: !labels[0].is_empty() && labels[0].get(0),
                row_has_edge: row.iter().any(|b| b),
                any_edge: false,
            })
        }
    }

    #[test]
    fn generic_quantifier_evaluator() {
        let g_edge = gen::path(3);
        let g_empty = Graph::empty(3);
        // Σ₁ (∃): some label works on both graphs (the correct flag).
        assert!(eval_alternating(&EdgeFlag, &g_edge, 1, true).unwrap());
        assert!(eval_alternating(&EdgeFlag, &g_empty, 1, true).unwrap());
        // Π₁ (∀): fails, because the wrong flag is always rejected.
        assert!(!eval_alternating(&EdgeFlag, &g_edge, 1, false).unwrap());
    }

    #[test]
    fn complementation_de_morgan() {
        // §6.2: L ∈ Σ₁ ⟹ L̄ ∈ Π₁, via the Negation wrapper and fully
        // enumerated quantifiers: ∃z A = 1 ⟺ ¬(∀z ¬A = 1).
        for g in [gen::path(3), Graph::empty(3), Graph::complete(3)] {
            let sigma = eval_alternating(&EdgeFlag, &g, 1, true).unwrap();
            let pi_not = eval_alternating(&Negation(EdgeFlag), &g, 1, false).unwrap();
            assert_eq!(sigma, !pi_not, "graph {g:?}");
            // And the dual direction: ∀z A ⟺ ¬(∃z ¬A).
            let pi = eval_alternating(&EdgeFlag, &g, 1, false).unwrap();
            let sigma_not = eval_alternating(&Negation(EdgeFlag), &g, 1, true).unwrap();
            assert_eq!(pi, !sigma_not, "graph {g:?}");
        }
    }

    #[test]
    fn negation_flips_single_runs() {
        let g = gen::path(3);
        let z = Labelling(vec![BitString::from_bits([true]); 3]);
        let plain = run_klabelling(&EdgeFlag, &g, std::slice::from_ref(&z)).unwrap();
        let negated = run_klabelling(&Negation(EdgeFlag), &g, &[z]).unwrap();
        assert_eq!(plain, !negated);
    }

    #[test]
    fn label_budget_formula() {
        assert_eq!(log_hierarchy_label_budget(8), 8 * 3);
        assert_eq!(log_hierarchy_label_budget(9), 9 * 4);
    }
}
