//! The nondeterministic congested clique (§5 of the paper).
//!
//! A nondeterministic algorithm takes, besides the input graph, a
//! *labelling* `z` assigning each node a certificate of at most `S(n)`
//! bits; it decides `L` when `G ∈ L ⟺ ∃z : A(G, z) = 1` with `A(G,z)=1`
//! meaning every node accepts. `NCLIQUE(T(n))` collects the problems with
//! such `T(n)`-round verifiers; `NCLIQUE(1)` is the paper's analogue of
//! NP and contains the decision versions of most natural clique problems —
//! the concrete members implemented in [`crate::problems`].
//!
//! A problem here is packaged as verifier **plus honest prover**, so
//! completeness is exercised constructively at any size, while soundness
//! is tested with adversarial and (at toy sizes) exhaustively enumerated
//! certificates.

use cc_graph::Graph;
use cliquesim::{BitString, Engine, NodeId, NodeProgram, RunStats, Session, SimError};

/// A certificate: one bit string per node.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Labelling(pub Vec<BitString>);

impl Labelling {
    /// The all-empty labelling for `n` nodes.
    pub fn empty(n: usize) -> Self {
        Self(vec![BitString::new(); n])
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.0.len()
    }

    /// Size of the largest per-node label, in bits.
    pub fn max_label_bits(&self) -> usize {
        self.0.iter().map(|b| b.len()).max().unwrap_or(0)
    }

    /// Total bits across all labels.
    pub fn total_bits(&self) -> usize {
        self.0.iter().map(|b| b.len()).sum()
    }
}

/// A boxed verifier node (local output 1 = accept).
pub type BoolNode = Box<dyn NodeProgram<Output = bool>>;

/// A decision problem together with its nondeterministic verifier and an
/// honest prover.
///
/// *Distributed fidelity:* [`NondetProblem::verifier_node`] receives only
/// what the real node would hold — `n`, its id, its adjacency row, and its
/// own label. The (centralised) prover stands in for the existential
/// quantifier.
pub trait NondetProblem {
    /// Problem name for reports.
    fn name(&self) -> String;

    /// Ground truth (centralised) membership — used only by tests and
    /// experiments, never by verifier nodes.
    fn contains(&self, g: &Graph) -> bool;

    /// Labelling size `S(n)`: max certificate bits per node.
    fn label_size(&self, n: usize) -> usize;

    /// Verifier running time `T(n)` in rounds (an upper bound; used to
    /// size the normal-form machinery).
    fn time_bound(&self, n: usize) -> usize;

    /// How many times the model bandwidth `⌈log₂ n⌉` the verifier's
    /// messages need (the `O(log n)` constant; default 1).
    fn bandwidth_multiplier(&self) -> usize {
        1
    }

    /// The honest prover: a certificate accepted by the verifier whenever
    /// `g ∈ L`; `None` when `g ∉ L`.
    fn prove(&self, g: &Graph) -> Option<Labelling>;

    /// Build node `v`'s verifier from its local data only.
    fn verifier_node(&self, n: usize, v: NodeId, row: &BitString, label: &BitString) -> BoolNode;
}

/// Result of running a verifier on a specific `(G, z)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Did every node accept?
    pub accepted: bool,
    /// Cost of the verification run.
    pub stats: RunStats,
}

/// Execute a problem's verifier on `(g, z)`.
pub fn verify<P: NondetProblem + ?Sized>(
    problem: &P,
    g: &Graph,
    z: &Labelling,
) -> Result<Verdict, SimError> {
    let n = g.n();
    assert_eq!(z.n(), n, "labelling must have one label per node");
    let engine = Engine::new(n).with_bandwidth_multiplier(problem.bandwidth_multiplier());
    let mut session = Session::new(engine);
    let programs: Vec<BoolNode> = (0..n)
        .map(|v| {
            let id = NodeId::from(v);
            problem.verifier_node(n, id, &g.input_row(id), &z.0[v])
        })
        .collect();
    let out = session.run(programs)?;
    Ok(Verdict {
        accepted: out.outputs.iter().all(|a| *a),
        stats: session.stats(),
    })
}

/// Completeness path: run the honest prover and verify its certificate.
/// Returns `None` if the prover produced nothing (claimed no-instance).
pub fn prove_and_verify<P: NondetProblem + ?Sized>(
    problem: &P,
    g: &Graph,
) -> Result<Option<Verdict>, SimError> {
    match problem.prove(g) {
        Some(z) => {
            assert!(
                z.max_label_bits() <= problem.label_size(g.n()),
                "{}: honest certificate exceeds the declared label size",
                problem.name()
            );
            verify(problem, g, &z).map(Some)
        }
        None => Ok(None),
    }
}

/// Exhaustive existential quantification over *all* labellings where every
/// node gets exactly `bits`-bit labels (plus the empty-label case). Only
/// usable when `n · bits` is tiny; this is the ground-truth ∃ for toy
/// instances.
pub fn exists_certificate<P: NondetProblem + ?Sized>(
    problem: &P,
    g: &Graph,
    bits: usize,
) -> Result<Option<Labelling>, SimError> {
    let n = g.n();
    let total = n * bits;
    assert!(
        total <= 24,
        "exhaustive certificate search is exponential; keep n·bits ≤ 24"
    );
    let combos: u64 = 1 << total;
    for mask in 0..combos {
        let mut labels = Vec::with_capacity(n);
        for v in 0..n {
            let mut b = BitString::with_capacity(bits);
            for i in 0..bits {
                b.push((mask >> (v * bits + i)) & 1 == 1);
            }
            labels.push(b);
        }
        let z = Labelling(labels);
        if verify(problem, g, &z)?.accepted {
            return Ok(Some(z));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesim::{Inbox, NodeCtx, Outbox, Status};

    /// Toy problem: "the certificate of node 0 equals its degree parity".
    /// Used to exercise the framework plumbing itself.
    struct ParityCert;

    struct ParityNode {
        label: BitString,
        row: BitString,
    }

    impl NodeProgram for ParityNode {
        type Output = bool;
        fn step(
            &mut self,
            ctx: &NodeCtx,
            _round: usize,
            _inbox: &Inbox<'_>,
            _outbox: &mut Outbox<'_>,
        ) -> Status<bool> {
            let deg = self.row.iter().filter(|b| *b).count();
            let claim = !self.label.is_empty() && self.label.get(0);
            let _ = ctx;
            Status::Halt(claim == (deg % 2 == 1))
        }
    }

    impl NondetProblem for ParityCert {
        fn name(&self) -> String {
            "parity-cert".into()
        }
        fn contains(&self, _g: &Graph) -> bool {
            true // every graph has a valid parity certificate
        }
        fn label_size(&self, _n: usize) -> usize {
            1
        }
        fn time_bound(&self, _n: usize) -> usize {
            1
        }
        fn prove(&self, g: &Graph) -> Option<Labelling> {
            Some(Labelling(
                (0..g.n())
                    .map(|v| {
                        let mut b = BitString::new();
                        b.push(g.degree(v) % 2 == 1);
                        b
                    })
                    .collect(),
            ))
        }
        fn verifier_node(
            &self,
            _n: usize,
            _v: NodeId,
            row: &BitString,
            label: &BitString,
        ) -> BoolNode {
            Box::new(ParityNode {
                label: label.clone(),
                row: row.clone(),
            })
        }
    }

    #[test]
    fn honest_prover_accepted() {
        let g = cc_graph::gen::cycle(5);
        let verdict = prove_and_verify(&ParityCert, &g).unwrap().unwrap();
        assert!(verdict.accepted);
        assert_eq!(verdict.stats.rounds, 0);
    }

    #[test]
    fn wrong_certificates_rejected() {
        let g = cc_graph::gen::star(4); // degrees 3,1,1,1 — all odd
        let mut z = ParityCert.prove(&g).unwrap();
        z.0[2] = BitString::from_bits([false]); // lie about node 2
        assert!(!verify(&ParityCert, &g, &z).unwrap().accepted);
    }

    #[test]
    fn exhaustive_search_finds_certificates() {
        let g = cc_graph::gen::path(3);
        let z = exists_certificate(&ParityCert, &g, 1)
            .unwrap()
            .expect("some cert works");
        assert!(verify(&ParityCert, &g, &z).unwrap().accepted);
    }

    #[test]
    fn labelling_helpers() {
        let z = Labelling(vec![BitString::from_bits([true, false]), BitString::new()]);
        assert_eq!(z.n(), 2);
        assert_eq!(z.max_label_bits(), 2);
        assert_eq!(z.total_bits(), 2);
        assert_eq!(Labelling::empty(3).total_bits(), 0);
    }
}
