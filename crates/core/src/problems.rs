//! Concrete members of NCLIQUE(1) (§6.1).
//!
//! "The class NCLIQUE(1) contains most natural decision problems that have
//! been studied in the congested clique, as well as many NP-complete
//! problems such as k-colouring and Hamiltonian path." Each problem here
//! supplies a constant-round verifier (built from a node's local data
//! only) and an honest prover; soundness against adversarial certificates
//! is what the verifiers are tested on.

use cc_graph::{reference, Graph};
use cliquesim::{BitString, Inbox, NodeCtx, NodeId, NodeProgram, Outbox, Status};

use crate::nondet::{BoolNode, Labelling, NondetProblem};

/// Every registered NCLIQUE(1) problem, for conformance sweeps: soundness
/// and completeness suites, the certificate-corruption harness, and any
/// experiment that wants "all of them" iterate this list rather than
/// hard-coding their own (and silently going stale when a problem lands).
pub fn all_problems() -> Vec<Box<dyn NondetProblem>> {
    vec![
        Box::new(KColoring { k: 2 }),
        Box::new(KColoring { k: 3 }),
        Box::new(HamiltonianPath),
        Box::new(TriangleExists),
        Box::new(SetProblem {
            kind: SetKind::IndependentSet,
            k: 2,
        }),
        Box::new(SetProblem {
            kind: SetKind::DominatingSet,
            k: 2,
        }),
        Box::new(SetProblem {
            kind: SetKind::VertexCover,
            k: 2,
        }),
        Box::new(Connectivity),
        Box::new(PerfectMatching),
    ]
}

/// Look up the adjacency bit for peer `u` in an input row of node `me`.
fn row_has(row: &BitString, me: usize, u: usize) -> bool {
    debug_assert_ne!(me, u);
    let slot = if u < me { u } else { u - 1 };
    row.get(slot)
}

// =====================================================================
// k-colouring
// =====================================================================

/// "Is G properly k-colourable?" — certificate: each node's colour.
#[derive(Clone, Copy, Debug)]
pub struct KColoring {
    /// Number of colours.
    pub k: usize,
}

struct KColoringNode {
    k: usize,
    row: BitString,
    label: BitString,
    my_color: Option<u64>,
}

impl NodeProgram for KColoringNode {
    type Output = bool;

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<bool> {
        let cw = BitString::width_for(self.k.max(2));
        match round {
            0 => {
                // Decode own label; reject locally on malformed input.
                let mut r = self.label.reader();
                match r.read_uint(cw).ok().filter(|_| r.expect_end().is_ok()) {
                    Some(c) if (c as usize) < self.k => {
                        self.my_color = Some(c);
                        let mut m = BitString::new();
                        m.push_uint(c, cw);
                        outbox.broadcast(&m);
                        Status::Continue
                    }
                    _ => Status::Halt(false),
                }
            }
            _ => {
                let me = ctx.id.index();
                let my = self.my_color.expect("set in round 0");
                for (u, msg) in inbox.iter() {
                    if !row_has(&self.row, me, u.index()) {
                        continue;
                    }
                    match msg.reader().read_uint(cw) {
                        Ok(c) if c != my => {}
                        _ => return Status::Halt(false), // same colour or malformed
                    }
                }
                Status::Halt(true)
            }
        }
    }
}

impl NondetProblem for KColoring {
    fn name(&self) -> String {
        format!("{}-colouring", self.k)
    }

    fn contains(&self, g: &Graph) -> bool {
        reference::find_coloring(g, self.k).is_some()
    }

    fn label_size(&self, _n: usize) -> usize {
        BitString::width_for(self.k.max(2))
    }

    fn time_bound(&self, _n: usize) -> usize {
        1
    }

    fn prove(&self, g: &Graph) -> Option<Labelling> {
        let cw = BitString::width_for(self.k.max(2));
        let colors = reference::find_coloring(g, self.k)?;
        Some(Labelling(
            colors
                .into_iter()
                .map(|c| {
                    let mut b = BitString::new();
                    b.push_uint(c as u64, cw);
                    b
                })
                .collect(),
        ))
    }

    fn verifier_node(&self, n: usize, _v: NodeId, row: &BitString, label: &BitString) -> BoolNode {
        assert!(self.k <= n, "colour ids must fit the bandwidth (k ≤ n)");
        Box::new(KColoringNode {
            k: self.k,
            row: row.clone(),
            label: label.clone(),
            my_color: None,
        })
    }
}

// =====================================================================
// Hamiltonian path
// =====================================================================

/// "Does G contain a Hamiltonian path?" — certificate: each node's position
/// along the path.
#[derive(Clone, Copy, Debug)]
pub struct HamiltonianPath;

struct HamPathNode {
    row: BitString,
    label: BitString,
    my_pos: Option<u64>,
    positions: Vec<Option<u64>>,
}

impl NodeProgram for HamPathNode {
    type Output = bool;

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<bool> {
        let idw = ctx.id_width();
        let me = ctx.id.index();
        match round {
            0 => {
                self.positions = vec![None; ctx.n];
                let mut r = self.label.reader();
                match r.read_uint(idw).ok().filter(|_| r.expect_end().is_ok()) {
                    Some(p) if (p as usize) < ctx.n => {
                        self.my_pos = Some(p);
                        self.positions[me] = Some(p);
                        let mut m = BitString::new();
                        m.push_uint(p, idw);
                        outbox.broadcast(&m);
                        Status::Continue
                    }
                    _ => Status::Halt(false),
                }
            }
            _ => {
                for (u, msg) in inbox.iter() {
                    match msg.reader().read_uint(idw) {
                        Ok(p) if (p as usize) < ctx.n => self.positions[u.index()] = Some(p),
                        _ => return Status::Halt(false),
                    }
                }
                // All positions present and distinct?
                let mut seen = vec![false; ctx.n];
                for p in &self.positions {
                    match p {
                        Some(p) if !seen[*p as usize] => seen[*p as usize] = true,
                        _ => return Status::Halt(false),
                    }
                }
                // My successor (if any) must be my neighbour.
                let my = self.my_pos.expect("set in round 0") as usize;
                if my + 1 < ctx.n {
                    let succ = self
                        .positions
                        .iter()
                        .position(|p| *p == Some(my as u64 + 1))
                        .expect("positions form a permutation");
                    if !row_has(&self.row, me, succ) {
                        return Status::Halt(false);
                    }
                }
                Status::Halt(true)
            }
        }
    }
}

impl NondetProblem for HamiltonianPath {
    fn name(&self) -> String {
        "hamiltonian-path".into()
    }

    fn contains(&self, g: &Graph) -> bool {
        reference::find_hamiltonian_path(g).is_some()
    }

    fn label_size(&self, n: usize) -> usize {
        BitString::width_for(n)
    }

    fn time_bound(&self, _n: usize) -> usize {
        1
    }

    fn prove(&self, g: &Graph) -> Option<Labelling> {
        let order = reference::find_hamiltonian_path(g)?;
        let idw = BitString::width_for(g.n());
        let mut pos = vec![0u64; g.n()];
        for (p, &v) in order.iter().enumerate() {
            pos[v] = p as u64;
        }
        Some(Labelling(
            pos.into_iter()
                .map(|p| {
                    let mut b = BitString::new();
                    b.push_uint(p, idw);
                    b
                })
                .collect(),
        ))
    }

    fn verifier_node(&self, _n: usize, _v: NodeId, row: &BitString, label: &BitString) -> BoolNode {
        Box::new(HamPathNode {
            row: row.clone(),
            label: label.clone(),
            my_pos: None,
            positions: Vec::new(),
        })
    }
}

// =====================================================================
// Triangle existence
// =====================================================================

/// "Does G contain a triangle?" — certificate: the three corner ids,
/// identical at every node.
#[derive(Clone, Copy, Debug)]
pub struct TriangleExists;

struct TriangleNode {
    row: BitString,
    label: BitString,
    corners: Option<[usize; 3]>,
    ok: bool,
    confirmations: usize,
}

impl NodeProgram for TriangleNode {
    type Output = bool;

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<bool> {
        let idw = ctx.id_width();
        let me = ctx.id.index();
        match round {
            0 => {
                // Decode the three corners.
                let mut r = self.label.reader();
                let mut c = [0usize; 3];
                for slot in &mut c {
                    match r.read_uint(idw) {
                        Ok(x) if (x as usize) < ctx.n => *slot = x as usize,
                        _ => return Status::Halt(false),
                    }
                }
                if r.expect_end().is_err() || c[0] == c[1] || c[1] == c[2] || c[0] == c[2] {
                    return Status::Halt(false);
                }
                self.corners = Some(c);
                self.ok = true;
                // Broadcast corner 0 for the consistency check.
                let mut m = BitString::new();
                m.push_uint(c[0] as u64, idw);
                outbox.broadcast(&m);
                Status::Continue
            }
            1 | 2 => {
                let c = self.corners.expect("set in round 0");
                // Check everyone's (round−1)-th corner matches ours.
                for (_, msg) in inbox.iter() {
                    match msg.reader().read_uint(idw) {
                        Ok(x) if x as usize == c[round - 1] => {}
                        _ => return Status::Halt(false),
                    }
                }
                let mut m = BitString::new();
                m.push_uint(c[round] as u64, idw);
                outbox.broadcast(&m);
                Status::Continue
            }
            3 => {
                let c = self.corners.expect("set in round 0");
                for (_, msg) in inbox.iter() {
                    match msg.reader().read_uint(idw) {
                        Ok(x) if x as usize == c[2] => {}
                        _ => return Status::Halt(false),
                    }
                }
                // If I am a corner, confirm my two triangle edges.
                if let Some(i) = c.iter().position(|&x| x == me) {
                    let others = [c[(i + 1) % 3], c[(i + 2) % 3]];
                    let fine = others.iter().all(|&o| row_has(&self.row, me, o));
                    let mut m = BitString::new();
                    m.push(fine);
                    outbox.broadcast(&m);
                }
                Status::Continue
            }
            _ => {
                let c = self.corners.expect("set in round 0");
                for (u, msg) in inbox.iter() {
                    if c.contains(&u.index()) {
                        if !msg.get(0) {
                            return Status::Halt(false);
                        }
                        self.confirmations += 1;
                    }
                }
                if c.contains(&me) {
                    self.confirmations += 1; // my own confirmation
                    if !c
                        .iter()
                        .filter(|&&x| x != me)
                        .all(|&o| row_has(&self.row, me, o))
                    {
                        return Status::Halt(false);
                    }
                }
                Status::Halt(self.ok && self.confirmations == 3)
            }
        }
    }
}

impl NondetProblem for TriangleExists {
    fn name(&self) -> String {
        "triangle-exists".into()
    }

    fn contains(&self, g: &Graph) -> bool {
        reference::count_triangles(g) > 0
    }

    fn label_size(&self, n: usize) -> usize {
        3 * BitString::width_for(n)
    }

    fn time_bound(&self, _n: usize) -> usize {
        5
    }

    fn prove(&self, g: &Graph) -> Option<Labelling> {
        let n = g.n();
        let idw = BitString::width_for(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if !g.has_edge(u, v) {
                    continue;
                }
                for w in (v + 1)..n {
                    if g.has_edge(u, w) && g.has_edge(v, w) {
                        let mut b = BitString::new();
                        b.push_uint(u as u64, idw);
                        b.push_uint(v as u64, idw);
                        b.push_uint(w as u64, idw);
                        return Some(Labelling(vec![b; n]));
                    }
                }
            }
        }
        None
    }

    fn verifier_node(&self, _n: usize, _v: NodeId, row: &BitString, label: &BitString) -> BoolNode {
        Box::new(TriangleNode {
            row: row.clone(),
            label: label.clone(),
            corners: None,
            ok: false,
            confirmations: 0,
        })
    }
}

// =====================================================================
// Membership-flag problems: k-IS, k-DS, vertex cover ≤ k
// =====================================================================

/// Which set property a membership certificate claims.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetKind {
    /// Independent set of size exactly `k`.
    IndependentSet,
    /// Dominating set of size exactly `k`.
    DominatingSet,
    /// Vertex cover of size at most `k`.
    VertexCover,
}

/// "Does G have an {IS, DS} of size k / a VC of size ≤ k?" — certificate:
/// one membership bit per node.
#[derive(Clone, Copy, Debug)]
pub struct SetProblem {
    /// Which property.
    pub kind: SetKind,
    /// The size parameter.
    pub k: usize,
}

struct SetNode {
    kind: SetKind,
    k: usize,
    row: BitString,
    member: bool,
    malformed: bool,
}

impl NodeProgram for SetNode {
    type Output = bool;

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<bool> {
        let me = ctx.id.index();
        match round {
            0 => {
                if self.malformed {
                    return Status::Halt(false);
                }
                let mut m = BitString::new();
                m.push(self.member);
                outbox.broadcast(&m);
                Status::Continue
            }
            _ => {
                let mut members = vec![false; ctx.n];
                members[me] = self.member;
                for (u, msg) in inbox.iter() {
                    if msg.len() != 1 {
                        return Status::Halt(false);
                    }
                    members[u.index()] = msg.get(0);
                }
                let count = members.iter().filter(|m| **m).count();
                let ok = match self.kind {
                    SetKind::IndependentSet => {
                        count == self.k
                            && !(self.member
                                && (0..ctx.n)
                                    .any(|u| u != me && members[u] && row_has(&self.row, me, u)))
                    }
                    SetKind::DominatingSet => {
                        count == self.k
                            && (self.member
                                || (0..ctx.n)
                                    .any(|u| u != me && members[u] && row_has(&self.row, me, u)))
                    }
                    SetKind::VertexCover => {
                        count <= self.k
                            && (self.member
                                || (0..ctx.n)
                                    .filter(|&u| u != me && row_has(&self.row, me, u))
                                    .all(|u| members[u]))
                    }
                };
                Status::Halt(ok)
            }
        }
    }
}

impl NondetProblem for SetProblem {
    fn name(&self) -> String {
        match self.kind {
            SetKind::IndependentSet => format!("{}-independent-set", self.k),
            SetKind::DominatingSet => format!("{}-dominating-set", self.k),
            SetKind::VertexCover => format!("vertex-cover-at-most-{}", self.k),
        }
    }

    fn contains(&self, g: &Graph) -> bool {
        match self.kind {
            SetKind::IndependentSet => reference::find_independent_set(g, self.k).is_some(),
            SetKind::DominatingSet => reference::find_dominating_set(g, self.k).is_some(),
            SetKind::VertexCover => reference::find_vertex_cover(g, self.k).is_some(),
        }
    }

    fn label_size(&self, _n: usize) -> usize {
        1
    }

    fn time_bound(&self, _n: usize) -> usize {
        1
    }

    fn prove(&self, g: &Graph) -> Option<Labelling> {
        let set = match self.kind {
            SetKind::IndependentSet => reference::find_independent_set(g, self.k)?,
            SetKind::DominatingSet => reference::find_dominating_set(g, self.k)?,
            SetKind::VertexCover => reference::find_vertex_cover(g, self.k)?,
        };
        let mut member = vec![false; g.n()];
        for v in set {
            member[v] = true;
        }
        Some(Labelling(
            member
                .into_iter()
                .map(|m| {
                    let mut b = BitString::new();
                    b.push(m);
                    b
                })
                .collect(),
        ))
    }

    fn verifier_node(&self, _n: usize, _v: NodeId, row: &BitString, label: &BitString) -> BoolNode {
        let malformed = label.len() != 1;
        Box::new(SetNode {
            kind: self.kind,
            k: self.k,
            row: row.clone(),
            member: !malformed && label.get(0),
            malformed,
        })
    }
}

// =====================================================================
// Perfect matching
// =====================================================================

/// "Does G have a perfect matching?" — certificate: each node's matched
/// partner. One broadcast round; each node checks mutuality and that the
/// matched edge exists in its row.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfectMatching;

struct MatchingNode {
    row: BitString,
    label: BitString,
    partner: usize,
    partners: Vec<Option<usize>>,
}

impl NodeProgram for MatchingNode {
    type Output = bool;

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<bool> {
        let idw = ctx.id_width();
        let me = ctx.id.index();
        match round {
            0 => {
                self.partners = vec![None; ctx.n];
                let mut r = self.label.reader();
                match r.read_uint(idw).ok().filter(|_| r.expect_end().is_ok()) {
                    Some(p) if (p as usize) < ctx.n && p as usize != me => {
                        self.partner = p as usize;
                        self.partners[me] = Some(self.partner);
                        let mut m = BitString::new();
                        m.push_uint(p, idw);
                        outbox.broadcast(&m);
                        Status::Continue
                    }
                    _ => Status::Halt(false),
                }
            }
            _ => {
                for (u, msg) in inbox.iter() {
                    match msg.reader().read_uint(idw) {
                        Ok(p) if (p as usize) < ctx.n => {
                            self.partners[u.index()] = Some(p as usize)
                        }
                        _ => return Status::Halt(false),
                    }
                }
                // Everyone announced, mutuality holds globally, and my own
                // matched edge exists.
                if self.partners.iter().any(|p| p.is_none()) {
                    return Status::Halt(false);
                }
                let mutual = (0..ctx.n).all(|v| {
                    let p = self.partners[v].expect("checked above");
                    p != v && self.partners[p] == Some(v)
                });
                Status::Halt(mutual && row_has(&self.row, me, self.partner))
            }
        }
    }
}

impl NondetProblem for PerfectMatching {
    fn name(&self) -> String {
        "perfect-matching".into()
    }

    fn contains(&self, g: &Graph) -> bool {
        reference::find_perfect_matching(g).is_some()
    }

    fn label_size(&self, n: usize) -> usize {
        BitString::width_for(n)
    }

    fn time_bound(&self, _n: usize) -> usize {
        1
    }

    fn prove(&self, g: &Graph) -> Option<Labelling> {
        let partner = reference::find_perfect_matching(g)?;
        let idw = BitString::width_for(g.n());
        Some(Labelling(
            partner
                .into_iter()
                .map(|p| {
                    let mut b = BitString::new();
                    b.push_uint(p as u64, idw);
                    b
                })
                .collect(),
        ))
    }

    fn verifier_node(&self, _n: usize, _v: NodeId, row: &BitString, label: &BitString) -> BoolNode {
        Box::new(MatchingNode {
            row: row.clone(),
            label: label.clone(),
            partner: usize::MAX,
            partners: Vec::new(),
        })
    }
}

// =====================================================================
// Connectivity (spanning-tree certificate, proof-labelling style)
// =====================================================================

/// "Is G connected?" — certificate: `(parent, depth)` of a rooted spanning
/// tree, the classic proof labelling scheme \[36–38\].
#[derive(Clone, Copy, Debug, Default)]
pub struct Connectivity;

struct ConnectivityNode {
    row: BitString,
    label: BitString,
    parent: usize,
    depth: u64,
    parents: Vec<Option<(usize, u64)>>,
}

impl NodeProgram for ConnectivityNode {
    type Output = bool;

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<bool> {
        let idw = ctx.id_width();
        let me = ctx.id.index();
        match round {
            0 => {
                self.parents = vec![None; ctx.n];
                let mut r = self.label.reader();
                let parent = r.read_uint(idw).ok();
                let depth = r.read_uint(idw).ok();
                match (parent, depth, r.expect_end()) {
                    (Some(p), Some(d), Ok(())) if (p as usize) < ctx.n && (d as usize) < ctx.n => {
                        self.parent = p as usize;
                        self.depth = d;
                        self.parents[me] = Some((self.parent, d));
                        let mut m = BitString::new();
                        m.push_uint(p, idw);
                        outbox.broadcast(&m);
                        Status::Continue
                    }
                    _ => Status::Halt(false),
                }
            }
            1 => {
                for (u, msg) in inbox.iter() {
                    match msg.reader().read_uint(idw) {
                        Ok(p) if (p as usize) < ctx.n => {
                            self.parents[u.index()] = Some((p as usize, 0))
                        }
                        _ => return Status::Halt(false),
                    }
                }
                let mut m = BitString::new();
                m.push_uint(self.depth, idw);
                outbox.broadcast(&m);
                Status::Continue
            }
            _ => {
                for (u, msg) in inbox.iter() {
                    match (self.parents[u.index()], msg.reader().read_uint(idw)) {
                        (Some((p, _)), Ok(d)) => self.parents[u.index()] = Some((p, d)),
                        _ => return Status::Halt(false),
                    }
                }
                // Everyone must have announced.
                if self.parents.iter().any(|x| x.is_none()) {
                    return Status::Halt(false);
                }
                // Exactly one root: parent == self with depth 0.
                let roots = self
                    .parents
                    .iter()
                    .enumerate()
                    .filter(|(v, x)| matches!(x, Some((p, d)) if p == v && *d == 0))
                    .count();
                if roots != 1 {
                    return Status::Halt(false);
                }
                // My own consistency: either I am the root, or my parent is
                // a real neighbour one level up.
                if self.parent == me {
                    return Status::Halt(self.depth == 0);
                }
                if !row_has(&self.row, me, self.parent) {
                    return Status::Halt(false);
                }
                let (_, pd) = self.parents[self.parent].expect("checked above");
                Status::Halt(pd + 1 == self.depth)
            }
        }
    }
}

impl NondetProblem for Connectivity {
    fn name(&self) -> String {
        "connectivity".into()
    }

    fn contains(&self, g: &Graph) -> bool {
        reference::is_connected(g)
    }

    fn label_size(&self, n: usize) -> usize {
        2 * BitString::width_for(n)
    }

    fn time_bound(&self, _n: usize) -> usize {
        3
    }

    fn prove(&self, g: &Graph) -> Option<Labelling> {
        if !reference::is_connected(g) {
            return None;
        }
        let n = g.n();
        let idw = BitString::width_for(n);
        // BFS tree from node 0.
        let dist = reference::bfs_distances(g, 0);
        let mut labels = Vec::with_capacity(n);
        for v in 0..n {
            let parent = if v == 0 {
                0
            } else {
                g.neighbors(v)
                    .find(|&u| dist[u] + 1 == dist[v])
                    .expect("connected graph has a BFS parent")
            };
            let mut b = BitString::new();
            b.push_uint(parent as u64, idw);
            b.push_uint(dist[v], idw);
            labels.push(b);
        }
        Some(Labelling(labels))
    }

    fn verifier_node(&self, _n: usize, _v: NodeId, row: &BitString, label: &BitString) -> BoolNode {
        Box::new(ConnectivityNode {
            row: row.clone(),
            label: label.clone(),
            parent: 0,
            depth: 0,
            parents: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nondet::{exists_certificate, prove_and_verify, verify};
    use cc_graph::gen;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn completeness_on_yes_instances() {
        // Honest prover certificates are accepted on every yes-instance.
        for problem in all_problems() {
            for seed in 0..4 {
                let g = gen::gnp(7, 0.45, seed * 17 + 1);
                if problem.contains(&g) {
                    let verdict = prove_and_verify(problem.as_ref(), &g)
                        .unwrap()
                        .unwrap_or_else(|| {
                            panic!("{}: prover failed on yes-instance", problem.name())
                        });
                    assert!(verdict.accepted, "{} seed {seed}", problem.name());
                } else {
                    assert!(
                        prove_and_verify(problem.as_ref(), &g).unwrap().is_none(),
                        "{}: prover must fail on no-instances",
                        problem.name()
                    );
                }
            }
        }
    }

    #[test]
    fn soundness_against_adversarial_certificates() {
        // On no-instances, random certificates of the declared size must be
        // rejected (every single one — the verifier is deterministic).
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for problem in all_problems() {
            let mut tested = 0;
            // A pool with guaranteed no-instances for every problem:
            // K7 (no 2-IS, no 2-cover, not 2/3-colourable), the empty
            // graph (no triangle/Hamiltonian path/2-DS, disconnected),
            // plus random graphs at several densities.
            let mut pool = vec![Graph::complete(7), Graph::empty(7)];
            for seed in 0..12 {
                pool.push(gen::gnp(7, 0.2 + 0.06 * (seed % 5) as f64, 1000 + seed));
            }
            for g in &pool {
                let g = g.clone();
                if problem.contains(&g) {
                    continue;
                }
                tested += 1;
                for _ in 0..20 {
                    let z = Labelling(
                        (0..7)
                            .map(|_| {
                                let bits = problem.label_size(7);
                                (0..bits).map(|_| rng.gen_bool(0.5)).collect()
                            })
                            .collect(),
                    );
                    assert!(
                        !verify(problem.as_ref(), &g, &z).unwrap().accepted,
                        "{}: accepted a certificate on a no-instance",
                        problem.name()
                    );
                }
            }
            assert!(
                tested > 0,
                "{}: no no-instances sampled, weak test",
                problem.name()
            );
        }
    }

    #[test]
    fn exhaustive_soundness_tiny() {
        // For 1-bit-label problems, check *all* certificates on tiny
        // no-instances: ∃z accepted ⟺ G ∈ L, the exact NCLIQUE semantics.
        for kind in [
            SetKind::IndependentSet,
            SetKind::DominatingSet,
            SetKind::VertexCover,
        ] {
            let problem = SetProblem { kind, k: 2 };
            for g in Graph::enumerate_all(4) {
                let found = exists_certificate(&problem, &g, 1).unwrap();
                assert_eq!(
                    found.is_some(),
                    problem.contains(&g),
                    "{} on {g:?}",
                    problem.name()
                );
            }
        }
    }

    #[test]
    fn coloring_accepts_planted_and_rejects_odd_cycle() {
        let (g, colors) = gen::k_colorable(9, 3, 0.7, 3);
        let p = KColoring { k: 3 };
        let cw = BitString::width_for(3);
        let z = Labelling(
            colors
                .iter()
                .map(|&c| {
                    let mut b = BitString::new();
                    b.push_uint(c as u64, cw);
                    b
                })
                .collect(),
        );
        assert!(verify(&p, &g, &z).unwrap().accepted);

        let c5 = gen::cycle(5);
        let p2 = KColoring { k: 2 };
        // No 2-colouring certificate can convince the verifier.
        assert!(exists_certificate(&p2, &c5, 1).unwrap().is_none());
    }

    #[test]
    fn hamiltonian_path_positions_checked() {
        let (g, path) = gen::hamiltonian(8, 0.1, 5);
        let p = HamiltonianPath;
        let verdict = prove_and_verify(&p, &g).unwrap().unwrap();
        assert!(verdict.accepted);
        // Corrupt one position: duplicate positions must be rejected.
        let mut z = p.prove(&g).unwrap();
        z.0[path[0]] = z.0[path[1]].clone();
        assert!(!verify(&p, &g, &z).unwrap().accepted);
        // A non-edge consecutive pair must be rejected: swap two labels.
        let mut z2 = p.prove(&g).unwrap();
        z2.0.swap(path[0], path[3]);
        assert!(!verify(&p, &g, &z2).unwrap().accepted);
    }

    #[test]
    fn triangle_certificate_rejects_inconsistent_corners() {
        let g = Graph::complete(5);
        let p = TriangleExists;
        let verdict = prove_and_verify(&p, &g).unwrap().unwrap();
        assert!(verdict.accepted);
        // Different labels at different nodes: must be rejected.
        let mut z = p.prove(&g).unwrap();
        let idw = BitString::width_for(5);
        let mut other = BitString::new();
        other.push_uint(1, idw);
        other.push_uint(2, idw);
        other.push_uint(4, idw);
        z.0[3] = other;
        assert!(!verify(&p, &g, &z).unwrap().accepted);
    }

    #[test]
    fn perfect_matching_certificate() {
        let g = gen::cycle(6);
        let p = PerfectMatching;
        assert!(prove_and_verify(&p, &g).unwrap().unwrap().accepted);
        // Non-mutual certificates rejected.
        let mut z = p.prove(&g).unwrap();
        z.0[0] = z.0[1].clone();
        assert!(!verify(&p, &g, &z).unwrap().accepted);
        // Odd cycle: no certificate can work (exhaustive-ish via prover).
        assert!(p.prove(&gen::cycle(5)).is_none());
        // A "matching" over a non-edge is rejected: pair up vertices of an
        // empty graph.
        let empty = Graph::empty(4);
        let idw = BitString::width_for(4);
        let z = Labelling(
            [1u64, 0, 3, 2]
                .iter()
                .map(|&p| {
                    let mut b = BitString::new();
                    b.push_uint(p, idw);
                    b
                })
                .collect(),
        );
        assert!(!verify(&p, &empty, &z).unwrap().accepted);
    }

    #[test]
    fn connectivity_certificate() {
        let g = gen::path(7);
        let p = Connectivity;
        assert!(prove_and_verify(&p, &g).unwrap().unwrap().accepted);
        // Disconnected graph: prover refuses, and forged trees fail.
        let g2 = gen::cliques(6, 2);
        assert!(p.prove(&g2).is_none());
        let forged = p.prove(&gen::path(6)).unwrap(); // tree of the wrong graph
        assert!(!verify(&p, &g2, &forged).unwrap().accepted);
    }

    #[test]
    fn verifiers_run_in_constant_rounds() {
        for problem in all_problems() {
            for n in [6usize, 10] {
                let g = gen::gnp(n, 0.5, n as u64);
                if let Some(v) = prove_and_verify(problem.as_ref(), &g).unwrap() {
                    assert!(
                        v.stats.rounds <= problem.time_bound(n),
                        "{}: {} rounds > bound {}",
                        problem.name(),
                        v.stats.rounds,
                        problem.time_bound(n)
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_no_instance_never_accepts(seed in any::<u64>(), cert_seed in any::<u64>()) {
            // Random graphs + random certificates for the 3-colouring
            // verifier: acceptance implies the graph is actually
            // 3-colourable (soundness).
            let g = gen::gnp(6, 0.8, seed);
            let p = KColoring { k: 3 };
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(cert_seed);
            let z = Labelling(
                (0..6)
                    .map(|_| (0..p.label_size(6)).map(|_| rng.gen_bool(0.5)).collect())
                    .collect(),
            );
            if verify(&p, &g, &z).unwrap().accepted {
                prop_assert!(p.contains(&g));
            }
        }
    }
}
