//! Theorem 3: the NCLIQUE normal form.
//!
//! Any nondeterministic algorithm `A` with running time `T(n)` can be
//! replaced by one whose certificates are *communication transcripts* of
//! size `O(T(n)·n·log n)`:
//!
//! 1. each node checks its label is a well-formed transcript;
//! 2. nodes *replay* the transcripts — every round they send exactly what
//!    the transcript says and verify the received messages agree;
//! 3. each node locally searches all original labels `z′_v` of size
//!    `≤ S(n)` for one that makes `A`'s local execution match the
//!    transcript and accept (the theorem's "unlimited local computation" —
//!    exponential in `S(n)`, which is why the transformation only makes
//!    sense as a *normal form*, not an algorithm speed-up).
//!
//! A final one-bit verdict round makes rejection unanimous. The
//! transformation preserves the decided language exactly and bounds the
//! certificate size by the verifier's communication — the paper's key tool
//! for the nondeterministic time hierarchy (Theorem 4) and the canonical
//! edge-labelling problems (Theorem 6).

use cc_graph::Graph;
use cliquesim::{
    BitString, Engine, Inbox, NodeCtx, NodeId, NodeProgram, Outbox, Session, Status, Transcript,
};

use crate::nondet::{BoolNode, Labelling, NondetProblem};

/// The normal form of an inner [`NondetProblem`].
#[derive(Clone, Debug)]
pub struct NormalForm<P> {
    /// The problem whose verifier is being transformed.
    pub inner: P,
}

impl<P: NondetProblem> NormalForm<P> {
    /// Wrap a problem.
    pub fn new(inner: P) -> Self {
        Self { inner }
    }

    /// Replay horizon: one step phase beyond the inner time bound covers
    /// the halting round.
    fn horizon(&self, n: usize) -> usize {
        self.inner.time_bound(n) + 1
    }

    /// The `O(T(n)·n·log n)` certificate bound of Theorem 3, with this
    /// implementation's constants (encoding headers included).
    pub fn label_bound(&self, n: usize) -> usize {
        let w = BitString::width_for(n + 1);
        let b = self.inner.bandwidth_multiplier() * BitString::width_for(n);
        let per_round = 2 * w + 2 * (n.saturating_sub(1)) * (w + 16 + b);
        16 + self.horizon(n) * per_round
    }
}

impl<P: NondetProblem + Clone + Send + 'static> NondetProblem for NormalForm<P> {
    fn name(&self) -> String {
        format!("normal-form({})", self.inner.name())
    }

    fn contains(&self, g: &Graph) -> bool {
        self.inner.contains(g)
    }

    fn label_size(&self, n: usize) -> usize {
        self.label_bound(n)
    }

    fn time_bound(&self, n: usize) -> usize {
        // Replay horizon + verdict broadcast + collection.
        self.horizon(n) + 2
    }

    fn bandwidth_multiplier(&self) -> usize {
        self.inner.bandwidth_multiplier()
    }

    /// The honest prover: run the inner verifier on the inner honest
    /// certificate with transcript recording; the per-node transcripts are
    /// the new labels.
    fn prove(&self, g: &Graph) -> Option<Labelling> {
        let n = g.n();
        let z = self.inner.prove(g)?;
        let engine = Engine::new(n)
            .with_bandwidth_multiplier(self.inner.bandwidth_multiplier())
            .with_transcripts(true);
        let mut session = Session::new(engine);
        let programs: Vec<BoolNode> = (0..n)
            .map(|v| {
                let id = NodeId::from(v);
                self.inner.verifier_node(n, id, &g.input_row(id), &z.0[v])
            })
            .collect();
        let out = session.run(programs).ok()?;
        if !out.outputs.iter().all(|a| *a) {
            return None; // inner prover was wrong; treat as no-instance
        }
        let transcripts = out.transcripts.expect("recording enabled");
        Some(Labelling(transcripts.iter().map(|t| t.encode(n)).collect()))
    }

    fn verifier_node(&self, n: usize, v: NodeId, row: &BitString, label: &BitString) -> BoolNode {
        // Adversarial labels may decode into structurally invalid
        // transcripts (self-sends, out-of-range peers, oversized messages,
        // impossible round counts); step (1) of the theorem rejects them.
        let horizon = self.horizon(n);
        let bw = self.inner.bandwidth_multiplier() * BitString::width_for(n);
        let transcript = Transcript::decode(label, n).ok().filter(|t| {
            t.rounds.len() <= horizon
                && t.rounds.iter().all(|rt| {
                    rt.sent
                        .iter()
                        .chain(rt.received.iter())
                        .all(|(p, m)| p.index() < n && *p != v && m.len() <= bw)
                })
        });
        Box::new(NormalFormNode {
            problem: self.inner.clone(),
            me: v,
            row: row.clone(),
            transcript,
            horizon,
            reject: false,
            verdicts_ok: true,
        })
    }
}

/// Step 3 of the theorem, shared with the Theorem 6 edge-labelling
/// construction: try every original label of size ≤ S(n) and check that
/// the inner node's *local* run reproduces the transcript and accepts.
/// Purely local computation (exponential in S(n), as the model allows).
pub fn local_search<P: NondetProblem + ?Sized>(
    problem: &P,
    n: usize,
    me: NodeId,
    row: &BitString,
    t: &Transcript,
) -> bool {
    let s = problem.label_size(n);
    // Guard: the theorem allows unbounded local work, the test machine
    // does not.
    assert!(
        s <= 20,
        "local search is exponential in the inner label size"
    );
    for len in 0..=s {
        let combos: u64 = 1 << len;
        for mask in 0..combos {
            let mut label = BitString::with_capacity(len);
            for i in 0..len {
                label.push((mask >> i) & 1 == 1);
            }
            if replay_matches(problem, n, me, row, &label, t) {
                return true;
            }
        }
    }
    false
}

/// Execute the inner node locally against a transcript: feed the recorded
/// receptions round by round, require the emissions to match exactly, and
/// require the node to halt accepting exactly when the transcript ends.
pub fn replay_matches<P: NondetProblem + ?Sized>(
    problem: &P,
    n: usize,
    me: NodeId,
    row: &BitString,
    candidate: &BitString,
    t: &Transcript,
) -> bool {
    let bandwidth = problem.bandwidth_multiplier() * BitString::width_for(n);
    let ctx = NodeCtx {
        id: me,
        n,
        bandwidth,
    };
    let mut prog = problem.verifier_node(n, me, row, candidate);
    prog.init(&ctx);
    let rounds = t.rounds.len();
    for (r, round_t) in t.rounds.iter().enumerate() {
        let mut slots = vec![BitString::new(); n];
        for (src, msg) in &round_t.received {
            slots[src.index()] = msg.clone();
        }
        let inbox = Inbox::from_slots(&slots, me.index());
        let mut out_slots = vec![BitString::new(); n];
        let mut outbox = Outbox::new(&mut out_slots, me.index());
        let status = prog.step(&ctx, r, &inbox, &mut outbox);
        let mut expected = vec![BitString::new(); n];
        for (dst, msg) in &round_t.sent {
            expected[dst.index()] = msg.clone();
        }
        if out_slots != expected {
            return false;
        }
        match status {
            Status::Continue => {
                if r + 1 == rounds {
                    return false; // transcript ended but A keeps going
                }
            }
            Status::Halt(accept) => {
                return accept && r + 1 == rounds;
            }
        }
    }
    false // empty transcript: A never halted
}

struct NormalFormNode<P> {
    problem: P,
    me: NodeId,
    row: BitString,
    transcript: Option<Transcript>,
    horizon: usize,
    reject: bool,
    verdicts_ok: bool,
}

impl<P: NondetProblem + Send> NodeProgram for NormalFormNode<P> {
    type Output = bool;

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<bool> {
        let n = ctx.n;
        if round < self.horizon {
            // Replay phase. Compare this round's receptions with the
            // transcript, then emit this round's claimed sends.
            if let Some(t) = self.transcript.as_ref() {
                let expected: Vec<(NodeId, BitString)> = t
                    .rounds
                    .get(round)
                    .map(|rt| rt.received.clone())
                    .unwrap_or_default();
                let mut expect_slots = vec![BitString::new(); n];
                for (src, msg) in expected {
                    expect_slots[src.index()] = msg;
                }
                for u in 0..n {
                    if u == self.me.index() {
                        continue;
                    }
                    if inbox.from(NodeId::from(u)) != &expect_slots[u] {
                        self.reject = true;
                    }
                }
                if !self.reject {
                    if let Some(rt) = t.rounds.get(round) {
                        for (dst, msg) in &rt.sent {
                            outbox.send(*dst, msg.clone());
                        }
                    }
                }
            } else {
                self.reject = true;
            }
            Status::Continue
        } else if round == self.horizon {
            // Verdict broadcast: replay consistency + local search result.
            let ok = !self.reject
                && self
                    .transcript
                    .as_ref()
                    .is_some_and(|t| local_search(&self.problem, n, self.me, &self.row, t));
            self.verdicts_ok = ok;
            let mut m = BitString::new();
            m.push(ok);
            outbox.broadcast(&m);
            Status::Continue
        } else {
            // Collect verdicts; unanimity required.
            let mut all_ok = self.verdicts_ok;
            let mut heard = 1;
            for (_, msg) in inbox.iter() {
                heard += 1;
                if msg.len() != 1 || !msg.get(0) {
                    all_ok = false;
                }
            }
            Status::Halt(all_ok && heard == n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nondet::{prove_and_verify, verify};
    use crate::problems::{Connectivity, KColoring, SetKind, SetProblem};
    use cc_graph::gen;
    use rand::{Rng, SeedableRng};

    #[test]
    fn completeness_for_coloring() {
        let nf = NormalForm::new(KColoring { k: 3 });
        for seed in 0..3 {
            let (g, _) = gen::k_colorable(7, 3, 0.6, seed);
            let verdict = prove_and_verify(&nf, &g).unwrap().expect("yes-instance");
            assert!(verdict.accepted, "seed {seed}");
        }
    }

    #[test]
    fn completeness_for_set_problems_and_connectivity() {
        let problems: Vec<Box<dyn NondetProblem>> = vec![
            Box::new(NormalForm::new(SetProblem {
                kind: SetKind::IndependentSet,
                k: 2,
            })),
            Box::new(NormalForm::new(SetProblem {
                kind: SetKind::DominatingSet,
                k: 2,
            })),
            Box::new(NormalForm::new(Connectivity)),
        ];
        for p in &problems {
            let mut yes = 0;
            for seed in 0..6 {
                let g = gen::gnp(6, 0.4, 300 + seed);
                if !p.contains(&g) {
                    continue;
                }
                yes += 1;
                let verdict = prove_and_verify(p.as_ref(), &g)
                    .unwrap()
                    .expect("yes-instance");
                assert!(verdict.accepted, "{} seed {seed}", p.name());
            }
            assert!(yes > 0, "{}: no yes-instances sampled", p.name());
        }
    }

    #[test]
    fn soundness_against_adversarial_transcripts() {
        // On no-instances, random bit strings and *transplanted* honest
        // transcripts (from other graphs) must be rejected.
        let nf = NormalForm::new(KColoring { k: 2 });
        let c5 = gen::cycle(5); // odd cycle: not 2-colourable
        assert!(!nf.contains(&c5));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        for _ in 0..10 {
            let len = rng.gen_range(0..200);
            let z = Labelling(
                (0..5)
                    .map(|_| (0..len).map(|_| rng.gen_bool(0.5)).collect())
                    .collect(),
            );
            assert!(!verify(&nf, &c5, &z).unwrap().accepted);
        }
        // Transplant: transcripts from the even cycle C4 padded to 5 nodes.
        let p4 = gen::path(5); // 2-colourable on the same node count
        let honest = nf.prove(&p4).expect("path is 2-colourable");
        assert!(
            !verify(&nf, &c5, &honest).unwrap().accepted,
            "transplanted certificate accepted"
        );
    }

    #[test]
    fn certificate_size_within_theorem_bound() {
        // |z_v| ≤ O(T(n)·n·log n), with this implementation's constants.
        for n in [5usize, 8, 12] {
            let (g, _) = gen::k_colorable(n, 3, 0.5, n as u64);
            let nf = NormalForm::new(KColoring { k: 3 });
            let z = nf.prove(&g).expect("colourable");
            let bound = nf.label_bound(n);
            assert!(
                z.max_label_bits() <= bound,
                "n={n}: {} > bound {bound}",
                z.max_label_bits()
            );
            // And the bound itself is O(T n log n): T = 2 rounds here.
            let t = nf.horizon(n);
            let asymptotic = 64 * t * n * BitString::width_for(n).max(1);
            assert!(
                bound <= asymptotic,
                "bound {bound} not O(T·n·log n) = {asymptotic}"
            );
        }
    }

    #[test]
    fn tampered_honest_transcript_rejected() {
        let (g, _) = gen::k_colorable(6, 3, 0.6, 11);
        let nf = NormalForm::new(KColoring { k: 3 });
        let honest = nf.prove(&g).unwrap();
        assert!(verify(&nf, &g, &honest).unwrap().accepted);
        // Flip one bit somewhere in node 2's transcript.
        let mut tampered = honest.clone();
        let bits = tampered.0[2].clone();
        if bits.len() > 20 {
            let mut flipped = bits.clone();
            flipped.set(20, !flipped.get(20));
            tampered.0[2] = flipped;
            assert!(
                !verify(&nf, &g, &tampered).unwrap().accepted,
                "bit-flipped transcript accepted"
            );
        }
    }

    #[test]
    fn normal_form_preserves_the_language_exhaustively() {
        // For every graph on 4 nodes: inner yes ⟺ honest normal-form
        // certificate accepted (completeness); inner no ⟹ honest prover
        // yields nothing.
        let nf = NormalForm::new(SetProblem {
            kind: SetKind::VertexCover,
            k: 1,
        });
        for g in Graph::enumerate_all(4) {
            match nf.prove(&g) {
                Some(z) => {
                    assert!(nf.contains(&g));
                    assert!(verify(&nf, &g, &z).unwrap().accepted, "graph {g:?}");
                }
                None => assert!(!nf.contains(&g), "graph {g:?}"),
            }
        }
    }
}
