//! Testkit conformance for `cc-core`: the transcript-determinism
//! regression for randomized protocols (§8's Monte Carlo → nondeterminism
//! conversion) and a full transcript audit of the verifier's execution
//! against the model bandwidth and the declared time bound.

use cc_core::randomized::{OneSidedMonteCarlo, RandomizedColoring};
use cc_graph::gen;
use cc_testkit::{assert_transcripts_conform, differential_programs, AuditSpec};
use cliquesim::{BitString, Engine, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Per-node coin strings from a fixed `rand_chacha` seed, exactly the
/// shape `MonteCarloAdapter`'s prover samples.
fn seeded_coins(n: usize, bits: usize, seed: u64) -> Vec<BitString> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..bits).map(|_| rng.gen_bool(0.5)).collect())
        .collect()
}

#[test]
fn randomized_protocol_transcripts_are_byte_identical_across_pool_shapes() {
    // n = 15 ≥ 2·7, so the 7-worker pooled path genuinely engages; the
    // verifier under fixed coins must produce byte-identical transcripts
    // at every shape in {1, 4, 7}.
    let n = 15;
    let algo = RandomizedColoring { k: 4 };
    let (g, _) = gen::k_colorable(n, 4, 0.4, 11);
    let coins = seeded_coins(n, algo.coin_bits(n), 0xC01_FFEE);

    let label = "randomized-coloring[n=15, seed=0xC01FFEE]";
    let (outputs, stats, transcripts) = differential_programs(label, &Engine::new(n), || {
        (0..n)
            .map(|v| algo.node(n, NodeId::from(v), &g.input_row(NodeId::from(v)), &coins[v]))
            .collect()
    });
    assert_eq!(outputs.len(), n);

    // Audit the recorded transcripts against the model's strict
    // ⌈log₂ n⌉ budget and the algorithm's declared time bound.
    let spec = AuditSpec::model(n).with_round_bound(algo.time_bound(n));
    let report = assert_transcripts_conform(label, &transcripts, &stats, &spec);
    assert_eq!(report.rounds, stats.rounds);
}

#[test]
fn verifier_accepts_exactly_proper_colorings() {
    // Under planted coins (the known coloring), every node accepts; under
    // a deliberately clashing coloring, some node rejects — both outcomes
    // judged against the central reference and stable across pool shapes.
    let n = 14;
    let algo = RandomizedColoring { k: 3 };
    let (g, colors) = gen::k_colorable(n, 3, 0.5, 23);
    let w = algo.coin_bits(n);
    let encode = |c: usize| -> BitString {
        let mut b = BitString::new();
        b.push_uint(c as u64, w);
        b
    };

    let proper: Vec<BitString> = colors.iter().map(|&c| encode(c)).collect();
    let label = "coloring-verifier[n=14, seed=23]";
    let (outputs, _, _) = differential_programs(label, &Engine::new(n), || {
        (0..n)
            .map(|v| {
                algo.node(
                    n,
                    NodeId::from(v),
                    &g.input_row(NodeId::from(v)),
                    &proper[v],
                )
            })
            .collect()
    });
    assert!(
        cc_graph::reference::is_proper_coloring(&g, &colors),
        "{label}: planted coloring must be proper"
    );
    assert!(
        outputs.iter().all(|&b| b),
        "{label}: verifier rejected a proper coloring"
    );

    // Monochrome coins on an edge endpoint pair must be caught.
    let first_edge = {
        let mut edges = g.edges();
        edges.next()
    };
    if let Some((u, v)) = first_edge {
        let mut bad = proper.clone();
        bad[v] = bad[u].clone();
        let (outputs, _, _) = differential_programs(label, &Engine::new(n), || {
            (0..n)
                .map(|x| algo.node(n, NodeId::from(x), &g.input_row(NodeId::from(x)), &bad[x]))
                .collect()
        });
        assert!(
            !outputs.iter().all(|&b| b),
            "{label}: verifier accepted a clashing coloring ({u},{v})"
        );
    }
}
