//! Verifier soundness under certificate corruption.
//!
//! For every registered NCLIQUE(1) problem we plant a yes-instance, take
//! the honest prover's certificate, flip 1–3 bits, and demand the verifier
//! reject — unless the mutant is provably a *legitimate alternate witness*,
//! which each problem's ground-truth validator below re-checks directly
//! against the graph (colourings stay proper, matchings stay mutual, …).
//! Completeness suites only ever exercise the accept path; this suite walks
//! the boundary around it, where under-checking verifiers hide.
//!
//! Failures from the deterministic sweep print replayable
//! `cert-corrupt[problem=…, instance=…, trial=…]` labels via the
//! cc-testkit harness.

use cc_core::{all_problems, exists_certificate, verify, Labelling, SetKind, SetProblem};
use cc_graph::{gen, Graph};
use cc_testkit::{assert_corrupted_certificates_rejected, corrupt_labelling};
use cliquesim::BitString;
use proptest::prelude::*;

/// Decode an exactly-`width`-bit label; `None` on any length mismatch.
fn decode(label: &BitString, width: usize) -> Option<u64> {
    if label.len() != width {
        return None;
    }
    label.reader().read_uint(width).ok()
}

fn coloring_ok(g: &Graph, z: &Labelling, k: usize) -> bool {
    let cw = BitString::width_for(k.max(2));
    let colors: Option<Vec<u64>> = z.0.iter().map(|b| decode(b, cw)).collect();
    let Some(colors) = colors else { return false };
    colors.iter().all(|&c| (c as usize) < k) && g.edges().all(|(u, v)| colors[u] != colors[v])
}

fn ham_path_ok(g: &Graph, z: &Labelling) -> bool {
    let n = g.n();
    let idw = BitString::width_for(n);
    let pos: Option<Vec<u64>> = z.0.iter().map(|b| decode(b, idw)).collect();
    let Some(pos) = pos else { return false };
    let mut order = vec![usize::MAX; n];
    for (v, &p) in pos.iter().enumerate() {
        if (p as usize) >= n || order[p as usize] != usize::MAX {
            return false;
        }
        order[p as usize] = v;
    }
    order.windows(2).all(|w| g.has_edge(w[0], w[1]))
}

fn set_ok(g: &Graph, z: &Labelling, kind: SetKind, k: usize) -> bool {
    let members: Option<Vec<bool>> = z.0.iter().map(|b| decode(b, 1).map(|x| x == 1)).collect();
    let Some(members) = members else { return false };
    let n = g.n();
    let count = members.iter().filter(|m| **m).count();
    match kind {
        SetKind::IndependentSet => {
            count == k && g.edges().all(|(u, v)| !(members[u] && members[v]))
        }
        SetKind::DominatingSet => {
            count == k && (0..n).all(|v| members[v] || g.neighbors(v).any(|u| members[u]))
        }
        SetKind::VertexCover => count <= k && g.edges().all(|(u, v)| members[u] || members[v]),
    }
}

fn matching_ok(g: &Graph, z: &Labelling) -> bool {
    let n = g.n();
    let idw = BitString::width_for(n);
    let partner: Option<Vec<u64>> = z.0.iter().map(|b| decode(b, idw)).collect();
    let Some(partner) = partner else { return false };
    (0..n).all(|v| {
        let p = partner[v] as usize;
        p < n && p != v && partner[p] as usize == v && g.has_edge(v, p)
    })
}

fn connectivity_ok(g: &Graph, z: &Labelling) -> bool {
    let n = g.n();
    let idw = BitString::width_for(n);
    let decoded: Option<Vec<(usize, u64)>> =
        z.0.iter()
            .map(|b| {
                if b.len() != 2 * idw {
                    return None;
                }
                let mut r = b.reader();
                let p = r.read_uint(idw).ok()?;
                let d = r.read_uint(idw).ok()?;
                ((p as usize) < n && (d as usize) < n).then_some((p as usize, d))
            })
            .collect();
    let Some(pd) = decoded else { return false };
    let roots = pd
        .iter()
        .enumerate()
        .filter(|(v, (p, d))| p == v && *d == 0)
        .count();
    roots == 1
        && pd
            .iter()
            .enumerate()
            .all(|(v, &(p, d))| (p == v && d == 0) || (g.has_edge(v, p) && pd[p].1 + 1 == d))
}

/// Planted yes-instance and ground-truth witness validator for each
/// registered problem. Panics on an unknown name, so adding a problem to
/// [`all_problems`] without extending this table fails loudly here.
fn planted(name: &str) -> (Graph, fn(&Graph, &Labelling) -> bool) {
    match name {
        "2-colouring" => (gen::cycle(6), |g, z| coloring_ok(g, z, 2)),
        "3-colouring" => (gen::cycle(5), |g, z| coloring_ok(g, z, 3)),
        "hamiltonian-path" => (gen::path(6), ham_path_ok),
        // Path 0–1–2–3–4 plus the chord (0,2): exactly one triangle, and
        // the certificate is replicated at every node, so ≤ 3 flips always
        // break the cross-node consistency check — no mutant is a witness.
        "triangle-exists" => (
            Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 2)]),
            |_, _| false,
        ),
        "2-independent-set" => (gen::path(4), |g, z| {
            set_ok(g, z, SetKind::IndependentSet, 2)
        }),
        "2-dominating-set" => (gen::path(6), |g, z| set_ok(g, z, SetKind::DominatingSet, 2)),
        "vertex-cover-at-most-2" => (gen::path(4), |g, z| set_ok(g, z, SetKind::VertexCover, 2)),
        "connectivity" => (gen::cycle(6), connectivity_ok),
        "perfect-matching" => (gen::cycle(6), matching_ok),
        other => panic!("no planted soundness instance for {other} — add one to planted()"),
    }
}

/// Deterministic sweep through the cc-testkit harness: 24 corruption
/// trials per problem, every failure labelled for replay.
#[test]
fn corrupted_certificates_are_rejected_everywhere() {
    for problem in all_problems() {
        let name = problem.name();
        let (g, witness_ok) = planted(&name);
        assert_corrupted_certificates_rejected(
            problem.as_ref(),
            &g,
            &format!("planted-{name}"),
            24,
            |z| witness_ok(&g, z),
        );
    }
}

/// Certificates found by exhaustive search are just as fragile as the
/// honest prover's: corrupting them must flip the verdict unless the
/// mutant is itself an independent set.
#[test]
fn exhaustively_found_certificates_are_fragile_too() {
    let problem = SetProblem {
        kind: SetKind::IndependentSet,
        k: 2,
    };
    let g = gen::path(4);
    let z = exists_certificate(&problem, &g, 1)
        .unwrap()
        .expect("P4 has an independent set of size 2");
    assert!(verify(&problem, &g, &z).unwrap().accepted);
    for seed in 0..16u64 {
        let (damaged, flips) = corrupt_labelling(&z, seed);
        let verdict = verify(&problem, &g, &damaged).unwrap();
        assert!(
            !verdict.accepted || set_ok(&g, &damaged, SetKind::IndependentSet, 2),
            "seed {seed}: accepted a non-witness mutant (flips {flips:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomised corruption seeds on top of the deterministic sweep:
    /// whatever 1–3 bits a seed picks, acceptance implies witness-hood.
    #[test]
    fn random_corruptions_never_smuggle_a_verdict(seed in 0u64..1_000_000) {
        for problem in all_problems() {
            let name = problem.name();
            let (g, witness_ok) = planted(&name);
            let z = problem.prove(&g).expect("planted yes-instance");
            let (damaged, flips) = corrupt_labelling(&z, seed);
            let verdict = verify(problem.as_ref(), &g, &damaged).unwrap();
            prop_assert!(
                !verdict.accepted || witness_ok(&g, &damaged),
                "{name}: seed {seed} accepted a non-witness mutant (flips {flips:?})"
            );
        }
    }
}
