//! Testkit conformance: subgraph detection witnesses and counts are
//! re-judged by brute-force oracles, differentially across pool shapes.
//! Planted families guarantee the positive branches are exercised.

use cc_subgraph::{
    count_triangles_distributed, detect_clique, detect_independent_set, detect_triangle,
};
use cc_testkit::{corpus, differential_session, oracle, Family, Instance};

#[test]
fn triangle_detection_conforms() {
    for inst in corpus(&[9, 12], &[1]) {
        let g = inst.graph();
        let got = differential_session(&inst.label(), g.n(), |s| detect_triangle(s, &g).unwrap());
        oracle::judge_clique_witness(&inst.label(), &g, 3, &got);
    }
}

#[test]
fn triangle_counting_conforms() {
    for inst in corpus(&[9, 13], &[2]) {
        let g = inst.graph();
        let got = differential_session(&inst.label(), g.n(), |s| {
            count_triangles_distributed(s, &g).unwrap()
        });
        oracle::judge_triangle_count(&inst.label(), &g, got);
    }
}

#[test]
fn clique_detection_finds_planted_cliques() {
    for seed in [1u64, 2, 3] {
        let inst = Instance::new(Family::PlantedClique, 12, seed);
        let g = inst.graph();
        let k = 4; // planted size for n = 12
        let got = differential_session(&inst.label(), g.n(), |s| detect_clique(s, &g, k).unwrap());
        oracle::judge_clique_witness(&inst.label(), &g, k, &got);
        assert!(got.is_some(), "{}: planted 4-clique must be found", inst);
    }
}

#[test]
fn independent_set_detection_conforms() {
    for family in [
        Family::PlantedIndependentSet,
        Family::Complete,
        Family::ErDense,
    ] {
        for seed in [1u64, 5] {
            let inst = Instance::new(family, 10, seed);
            let g = inst.graph();
            let got = differential_session(&inst.label(), g.n(), |s| {
                detect_independent_set(s, &g, 3).unwrap()
            });
            oracle::judge_independent_set_witness(&inst.label(), &g, 3, &got);
        }
    }
}
