//! Triangle counting and enumeration.
//!
//! §2 of the paper singles out triangle *enumeration* as one of the few
//! problems with known congested clique lower bounds (Pandurangan,
//! Robinson & Scquizzato \[49\]: `Ω̃(n^{1/3})`, matching Dolev et al.'s
//! upper bound) — the lower bound exists precisely because the *output*
//! is large, which the paper's decision-problem framing deliberately
//! avoids. This module implements the output-heavy problem: every
//! triangle is reported exactly once, by its canonical detector.

use cc_graph::Graph;
use cc_routing::{route_balanced, RouteError};
use cliquesim::{BitString, NodeId, Session};

use crate::partition::Partition;

/// Count all triangles, each counted exactly once (at the detector node
/// canonically responsible for its vertex triple). All nodes learn the
/// total. Costs `O(n^{1/3})` rounds for the edge redistribution plus a
/// constant-round sum aggregation.
pub fn count_triangles_distributed(session: &mut Session, g: &Graph) -> Result<u64, RouteError> {
    let counts = per_detector_counts(session, g)?;
    // Aggregate: each node broadcasts its local count (≤ n³, 2·32 bits),
    // everyone sums. One routing phase.
    let payloads: Vec<BitString> = counts
        .iter()
        .map(|&c| {
            let mut b = BitString::new();
            b.push_uint(c, 48);
            b
        })
        .collect();
    let views = cc_routing::all_to_all_broadcast(session, payloads)?;
    let total = views[0]
        .iter()
        .map(|bits| bits.reader().read_uint(48).expect("well-formed count"))
        .sum();
    Ok(total)
}

/// Enumerate all triangles: returns the full list (each exactly once,
/// sorted). The output has `Θ(#triangles · log n)` bits — the paper's §2
/// point is that *this* is where unconditional lower bounds come from.
pub fn enumerate_triangles_distributed(
    session: &mut Session,
    g: &Graph,
) -> Result<Vec<[usize; 3]>, RouteError> {
    let n = session.n();
    let part = Partition::new(n, 3);
    let local = per_detector_triangles(session, g, &part)?;
    // Ship every triangle to node 0 … n−1 round-robin? For the enumeration
    // semantics it suffices that the *union of outputs* is the triangle
    // list; here every detector keeps its own finds and the driver
    // concatenates (each node outputs its share — the standard
    // "enumeration" output convention of [49]).
    let mut all: Vec<[usize; 3]> = local.into_iter().flatten().collect();
    all.sort_unstable();
    all.dedup();
    Ok(all)
}

/// Shared phase: each detector learns its union's induced edges and lists
/// the triangles it is canonically responsible for.
fn per_detector_triangles(
    session: &mut Session,
    g: &Graph,
    part: &Partition,
) -> Result<Vec<Vec<[usize; 3]>>, RouteError> {
    let n = session.n();
    assert_eq!(g.n(), n);
    if n < 3 {
        return Ok(vec![Vec::new(); n]);
    }

    let unions: Vec<Option<Vec<usize>>> = (0..n).map(|v| part.union_of(v)).collect();
    let member: Vec<Option<Vec<bool>>> = unions
        .iter()
        .map(|u| {
            u.as_ref().map(|verts| {
                let mut m = vec![false; n];
                for &x in verts {
                    m[x] = true;
                }
                m
            })
        })
        .collect();

    // Phase 1: induced-union edge shipping (same pattern as `detect`).
    let mut demands: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
    for a in 0..n {
        for v in 0..n {
            let Some(m) = member[v].as_ref() else {
                continue;
            };
            if !m[a] || v == a {
                continue;
            }
            let mut bits = BitString::new();
            for b in unions[v]
                .as_ref()
                .expect("member implies union")
                .iter()
                .copied()
            {
                if b > a {
                    bits.push(g.has_edge(a, b));
                }
            }
            if !bits.is_empty() {
                demands[a].push((NodeId::from(v), bits));
            }
        }
    }
    let delivered = route_balanced(session, demands)?;

    // Phase 2: local canonical listing.
    let mut out: Vec<Vec<[usize; 3]>> = vec![Vec::new(); n];
    for v in 0..n {
        let Some(m) = member[v].as_ref() else {
            continue;
        };
        let union = unions[v].as_ref().expect("detector has a union");
        let mut induced = Graph::empty(n);
        let mut payload_of: Vec<Option<&BitString>> = vec![None; n];
        for (src, bits) in &delivered[v] {
            payload_of[src.index()] = Some(bits);
        }
        for &a in union {
            if a == v {
                for &b in union {
                    if b > a && g.has_edge(a, b) {
                        induced.add_edge(a, b);
                    }
                }
                continue;
            }
            let Some(bits) = payload_of[a] else { continue };
            let mut idx = 0;
            for &b in union {
                if b > a {
                    if bits.get(idx) {
                        induced.add_edge(a, b);
                    }
                    idx += 1;
                }
            }
        }
        let _ = m;
        // Canonical responsibility: v lists triangle {a,b,c} (a<b<c) iff
        // v == detector_for([a,b,c]) — every triple has exactly one owner.
        for (ai, &a) in union.iter().enumerate() {
            for (bi, &b) in union.iter().enumerate().skip(ai + 1) {
                if !induced.has_edge(a, b) {
                    continue;
                }
                for &c in union.iter().skip(bi + 1) {
                    if induced.has_edge(a, c)
                        && induced.has_edge(b, c)
                        && part.detector_for(&[a, b, c]) == v
                    {
                        out[v].push([a, b, c]);
                    }
                }
            }
        }
    }
    Ok(out)
}

fn per_detector_counts(session: &mut Session, g: &Graph) -> Result<Vec<u64>, RouteError> {
    let n = session.n();
    let part = Partition::new(n, 3);
    Ok(per_detector_triangles(session, g, &part)?
        .into_iter()
        .map(|l| l.len() as u64)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{gen, reference};
    use cliquesim::Engine;

    #[test]
    fn counts_match_reference() {
        for seed in 0..5 {
            let n = 18;
            let g = gen::gnp(n, 0.3, seed);
            let mut s = Session::new(Engine::new(n));
            let got = count_triangles_distributed(&mut s, &g).unwrap();
            assert_eq!(got, reference::count_triangles(&g), "seed {seed}");
        }
    }

    #[test]
    fn enumeration_lists_each_triangle_once() {
        let g = Graph::complete(7); // C(7,3) = 35 triangles
        let mut s = Session::new(Engine::new(7));
        let list = enumerate_triangles_distributed(&mut s, &g).unwrap();
        assert_eq!(list.len(), 35);
        // Verified and canonical.
        for [a, b, c] in &list {
            assert!(a < b && b < c);
            assert!(g.has_edge(*a, *b) && g.has_edge(*b, *c) && g.has_edge(*a, *c));
        }
    }

    #[test]
    fn triangle_free_graphs_count_zero() {
        let g = gen::cycle(12);
        let mut s = Session::new(Engine::new(12));
        assert_eq!(count_triangles_distributed(&mut s, &g).unwrap(), 0);
    }

    #[test]
    fn tiny_cliques() {
        let g = Graph::complete(2);
        let mut s = Session::new(Engine::new(2));
        assert_eq!(count_triangles_distributed(&mut s, &g).unwrap(), 0);
        let g3 = Graph::complete(3);
        let mut s3 = Session::new(Engine::new(3));
        assert_eq!(count_triangles_distributed(&mut s3, &g3).unwrap(), 1);
    }

    #[test]
    fn enumeration_agrees_with_count() {
        for seed in 0..3 {
            let n = 15;
            let g = gen::gnp(n, 0.35, 50 + seed);
            let mut s1 = Session::new(Engine::new(n));
            let count = count_triangles_distributed(&mut s1, &g).unwrap();
            let mut s2 = Session::new(Engine::new(n));
            let list = enumerate_triangles_distributed(&mut s2, &g).unwrap();
            assert_eq!(list.len() as u64, count, "seed {seed}");
        }
    }
}
