//! The Dolev–Lenzen–Peled partition scheme.
//!
//! §7.1 of the paper: "Partition the node set V arbitrarily into sets
//! `S_1, …, S_{n^{1/k}}` of size `O(n^{1−1/k})`" and "assign each node
//! `v ∈ V` a label `ℓ(v) ∈ [n^{1/k}]^k` so that each possible label is
//! assigned to some node". A node labelled `(j_1, …, j_k)` is responsible
//! for the union `S_{j_1} ∪ … ∪ S_{j_k}`; every k-subset of V lies inside
//! at least one such union.

/// The partition-and-label structure shared by the Dolev et al. subgraph
/// detector (`O(n^{1−2/k})` rounds) and Theorem 9's k-dominating-set
/// algorithm (`O(n^{1−1/k})` rounds).
#[derive(Clone, Copy, Debug)]
pub struct Partition {
    n: usize,
    k: usize,
    /// Number of parts, `q = ⌊n^{1/k}⌋` (at least 1).
    q: usize,
    /// Vertices per part (last part may be smaller).
    part_size: usize,
}

impl Partition {
    /// Partition for detecting size-`k` structures on `n` vertices.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        assert!(n >= 1);
        // Largest q with q^k ≤ n.
        let mut q = 1usize;
        while (q + 1).checked_pow(k as u32).is_some_and(|p| p <= n) {
            q += 1;
        }
        Self {
            n,
            k,
            q,
            part_size: n.div_ceil(q),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Structure size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of parts `q`.
    pub fn parts(&self) -> usize {
        self.q
    }

    /// Part of vertex `u`.
    pub fn part_of(&self, u: usize) -> usize {
        (u / self.part_size).min(self.q - 1)
    }

    /// Vertices of part `j`, in increasing order.
    pub fn members(&self, j: usize) -> std::ops::Range<usize> {
        let start = j * self.part_size;
        let end = if j + 1 == self.q {
            self.n
        } else {
            ((j + 1) * self.part_size).min(self.n)
        };
        start..end
    }

    /// The label of detector node `v`: its base-`q` digits, or `None` for
    /// nodes `v ≥ q^k` (which sit out the detection but still relay).
    pub fn label(&self, v: usize) -> Option<Vec<usize>> {
        let total = self.q.pow(self.k as u32);
        if v >= total {
            return None;
        }
        let mut digits = Vec::with_capacity(self.k);
        let mut x = v;
        for _ in 0..self.k {
            digits.push(x % self.q);
            x /= self.q;
        }
        Some(digits)
    }

    /// Number of detector nodes, `q^k ≤ n`.
    pub fn detectors(&self) -> usize {
        self.q.pow(self.k as u32)
    }

    /// The union of parts a detector is responsible for, as a sorted,
    /// deduplicated vertex list.
    pub fn union_of(&self, v: usize) -> Option<Vec<usize>> {
        let label = self.label(v)?;
        let mut parts: Vec<usize> = label;
        parts.sort_unstable();
        parts.dedup();
        let mut verts = Vec::new();
        for j in parts {
            verts.extend(self.members(j));
        }
        Some(verts)
    }

    /// The detector node responsible for a given k-subset of vertices (the
    /// canonical witness checker used in proofs/tests).
    pub fn detector_for(&self, subset: &[usize]) -> usize {
        assert_eq!(subset.len(), self.k);
        let mut v = 0usize;
        for (pos, &u) in subset.iter().enumerate() {
            v += self.part_of(u) * self.q.pow(pos as u32);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn q_is_floor_root() {
        assert_eq!(Partition::new(27, 3).parts(), 3);
        assert_eq!(Partition::new(26, 3).parts(), 2);
        assert_eq!(Partition::new(64, 3).parts(), 4);
        assert_eq!(Partition::new(64, 2).parts(), 8);
        assert_eq!(Partition::new(5, 3).parts(), 1);
        assert_eq!(Partition::new(1, 4).parts(), 1);
    }

    #[test]
    fn parts_cover_vertices() {
        for n in [5, 8, 27, 30, 64] {
            for k in 1..=4 {
                let p = Partition::new(n, k);
                let mut seen = vec![false; n];
                for j in 0..p.parts() {
                    for u in p.members(j) {
                        assert_eq!(p.part_of(u), j);
                        assert!(!seen[u]);
                        seen[u] = true;
                    }
                }
                assert!(seen.into_iter().all(|s| s), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn labels_enumerate_all_tuples() {
        let p = Partition::new(27, 3);
        let mut seen = std::collections::HashSet::new();
        for v in 0..p.detectors() {
            let l = p.label(v).unwrap();
            assert_eq!(l.len(), 3);
            assert!(l.iter().all(|&d| d < p.parts()));
            assert!(seen.insert(l));
        }
        assert_eq!(seen.len(), 27);
        assert_eq!(p.label(p.detectors()), None);
    }

    proptest! {
        #[test]
        fn prop_every_subset_has_a_detector(seed in any::<u64>(), n in 8usize..40, k in 2usize..4) {
            use rand::{seq::SliceRandom, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let p = Partition::new(n, k);
            let mut verts: Vec<usize> = (0..n).collect();
            verts.shuffle(&mut rng);
            let subset: Vec<usize> = verts[..k].to_vec();
            let det = p.detector_for(&subset);
            prop_assert!(det < p.detectors());
            let union = p.union_of(det).unwrap();
            for u in &subset {
                prop_assert!(union.contains(u), "vertex {u} missing from union of detector {det}");
            }
        }
    }
}
