//! Triangle detection through Boolean matrix multiplication.
//!
//! Figure 1's arrow "Triangle ≤ Boolean MM" (Censor-Hillel et al. \[10\]):
//! a triangle exists iff some edge `{v,u}` has `(A²)_{v,u} = 1`. Node `v`
//! ends the multiplication holding row `v` of `A²` and its own adjacency
//! row, so the check is local; one agreement phase publishes the verdict.
//! This is the ablation partner of the combinatorial Dolev et al. detector
//! in `crate::detect` — both run at exponent 1/3 here (the `1 − 2/ω` bound
//! needs fast ring MM; see DESIGN.md).

use cc_graph::Graph;
use cc_matmul::{mm_with_strategy, BoolSemiring, MatmulError, MmStrategy, RingI64};
use cc_routing::{all_to_all_broadcast, RouteError};
use cliquesim::{BitString, Session};

/// Errors from the MM-based detector.
#[derive(Debug)]
pub enum MmDetectError {
    /// Matrix multiplication failed.
    Matmul(MatmulError),
    /// Verdict agreement failed.
    Route(RouteError),
}

impl std::fmt::Display for MmDetectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmDetectError::Matmul(e) => write!(f, "mm triangle: {e}"),
            MmDetectError::Route(e) => write!(f, "mm triangle: {e}"),
        }
    }
}

impl std::error::Error for MmDetectError {}

impl From<MatmulError> for MmDetectError {
    fn from(e: MatmulError) -> Self {
        MmDetectError::Matmul(e)
    }
}

impl From<RouteError> for MmDetectError {
    fn from(e: RouteError) -> Self {
        MmDetectError::Route(e)
    }
}

/// Detect a triangle via `A²∧A`; returns one witness edge `(v, u)` that
/// closes a triangle (the third vertex is a common neighbour of `v` and
/// `u`), or `None`. Costs one Boolean MM (`O(n^{1/3})` rounds) plus `O(1)`.
pub fn triangle_via_mm(
    session: &mut Session,
    g: &Graph,
) -> Result<Option<(usize, usize)>, MmDetectError> {
    triangle_via_mm_with(session, g, MmStrategy::Dense3D)
}

/// [`triangle_via_mm`] with an explicit multiplication strategy. Sparse
/// graphs (`|E| ≲ n^{3/2}`) benefit from [`MmStrategy::Sparse`] or
/// [`MmStrategy::Auto`]; the witness (if any) is identical regardless of
/// strategy because the product rows are bit-identical.
pub fn triangle_via_mm_with(
    session: &mut Session,
    g: &Graph,
    strategy: MmStrategy,
) -> Result<Option<(usize, usize)>, MmDetectError> {
    let n = session.n();
    assert_eq!(g.n(), n);
    let rows: Vec<Vec<bool>> = (0..n)
        .map(|v| (0..n).map(|u| g.has_edge(v, u)).collect())
        .collect();
    let sq = mm_with_strategy(session, &BoolSemiring, strategy, &rows, &rows)?.rows;

    // Node v's local verdict: some u with {v,u} ∈ E and (A²)_{v,u} = 1.
    let idw = BitString::width_for(n);
    let payloads: Vec<BitString> = (0..n)
        .map(|v| {
            let hit = (0..n).find(|&u| rows[v][u] && sq[v][u]);
            let mut bits = BitString::new();
            match hit {
                Some(u) => {
                    bits.push(true);
                    bits.push_uint(u as u64, idw);
                }
                None => bits.push(false),
            }
            bits
        })
        .collect();
    let views = all_to_all_broadcast(session, payloads)?;
    for (v, bits) in views[0].iter().enumerate() {
        let mut r = bits.reader();
        if r.read_bit().unwrap_or(false) {
            let u = r.read_uint(idw).expect("well-formed verdict") as usize;
            return Ok(Some((v, u)));
        }
    }
    Ok(None)
}

/// Count triangles via ring MM: `#triangles = (1/6) Σ_{v,u} A_{vu}·(A²)_{vu}`.
///
/// Runs one `(+,·)` multiplication (entries of `A²` count common
/// neighbours, so they fit in `⌈log₂ n⌉ + 1` signed bits), then one
/// agreement round where every node publishes its local partial sum.
/// Costs the same exponent as detection but yields the exact count —
/// the algebraic counterpart of the combinatorial
/// [`crate::count_triangles_distributed`].
pub fn count_triangles_via_mm_with(
    session: &mut Session,
    g: &Graph,
    strategy: MmStrategy,
) -> Result<u64, MmDetectError> {
    let n = session.n();
    assert_eq!(g.n(), n);
    // Width must hold counts up to n in two's complement: log₂(n+1) + sign.
    let sr = RingI64::with_width((BitString::width_for(n + 1) + 1).max(2));
    let rows: Vec<Vec<i64>> = (0..n)
        .map(|v| (0..n).map(|u| i64::from(g.has_edge(v, u))).collect())
        .collect();
    let sq = mm_with_strategy(session, &sr, strategy, &rows, &rows)?.rows;

    // Node v's partial: Σ_u A_{vu}·(A²)_{vu} ≤ n², published in one round.
    let sw = BitString::width_for(n * n + 1);
    let payloads: Vec<BitString> = (0..n)
        .map(|v| {
            let partial: i64 = (0..n).map(|u| rows[v][u] * sq[v][u]).sum();
            let mut bits = BitString::new();
            bits.push_uint(partial as u64, sw);
            bits
        })
        .collect();
    let views = all_to_all_broadcast(session, payloads)?;
    let mut total = 0u64;
    for bits in &views[0] {
        let mut r = bits.reader();
        total += r.read_uint(sw).expect("well-formed partial sum");
    }
    // Each triangle {a,b,c} is counted once per ordered pair of its corners.
    Ok(total / 6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{gen, reference};
    use cliquesim::Engine;

    #[test]
    fn mm_triangle_agrees_with_reference() {
        for seed in 0..6 {
            let n = 16;
            let g = gen::gnp(n, 0.22, seed);
            let expect = reference::count_triangles(&g) > 0;
            let mut s = Session::new(Engine::new(n));
            let got = triangle_via_mm(&mut s, &g).unwrap();
            assert_eq!(got.is_some(), expect, "seed {seed}");
            if let Some((v, u)) = got {
                assert!(g.has_edge(v, u));
                assert!((0..n).any(|w| g.has_edge(v, w) && g.has_edge(u, w)));
            }
        }
    }

    #[test]
    fn strategy_variants_agree_on_witness_presence() {
        for seed in 0..4 {
            let n = 27;
            let g = gen::gnp(n, 0.12, 200 + seed);
            let expect = reference::count_triangles(&g) > 0;
            for strategy in [MmStrategy::Auto, MmStrategy::Dense3D, MmStrategy::Sparse] {
                let mut s = Session::new(Engine::new(n));
                let got = triangle_via_mm_with(&mut s, &g, strategy).unwrap();
                assert_eq!(got.is_some(), expect, "seed {seed} {strategy:?}");
            }
        }
    }

    #[test]
    fn mm_count_matches_reference() {
        for seed in 0..4 {
            let n = 16;
            let g = gen::gnp(n, 0.3, 300 + seed);
            let expect = reference::count_triangles(&g);
            for strategy in [MmStrategy::Auto, MmStrategy::Dense3D, MmStrategy::Sparse] {
                let mut s = Session::new(Engine::new(n));
                let got = count_triangles_via_mm_with(&mut s, &g, strategy).unwrap();
                assert_eq!(got, expect, "seed {seed} {strategy:?}");
            }
        }
    }

    #[test]
    fn mm_and_dolev_agree() {
        for seed in 0..4 {
            let n = 16;
            let g = gen::gnp(n, 0.18, 100 + seed);
            let mut s1 = Session::new(Engine::new(n));
            let mm = triangle_via_mm(&mut s1, &g).unwrap();
            let mut s2 = Session::new(Engine::new(n));
            let dolev = crate::detect::detect_triangle(&mut s2, &g).unwrap();
            assert_eq!(mm.is_some(), dolev.is_some(), "seed {seed}");
        }
    }
}
