//! k-path detection in `exp(k)` rounds, independent of `n` (§7.3).
//!
//! The paper's fixed-parameter comparison cites that "a k-path can be
//! found in exp(k) rounds \[20, 35\]". This module implements the classic
//! colour-coding approach on the clique: colour vertices with `k` colours
//! (seeded, replayable), then run the colourful-path dynamic program
//!
//! > `f_ℓ(v, S)` = "a path on `ℓ` distinctly-coloured vertices with colour
//! > set `S` ends at `v`",
//!
//! where each of the `k − 1` DP steps is one all-to-all broadcast of a
//! `2^k`-bit table — `O(2^k / log n + 1)` rounds per step, so the total
//! round count depends on `k` (exponentially) but **not on `n`**, exactly
//! the shape §7.3 contrasts with k-IS and k-DS.
//!
//! A colouring detects a fixed k-path with probability `≥ k!/k^k ≥ e^{−k}`,
//! so `trials = O(e^k)` seeded colourings give constant success
//! probability; detection is one-sided (no false positives), which also
//! makes this a worked instance of the §8 Monte Carlo → nondeterministic
//! conversion.

use cc_graph::Graph;
use cc_routing::{all_to_all_broadcast, RouteError};
use cliquesim::{BitString, Session};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Run one colour-coding trial: does `g` contain a path on `k` vertices
/// that is *colourful* under the given colouring? Exact (no error) for
/// the given colouring.
fn colorful_path_trial(
    session: &mut Session,
    g: &Graph,
    k: usize,
    colors: &[usize],
) -> Result<bool, RouteError> {
    let n = g.n();
    let masks = 1usize << k;
    // f[v][S] — every node holds its own row, rebuilt from broadcasts.
    let mut f: Vec<Vec<bool>> = (0..n)
        .map(|v| {
            let mut row = vec![false; masks];
            row[1 << colors[v]] = true;
            row
        })
        .collect();

    for _step in 1..k {
        // Broadcast each node's table (2^k bits).
        let payloads: Vec<BitString> = f
            .iter()
            .map(|row| row.iter().copied().collect::<BitString>())
            .collect();
        let views = all_to_all_broadcast(session, payloads)?;
        // Node v extends paths from its *neighbours'* tables.
        let mut next: Vec<Vec<bool>> = vec![vec![false; masks]; n];
        for v in 0..n {
            let cv = 1usize << colors[v];
            for u in g.neighbors(v) {
                let table = &views[v][u];
                for s in 0..masks {
                    if s & cv == 0 && table.get(s) {
                        next[v][s | cv] = true;
                    }
                }
            }
        }
        f = next;
    }
    let full_sets = (0..masks).filter(|s| s.count_ones() as usize == k);
    let mut hit = false;
    for s in full_sets {
        if (0..n).any(|v| f[v][s]) {
            hit = true;
        }
    }
    Ok(hit)
}

/// Detect a path on `k` vertices with colour coding: `trials` seeded
/// colourings, one-sided error (a `true` answer is always correct; a
/// `false` answer is wrong with probability ≤ `(1 − k!/k^k)^trials`).
/// Rounds: `O(trials · k · (2^k / log n + 1))` — independent of `n`.
pub fn detect_path_color_coding(
    session: &mut Session,
    g: &Graph,
    k: usize,
    trials: usize,
    seed: u64,
) -> Result<bool, RouteError> {
    let n = session.n();
    assert_eq!(g.n(), n);
    assert!((1..=16).contains(&k), "colour-coding tables are 2^k bits");
    if k == 1 {
        return Ok(n >= 1);
    }
    for t in 0..trials {
        // All nodes derive the same colouring from the shared seed (the
        // model's common random string; deterministic here for replay).
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let colors: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
        if colorful_path_trial(session, g, k, &colors)? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// The per-trial success probability `k!/k^k` (for amplification maths in
/// experiments).
pub fn trial_success_probability(k: usize) -> f64 {
    let mut p = 1.0;
    for i in 1..=k {
        p *= i as f64 / k as f64;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{gen, reference};
    use cliquesim::Engine;

    fn run(g: &Graph, k: usize, trials: usize) -> (bool, usize) {
        let mut s = Session::new(Engine::new(g.n()));
        let found = detect_path_color_coding(&mut s, g, k, trials, 42).unwrap();
        (found, s.stats().rounds)
    }

    #[test]
    fn finds_paths_in_path_graphs() {
        let g = gen::path(12);
        for k in 2..=4 {
            let (found, _) = run(&g, k, 80);
            assert!(found, "P12 contains a {k}-path");
        }
    }

    #[test]
    fn no_false_positives() {
        // Disjoint triangles contain no 4-path; one-sided error means the
        // answer must be false no matter how many trials run.
        let g = gen::cliques(12, 4); // triangles
        assert!(!reference::contains_subgraph(&g, &gen::path(4)));
        let (found, _) = run(&g, 4, 40);
        assert!(!found);
        // Star: longest path has 3 vertices.
        let star = gen::star(10);
        let (found, _) = run(&star, 4, 40);
        assert!(!found);
        let (found3, _) = run(&star, 3, 80);
        assert!(found3, "leaf–centre–leaf is a 3-path");
    }

    #[test]
    fn agrees_with_reference_on_random_graphs() {
        for seed in 0..5 {
            let g = gen::gnp(14, 0.12, 900 + seed);
            let expect = reference::contains_subgraph(&g, &gen::path(3));
            let (found, _) = run(&g, 3, 120);
            assert_eq!(found, expect, "seed {seed}");
        }
    }

    #[test]
    fn rounds_independent_of_n() {
        // Fix k and trials; grow n: per-trial rounds must not grow (the
        // 2^k-bit tables shrink relative to bandwidth as n grows).
        let mut per_trial = Vec::new();
        for n in [32usize, 64, 128] {
            let g = gen::path(n);
            let mut s = Session::new(Engine::new(n));
            // Single trial for a clean per-trial figure.
            detect_path_color_coding(&mut s, &g, 4, 1, 7).unwrap();
            per_trial.push((n, s.stats().rounds));
        }
        let rounds: Vec<usize> = per_trial.iter().map(|(_, r)| *r).collect();
        assert!(
            rounds.windows(2).all(|w| w[1] <= w[0]),
            "per-trial rounds must not grow with n: {per_trial:?}"
        );
    }

    #[test]
    fn success_probability_formula() {
        assert!((trial_success_probability(1) - 1.0).abs() < 1e-12);
        assert!((trial_success_probability(2) - 0.5).abs() < 1e-12);
        assert!((trial_success_probability(3) - 6.0 / 27.0).abs() < 1e-12);
    }
}
