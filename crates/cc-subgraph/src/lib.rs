//! # cc-subgraph — subgraph detection on the congested clique
//!
//! The detection problems of Figure 1 in Korhonen & Suomela (SPAA 2018):
//! triangle / 3-IS, size-k subgraph, k-cycle, k-independent-set.
//!
//! * [`detect`](detect::detect) — the deterministic Dolev–Lenzen–Peled
//!   partition algorithm (\[16\]): `O(n^{1−2/k})` rounds for any fixed
//!   `k`-vertex pattern, induced or not.
//! * [`triangle_via_mm`] — triangle detection through Boolean matrix
//!   multiplication (\[10\]), the ablation partner of the combinatorial
//!   detector.

#![warn(missing_docs)]

pub mod detect;
pub mod enumerate;
pub mod kpath;
pub mod mm_triangle;
pub mod partition;

pub use detect::{
    detect, detect_clique, detect_cycle, detect_independent_set, detect_triangle, Pattern, Witness,
};
pub use enumerate::{count_triangles_distributed, enumerate_triangles_distributed};
pub use kpath::{detect_path_color_coding, trial_success_probability};
pub use mm_triangle::{
    count_triangles_via_mm_with, triangle_via_mm, triangle_via_mm_with, MmDetectError,
};
pub use partition::Partition;
