//! Deterministic subgraph detection (Dolev, Lenzen & Peled, DISC 2012).
//!
//! Reference \[16\] of the paper: any fixed `k`-vertex pattern can be
//! detected in `O(n^{1−2/k})` rounds. Each detector node learns the edges
//! induced by its part-union (`k` parts of size `n^{1−1/k}`, so
//! `O(k² n^{2−2/k})` edge bits per detector, balanced-routable in
//! `O(n^{1−2/k})` rounds) and searches the pattern locally; Figure 1 uses
//! this for triangle / k-IS / size-k subgraph / k-cycle.

use cc_graph::Graph;
use cc_routing::{all_to_all_broadcast, route_balanced, RouteError};
use cliquesim::{BitString, NodeId, Session};

use crate::partition::Partition;

/// What to look for inside each union.
#[derive(Clone, Debug)]
pub enum Pattern {
    /// The fixed graph, as a (not necessarily induced) subgraph — covers
    /// triangle, k-clique, k-cycle, k-path.
    Subgraph(Graph),
    /// The fixed graph as an *induced* subgraph — k-independent-set is
    /// `Induced(Graph::empty(k))`.
    Induced(Graph),
}

impl Pattern {
    /// Number of pattern vertices.
    pub fn k(&self) -> usize {
        match self {
            Pattern::Subgraph(g) | Pattern::Induced(g) => g.n(),
        }
    }

    fn graph(&self) -> &Graph {
        match self {
            Pattern::Subgraph(g) | Pattern::Induced(g) => g,
        }
    }

    fn induced(&self) -> bool {
        matches!(self, Pattern::Induced(_))
    }

    /// Search for the pattern among `verts` of `g`; returns the image of
    /// each pattern vertex. Local computation only.
    pub fn search_in(&self, g: &Graph, verts: &[usize]) -> Option<Vec<usize>> {
        let h = self.graph();
        let k = h.n();
        if verts.len() < k {
            return None;
        }
        let induced = self.induced();
        let mut map = vec![usize::MAX; k];
        let mut used = vec![false; verts.len()];
        fn rec(
            g: &Graph,
            h: &Graph,
            verts: &[usize],
            induced: bool,
            i: usize,
            map: &mut [usize],
            used: &mut [bool],
        ) -> bool {
            let k = h.n();
            if i == k {
                return true;
            }
            for (ci, &cand) in verts.iter().enumerate() {
                if used[ci] {
                    continue;
                }
                let ok = (0..i).all(|j| {
                    let need = h.has_edge(i, j);
                    let have = g.has_edge(cand, map[j]);
                    if induced {
                        need == have
                    } else {
                        !need || have
                    }
                });
                if ok {
                    map[i] = cand;
                    used[ci] = true;
                    if rec(g, h, verts, induced, i + 1, map, used) {
                        return true;
                    }
                    used[ci] = false;
                    map[i] = usize::MAX;
                }
            }
            false
        }
        rec(g, h, verts, induced, 0, &mut map, &mut used).then_some(map)
    }
}

/// Outcome of a detection run: the witness vertices (pattern-vertex order)
/// if the pattern occurs, `None` otherwise. All nodes learn the outcome.
pub type Witness = Option<Vec<usize>>;

/// Run the Dolev et al. detector for `pattern` on `g`.
///
/// Costs `O(n^{1−2/k})` rounds for the edge redistribution plus `O(1)`
/// rounds to agree on the lowest-id witness.
pub fn detect(session: &mut Session, g: &Graph, pattern: &Pattern) -> Result<Witness, RouteError> {
    let n = session.n();
    assert_eq!(g.n(), n, "graph must match the clique size");
    let k = pattern.k();
    if k > n {
        return Ok(None);
    }
    let part = Partition::new(n, k);

    // -------- Phase 1: ship induced-union edges to each detector ---------
    // Edge {a, b} (a < b) is announced by a to every detector whose union
    // contains both endpoints. The receiver can decode positions because
    // the partition is globally known.
    //
    // Detector-side bookkeeping: the bits from sender a, in order, are the
    // edges {a, b} for b ∈ union, b > a.
    let mut unions: Vec<Option<Vec<usize>>> = (0..n).map(|v| part.union_of(v)).collect();
    // union membership bitmaps for fast lookup
    let member: Vec<Option<Vec<bool>>> = unions
        .iter()
        .map(|u| {
            u.as_ref().map(|verts| {
                let mut m = vec![false; n];
                for &x in verts {
                    m[x] = true;
                }
                m
            })
        })
        .collect();

    let mut demands: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
    for a in 0..n {
        for v in 0..n {
            let Some(m) = member[v].as_ref() else {
                continue;
            };
            if !m[a] {
                continue;
            }
            let mut bits = BitString::new();
            for b in unions[v]
                .as_ref()
                .expect("member implies union")
                .iter()
                .copied()
            {
                if b > a {
                    bits.push(g.has_edge(a, b));
                }
            }
            if bits.is_empty() {
                continue;
            }
            if v == a {
                // Local hand-off is free; modelled by skipping the wire.
                continue;
            }
            demands[a].push((NodeId::from(v), bits));
        }
    }
    let delivered = route_balanced(session, demands)?;

    // -------- Phase 2: local search in each detector's union --------------
    let mut local_witness: Vec<Option<Vec<usize>>> = vec![None; n];
    for v in 0..n {
        let Some(union) = unions[v].take() else {
            continue;
        };
        // Rebuild the induced subgraph from received bits (plus own row).
        let mut induced = Graph::empty(n);
        let mut payload_of: Vec<Option<&BitString>> = vec![None; n];
        for (src, bits) in &delivered[v] {
            payload_of[src.index()] = Some(bits);
        }
        for &a in &union {
            if a == v {
                // Own row: no wire transfer happened.
                for &b in &union {
                    if b > a && g.has_edge(a, b) {
                        induced.add_edge(a, b);
                    }
                }
                continue;
            }
            let Some(bits) = payload_of[a] else { continue };
            let mut idx = 0;
            for &b in &union {
                if b > a {
                    if bits.get(idx) {
                        induced.add_edge(a, b);
                    }
                    idx += 1;
                }
            }
        }
        local_witness[v] = pattern.search_in(&induced, &union);
    }

    // -------- Phase 3: agree on the lowest-id witness ---------------------
    // Each node broadcasts found-flag + witness ids; `k·⌈log n⌉ + 1` bits.
    let idw = BitString::width_for(n);
    let payloads: Vec<BitString> = local_witness
        .iter()
        .map(|w| {
            let mut bits = BitString::new();
            match w {
                Some(ids) => {
                    bits.push(true);
                    for &u in ids {
                        bits.push_uint(u as u64, idw);
                    }
                }
                None => bits.push(false),
            }
            bits
        })
        .collect();
    let views = all_to_all_broadcast(session, payloads)?;

    // Every node decodes the same views; pick the first finder.
    let view = &views[0];
    for bits in view {
        let mut r = bits.reader();
        if r.read_bit().unwrap_or(false) {
            let mut ids = Vec::with_capacity(k);
            for _ in 0..k {
                ids.push(r.read_uint(idw).expect("well-formed witness") as usize);
            }
            return Ok(Some(ids));
        }
    }
    Ok(None)
}

/// Triangle detection (`k = 3`, exponent `1/3`).
///
/// ```
/// use cc_subgraph::detect_triangle;
/// use cliquesim::{Engine, Session};
///
/// let g = cc_graph::Graph::from_edges(8, &[(0, 1), (1, 2), (0, 2), (3, 4)]);
/// let mut session = Session::new(Engine::new(8));
/// let witness = detect_triangle(&mut session, &g).unwrap().expect("triangle exists");
/// assert_eq!(witness.len(), 3);
/// ```
pub fn detect_triangle(session: &mut Session, g: &Graph) -> Result<Witness, RouteError> {
    detect(session, g, &Pattern::Subgraph(cc_graph::gen::cycle(3)))
}

/// Independent set of size `k` (induced empty pattern, exponent `1 − 2/k`).
pub fn detect_independent_set(
    session: &mut Session,
    g: &Graph,
    k: usize,
) -> Result<Witness, RouteError> {
    detect(session, g, &Pattern::Induced(Graph::empty(k)))
}

/// Clique of size `k`.
pub fn detect_clique(session: &mut Session, g: &Graph, k: usize) -> Result<Witness, RouteError> {
    detect(session, g, &Pattern::Subgraph(Graph::complete(k)))
}

/// Cycle of length `k` (`k ≥ 3`).
pub fn detect_cycle(session: &mut Session, g: &Graph, k: usize) -> Result<Witness, RouteError> {
    detect(session, g, &Pattern::Subgraph(cc_graph::gen::cycle(k)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{gen, reference};
    use cliquesim::Engine;

    fn session(n: usize) -> Session {
        Session::new(Engine::new(n))
    }

    #[test]
    fn pattern_search_induced_vs_subgraph() {
        let g = Graph::complete(4);
        let verts: Vec<usize> = (0..4).collect();
        // K4 contains C4 as a subgraph but not induced.
        let c4 = gen::cycle(4);
        assert!(Pattern::Subgraph(c4.clone())
            .search_in(&g, &verts)
            .is_some());
        assert!(Pattern::Induced(c4).search_in(&g, &verts).is_none());
        // Empty pattern: induced requires an actual independent set.
        assert!(Pattern::Induced(Graph::empty(2))
            .search_in(&g, &verts)
            .is_none());
        assert!(Pattern::Subgraph(Graph::empty(2))
            .search_in(&g, &verts)
            .is_some());
    }

    #[test]
    fn triangle_detection_agrees_with_reference() {
        for seed in 0..6 {
            let n = 16;
            let g = gen::gnp(n, 0.2, seed);
            let expect = reference::count_triangles(&g) > 0;
            let mut s = session(n);
            let got = detect_triangle(&mut s, &g).unwrap();
            assert_eq!(got.is_some(), expect, "seed {seed}");
            if let Some(w) = got {
                assert_eq!(w.len(), 3);
                assert!(g.has_edge(w[0], w[1]) && g.has_edge(w[1], w[2]) && g.has_edge(w[0], w[2]));
            }
        }
    }

    #[test]
    fn independent_set_detection() {
        let (g, _) = gen::planted_independent_set(18, 4, 0.75, 3);
        let mut s = session(18);
        let got = detect_independent_set(&mut s, &g, 4)
            .unwrap()
            .expect("planted IS found");
        assert!(reference::is_independent_set(&g, &got));
        assert_eq!(got.len(), 4);

        // A complete graph has no 2-IS.
        let mut s = session(12);
        assert!(detect_independent_set(&mut s, &Graph::complete(12), 2)
            .unwrap()
            .is_none());
    }

    #[test]
    fn clique_detection() {
        let (g, _) = gen::planted_clique(20, 4, 0.3, 9);
        let mut s = session(20);
        let got = detect_clique(&mut s, &g, 4)
            .unwrap()
            .expect("planted clique found");
        assert!(reference::is_clique(&g, &got));
    }

    #[test]
    fn cycle_detection_matches_brute_force() {
        for seed in 0..4 {
            let n = 12;
            let g = gen::gnp(n, 0.15, 40 + seed);
            let expect = reference::contains_subgraph(&g, &gen::cycle(4));
            let mut s = session(n);
            let got = detect_cycle(&mut s, &g, 4).unwrap();
            assert_eq!(got.is_some(), expect, "seed {seed}");
        }
    }

    #[test]
    fn no_false_positives_on_triangle_free_graph() {
        // Bipartite graphs are triangle-free.
        let mut g = Graph::empty(14);
        for u in 0..7 {
            for v in 7..14 {
                if (u + v) % 3 != 0 {
                    g.add_edge(u, v);
                }
            }
        }
        let mut s = session(14);
        assert!(detect_triangle(&mut s, &g).unwrap().is_none());
    }

    #[test]
    fn pattern_larger_than_graph_is_absent() {
        let g = Graph::complete(3);
        let mut s = session(3);
        assert!(detect_clique(&mut s, &g, 5).unwrap().is_none());
    }
}
