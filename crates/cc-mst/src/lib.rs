//! # cc-mst — minimum spanning trees on the congested clique
//!
//! MST is the congested clique's flagship problem (§2 of Korhonen &
//! Suomela lists \[25, 32, 34, 45\]; §8 uses it as the motivating
//! randomised-vs-deterministic gap). This crate implements:
//!
//! * [`boruvka_mst`] — distributed Borůvka: `O(log n)` merge phases, each
//!   a constant number of `O(log n)`-bit broadcast rounds (every node
//!   announces its component's candidate edge; all nodes merge the same
//!   candidate set locally, so component labels stay globally consistent
//!   without extra communication);
//! * [`reference_mst_weight`] — centralised Kruskal, the tests' ground
//!   truth.
//!
//! The `O(log log n)` algorithm of Lotker et al. \[45\] (merging via
//! doubling sketches) and the `O(log* n)` / `O(1)`-expected randomised
//! algorithms \[25, 32\] are *not* implemented — the paper uses them only
//! as complexity data points; Borůvka already exercises the same
//! communication substrate. Recorded in DESIGN.md.

#![warn(missing_docs)]

use cc_graph::WeightedGraph;
use cc_routing::{all_to_all_broadcast, RouteError};
use cliquesim::{BitString, Session};

/// An MST edge `(u, v, weight)`.
pub type MstEdge = (usize, usize, u64);

/// Distributed Borůvka. Node `v` holds row `v` of the weight matrix;
/// afterwards every node knows the full MST edge list (size `n − 1` for
/// connected inputs; a minimum spanning *forest* otherwise).
///
/// Each phase: every node broadcasts the minimum-weight edge leaving its
/// component (ids + weight, `O(log n)` bits shipped by the router);
/// every node then applies the same deterministic merge locally. At most
/// `⌈log₂ n⌉` phases halve the component count each time.
///
/// ```
/// use cc_mst::{boruvka_mst, reference_mst_weight};
/// use cliquesim::{Engine, Session};
///
/// let g = cc_graph::gen::gnp_weighted(20, 0.4, 50, 7);
/// let mut session = Session::new(Engine::new(20));
/// let forest = boruvka_mst(&mut session, &g).unwrap();
/// let total: u64 = forest.iter().map(|e| e.2).sum();
/// assert_eq!(total, reference_mst_weight(&g));
/// ```
pub fn boruvka_mst(session: &mut Session, g: &WeightedGraph) -> Result<Vec<MstEdge>, RouteError> {
    let n = session.n();
    assert_eq!(g.n(), n);
    let idw = BitString::width_for(n.max(2));
    let ww = 62usize; // weight field width on the wire
    let mut component: Vec<usize> = (0..n).collect();
    let mut mst: Vec<MstEdge> = Vec::new();

    loop {
        // Each node picks the lightest edge leaving its own component that
        // *it* is an endpoint of (ties broken by (weight, u, v) so every
        // node applies the same rule).
        let candidate = |v: usize| -> Option<MstEdge> {
            let mut best: Option<MstEdge> = None;
            for u in 0..n {
                if u == v || !g.has_edge(v, u) || component[u] == component[v] {
                    continue;
                }
                let w = g.weight(v, u);
                let (a, b) = (v.min(u), v.max(u));
                let e = (a, b, w);
                if best.is_none_or(|be| (w, a, b) < (be.2, be.0, be.1)) {
                    best = Some(e);
                }
            }
            best
        };

        // Broadcast the candidates: flag + u + v + weight.
        let payloads: Vec<BitString> = (0..n)
            .map(|v| {
                let mut bits = BitString::new();
                match candidate(v) {
                    Some((a, b, w)) => {
                        bits.push(true);
                        bits.push_uint(a as u64, idw);
                        bits.push_uint(b as u64, idw);
                        bits.push_uint(w.min((1 << ww) - 1), ww);
                    }
                    None => bits.push(false),
                }
                bits
            })
            .collect();
        let views = all_to_all_broadcast(session, payloads)?;

        // Everyone decodes the same candidate set (views are identical;
        // `views[_][i]` is node i's proposal, so the proposing component
        // is `component[i]`).
        let mut best_of: Vec<Option<MstEdge>> = vec![None; n];
        for (i, bits) in views[0].iter().enumerate() {
            let mut r = bits.reader();
            if r.read_bit().expect("well-formed candidate") {
                let a = r.read_uint(idw).expect("u id") as usize;
                let b = r.read_uint(idw).expect("v id") as usize;
                let w = r.read_uint(ww).expect("weight");
                // Borůvka selects each component's *minimum* outgoing edge
                // (a node's own candidate may be heavier than a fellow
                // member's); the shared total order (w, a, b) breaks ties.
                let c = component[i];
                if best_of[c].is_none_or(|(ba, bb, bw)| (w, a, b) < (bw, ba, bb)) {
                    best_of[c] = Some((a, b, w));
                }
            }
        }
        let mut proposals: Vec<MstEdge> = best_of.into_iter().flatten().collect();
        if proposals.is_empty() {
            return Ok(mst); // no component has an outgoing edge: done
        }
        proposals.sort_by_key(|&(a, b, w)| (w, a, b));
        proposals.dedup();
        let mut merged_any = false;
        for (a, b, w) in proposals {
            let (ca, cb) = (component[a], component[b]);
            if ca == cb {
                continue; // already merged earlier this phase
            }
            mst.push((a, b, w));
            let target = ca.min(cb);
            let from = ca.max(cb);
            for c in component.iter_mut() {
                if *c == from {
                    *c = target;
                }
            }
            merged_any = true;
        }
        if !merged_any {
            return Ok(mst);
        }
    }
}

/// Total weight of a minimum spanning forest via Kruskal (ground truth).
pub fn reference_mst_weight(g: &WeightedGraph) -> u64 {
    let n = g.n();
    let mut edges: Vec<MstEdge> = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if g.has_edge(u, v) {
                edges.push((u, v, g.weight(u, v)));
            }
        }
    }
    edges.sort_by_key(|&(a, b, w)| (w, a, b));
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(p: &mut Vec<usize>, x: usize) -> usize {
        if p[x] != x {
            let r = find(p, p[x]);
            p[x] = r;
        }
        p[x]
    }
    let mut total = 0;
    for (a, b, w) in edges {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra] = rb;
            total += w;
        }
    }
    total
}

/// Check that `edges` forms a spanning forest of `g` (acyclic, edges
/// exist, spans every connected component).
pub fn is_spanning_forest(g: &WeightedGraph, edges: &[MstEdge]) -> bool {
    let n = g.n();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(p: &mut Vec<usize>, x: usize) -> usize {
        if p[x] != x {
            let r = find(p, p[x]);
            p[x] = r;
        }
        p[x]
    }
    for &(a, b, w) in edges {
        if !g.has_edge(a, b) || g.weight(a, b) != w {
            return false;
        }
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra == rb {
            return false; // cycle
        }
        parent[ra] = rb;
    }
    // Spanning: the forest must connect exactly what g connects.
    let skel = g.skeleton();
    let comp = cc_graph::reference::components(&skel);
    for u in 0..n {
        for v in 0..n {
            if comp[u] == comp[v] && find(&mut parent, u) != find(&mut parent, v) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::gen;
    use cliquesim::Engine;
    use proptest::prelude::*;

    fn run(g: &WeightedGraph) -> (Vec<MstEdge>, usize) {
        let mut s = Session::new(Engine::new(g.n()).with_bandwidth_multiplier(12));
        let mst = boruvka_mst(&mut s, g).unwrap();
        (mst, s.stats().rounds)
    }

    #[test]
    fn mst_on_known_graph() {
        // Square with diagonal: MST = three lightest non-cyclic edges.
        let mut g = WeightedGraph::empty(4);
        g.set_weight(0, 1, 1);
        g.set_weight(1, 2, 2);
        g.set_weight(2, 3, 3);
        g.set_weight(3, 0, 4);
        g.set_weight(0, 2, 5);
        let (mst, _) = run(&g);
        let total: u64 = mst.iter().map(|e| e.2).sum();
        assert_eq!(total, 1 + 2 + 3);
        assert_eq!(mst.len(), 3);
        assert!(is_spanning_forest(&g, &mst));
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for seed in 0..6 {
            let g = gen::gnp_weighted(24, 0.3, 100, seed);
            let (mst, _) = run(&g);
            assert!(is_spanning_forest(&g, &mst), "seed {seed}");
            let total: u64 = mst.iter().map(|e| e.2).sum();
            assert_eq!(total, reference_mst_weight(&g), "seed {seed}");
        }
    }

    #[test]
    fn forest_on_disconnected_graphs() {
        let g = WeightedGraph::from_graph(&gen::cliques(12, 3));
        let (mst, _) = run(&g);
        assert_eq!(mst.len(), 12 - 3, "forest has n - #components edges");
        assert!(is_spanning_forest(&g, &mst));
    }

    #[test]
    fn empty_graph_has_empty_forest() {
        let g = WeightedGraph::empty(6);
        let (mst, rounds) = run(&g);
        assert!(mst.is_empty());
        assert!(rounds > 0, "one candidate round still happens");
    }

    #[test]
    fn dense_graphs_with_heavy_ties() {
        // Regression: a node's own candidate can be heavier than a fellow
        // component member's — only each component's minimum may merge.
        // Dense graphs with small weight ranges exercise exactly that.
        for seed in 0..4 {
            let g = gen::gnp_weighted(40, 0.6, 5, seed);
            let (mst, _) = run(&g);
            assert!(is_spanning_forest(&g, &mst), "seed {seed}");
            let total: u64 = mst.iter().map(|e| e.2).sum();
            assert_eq!(total, reference_mst_weight(&g), "seed {seed}");
        }
    }

    #[test]
    fn phase_count_is_logarithmic() {
        // A path forces the worst merge pattern; phases ≤ ⌈log₂ n⌉ + 1.
        let n = 64;
        let mut g = WeightedGraph::empty(n);
        for v in 1..n {
            g.set_weight(v - 1, v, v as u64);
        }
        let mut s = Session::new(Engine::new(n).with_bandwidth_multiplier(12));
        boruvka_mst(&mut s, &g).unwrap();
        let phases = s.phases();
        assert!(
            phases <= (n as f64).log2().ceil() as usize + 1,
            "phases = {phases}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_mst_weight_matches_kruskal(seed in any::<u64>(), n in 4usize..20) {
            let g = gen::gnp_weighted(n, 0.4, 50, seed);
            let (mst, _) = run(&g);
            prop_assert!(is_spanning_forest(&g, &mst));
            let total: u64 = mst.iter().map(|e| e.2).sum();
            prop_assert_eq!(total, reference_mst_weight(&g));
        }
    }
}
