//! Testkit conformance: Borůvka's forest is re-judged by an independent
//! Kruskal oracle (existence, weights, acyclicity, spanning, minimality)
//! and must be identical across engine pool shapes.

use cc_mst::boruvka_mst;
use cc_testkit::instances::strategies::arb_weighted_instance;
use cc_testkit::{differential_session, oracle, weighted_corpus};
use proptest::prelude::*;

#[test]
fn boruvka_conforms_across_weighted_corpus() {
    for inst in weighted_corpus(&[9, 16], &[1, 6]) {
        let wg = inst.graph();
        let forest = differential_session(&inst.label(), wg.n(), |s| {
            let mut edges = boruvka_mst(s, &wg).unwrap();
            edges.sort_unstable();
            edges
        });
        oracle::judge_spanning_forest(&inst.label(), &wg, &forest);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_weighted_instances_yield_minimum_forests(inst in arb_weighted_instance(4, 13)) {
        let wg = inst.graph();
        let forest = differential_session(&inst.label(), wg.n(), |s| {
            let mut edges = boruvka_mst(s, &wg).unwrap();
            edges.sort_unstable();
            edges
        });
        oracle::judge_spanning_forest(&inst.label(), &wg, &forest);
    }
}
