//! Shared helpers for the benchmark harness.
//!
//! Every bench in `benches/` regenerates one experiment of DESIGN.md's
//! per-experiment index: it first prints the paper-style rows (round
//! counts, fitted exponents, certificate sizes — the paper's metrics,
//! which are deterministic), then registers Criterion timing groups for
//! the wall-clock view.

use cc_core::fit_exponent;

/// Print a titled, aligned table to stdout (captured in bench logs).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: Vec<String>| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(header.iter().map(|s| s.to_string()).collect())
    );
    for row in rows {
        println!("{}", fmt_row(row.clone()));
    }
}

/// Fit an exponent and render a `δ̂ = …` summary string. Degenerate
/// sample sets render the typed fit error instead of a fit.
pub fn exponent_summary(samples: &[(usize, usize)], paper_bound: &str) -> String {
    match fit_exponent(samples) {
        Ok(fit) => format!(
            "fitted δ̂ = {:.3} (R² = {:.3}); paper bound δ ≤ {paper_bound}",
            fit.delta, fit.r_squared
        ),
        Err(e) => format!("exponent fit failed: {e}; paper bound δ ≤ {paper_bound}"),
    }
}

/// Standard seeds so the bench workloads are replayable.
pub const SEED: u64 = 20180705;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_summary_formats() {
        let s = exponent_summary(&[(16, 4), (64, 8), (256, 16)], "1/2");
        assert!(s.contains("δ̂ = 0.5"));
        assert!(s.contains("1/2"));
    }
}
