//! Experiment **T9** (Theorem 9): k-dominating set in `O(n^{1−1/k})`
//! rounds. Sweeps n for k ∈ {2, 3}; the fitted exponent should sit at or
//! below `1 − 1/k` and *grow with k* (the paper's signature shape:
//! parameterised problems whose n-exponent depends on k).

use cc_bench::{exponent_summary, print_table, SEED};
use cliquesim::{Engine, Session};
use criterion::{criterion_group, criterion_main, Criterion};

fn sweep(k: usize, ns: &[usize]) -> Vec<(usize, usize)> {
    ns.iter()
        .map(|&n| {
            let (g, _) = cc_graph::gen::planted_dominating_set(n, k, 0.05, SEED + n as u64);
            let mut s = Session::new(Engine::new(n));
            let found = cc_param::dominating_set(&mut s, &g, k).unwrap();
            assert!(found.is_some(), "planted {k}-DS must be found at n={n}");
            (n, s.stats().rounds)
        })
        .collect()
}

fn report() {
    let mut rows = Vec::new();
    for (k, ns) in [
        (2usize, vec![32usize, 64, 128, 256]),
        (3, vec![27, 64, 125]),
    ] {
        let samples = sweep(k, &ns);
        let bound = format!("1-1/{k} = {:.3}", 1.0 - 1.0 / k as f64);
        rows.push(vec![
            format!("k={k}"),
            samples
                .iter()
                .map(|(n, r)| format!("{n}:{r}"))
                .collect::<Vec<_>>()
                .join("  "),
            exponent_summary(&samples, &bound),
        ]);
    }
    print_table(
        "Theorem 9: k-dominating set rounds (planted instances)",
        &["k", "rounds by n", "fit"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("thm9_kds");
    group.sample_size(10);
    for k in [2usize, 3] {
        let n = 64;
        let (g, _) = cc_graph::gen::planted_dominating_set(n, k, 0.05, SEED);
        group.bench_function(format!("k{k}_n{n}"), |b| {
            b.iter(|| {
                let mut s = Session::new(Engine::new(n));
                cc_param::dominating_set(&mut s, &g, k).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
