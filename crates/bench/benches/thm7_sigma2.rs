//! Experiment **T7** (Theorem 7): the Σ₂ universal protocol. Reports
//! label sizes (the unlimited-hierarchy cost: Θ(n²) existential bits) and
//! the per-challenge verification cost (2 rounds, O(log n)-bit messages).

use cc_bench::print_table;
use cc_core::Sigma2Universal;
use cc_graph::reference;
use criterion::{criterion_group, criterion_main, Criterion};

fn report() {
    let alg = Sigma2Universal::new(reference::is_connected);
    let mut rows = Vec::new();
    // m^n challenge enumerations: 6^4 and 10^5 are fine; n = 6 (15^6 ≈ 11M)
    // is past the exhaustive-∀ budget.
    for n in [4usize, 5] {
        let g = cc_graph::gen::gnp(n, 0.6, n as u64);
        let z1 = Sigma2Universal::honest_guess(&g);
        let expect = reference::is_connected(&g);
        let all = alg.accepts_all_challenges(&g, &z1).unwrap();
        assert_eq!(all, expect, "Theorem 7 semantics at n={n}");
        let m = Sigma2Universal::encoding_len(n);
        rows.push(vec![
            n.to_string(),
            format!("{m}"),
            format!("{}", m.pow(n as u32)),
            if all { "accept" } else { "reject" }.to_string(),
            expect.to_string(),
        ]);
    }
    print_table(
        "Theorem 7: Σ₂ guess-and-spot-check for L = connectivity",
        &[
            "n",
            "guess bits/node",
            "#challenges",
            "∀z₂ verdict",
            "G ∈ L",
        ],
        &rows,
    );
    println!("\nexistential labels are Θ(n²) bits/node — exactly why the collapse");
    println!("needs the *unlimited* hierarchy; the logarithmic variant (Thm 8)");
    println!("caps labels at n·log n bits, see lemma1_counting.");
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("thm7");
    group.sample_size(10);
    let g = cc_graph::gen::gnp(5, 0.5, 1);
    let alg = Sigma2Universal::new(reference::is_connected);
    let z1 = Sigma2Universal::honest_guess(&g);
    let z2 = Sigma2Universal::challenge(5, &[0, 1, 2, 3, 4]);
    group.bench_function("single_challenge_n5", |b| {
        b.iter(|| alg.run(&g, &z1, &z2).unwrap());
    });
    group.bench_function("all_challenges_n4", |b| {
        let g4 = cc_graph::gen::path(4);
        let z = Sigma2Universal::honest_guess(&g4);
        b.iter(|| alg.accepts_all_challenges(&g4, &z).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
