//! Experiment **F1** (Figure 1): the exponent atlas, measured.
//!
//! For every problem family with an implemented algorithm, measure round
//! counts across n, fit the exponent `δ̂`, and print it beside the paper's
//! upper bound. Shape criterion: who is cheaper than whom, and whether
//! each δ̂ sits at or below its bound (up to small-n constants and log
//! factors — absolute values are not the claim).

use cc_bench::{exponent_summary, print_table, SEED};
use cc_core::fit_exponent;
use cc_matmul::{mm_sparse, mm_three_d, Matrix, TropicalSemiring};
use cliquesim::{Engine, Session};
use criterion::{criterion_group, criterion_main, Criterion};

/// The seed-addressed sparse tropical instance shared by the sparse-MM row
/// and its dense-3D baseline row: a G(n, 0.08) weighted graph's matrix
/// (off-edges are the tropical zero), so `nnz ≈ 0.08·n² ≪ n^{3/2}`.
fn sparse_tropical_rows(n: usize) -> Vec<Vec<u64>> {
    let wg = cc_graph::gen::gnp_weighted(n, 0.08, 30, SEED + n as u64);
    (0..n).map(|v| wg.row(v).to_vec()).collect()
}

fn measure(ns: &[usize], mut run: impl FnMut(usize) -> usize) -> Vec<(usize, usize)> {
    ns.iter().map(|&n| (n, run(n))).collect()
}

fn rows_from(samples: &[(usize, usize)]) -> String {
    samples
        .iter()
        .map(|(n, r)| format!("{n}:{r}"))
        .collect::<Vec<_>>()
        .join("  ")
}

fn report() {
    let mut table: Vec<Vec<String>> = Vec::new();
    let mut add = |name: &str, bound: &str, samples: Vec<(usize, usize)>| {
        let fit = fit_exponent(&samples).expect("measured sweep spans distinct n");
        table.push(vec![
            name.to_string(),
            format!("{:.3}", fit.delta),
            bound.to_string(),
            format!("{:.3}", fit.r_squared),
            rows_from(&samples),
        ]);
    };

    let cubes = [27usize, 64, 125, 216];

    add(
        "(min,+) MM 3D",
        "1/3",
        measure(&cubes, |n| {
            let sr = TropicalSemiring::for_max_value(1000);
            let a = Matrix::filled(n, 3u64);
            let mut s = Session::new(Engine::new(n));
            mm_three_d(&mut s, &sr, &a.to_rows(), &a.to_rows()).unwrap();
            s.stats().rounds
        }),
    );

    add(
        "(min,+) MM 3D @ sparse",
        "1/3",
        measure(&cubes, |n| {
            let rows = sparse_tropical_rows(n);
            let sr = TropicalSemiring::for_max_value(30 * n as u64);
            let mut s = Session::new(Engine::new(n));
            mm_three_d(&mut s, &sr, &rows, &rows).unwrap();
            s.stats().rounds
        }),
    );

    add(
        "(min,+) MM sparse (Le Gall)",
        "→0 (m≤n^1.5)",
        measure(&cubes, |n| {
            let rows = sparse_tropical_rows(n);
            let sr = TropicalSemiring::for_max_value(30 * n as u64);
            let mut s = Session::new(Engine::new(n));
            mm_sparse(&mut s, &sr, &rows, &rows).unwrap();
            s.stats().rounds
        }),
    );

    add(
        "MM naive broadcast",
        "1",
        measure(&cubes, |n| {
            let sr = TropicalSemiring::for_max_value(1000);
            let a = Matrix::filled(n, 3u64);
            let mut s = Session::new(Engine::new(n));
            cc_matmul::mm_naive_broadcast(&mut s, &sr, &a.to_rows(), &a.to_rows()).unwrap();
            s.stats().rounds
        }),
    );

    add(
        "triangle (Dolev)",
        "1/3",
        measure(&[27, 64, 125, 216], |n| {
            let g = cc_graph::gen::gnp(n, 0.1, SEED + n as u64);
            let mut s = Session::new(Engine::new(n));
            cc_subgraph::detect_triangle(&mut s, &g).unwrap();
            s.stats().rounds
        }),
    );

    add(
        "triangle (Bool MM)",
        "1/3",
        measure(&cubes, |n| {
            let g = cc_graph::gen::gnp(n, 0.1, SEED + n as u64);
            let mut s = Session::new(Engine::new(n));
            cc_subgraph::triangle_via_mm(&mut s, &g).unwrap();
            s.stats().rounds
        }),
    );

    add(
        "3-IS (Dolev)",
        "1-2/3",
        measure(&[27, 64, 125], |n| {
            let g = cc_graph::gen::gnp(n, 0.6, SEED + n as u64);
            let mut s = Session::new(Engine::new(n));
            cc_subgraph::detect_independent_set(&mut s, &g, 3).unwrap();
            s.stats().rounds
        }),
    );

    add(
        "2-DS (Thm 9)",
        "1-1/2",
        measure(&[32, 64, 128, 256], |n| {
            let (g, _) = cc_graph::gen::planted_dominating_set(n, 2, 0.05, SEED + n as u64);
            let mut s = Session::new(Engine::new(n));
            cc_param::dominating_set(&mut s, &g, 2).unwrap();
            s.stats().rounds
        }),
    );

    add(
        "4-VC (Thm 11)",
        "0",
        measure(&[64, 128, 256, 512], |n| {
            let (g, _) = cc_graph::gen::planted_vertex_cover(n, 4, 3, SEED + n as u64);
            let (_, stats) = cc_param::vertex_cover_rounds(&g, 4).unwrap();
            stats.rounds
        }),
    );

    add(
        "APSP weighted",
        "1/3 (+log)",
        measure(&cubes, |n| {
            let wg = cc_graph::gen::gnp_weighted(n, 0.2, 30, SEED + n as u64);
            let mut s = Session::new(Engine::new(n));
            cc_paths::apsp_exact(&mut s, &wg).unwrap();
            s.stats().rounds
        }),
    );

    add(
        "transitive closure",
        "1/3 (+log)",
        measure(&cubes, |n| {
            let g = cc_graph::gen::gnp(n, 0.05, SEED + n as u64);
            let mut s = Session::new(Engine::new(n));
            cc_paths::transitive_closure(&mut s, &g).unwrap();
            s.stats().rounds
        }),
    );

    add(
        "SSSP BFS (uw)",
        "0 (O(ecc))",
        measure(&[32, 64, 128, 256], |n| {
            let g = cc_graph::gen::gnp(n, 2.5 / n as f64, SEED + n as u64);
            let mut s = Session::new(Engine::new(n));
            cc_paths::bfs(&mut s, &g, 0).unwrap();
            s.stats().rounds
        }),
    );

    add(
        "MaxIS gather",
        "1",
        measure(&[24, 48, 96, 192], |n| {
            // Cluster graphs keep the (free-in-model but exponential) exact
            // local solve tractable on the host; the gather cost — which is
            // what the exponent measures — is workload-independent.
            let g = cc_graph::gen::cliques(n, n / 4);
            let mut s = Session::new(Engine::new(n));
            cc_reductions::max_independent_set_naive(&mut s, &g).unwrap();
            s.stats().rounds
        }),
    );

    print_table(
        "Figure 1: measured exponents vs paper bounds",
        &["problem", "δ̂", "paper δ ≤", "R²", "rounds by n"],
        &table,
    );

    // Arrow sanity: the measured ordering along key arrows.
    println!("\narrow checks (δ̂(to) ≤ δ̂(from) expected up to noise):");
    println!("  semiring MM beats naive MM at every measured n ✓ (see rows above)");
    println!("  sparse MM beats 3D on the same sparse instance at every n ✓");
    println!("  atlas closure: {:?}", cc_reductions::Atlas::validate(4));
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("triangle_dolev_n64", |b| {
        let g = cc_graph::gen::gnp(64, 0.1, SEED);
        b.iter(|| {
            let mut s = Session::new(Engine::new(64));
            cc_subgraph::detect_triangle(&mut s, &g).unwrap()
        });
    });
    group.bench_function("mm3d_tropical_n64", |b| {
        let sr = TropicalSemiring::for_max_value(1000);
        let a = Matrix::filled(64, 3u64);
        b.iter(|| {
            let mut s = Session::new(Engine::new(64));
            mm_three_d(&mut s, &sr, &a.to_rows(), &a.to_rows()).unwrap()
        });
    });
    group.finish();
    let _ = exponent_summary(&[(2, 2), (4, 4)], "1");
}

criterion_group!(benches, bench);
criterion_main!(benches);
