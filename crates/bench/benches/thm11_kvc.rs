//! Experiment **T11** (Theorem 11): k-vertex cover in `O(k)` rounds.
//! The two sweeps make the theorem's shape visible: rounds are *flat in n*
//! and *linear in k* — the fixed-parameter corner of the paper's map.

use cc_bench::{print_table, SEED};
use criterion::{criterion_group, criterion_main, Criterion};

fn report() {
    // Flat in n.
    let k = 5;
    let rows_n: Vec<Vec<String>> = [64usize, 128, 256, 512, 1024]
        .iter()
        .map(|&n| {
            let (g, _) = cc_graph::gen::planted_vertex_cover(n, k, 4, SEED + n as u64);
            let (cover, stats) = cc_param::vertex_cover_rounds(&g, k).unwrap();
            vec![
                n.to_string(),
                stats.rounds.to_string(),
                cover
                    .map(|c| c.len().to_string())
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    print_table(
        &format!("Theorem 11: rounds vs n at fixed k = {k} (expect a constant column)"),
        &["n", "rounds", "|cover|"],
        &rows_n,
    );
    let round_set: std::collections::HashSet<&String> = rows_n.iter().map(|r| &r[1]).collect();
    assert_eq!(round_set.len(), 1, "rounds must be independent of n");

    // Linear in k.
    let n = 256;
    let rows_k: Vec<Vec<String>> = [1usize, 2, 4, 6, 8, 12]
        .iter()
        .map(|&k| {
            let (g, _) = cc_graph::gen::planted_vertex_cover(n, k, 4, SEED + k as u64);
            let (cover, stats) = cc_param::vertex_cover_rounds(&g, k).unwrap();
            assert!(stats.rounds <= k + 2);
            vec![
                k.to_string(),
                stats.rounds.to_string(),
                cover
                    .map(|c| c.len().to_string())
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    print_table(
        &format!("Theorem 11: rounds vs k at fixed n = {n} (expect ≈ k + 1)"),
        &["k", "rounds", "|cover|"],
        &rows_k,
    );
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("thm11_kvc");
    group.sample_size(20);
    for n in [128usize, 512] {
        let (g, _) = cc_graph::gen::planted_vertex_cover(n, 5, 4, SEED);
        group.bench_function(format!("k5_n{n}"), |b| {
            b.iter(|| cc_param::vertex_cover_rounds(&g, 5).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
