//! Engine ablation: sequential vs multi-threaded node stepping. Round
//! counts are bit-identical by construction (asserted); only wall time
//! differs, which is what Criterion measures here.

use cc_bench::SEED;
use cliquesim::{Engine, Session};
use criterion::{criterion_group, criterion_main, Criterion};

fn apsp_rounds(n: usize, threads: usize) -> usize {
    let wg = cc_graph::gen::gnp_weighted(n, 0.2, 20, SEED);
    let engine = if threads > 1 { Engine::new(n).with_threads(threads) } else { Engine::new(n) };
    let mut s = Session::new(engine);
    cc_paths::apsp_exact(&mut s, &wg).unwrap();
    s.stats().rounds
}

fn bench(c: &mut Criterion) {
    // Determinism check first: same rounds regardless of threading.
    let n = 64;
    let seq = apsp_rounds(n, 1);
    let par = apsp_rounds(n, 4);
    assert_eq!(seq, par, "parallel stepping must not change round counts");
    println!("\n=== engine ablation: APSP n={n} takes {seq} rounds at any thread count ===");

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("apsp_n64_threads{threads}"), |b| {
            b.iter(|| apsp_rounds(64, threads));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
