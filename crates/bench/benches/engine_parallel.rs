//! Engine ablation: sequential vs pooled node stepping. Outputs, round
//! counts, and all model-level [`RunStats`] fields are bit-identical by
//! construction (asserted below over pool shapes the host may not even
//! have cores for); only wall time differs, which is what Criterion
//! measures here.
//!
//! Recorded medians for `apsp_n64_threads4` on the same host, runs
//! interleaved (per-round-spawn engine vs persistent pool with
//! double-buffered delivery): 457.4 ms → 169.9 ms and 405.0 ms →
//! 169.2 ms, i.e. a 2.4–2.7× improvement (threads1: ~292–331 ms →
//! ~182–190 ms).

use cc_bench::SEED;
use cliquesim::{Engine, RunStats, Session};
use criterion::{criterion_group, criterion_main, Criterion};

/// Run seeded APSP (n = 64 takes 1044 rounds) and return the session
/// stats. `exact` pins the pool shape regardless of host cores (used for
/// the bit-identity assertions); the timed benchmarks use the default
/// host-capped pool, which is what callers get.
fn apsp_stats(n: usize, threads: usize, exact: bool) -> RunStats {
    let wg = cc_graph::gen::gnp_weighted(n, 0.2, 20, SEED);
    let engine = match (threads, exact) {
        (1, _) => Engine::new(n),
        (t, true) => Engine::new(n).with_threads_exact(t),
        (t, false) => Engine::new(n).with_threads(t),
    };
    let mut s = Session::new(engine);
    cc_paths::apsp_exact(&mut s, &wg).unwrap();
    s.stats()
}

fn bench(c: &mut Criterion) {
    // Determinism check first: the full model-level stats (rounds,
    // messages, bits, undelivered accounting, peak buffer residency —
    // everything except wall clock) must not depend on the pool shape.
    let n = 64;
    let seq = apsp_stats(n, 1, true);
    for threads in [2usize, 3, 4, 7] {
        let par = apsp_stats(n, threads, true);
        assert_eq!(
            seq, par,
            "pooled stepping with {threads} workers changed model-level stats"
        );
    }
    println!(
        "\n=== engine ablation: APSP n={n} | rounds={} messages={} bits={} \
         undelivered={} peak_live={}B | seq step={:.1}ms delivery={:.1}ms ===",
        seq.rounds,
        seq.messages,
        seq.bits,
        seq.undelivered_messages,
        seq.peak_live_payload_bytes,
        seq.timing.step_ns as f64 / 1e6,
        seq.timing.delivery_ns as f64 / 1e6,
    );

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("apsp_n64_threads{threads}"), |b| {
            b.iter(|| apsp_stats(64, threads, false).rounds);
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
