//! Engine ablation: sequential vs pooled node stepping, and dense vs
//! sparse delivery backends. Outputs, round counts, and all model-level
//! [`RunStats`] fields are bit-identical by construction (asserted below
//! over pool shapes the host may not even have cores for, and across both
//! backends); only wall time and buffer footprint differ, which is what
//! this harness measures.
//!
//! Recorded medians for `apsp_n64_threads4` on the same host, runs
//! interleaved (per-round-spawn engine vs persistent pool with
//! double-buffered delivery): 457.4 ms → 169.9 ms and 405.0 ms →
//! 169.2 ms, i.e. a 2.4–2.7× improvement (threads1: ~292–331 ms →
//! ~182–190 ms). The broadcast sweep below extends the envelope from
//! n = 64 to n = 1024 and writes machine-readable results to
//! `BENCH_engine.json` (see `Cargo.toml`'s bench notes).
//!
//! Environment knobs (all optional):
//! - `BENCH_ENGINE_JSON`: output path for the JSON report
//!   (default `BENCH_engine.json` in the working directory).
//! - `BENCH_SMOKE=1`: reduced sizes/repetitions for CI smoke runs.
//! - `BENCH_ENFORCE_SPARSE=1`: exit non-zero if the sparse backend is
//!   slower than dense on the broadcast-only workload (the workload it
//!   exists for).

use cc_bench::SEED;
use cliquesim::{
    BitString, DeliveryMode, Engine, Inbox, NodeCtx, NodeProgram, Outbox, RunStats, Session, Status,
};
use criterion::{criterion_group, Criterion};
use std::time::Instant;

/// Run seeded APSP (n = 64 takes 1044 rounds) and return the session
/// stats. `exact` pins the pool shape regardless of host cores (used for
/// the bit-identity assertions); the timed benchmarks use the default
/// host-capped pool, which is what callers get.
fn apsp_stats(n: usize, threads: usize, exact: bool) -> RunStats {
    let wg = cc_graph::gen::gnp_weighted(n, 0.2, 20, SEED);
    let engine = match (threads, exact) {
        (1, _) => Engine::new(n),
        (t, true) => Engine::new(n).with_threads_exact(t),
        (t, false) => Engine::new(n).with_threads(t),
    };
    let mut s = Session::new(engine);
    cc_paths::apsp_exact(&mut s, &wg).unwrap();
    s.stats()
}

/// `rounds` rounds of id gossip under the broadcast-only restriction —
/// the workload the sparse backend is built for: one payload per sender
/// per round instead of n-1 materialised copies.
struct Gossip {
    rounds: usize,
    acc: u64,
}

impl NodeProgram for Gossip {
    type Output = u64;
    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<u64> {
        for (u, m) in inbox.iter() {
            self.acc = self
                .acc
                .wrapping_add(u.0 as u64 ^ m.reader().read_uint(ctx.id_width()).unwrap_or(0));
        }
        if round >= self.rounds {
            return Status::Halt(self.acc);
        }
        let mut m = BitString::new();
        m.push_uint(
            (ctx.id.0 as u64 + round as u64) & ((1 << ctx.id_width()) - 1),
            ctx.id_width(),
        );
        outbox.broadcast(&m);
        Status::Continue
    }
}

/// One timed broadcast-gossip session: `phases` engine runs against a
/// single warm arena (steady-state rounds and steady-state *phases*
/// allocate nothing). Returns (wall seconds, stats, arena footprint).
fn gossip_run(
    n: usize,
    rounds: usize,
    phases: usize,
    mode: DeliveryMode,
) -> (f64, RunStats, usize) {
    let engine = Engine::new(n).broadcast_only(true).with_delivery(mode);
    let mut s = Session::new(engine);
    let start = Instant::now();
    for _ in 0..phases {
        let programs = (0..n).map(|_| Gossip { rounds, acc: 0 }).collect();
        s.run(programs).unwrap();
    }
    (
        start.elapsed().as_secs_f64(),
        s.stats(),
        s.delivery_footprint(),
    )
}

/// Median wall seconds of `reps` repetitions of `f` (first call doubles
/// as warm-up and is kept — the arena makes later phases the steady state
/// we care about anyway).
fn median_secs(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut samples: Vec<f64> = (0..reps).map(|_| f()).collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct SweepRow {
    n: usize,
    rounds: usize,
    dense_ms: f64,
    sparse_ms: f64,
    dense_slots: usize,
    sparse_slots: usize,
}

/// Dense-vs-sparse broadcast sweep. Asserts bit-identical stats between
/// the backends at every size before recording a single number.
fn broadcast_sweep(sizes: &[usize], rounds: usize, phases: usize, reps: usize) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        let (_, dense_stats, dense_slots) = gossip_run(n, rounds, phases, DeliveryMode::Dense);
        let (_, sparse_stats, sparse_slots) = gossip_run(n, rounds, phases, DeliveryMode::Sparse);
        assert_eq!(
            dense_stats, sparse_stats,
            "broadcast n={n}: sparse backend changed model-level stats"
        );
        let dense_ms = median_secs(reps, || {
            gossip_run(n, rounds, phases, DeliveryMode::Dense).0
        }) * 1e3;
        let sparse_ms = median_secs(reps, || {
            gossip_run(n, rounds, phases, DeliveryMode::Sparse).0
        }) * 1e3;
        println!(
            "broadcast n={n:<5} rounds={rounds} phases={phases}: dense {dense_ms:8.2} ms \
             ({dense_slots:>8} slots) | sparse {sparse_ms:8.2} ms ({sparse_slots:>6} slots) \
             | {:.2}x time, {:.0}x footprint",
            dense_ms / sparse_ms,
            dense_slots as f64 / sparse_slots as f64,
        );
        rows.push(SweepRow {
            n,
            rounds,
            dense_ms,
            sparse_ms,
            dense_slots,
            sparse_slots,
        });
    }
    rows
}

/// Hand-rolled JSON (the vendored criterion stand-in has no machine
/// output; this file is the recorded trajectory CI and EXPERIMENTS.md
/// consume).
fn write_json(path: &str, smoke: bool, rows: &[SweepRow]) {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"engine_parallel\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(
        "  \"history\": [\n    {\"pr\": 1, \"id\": \"apsp_n64_threads4\", \
         \"median_ms_before\": 457.4, \"median_ms_after\": 169.9,\n     \
         \"note\": \"per-round thread spawn -> persistent pool + double-buffered delivery\"}\n  ],\n",
    );
    out.push_str("  \"broadcast_sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"rounds\": {}, \"dense_median_ms\": {:.3}, \
             \"sparse_median_ms\": {:.3}, \"dense_arena_slots\": {}, \"sparse_arena_slots\": {}}}{}\n",
            r.n,
            r.rounds,
            r.dense_ms,
            r.sparse_ms,
            r.dense_slots,
            r.sparse_slots,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
}

fn bench(c: &mut Criterion) {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    // Determinism check first: the full model-level stats (rounds,
    // messages, bits, undelivered accounting, peak buffer residency —
    // everything except wall clock) must not depend on the pool shape.
    let n = if smoke { 16 } else { 64 };
    let seq = apsp_stats(n, 1, true);
    for threads in [2usize, 3, 4, 7] {
        let par = apsp_stats(n, threads, true);
        assert_eq!(
            seq, par,
            "pooled stepping with {threads} workers changed model-level stats"
        );
    }
    println!(
        "\n=== engine ablation: APSP n={n} | rounds={} messages={} bits={} \
         undelivered={} peak_live={}B | seq step={:.1}ms delivery={:.1}ms ===",
        seq.rounds,
        seq.messages,
        seq.bits,
        seq.undelivered_messages,
        seq.peak_live_payload_bytes,
        seq.timing.step_ns as f64 / 1e6,
        seq.timing.delivery_ns as f64 / 1e6,
    );

    if !smoke {
        let mut group = c.benchmark_group("engine");
        group.sample_size(10);
        for threads in [1usize, 2, 4] {
            group.bench_function(format!("apsp_n64_threads{threads}"), |b| {
                b.iter(|| apsp_stats(64, threads, false).rounds);
            });
        }
        group.finish();
    }

    // Dense-vs-sparse broadcast sweep, n = 64 … 1024 (reduced under
    // BENCH_SMOKE so the CI job stays in seconds).
    let (sizes, rounds, phases, reps): (&[usize], usize, usize, usize) = if smoke {
        (&[64, 256], 4, 2, 3)
    } else {
        (&[64, 256, 1024], 8, 3, 5)
    };
    let rows = broadcast_sweep(sizes, rounds, phases, reps);

    let path =
        std::env::var("BENCH_ENGINE_JSON").unwrap_or_else(|_| "BENCH_engine.json".to_string());
    write_json(&path, smoke, &rows);

    if std::env::var("BENCH_ENFORCE_SPARSE").is_ok_and(|v| v == "1") {
        for r in &rows {
            assert!(
                r.sparse_ms <= r.dense_ms,
                "sparse backend slower than dense on its target workload: \
                 broadcast n={} dense {:.2} ms vs sparse {:.2} ms",
                r.n,
                r.dense_ms,
                r.sparse_ms
            );
        }
        println!("BENCH_ENFORCE_SPARSE: sparse <= dense at every size");
    }
}

criterion_group!(benches, bench);

fn main() {
    benches();
}
