//! Experiments **L1 / T2 / T4 / T8**: the counting arguments.
//!
//! * Lemma 1's inequality evaluated over the theorems' parameter grids
//!   (the existence side of the time hierarchy);
//! * the exhaustive toy census at n = 2 (the constructive side), with the
//!   fraction of computable functions per round budget;
//! * the end-to-end Theorem 2 diagonal language at toy scale.

use cc_bench::print_table;
use cc_core::{
    census_two_nodes, hard_function_exists, thm2_condition, thm4_condition, thm8_condition,
    ToyHardLanguage,
};
use cliquesim::BitString;
use criterion::{criterion_group, criterion_main, Criterion};

fn report() {
    // Inequality grid.
    let mut rows = Vec::new();
    for n in [64usize, 256, 1024, 4096, 16384] {
        let log_n = BitString::width_for(n);
        let t_max = n / (4 * log_n);
        let thm2_all = (2..=t_max.max(2))
            .step_by((t_max / 8).max(1))
            .all(|t| thm2_condition(n, t));
        rows.push(vec![
            n.to_string(),
            t_max.to_string(),
            thm2_all.to_string(),
            thm4_condition(n, 4).to_string(),
            (1..=6).all(|k| thm8_condition(n, 6, k)).to_string(),
        ]);
    }
    print_table(
        "Theorems 2/4/8: counting inequalities across the parameter grid",
        &[
            "n",
            "T_max = n/4log n",
            "Thm2 ∀T",
            "Thm4 (T=4)",
            "Thm8 (k ≤ 6)",
        ],
        &rows,
    );

    // Census.
    let mut crows = Vec::new();
    for (l, t) in [(1usize, 0usize), (1, 1), (2, 0), (2, 1)] {
        let census = census_two_nodes(l, t);
        crows.push(vec![
            format!("L={l}, t={t}"),
            census.computable_count().to_string(),
            census.total().to_string(),
            format!(
                "{:.4}",
                census.computable_count() as f64 / census.total() as f64
            ),
            census
                .first_hard_function()
                .map(|f| format!("{f:#x}"))
                .unwrap_or_else(|| "-".into()),
            hard_function_exists(2, 1, l, t).to_string(),
        ]);
    }
    print_table(
        "Lemma 1 at toy scale: exhaustive census of (2, 1, L, t)-protocols",
        &[
            "params",
            "computable",
            "total",
            "fraction",
            "first hard f",
            "Lemma1 certifies",
        ],
        &crows,
    );

    // Theorem 2 end-to-end.
    let lang = ToyHardLanguage { l: 2, t: 1 };
    let f = lang.hard_function().unwrap();
    let mut ok = true;
    let mut rounds = 0;
    for x0 in 0..4u64 {
        for x1 in 0..4u64 {
            let (verdict, stats) = lang.decide_distributed(x0, x1);
            ok &= verdict == lang.contains(x0, x1);
            rounds = stats.rounds;
        }
    }
    println!(
        "\nTheorem 2 end-to-end (n = 2): diagonal language for f* = {f:#06x} decided\n\
         correctly on all 16 inputs in T = {rounds} rounds; the census above\n\
         certifies no t = 1-round protocol computes f*. correct = {ok}"
    );
    assert!(ok);
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("lemma1");
    group.sample_size(10);
    group.bench_function("census_l2_t1", |b| {
        b.iter(|| census_two_nodes(2, 1).computable_count());
    });
    group.bench_function("toy_decider_all_inputs", |b| {
        let lang = ToyHardLanguage { l: 2, t: 1 };
        b.iter(|| {
            let mut acc = 0;
            for x0 in 0..4u64 {
                for x1 in 0..4u64 {
                    acc += lang.decide_distributed(x0, x1).0 as u64;
                }
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
