//! Experiment **S3-RT**: the routing substrate. Ablation between the
//! direct per-link schedule and the Lenzen-style two-phase balanced
//! schedule: identical on uniform patterns, and the balanced router wins
//! exactly on node-balanced-but-link-skewed patterns (the regime the
//! paper's Theorem 9 relies on).

use cc_bench::{print_table, SEED};
use cliquesim::{BitString, Engine, NodeId, Session};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};

type Demands = Vec<Vec<(NodeId, BitString)>>;

fn uniform_pattern(n: usize, bits: usize, seed: u64) -> Demands {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|v| {
            (0..n)
                .filter(|&u| u != v)
                .map(|u| {
                    (
                        NodeId::from(u),
                        (0..bits).map(|_| rng.gen_bool(0.5)).collect(),
                    )
                })
                .collect()
        })
        .collect()
}

fn skewed_pattern(n: usize, bits: usize, seed: u64) -> Demands {
    // Every node sends its whole budget to a single partner: per-node
    // balanced, per-link maximally skewed.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|v| {
            let dst = (v + 1) % n;
            let payload: BitString = (0..bits * (n - 1)).map(|_| rng.gen_bool(0.5)).collect();
            vec![(NodeId::from(dst), payload)]
        })
        .collect()
}

fn run_stats(n: usize, d: Demands, balanced: bool) -> cliquesim::RunStats {
    let mut s = Session::new(Engine::new(n));
    if balanced {
        cc_routing::route_balanced(&mut s, d).unwrap();
    } else {
        cc_routing::route(&mut s, d).unwrap();
    }
    s.stats()
}

fn rounds(n: usize, d: Demands, balanced: bool) -> usize {
    run_stats(n, d, balanced).rounds
}

fn report() {
    let mut rows = Vec::new();
    for n in [16usize, 32, 64] {
        let bits = 8;
        for (name, mk) in [
            (
                "uniform",
                uniform_pattern as fn(usize, usize, u64) -> Demands,
            ),
            ("skewed", skewed_pattern as fn(usize, usize, u64) -> Demands),
        ] {
            let direct = run_stats(n, mk(n, bits, SEED), false);
            let balanced = run_stats(n, mk(n, bits, SEED), true);
            rows.push(vec![
                n.to_string(),
                name.into(),
                direct.rounds.to_string(),
                balanced.rounds.to_string(),
                balanced.bits.to_string(),
                balanced.peak_live_payload_bytes.to_string(),
                balanced.undelivered_messages.to_string(),
            ]);
        }
    }
    print_table(
        "Routing ablation: direct schedule vs two-phase balanced",
        &[
            "n",
            "pattern",
            "direct rounds",
            "balanced rounds",
            "wire bits (bal)",
            "peak live B (bal)",
            "undeliv (bal)",
        ],
        &rows,
    );
    println!("\nshape: on the skewed pattern the direct schedule pays Θ(n·B/log n)");
    println!("rounds on one link while the balanced schedule spreads the stream");
    println!("over all links (Lenzen's regime, DESIGN.md substitution).");
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("routing");
    group.sample_size(10);
    let n = 32;
    group.bench_function("direct_uniform_n32", |b| {
        b.iter(|| rounds(n, uniform_pattern(n, 8, SEED), false));
    });
    group.bench_function("balanced_skewed_n32", |b| {
        b.iter(|| rounds(n, skewed_pattern(n, 8, SEED), true));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
