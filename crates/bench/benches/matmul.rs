//! Experiment **S7-MM**: the matrix-multiplication backbone of §7.
//! Ablation: the 3D `O(n^{1/3})` algorithm vs the naive `O(n)` broadcast,
//! with the crossover point; plus carrier-semiring comparison (Boolean
//! entries are 1 bit, tropical entries `O(log n)` bits — same schedule,
//! different constants).

use cc_bench::{print_table, SEED};
use cc_matmul::{mm_naive_broadcast, mm_three_d, BoolSemiring, Matrix, TropicalSemiring};
use cliquesim::{Engine, Session};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};

fn report() {
    let mut rows = Vec::new();
    for n in [8usize, 27, 64, 125, 216] {
        let sr = TropicalSemiring::for_max_value(1000);
        let a = Matrix::filled(n, 3u64);
        let mut s1 = Session::new(Engine::new(n));
        mm_three_d(&mut s1, &sr, &a.to_rows(), &a.to_rows()).unwrap();
        let mut s2 = Session::new(Engine::new(n));
        mm_naive_broadcast(&mut s2, &sr, &a.to_rows(), &a.to_rows()).unwrap();

        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(SEED + n as u64);
        let ab = Matrix::from_fn(n, |_, _| rng.gen_bool(0.5));
        let mut s3 = Session::new(Engine::new(n));
        mm_three_d(&mut s3, &BoolSemiring, &ab.to_rows(), &ab.to_rows()).unwrap();

        let (st1, st2) = (s1.stats(), s2.stats());
        rows.push(vec![
            n.to_string(),
            st1.rounds.to_string(),
            st2.rounds.to_string(),
            if st1.rounds < st2.rounds {
                "3D"
            } else {
                "naive"
            }
            .to_string(),
            s3.stats().rounds.to_string(),
            st1.bits.to_string(),
            st1.peak_live_payload_bytes.to_string(),
        ]);
    }
    print_table(
        "Semiring MM: 3D vs naive (tropical, ~10-bit entries) + Boolean 3D",
        &[
            "n",
            "3D rounds",
            "naive rounds",
            "winner",
            "3D bool rounds",
            "3D wire bits",
            "3D peak live B",
        ],
        &rows,
    );
    println!("\nshape: the naive column grows ~linearly, the 3D column ~n^(1/3);");
    println!("the crossover sits between n = 27 and n = 64 with log n-width entries.");
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for n in [27usize, 64] {
        let sr = TropicalSemiring::for_max_value(1000);
        let a = Matrix::filled(n, 3u64);
        group.bench_function(format!("mm3d_n{n}"), |b| {
            b.iter(|| {
                let mut s = Session::new(Engine::new(n));
                mm_three_d(&mut s, &sr, &a.to_rows(), &a.to_rows()).unwrap()
            });
        });
        group.bench_function(format!("naive_n{n}"), |b| {
            b.iter(|| {
                let mut s = Session::new(Engine::new(n));
                mm_naive_broadcast(&mut s, &sr, &a.to_rows(), &a.to_rows()).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
