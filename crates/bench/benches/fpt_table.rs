//! Experiment **T-FPT** (§7.3's comparison list): fixed-parameter
//! tractability on the congested clique.
//!
//! | paper claim | expected shape |
//! |---|---|
//! | k-VC in `O(k)` rounds | flat in n |
//! | k-path in `exp(k)` rounds [20, 35] | flat in n, exponential in k |
//! | k-IS in `O(n^{1−2/k})` | grows with n, exponent rises with k |
//! | k-DS in `O(n^{1−1/k})` | grows with n, faster than k-IS |

use cc_bench::{print_table, SEED};
use cliquesim::{Engine, Session};
use criterion::{criterion_group, criterion_main, Criterion};

fn report() {
    let ns = [32usize, 64, 128];
    let mut rows: Vec<Vec<String>> = Vec::new();

    let mut add = |name: &str, paper: &str, rounds: Vec<usize>| {
        rows.push(vec![
            name.to_string(),
            paper.to_string(),
            rounds
                .iter()
                .zip(&ns)
                .map(|(r, n)| format!("{n}:{r}"))
                .collect::<Vec<_>>()
                .join("  "),
        ]);
    };

    add(
        "4-VC",
        "O(k)",
        ns.iter()
            .map(|&n| {
                let (g, _) = cc_graph::gen::planted_vertex_cover(n, 4, 3, SEED + n as u64);
                cc_param::vertex_cover_rounds(&g, 4).unwrap().1.rounds
            })
            .collect(),
    );

    add(
        "4-path (colour coding, 1 trial)",
        "exp(k)",
        ns.iter()
            .map(|&n| {
                let g = cc_graph::gen::path(n);
                let mut s = Session::new(Engine::new(n));
                cc_subgraph::detect_path_color_coding(&mut s, &g, 4, 1, SEED).unwrap();
                s.stats().rounds
            })
            .collect(),
    );

    add(
        "3-IS (Dolev)",
        "O(n^{1-2/k})",
        ns.iter()
            .map(|&n| {
                let g = cc_graph::gen::gnp(n, 0.5, SEED + n as u64);
                let mut s = Session::new(Engine::new(n));
                cc_subgraph::detect_independent_set(&mut s, &g, 3).unwrap();
                s.stats().rounds
            })
            .collect(),
    );

    add(
        "3-DS (Thm 9)",
        "O(n^{1-1/k})",
        ns.iter()
            .map(|&n| {
                let (g, _) = cc_graph::gen::planted_dominating_set(n, 3, 0.05, SEED + n as u64);
                let mut s = Session::new(Engine::new(n));
                cc_param::dominating_set(&mut s, &g, 3).unwrap();
                s.stats().rounds
            })
            .collect(),
    );

    print_table(
        "§7.3: fixed-parameter landscape (rounds by n)",
        &["problem", "paper", "rounds by n"],
        &rows,
    );

    // k-axis for the exp(k) claim.
    let n = 64;
    let krows: Vec<Vec<String>> = (2..=6)
        .map(|k| {
            let g = cc_graph::gen::path(n);
            let mut s = Session::new(Engine::new(n));
            cc_subgraph::detect_path_color_coding(&mut s, &g, k, 1, SEED).unwrap();
            vec![
                k.to_string(),
                s.stats().rounds.to_string(),
                format!("{:.4}", cc_subgraph::trial_success_probability(k)),
            ]
        })
        .collect();
    print_table(
        "k-path: per-trial rounds vs k at n = 64 (exp(k) shape)",
        &["k", "rounds/trial", "trial success p"],
        &krows,
    );
    println!("\nshape: the k-VC and k-path rows are flat in n (their cost lives in k);");
    println!("the k-IS and k-DS rows grow with n — the W-hierarchy analogy of §7.3.");
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("fpt");
    group.sample_size(10);
    group.bench_function("kpath4_n64_1trial", |b| {
        let g = cc_graph::gen::path(64);
        b.iter(|| {
            let mut s = Session::new(Engine::new(64));
            cc_subgraph::detect_path_color_coding(&mut s, &g, 4, 1, SEED).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
