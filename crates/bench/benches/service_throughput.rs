//! Fleet throughput: one 100-job batch through `cc-service` at scheduler
//! widths {1, 4, 8}, against the serial oracle baseline.
//!
//! Before any number is recorded, every width's outcomes are asserted
//! byte-identical to [`Batch::run_serial`] — a benchmark of a scheduler
//! that changed results would be measuring a bug. The timed quantity is
//! wall-clock to fully drain the batch; throughput scales with the
//! *host's* cores, so the report records `host_parallelism` next to every
//! row and the scaling gate is explicitly conditional on it.
//!
//! Environment knobs (all optional):
//! - `BENCH_ENGINE_JSON`: path of the shared JSON report (default
//!   `BENCH_engine.json`); this bench splices a `service_throughput`
//!   section into it, preserving the `engine_parallel` sections.
//! - `BENCH_SMOKE=1`: fewer repetitions and smaller jobs for CI.
//! - `BENCH_ENFORCE_SERVICE=1`: exit non-zero unless width 8 beats
//!   width 1 by ≥ 3× — enforced only on hosts with ≥ 4 cores, where the
//!   scaling is physically possible; single-core hosts record honest
//!   numbers and skip the gate (CI's 4-vCPU runners carry it).

use std::sync::Arc;
use std::time::Instant;

use cc_service::{Batch, EngineSpec, JobSpec, Service, TenantId};
use cliquesim::{BitString, Inbox, NodeCtx, NodeProgram, Outbox, Session, Status};
use criterion::{criterion_group, Criterion};

/// Same broadcast-gossip workload as `engine_parallel`: per-round id
/// chatter with an order-sensitive accumulator.
struct Gossip {
    rounds: usize,
    acc: u64,
}

impl NodeProgram for Gossip {
    type Output = u64;
    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<u64> {
        for (u, m) in inbox.iter() {
            self.acc = self
                .acc
                .wrapping_add(u.0 as u64 ^ m.reader().read_uint(ctx.id_width()).unwrap_or(0));
        }
        if round >= self.rounds {
            return Status::Halt(self.acc);
        }
        let mut m = BitString::new();
        m.push_uint(
            (ctx.id.0 as u64 + round as u64) & ((1 << ctx.id_width()) - 1),
            ctx.id_width(),
        );
        outbox.broadcast(&m);
        Status::Continue
    }
}

/// The benchmark batch: `jobs` independent gossip simulations spread
/// round-robin over 4 tenants. Independent on purpose — dependency
/// chains serialise by construction and would only mask scheduler
/// scaling.
fn batch(jobs: usize, n: usize, rounds: usize) -> Batch {
    let mut b = Batch::new();
    for i in 0..jobs {
        b.push(JobSpec::new(
            TenantId((i % 4) as u32),
            format!("gossip[n={n}, job={i}]@auto"),
            EngineSpec::new(n),
            Arc::new(move |s: &mut Session, _d: &cc_service::DepOutputs| {
                let out = s
                    .run((0..n).map(|_| Gossip { rounds, acc: 0 }).collect())
                    .map_err(|e| e.to_string())?;
                Ok(out.outputs.iter().flat_map(|v| v.to_le_bytes()).collect())
            }),
        ));
    }
    b
}

fn median_secs(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut samples: Vec<f64> = (0..reps).map(|_| f()).collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct Row {
    width: usize,
    median_ms: f64,
    jobs_per_sec: f64,
}

/// Splice the `service_throughput` section into the shared JSON report.
/// The section is always the last key before the closing brace, so the
/// merge is: drop any previous section, strip the final `}`, append.
fn splice_json(path: &str, smoke: bool, jobs: usize, host: usize, serial_ms: f64, rows: &[Row]) {
    let existing = std::fs::read_to_string(path)
        .unwrap_or_else(|_| "{\n  \"bench\": \"engine_parallel\"\n}\n".to_string());
    let head = match existing.find(",\n  \"service_throughput\"") {
        Some(idx) => existing[..idx].to_string(),
        None => {
            let idx = existing.rfind('}').unwrap_or(existing.len());
            existing[..idx].trim_end().to_string()
        }
    };
    let mut out = head;
    out.push_str(",\n  \"service_throughput\": {\n");
    out.push_str(&format!("    \"smoke\": {smoke},\n"));
    out.push_str(&format!("    \"jobs\": {jobs},\n"));
    out.push_str(&format!("    \"host_parallelism\": {host},\n"));
    out.push_str(&format!("    \"serial_oracle_ms\": {serial_ms:.3},\n"));
    out.push_str("    \"widths\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"width\": {}, \"median_ms\": {:.3}, \"jobs_per_sec\": {:.1}}}{}\n",
            r.width,
            r.median_ms,
            r.jobs_per_sec,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("    ]\n  }\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path} (service_throughput section)");
}

fn bench(_c: &mut Criterion) {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (jobs, n, rounds, reps) = if smoke {
        (40, 16, 4, 2)
    } else {
        (100, 24, 8, 3)
    };
    let host = std::thread::available_parallelism().map_or(1, |p| p.get());

    // Correctness gate before any timing: every width must match the
    // serial oracle byte for byte.
    let reference = batch(jobs, n, rounds).run_serial().expect("valid batch");
    for width in [1usize, 4, 8] {
        let service = Service::new(width);
        let outcomes = service
            .submit(batch(jobs, n, rounds))
            .expect("valid batch")
            .join();
        assert!(
            outcomes == reference,
            "width {width} fleet diverged from the serial oracle"
        );
    }

    let serial_ms = median_secs(reps, || {
        let b = batch(jobs, n, rounds);
        let start = Instant::now();
        b.run_serial().expect("valid batch");
        start.elapsed().as_secs_f64()
    }) * 1e3;
    println!(
        "\n=== service_throughput: {jobs} jobs (gossip n={n}, rounds={rounds}) on a \
         {host}-core host | serial oracle {serial_ms:.1} ms ==="
    );

    let mut rows = Vec::new();
    for width in [1usize, 4, 8] {
        let median_ms = median_secs(reps, || {
            let service = Service::new(width);
            let b = batch(jobs, n, rounds);
            let start = Instant::now();
            let outcomes = service.submit(b).expect("valid batch").join();
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(outcomes.len(), jobs);
            secs
        }) * 1e3;
        let jobs_per_sec = jobs as f64 / (median_ms / 1e3);
        println!(
            "width {width}: {median_ms:8.2} ms | {jobs_per_sec:8.1} jobs/s | {:.2}x vs width 1",
            rows.first().map_or(1.0, |r: &Row| r.median_ms / median_ms),
        );
        rows.push(Row {
            width,
            median_ms,
            jobs_per_sec,
        });
    }

    let path =
        std::env::var("BENCH_ENGINE_JSON").unwrap_or_else(|_| "BENCH_engine.json".to_string());
    splice_json(&path, smoke, jobs, host, serial_ms, &rows);

    if std::env::var("BENCH_ENFORCE_SERVICE").is_ok_and(|v| v == "1") {
        let speedup = rows[0].median_ms / rows[2].median_ms;
        if host >= 4 {
            assert!(
                speedup >= 3.0,
                "width 8 speedup {speedup:.2}x < 3x over width 1 on a {host}-core host"
            );
            println!("BENCH_ENFORCE_SERVICE: width 8 is {speedup:.2}x width 1 (>= 3x)");
        } else {
            println!(
                "BENCH_ENFORCE_SERVICE: skipped scaling gate on a {host}-core host \
                 (width 8 measured {speedup:.2}x width 1)"
            );
        }
    }
}

criterion_group!(benches, bench);

fn main() {
    benches();
}
