//! Experiments **F2 + T10** (Figure 2 / Theorem 10): the k-IS → k-DS
//! gadget pipeline. Reports gadget sizes (`≤ (k²+k+2)·n`), the simulation
//! factor (`O(k⁴)`, constant in n), and agreement between the pipeline and
//! direct detection.

use cc_bench::{print_table, SEED};
use cliquesim::{Engine, Session};
use criterion::{criterion_group, criterion_main, Criterion};

fn report() {
    let k = 2;
    let mut rows = Vec::new();
    for n in [8usize, 12, 16, 24] {
        let g = cc_graph::gen::gnp(n, 0.5, SEED + n as u64);
        let out = cc_reductions::independent_set_via_dominating_set(&g, k).unwrap();

        // Direct detection for agreement.
        let mut s = Session::new(Engine::new(n));
        let direct = cc_subgraph::detect_independent_set(&mut s, &g, k).unwrap();
        assert_eq!(out.independent_set.is_some(), direct.is_some(), "n={n}");

        rows.push(vec![
            n.to_string(),
            out.n_virtual.to_string(),
            format!("{}", (k * k + k + 2) * n),
            out.max_load.to_string(),
            out.factor.to_string(),
            out.virtual_stats.rounds.to_string(),
            out.host_stats.rounds.to_string(),
            s.stats().rounds.to_string(),
            if out.independent_set.is_some() {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    print_table(
        "Theorem 10 / Figure 2: 2-IS via 2-DS gadget (G(n, 0.5))",
        &[
            "n",
            "n' (gadget)",
            "bound",
            "load c",
            "factor",
            "virt rounds",
            "host rounds",
            "direct rounds",
            "2-IS",
        ],
        &rows,
    );
    println!(
        "\nshape checks: n' ≤ (k²+k+2)n in every row; the factor column is\n\
         ~constant in n (it is a function of k only, Theorem 10's O(k^{{2δ+4}}))."
    );
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("thm10");
    group.sample_size(10);
    let g = cc_graph::gen::gnp(10, 0.5, SEED);
    group.bench_function("pipeline_n10_k2", |b| {
        b.iter(|| cc_reductions::independent_set_via_dominating_set(&g, 2).unwrap());
    });
    group.bench_function("gadget_build_n10_k3", |b| {
        b.iter(|| cc_reductions::IsToDsGadget::build(&g, 3));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
