//! Experiment **T3** (Theorem 3): the NCLIQUE normal form. Measures the
//! transcript-certificate size against the `O(T(n)·n·log n)` bound and
//! the verification cost, across problems and sizes.

use cc_bench::print_table;
use cc_core::{prove_and_verify, NondetProblem, NormalForm};
use cliquesim::BitString;
use criterion::{criterion_group, criterion_main, Criterion};

fn report() {
    let mut rows = Vec::new();
    for n in [6usize, 8, 10, 12, 14] {
        let (g, _) = cc_graph::gen::k_colorable(n, 3, 0.5, n as u64);
        let nf = NormalForm::new(cc_core::KColoring { k: 3 });
        let z = nf.prove(&g).expect("colourable workload");
        let verdict = prove_and_verify(&nf, &g).unwrap().unwrap();
        assert!(verdict.accepted);
        let t = 2usize; // colouring verifier: broadcast + check
        rows.push(vec![
            n.to_string(),
            z.max_label_bits().to_string(),
            nf.label_bound(n).to_string(),
            format!("{}", t * n * BitString::width_for(n)),
            verdict.stats.rounds.to_string(),
        ]);
    }
    print_table(
        "Theorem 3: normal-form certificates for 3-colouring",
        &[
            "n",
            "|z_v| bits",
            "impl bound",
            "T·n·log n",
            "verify rounds",
        ],
        &rows,
    );
    println!("\nshape check: |z_v| grows ~linearly in n·log n (T is constant) and");
    println!("stays within the implementation bound in every row.");
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("thm3");
    group.sample_size(10);
    let (g, _) = cc_graph::gen::k_colorable(8, 3, 0.5, 3);
    let nf = NormalForm::new(cc_core::KColoring { k: 3 });
    group.bench_function("prove_n8", |b| {
        b.iter(|| nf.prove(&g).unwrap());
    });
    let z = nf.prove(&g).unwrap();
    group.bench_function("verify_n8", |b| {
        b.iter(|| cc_core::verify(&nf, &g, &z).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
