use cliquesim::{Engine, Session};
use std::time::Instant;
fn main() {
    for (name, f) in [
        (
            "triangle_dolev_216",
            Box::new(|| {
                let g = cc_graph::gen::gnp(216, 0.1, 1);
                let mut s = Session::new(Engine::new(216));
                cc_subgraph::detect_triangle(&mut s, &g).unwrap();
                s.stats().rounds
            }) as Box<dyn Fn() -> usize>,
        ),
        (
            "mm3d_216",
            Box::new(|| {
                let sr = cc_matmul::TropicalSemiring::for_max_value(1000);
                let a = cc_matmul::Matrix::filled(216, 3u64);
                let mut s = Session::new(Engine::new(216));
                cc_matmul::mm_three_d(&mut s, &sr, &a.to_rows(), &a.to_rows()).unwrap();
                s.stats().rounds
            }),
        ),
        (
            "naive_216",
            Box::new(|| {
                let sr = cc_matmul::TropicalSemiring::for_max_value(1000);
                let a = cc_matmul::Matrix::filled(216, 3u64);
                let mut s = Session::new(Engine::new(216));
                cc_matmul::mm_naive_broadcast(&mut s, &sr, &a.to_rows(), &a.to_rows()).unwrap();
                s.stats().rounds
            }),
        ),
        (
            "is3_125",
            Box::new(|| {
                let g = cc_graph::gen::gnp(125, 0.6, 1);
                let mut s = Session::new(Engine::new(125));
                cc_subgraph::detect_independent_set(&mut s, &g, 3).unwrap();
                s.stats().rounds
            }),
        ),
        (
            "apsp_216",
            Box::new(|| {
                let wg = cc_graph::gen::gnp_weighted(216, 0.2, 30, 1);
                let mut s = Session::new(Engine::new(216));
                cc_paths::apsp_exact(&mut s, &wg).unwrap();
                s.stats().rounds
            }),
        ),
    ] {
        let t = Instant::now();
        let rounds = f();
        println!("{name}: {rounds} rounds in {:.1?}", t.elapsed());
    }
}
