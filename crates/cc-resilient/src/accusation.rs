//! Transferable equivocation proofs from signed messages.
//!
//! `cc-testkit`'s `equivocation_witness` demonstrates that a traitor can
//! send different payloads to different peers — but the witness it
//! produces is only convincing to someone who *watched the run*: two
//! recipients each claim "node `v` told me X", and either could be lying.
//! With cliquesim's signed-message envelope (`cliquesim::auth`) the claim
//! stops being hearsay: every delivered frame ends in a tag only `v`'s key
//! produces, so two conflicting frames for the same round are a
//! self-contained conviction any third party can check against the keyring
//! without trusting either accuser.
//!
//! **Guarantee:** [`equivocation_accusation`] accepts exactly the pairs of
//! [`SignedClaim`]s that convict — same signer, same round, different
//! payloads, both tags valid — and the resulting [`EquivocationProof`]
//! re-verifies against the keyring from nothing but its own fields.
//! Honest nodes are never convicted: producing two *valid* tags over
//! different payloads for the same `(signer, round)` requires the signer's
//! key, which honest nodes use once per payload per round.
//!
//! **Assumptions:** the seeded-keyring substitution contract
//! (`cliquesim::auth`) — the adversary does not hold honest keys and
//! cannot invert the tag function. As everywhere in the workspace this is
//! a *deterministic stand-in* for real signatures, not cryptography.
//!
//! **Overhead:** none at run time. Accusations are built *after* a run
//! from recorded inbox frames; they cost `2(|payload| + TAG_BITS)` bits if
//! shipped to a third party, and no protocol here ships them
//! automatically.

use std::fmt;

use cliquesim::{split_tagged, AuthKeyring, BitString, NodeId};

/// One recipient's testimony: "node `signer` sent me `payload` with `tag`
/// in engine round `round`". Build it from a delivered inbox frame with
/// [`SignedClaim::from_frame`] — the frame's trailing tag is exactly the
/// envelope signature the engine attached and verified on delivery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedClaim {
    /// The node the frame came from (the alleged equivocator).
    pub signer: NodeId,
    /// The engine round the frame was sent in.
    pub round: usize,
    /// The frame's payload, tag stripped.
    pub payload: BitString,
    /// The envelope tag that came with the payload.
    pub tag: u64,
}

impl SignedClaim {
    /// Split a delivered inbox frame (payload ‖ tag) into a claim. Returns
    /// `None` for frames too short to carry a tag.
    pub fn from_frame(signer: NodeId, round: usize, frame: &BitString) -> Option<Self> {
        let (payload, tag) = split_tagged(frame)?;
        Some(Self {
            signer,
            round,
            payload,
            tag,
        })
    }

    /// Whether this claim's tag verifies under `keyring`.
    pub fn verifies(&self, keyring: &AuthKeyring) -> bool {
        keyring.verify(self.signer, self.round, &self.payload, self.tag)
    }
}

/// Why a pair of claims fails to convict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccusationError {
    /// The two claims name different signers — nobody equivocated.
    DifferentSigner,
    /// The claims are from different rounds; sending different payloads
    /// in different rounds is ordinary behaviour.
    DifferentRound,
    /// The payloads are identical — consistent broadcast, not
    /// equivocation.
    SamePayload,
    /// At least one tag does not verify, so that claim could itself be
    /// fabricated; a proof built from it would convict an honest node.
    BadTag,
}

impl fmt::Display for AccusationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self {
            Self::DifferentSigner => "claims name different signers",
            Self::DifferentRound => "claims are from different rounds",
            Self::SamePayload => "payloads agree; nothing to accuse",
            Self::BadTag => "a claim's tag does not verify",
        };
        f.write_str(what)
    }
}

impl std::error::Error for AccusationError {}

/// A transferable conviction: two validly-signed, conflicting payloads
/// from the same signer in the same round. Check it with
/// [`EquivocationProof::verify`]; it carries everything needed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EquivocationProof {
    /// The convicted equivocator.
    pub signer: NodeId,
    /// The round both conflicting frames were sent in.
    pub round: usize,
    /// First signed payload: `(payload, tag)`.
    pub first: (BitString, u64),
    /// Second, different signed payload: `(payload, tag)`.
    pub second: (BitString, u64),
}

impl EquivocationProof {
    /// Re-check the conviction from scratch: both tags valid for
    /// `(signer, round)` and the payloads genuinely different. A proof
    /// built by [`equivocation_accusation`] under the same keyring always
    /// passes; a tampered one does not.
    pub fn verify(&self, keyring: &AuthKeyring) -> bool {
        self.first.0 != self.second.0
            && keyring.verify(self.signer, self.round, &self.first.0, self.first.1)
            && keyring.verify(self.signer, self.round, &self.second.0, self.second.1)
    }
}

/// Upgrade two conflicting testimonies into a transferable
/// [`EquivocationProof`], rejecting every pair that would not convict —
/// see [`AccusationError`] for the exhaustive list of reasons.
pub fn equivocation_accusation(
    keyring: &AuthKeyring,
    a: &SignedClaim,
    b: &SignedClaim,
) -> Result<EquivocationProof, AccusationError> {
    if a.signer != b.signer {
        return Err(AccusationError::DifferentSigner);
    }
    if a.round != b.round {
        return Err(AccusationError::DifferentRound);
    }
    if a.payload == b.payload {
        return Err(AccusationError::SamePayload);
    }
    if !a.verifies(keyring) || !b.verifies(keyring) {
        return Err(AccusationError::BadTag);
    }
    Ok(EquivocationProof {
        signer: a.signer,
        round: a.round,
        first: (a.payload.clone(), a.tag),
        second: (b.payload.clone(), b.tag),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn claim(keyring: &AuthKeyring, signer: NodeId, round: usize, value: u64) -> SignedClaim {
        let mut payload = BitString::new();
        payload.push_uint(value, 8);
        let tag = keyring.sign(signer, round, &payload);
        SignedClaim {
            signer,
            round,
            payload,
            tag,
        }
    }

    #[test]
    fn conflicting_valid_claims_convict_and_the_proof_transfers() {
        let keyring = AuthKeyring::from_seed(6, 11);
        let a = claim(&keyring, NodeId(2), 3, 0x41);
        let b = claim(&keyring, NodeId(2), 3, 0x42);
        let proof = equivocation_accusation(&keyring, &a, &b).unwrap();
        assert!(proof.verify(&keyring), "the proof is self-contained");
        // A different keyring (different deployment) rejects it.
        assert!(!proof.verify(&AuthKeyring::from_seed(6, 12)));
    }

    #[test]
    fn every_non_convicting_pair_is_rejected_for_the_right_reason() {
        let keyring = AuthKeyring::from_seed(6, 11);
        let a = claim(&keyring, NodeId(2), 3, 0x41);
        let b = claim(&keyring, NodeId(2), 3, 0x42);
        let other_signer = claim(&keyring, NodeId(3), 3, 0x42);
        let other_round = claim(&keyring, NodeId(2), 4, 0x42);
        let mut forged = b.clone();
        forged.tag ^= 1;
        assert_eq!(
            equivocation_accusation(&keyring, &a, &other_signer),
            Err(AccusationError::DifferentSigner)
        );
        assert_eq!(
            equivocation_accusation(&keyring, &a, &other_round),
            Err(AccusationError::DifferentRound)
        );
        assert_eq!(
            equivocation_accusation(&keyring, &a, &a.clone()),
            Err(AccusationError::SamePayload)
        );
        assert_eq!(
            equivocation_accusation(&keyring, &a, &forged),
            Err(AccusationError::BadTag),
            "an invalid testimony must never help convict"
        );
    }

    #[test]
    fn tampered_proofs_fail_verification() {
        let keyring = AuthKeyring::from_seed(6, 11);
        let a = claim(&keyring, NodeId(2), 3, 0x41);
        let b = claim(&keyring, NodeId(2), 3, 0x42);
        let proof = equivocation_accusation(&keyring, &a, &b).unwrap();
        let mut wrong_signer = proof.clone();
        wrong_signer.signer = NodeId(4);
        assert!(!wrong_signer.verify(&keyring));
        let mut wrong_round = proof.clone();
        wrong_round.round = 9;
        assert!(!wrong_round.verify(&keyring));
        let mut same_payload = proof.clone();
        same_payload.second = proof.first.clone();
        assert!(
            !same_payload.verify(&keyring),
            "no self-conflict convictions"
        );
    }

    #[test]
    fn claims_round_trip_from_delivered_frames() {
        let keyring = AuthKeyring::from_seed(5, 7);
        let mut payload = BitString::new();
        payload.push_uint(0b1011, 4);
        let tag = keyring.sign(NodeId(1), 2, &payload);
        let mut frame = payload.clone();
        frame.push_uint(tag, cliquesim::TAG_BITS);
        let c = SignedClaim::from_frame(NodeId(1), 2, &frame).unwrap();
        assert_eq!(c.payload, payload);
        assert_eq!(c.tag, tag);
        assert!(c.verifies(&keyring));
        assert!(SignedClaim::from_frame(NodeId(1), 2, &payload).is_none());
    }
}
