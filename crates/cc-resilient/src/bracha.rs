//! Byzantine-tolerant reliable broadcast (Bracha-style echo/ready quorums).
//!
//! Per-link majority votes ([`crate::RepeatBroadcast`]) assume the *sender*
//! is honest and only the wire lies. A Byzantine sender equivocates — it
//! sends different payloads to different peers — so every copy on a link can
//! agree and still be a lie. Bracha's reliable broadcast (1987) defeats this
//! with two all-to-all vote layers: a value is only accepted once enough
//! *distinct* nodes vouch for it that any two quorums overlap in an honest
//! node.
//!
//! # Protocol (synchronous rendering, fixed schedule)
//!
//! For `n` nodes tolerating `f` traitors, with `E = ⌊(n+f)/2⌋ + 1` the echo
//! quorum:
//!
//! * **Round 0** — the source broadcasts `INIT(v)`.
//! * **Round 1** — every node that decoded the source's `INIT` broadcasts
//!   `ECHO(w)` for the value it saw.
//! * **Round 2** — a node seeing `E` distinct `ECHO` votes for one value
//!   broadcasts `READY(w)`.
//! * **Rounds 3 … 2f+5** (amplification) — a node seeing `f + 1` distinct
//!   `READY` votes for `w` joins with its own `READY(w)`.
//! * **Round 2f+6** (decision) — deliver the smallest `w` with at least
//!   `2f + 1` distinct `READY` votes, or `None` when no value reached that
//!   threshold.
//!
//! ## Why the amplification window is `2f + 6` rounds long
//!
//! The earlier `f + 4` schedule had a split-brain: by drip-feeding traitor
//! `READY` votes the adversary can push one honest node over `2f + 1` on
//! the very last round while the rest sit at `f + 1` with no rounds left to
//! join — one honest node delivers, the others deliver `None`. The fix is a
//! window long enough that *any* completed quorum has time to amplify:
//!
//! * After round 1 the only sends are first-time `READY` broadcasts, so the
//!   rounds containing at least one send are *consecutive* — a silent round
//!   freezes every vote count, hence every later round, forever.
//! * All honest `READY`s name a single value (the echo quorum intersects
//!   any two vote sets in an honest node), so honest joins never split.
//! * If fewer than `f + 1` honest nodes ever join, no honest count reaches
//!   `2f + 1` and every honest node delivers `None` together. Otherwise the
//!   `(f+1)`-th honest join lands at some round `j`; at most `f` honest and
//!   `f` traitor first-sends precede it on the consecutive send schedule,
//!   so `j ≤ 2f + 3`. Every honest node then holds `f + 1` honest votes and
//!   joins by `j + 1`, and counts all `n − f ≥ 2f + 1` honest votes by
//!   `j + 2 ≤ 2f + 5` — strictly before the decision round.
//!
//! **Guarantee** (`f < n/3` Byzantine senders): all honest nodes halt with
//! the *same* `Option<u64>`; if the source is honest, that output is
//! `Some(its value)`. The workspace checks this property over seeded
//! adversary plans (`tests/byzantine_suite.rs`), including the forced-lie
//! drip-feed regression above, rather than claiming a mechanised proof.
//!
//! **Cost**: `2f + 6` communication rounds and, fault-free,
//! `(n-1)(2n+1)` messages of `width + 2` bits (a 2-bit tag frames each
//! payload) — [`bracha_overhead`] prices this analytically for
//! [`cliquesim::Session::charge`].

use std::collections::{BTreeMap, BTreeSet};

use cliquesim::{
    BitString, ByzantineOutcome, Inbox, NodeCtx, NodeId, NodeProgram, Outbox, RunStats, Session,
    SimError, Status,
};

/// Message tags; a decoded tag outside this set is ignored (a garbled
/// frame cannot smuggle in a new message kind).
const TAG_INIT: u64 = 1;
const TAG_ECHO: u64 = 2;
const TAG_READY: u64 = 3;

/// Encode `tag` + `value` as a `width + 2`-bit frame.
fn encode_tagged(tag: u64, value: u64, width: usize) -> BitString {
    let mut m = BitString::new();
    m.push_uint(tag, 2);
    m.push_uint(value, width);
    m
}

/// Decode a frame into `(tag, value)`; anything that is not exactly
/// `width + 2` bits is rejected outright.
fn decode_tagged(m: &BitString, width: usize) -> Option<(u64, u64)> {
    if m.len() != width + 2 {
        return None;
    }
    let mut r = m.reader();
    let tag = r.read_uint(2).ok()?;
    let value = r.read_uint(width).ok()?;
    Some((tag, value))
}

/// One node's program for Bracha-style reliable broadcast. See the module
/// docs for the schedule and the `f < n/3` guarantee.
#[derive(Clone, Debug)]
pub struct BrachaBroadcast {
    source: NodeId,
    /// The source's input; ignored on other nodes.
    value: u64,
    width: usize,
    f: usize,
    n: usize,
    /// The value decoded from the source's `INIT`, if any.
    init: Option<u64>,
    /// The value this node has committed its `READY` to, if any.
    ready_sent: Option<u64>,
    /// Senders whose (first) `ECHO` vote has been counted.
    echo_voters: BTreeSet<u32>,
    /// Senders whose (first) `READY` vote has been counted.
    ready_voters: BTreeSet<u32>,
    /// Distinct-sender `ECHO` votes per value.
    echo_votes: BTreeMap<u64, usize>,
    /// Distinct-sender `READY` votes per value.
    ready_votes: BTreeMap<u64, usize>,
}

impl BrachaBroadcast {
    /// Program for one node: `source`'s `width`-bit `value` is reliably
    /// broadcast tolerating up to `f` Byzantine senders. `value` is only
    /// read on the source node.
    pub fn new(source: NodeId, value: u64, width: usize, f: usize) -> Self {
        assert!((1..=62).contains(&width), "width {width} out of range");
        Self {
            source,
            value,
            width,
            f,
            n: 0,
            init: None,
            ready_sent: None,
            echo_voters: BTreeSet::new(),
            ready_voters: BTreeSet::new(),
            echo_votes: BTreeMap::new(),
            ready_votes: BTreeMap::new(),
        }
    }

    /// Count one distinct-sender vote; the sender's later votes (of the
    /// same kind) are ignored, so an equivocating traitor gets at most one
    /// vote per layer per recipient.
    fn count_vote(
        voters: &mut BTreeSet<u32>,
        votes: &mut BTreeMap<u64, usize>,
        sender: u32,
        value: u64,
    ) {
        if voters.insert(sender) {
            *votes.entry(value).or_insert(0) += 1;
        }
    }

    fn absorb(&mut self, inbox: &Inbox<'_>) {
        for (u, m) in inbox.iter() {
            let Some((tag, w)) = decode_tagged(m, self.width) else {
                continue;
            };
            match tag {
                // Only the source's INIT is meaningful; first one wins.
                TAG_INIT if u == self.source && self.init.is_none() => {
                    self.init = Some(w);
                }
                TAG_ECHO => {
                    Self::count_vote(&mut self.echo_voters, &mut self.echo_votes, u.0, w);
                }
                TAG_READY => {
                    Self::count_vote(&mut self.ready_voters, &mut self.ready_votes, u.0, w);
                }
                _ => {}
            }
        }
    }

    /// The smallest value whose distinct-sender vote count reaches
    /// `threshold` (smallest-first keeps all honest nodes deterministic).
    fn quorum(votes: &BTreeMap<u64, usize>, threshold: usize) -> Option<u64> {
        votes
            .iter()
            .find(|(_, c)| **c >= threshold)
            .map(|(w, _)| *w)
    }
}

impl NodeProgram for BrachaBroadcast {
    type Output = Option<u64>;

    fn init(&mut self, ctx: &NodeCtx) {
        self.n = ctx.n;
    }

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<Self::Output> {
        self.absorb(inbox);
        let decision_round = 2 * self.f + 6;
        match round {
            0 => {
                if ctx.id == self.source {
                    self.init = Some(self.value);
                    outbox.broadcast(&encode_tagged(TAG_INIT, self.value, self.width));
                }
                Status::Continue
            }
            1 => {
                if let Some(w) = self.init {
                    // A broadcaster never hears itself, so its own vote is
                    // counted locally.
                    Self::count_vote(&mut self.echo_voters, &mut self.echo_votes, ctx.id.0, w);
                    outbox.broadcast(&encode_tagged(TAG_ECHO, w, self.width));
                }
                Status::Continue
            }
            r if r < decision_round => {
                if self.ready_sent.is_none() {
                    let echo_quorum = (self.n + self.f) / 2 + 1;
                    let cand = Self::quorum(&self.echo_votes, echo_quorum)
                        .or_else(|| Self::quorum(&self.ready_votes, self.f + 1));
                    if let Some(w) = cand {
                        self.ready_sent = Some(w);
                        Self::count_vote(
                            &mut self.ready_voters,
                            &mut self.ready_votes,
                            ctx.id.0,
                            w,
                        );
                        outbox.broadcast(&encode_tagged(TAG_READY, w, self.width));
                    }
                }
                Status::Continue
            }
            _ => Status::Halt(Self::quorum(&self.ready_votes, 2 * self.f + 1)),
        }
    }
}

/// Run [`BrachaBroadcast`] as one session phase under the engine's
/// [`cliquesim::ByzantinePlan`] (and fault plan, if any): `source`'s
/// `width`-bit `value` is reliably broadcast tolerating up to `f` Byzantine
/// senders. The phase's rounds/bits and all adversary counters land in the
/// session ledger; agreement should be asserted with
/// [`ByzantineOutcome::honest_unanimous`].
pub fn bracha_broadcast(
    session: &mut Session,
    source: NodeId,
    value: u64,
    width: usize,
    f: usize,
) -> Result<ByzantineOutcome<Option<u64>>, SimError> {
    assert!(
        width + 2 <= session.bandwidth(),
        "a {width}-bit value plus 2 tag bits exceeds the engine bandwidth of {}",
        session.bandwidth()
    );
    let n = session.n();
    assert!(
        3 * f < n,
        "Bracha broadcast requires f < n/3 (got n={n}, f={f})"
    );
    let programs = (0..n)
        .map(|_| BrachaBroadcast::new(source, value, width, f))
        .collect();
    session.run_byzantine(programs)
}

/// Analytic cost of one fault-free [`BrachaBroadcast`] phase, for
/// [`Session::charge`]: `2f + 6` rounds, `(n-1)(2n+1)` messages (one INIT
/// broadcast plus full ECHO and READY rounds) of `width + 2` bits each.
/// Faults only ever *remove* messages from this bound.
pub fn bracha_overhead(n: usize, f: usize, width: usize) -> RunStats {
    let frame = (width + 2) as u64;
    let messages = (n as u64 - 1) * (2 * n as u64 + 1);
    // The busiest boundary holds the full ECHO round in one buffer and the
    // full READY round in the other.
    let peak_bits = 2 * (n as u64) * (n as u64 - 1) * frame;
    RunStats {
        rounds: 2 * f + 6,
        messages,
        bits: messages * frame,
        max_message_bits: width + 2,
        peak_live_payload_bytes: (peak_bits as usize).div_ceil(8),
        ..RunStats::default()
    }
}

/// Byzantine-tolerant maximum aggregation: `n` sequential
/// [`BrachaBroadcast`] phases (one per input holder) followed by a local
/// maximum over the *delivered* values.
///
/// Plain [`crate::MaxGossip`] trusts every sender, so one traitor forging a
/// too-large value poisons the whole clique. Here a value only enters a
/// node's maximum after surviving a reliable-broadcast quorum, and because
/// every honest node delivers the *same* `Option` per phase, all honest
/// survivors end with the same maximum — even a traitor's phase can only
/// contribute one agreed-upon value (or nothing), never different values to
/// different nodes. Nodes deliberately do *not* shortcut with their own raw
/// input: using only delivered values is what makes the result unanimous.
///
/// **Cost**: `n(2f + 6)` rounds — Byzantine tolerance is priced at a factor
/// `n` over the single gossip round, visible in the session ledger (or
/// chargeable as `n ×` [`bracha_overhead`]).
///
/// Returns one slot per node: the agreed maximum, or `None` for nodes that
/// crashed in some phase (and for everyone in the degenerate case where no
/// phase delivered).
pub fn byzantine_max_gossip(
    session: &mut Session,
    values: &[u64],
    width: usize,
    f: usize,
) -> Result<Vec<Option<u64>>, SimError> {
    assert_eq!(values.len(), session.n(), "one value per node");
    let n = session.n();
    let mut best: Vec<Option<u64>> = vec![None; n];
    let mut dead = vec![false; n];
    for (src, &v) in values.iter().enumerate() {
        let out = bracha_broadcast(session, NodeId::from(src), v, width, f)?;
        for (u, slot) in out.outputs.iter().enumerate() {
            match slot {
                None => dead[u] = true,
                Some(Some(w)) => best[u] = Some(best[u].map_or(*w, |b: u64| b.max(*w))),
                Some(None) => {}
            }
        }
    }
    for (b, d) in best.iter_mut().zip(&dead) {
        if *d {
            *b = None;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesim::{ByzantinePlan, Engine};

    #[test]
    fn fault_free_bracha_delivers_to_everyone() {
        let n = 7;
        let mut session = Session::new(Engine::new(n).with_bandwidth(10));
        let out = bracha_broadcast(&mut session, NodeId(2), 0x5A, 8, 2).unwrap();
        assert_eq!(out.unanimous(), Some(&Some(0x5A)));
        assert_eq!(out.stats.rounds, 2 * 2 + 6, "2f + 6 rounds");
        let analytic = bracha_overhead(n, 2, 8);
        assert_eq!(out.stats.rounds, analytic.rounds);
        assert_eq!(out.stats.messages, analytic.messages);
        assert_eq!(out.stats.bits, analytic.bits);
        assert_eq!(out.stats.max_message_bits, analytic.max_message_bits);
        assert_eq!(
            out.stats.peak_live_payload_bytes,
            analytic.peak_live_payload_bytes
        );
    }

    #[test]
    fn equivocating_source_cannot_split_honest_nodes() {
        // The source itself is the traitor: a full per-recipient garble of
        // its INIT (and everything else it sends). Honest nodes must still
        // agree — here on delivering nothing, since no forged value can
        // assemble an echo quorum.
        let n = 7;
        let f = 1;
        let plan = ByzantinePlan::new(404).traitor(NodeId(0)).garble(1.0);
        let mut session = Session::new(
            Engine::new(n)
                .with_bandwidth(10)
                .with_byzantine_plan(plan.clone()),
        );
        let out = bracha_broadcast(&mut session, NodeId(0), 0x33, 8, f).unwrap();
        assert!(out.stats.forged_messages > 0, "{plan}: traitor never lied");
        assert!(
            out.honest_unanimous(&plan).is_some(),
            "{plan}: honest nodes split"
        );
    }

    #[test]
    fn honest_source_beats_a_lying_bystander() {
        let n = 7;
        let f = 1;
        let plan = ByzantinePlan::new(8).traitor(NodeId(3)).garble(1.0);
        let mut session = Session::new(
            Engine::new(n)
                .with_bandwidth(10)
                .with_byzantine_plan(plan.clone()),
        );
        let out = bracha_broadcast(&mut session, NodeId(0), 0x42, 8, f).unwrap();
        assert_eq!(
            out.honest_unanimous(&plan),
            Some(&Some(0x42)),
            "{plan}: an honest source's value must survive one traitor"
        );
    }

    #[test]
    fn byzantine_max_agrees_despite_a_forging_traitor() {
        // The traitor garbles everything it sends; plain max_gossip would
        // let a forged huge value win. The quorum-gated max keeps honest
        // nodes unanimous on the true maximum of the honestly-held values.
        let n = 7;
        let f = 1;
        let values: Vec<u64> = vec![3, 99, 7, 12, 0, 42, 57];
        let plan = ByzantinePlan::new(21).traitor(NodeId(4)).garble(1.0);
        let mut session = Session::new(
            Engine::new(n)
                .with_bandwidth(10)
                .with_byzantine_plan(plan.clone()),
        );
        let best = byzantine_max_gossip(&mut session, &values, 8, f).unwrap();
        let honest: Vec<&Option<u64>> = (0..n)
            .filter(|v| !plan.is_traitor(NodeId::from(*v)))
            .map(|v| &best[v])
            .collect();
        assert!(
            honest.windows(2).all(|w| w[0] == w[1]),
            "{plan}: honest maxima diverge: {best:?}"
        );
        // Every honestly-broadcast value reaches a quorum, so the agreed
        // maximum is at least the honest maximum (the traitor's own phase
        // may or may not deliver, but delivers *consistently*).
        let honest_max = values
            .iter()
            .enumerate()
            .filter(|(v, _)| !plan.is_traitor(NodeId::from(*v)))
            .map(|(_, x)| *x)
            .max()
            .unwrap();
        assert!(honest[0].unwrap() >= honest_max);
        assert_eq!(session.phases(), n, "one Bracha phase per input holder");
        assert_eq!(session.stats().rounds, n * (2 * f + 6));
    }

    #[test]
    fn frames_reject_wrong_lengths_and_tags() {
        let m = encode_tagged(TAG_ECHO, 9, 8);
        assert_eq!(m.len(), 10);
        assert_eq!(decode_tagged(&m, 8), Some((TAG_ECHO, 9)));
        assert_eq!(decode_tagged(&m, 7), None, "width mismatch");
        let mut t = m.clone();
        t.truncate(5);
        assert_eq!(decode_tagged(&t, 8), None, "truncated frame");
    }

    #[test]
    #[should_panic(expected = "requires f < n/3")]
    fn bracha_rejects_too_many_traitors() {
        let mut session = Session::new(Engine::new(6).with_bandwidth(10));
        let _ = bracha_broadcast(&mut session, NodeId(0), 1, 8, 2);
    }
}
