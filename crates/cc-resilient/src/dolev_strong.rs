//! Authenticated reliable broadcast (Dolev–Strong signature chains).
//!
//! [`crate::BrachaBroadcast`] is capped at `f < n/3` because an
//! unauthenticated recipient cannot *transfer* what it heard: "the source
//! told me `x`" is hearsay, so every claim must be re-established by
//! distinct-sender quorums, and quorum intersection needs `n > 3f`.
//! Signatures (cliquesim's [`AuthKeyring`] envelope, see `cliquesim::auth`)
//! remove the cap: a signed value is a certificate any third node can
//! check, so a recipient can *prove* what the source said by forwarding
//! the signature chain. Dolev & Strong (1983) turn that into broadcast
//! with agreement for **any** number of traitors.
//!
//! # Protocol (synchronous rendering, fixed schedule)
//!
//! For `n` nodes tolerating `f` traitors, with `id_width = ⌈log₂ n⌉` and
//! chains of `(signer, signature)` entries over the content
//! `(source, value)`:
//!
//! * **Round 0** — the source broadcasts `[value ‖ (source, sig)]`, a
//!   chain of one signature, and *extracts* its own value.
//! * **Round `r` (1 ≤ r ≤ f)** — a node accepts an inbound frame iff it
//!   carries a valid chain: `k ≥ r` entries, pairwise-distinct signers
//!   starting with the source, every signature valid for
//!   `(source, value)`. A newly extracted value is countersigned and
//!   relayed (chain grows to `k + 1 ≥ r + 1` entries, meeting the next
//!   round's threshold by construction).
//! * **Round `f + 1`** (decision) — accept a final time with threshold
//!   `f + 1`, then halt with `Some(v)` if exactly one value was ever
//!   extracted, `None` otherwise.
//!
//! The `k ≥ r` rule is the heart of the argument: a chain of `k` valid
//! entries contains `k` distinct signers, so a value first reaching an
//! honest node at the decision round arrives with `f + 1` signatures —
//! at least one from an honest node, which (being honest) relayed it to
//! *everyone* no later than round `f`, so every honest node extracted it
//! by the decision round too. Honest nodes therefore hold identical
//! extraction sets and decide identically, for any `f < n` — traitors
//! can withhold or garble, but garbling breaks the chain signatures and
//! withholding cannot un-extract.
//!
//! **Guarantee:** all honest nodes halt with the same `Option<u64>`; if
//! the source is honest, that output is `Some(its value)`. Checked over
//! seeded adversary plans across the full backends × pool-shapes grid
//! (`tests/auth_suite.rs`), for every `f < n/2` via
//! [`dolev_strong_broadcast`] and all `f < n` via
//! [`dolev_strong_broadcast_classic`] — not claimed as a mechanised
//! proof.
//!
//! **Assumptions:** the engine carries the keyring that signed the
//! chains ([`cliquesim::Engine::with_auth`]); the adversary rewrites
//! payloads but cannot mint a valid signature for an identity it does
//! not own (the keyring's substitution contract). One rendering
//! simplification is documented on [`DolevStrongBroadcast`]: a node
//! relays at most one newly-extracted value per round (the congested
//! clique sends one message per link per round), which is lossless under
//! the modeled adversary because it cannot forge the second valid value
//! a same-round double-relay would be needed for.
//!
//! **Overhead:** `f + 1` rounds. Fault-free, `(n−1) + (n−1)²` messages
//! (`n−1` for `f = 0`): the source's round-0 broadcast of
//! `width + id_width + TAG_BITS` bits and, for `f ≥ 1`, one relay
//! broadcast per non-source node of `width + 2(id_width + TAG_BITS)`
//! bits. Chain signatures ride *inside* the payload (charged to
//! `RunStats.bits`); the engine's envelope tags land in `auth_bits`.
//! [`dolev_strong_overhead`] prices this analytically and is asserted
//! against simulation field by field.

use std::collections::{BTreeSet, VecDeque};

use cliquesim::{
    strip_tag, AuthKeyring, BitString, ByzantineOutcome, Inbox, NodeCtx, NodeId, NodeProgram,
    Outbox, RunStats, Session, SimError, Status, TAG_BITS,
};

/// Round context for chain signatures: a constant no engine round
/// reaches (the engine's default round cap is far below it), so a chain
/// entry stays verifiable in every round without colliding with the
/// engine's per-round envelope tags.
const CHAIN_CONTEXT: usize = usize::MAX;

/// Sign the chain content `(source, value)` as `signer`.
fn chain_sig(
    keyring: &AuthKeyring,
    signer: NodeId,
    source: NodeId,
    value: u64,
    width: usize,
    id_width: usize,
) -> u64 {
    let mut content = BitString::new();
    content.push_uint(source.0 as u64, id_width);
    content.push_uint(value, width);
    keyring.sign(signer, CHAIN_CONTEXT, &content)
}

/// A parsed and fully validated signature chain.
struct ValidChain {
    value: u64,
    signers: Vec<u32>,
}

/// Parse `payload` as `[value ‖ k × (signer, sig)]` and validate every
/// chain rule except the round threshold (checked by the caller): at
/// least one entry, signers in range and pairwise distinct, first signer
/// the source, every signature valid for `(source, value)`.
fn parse_chain(
    payload: &BitString,
    keyring: &AuthKeyring,
    source: NodeId,
    width: usize,
    id_width: usize,
    n: usize,
) -> Option<ValidChain> {
    let entry = id_width + TAG_BITS;
    if payload.len() < width + entry || !(payload.len() - width).is_multiple_of(entry) {
        return None;
    }
    let k = (payload.len() - width) / entry;
    let mut r = payload.reader();
    let value = r.read_uint(width).ok()?;
    let mut signers: Vec<u32> = Vec::with_capacity(k);
    for _ in 0..k {
        let signer = r.read_uint(id_width).ok()?;
        let sig = r.read_uint(TAG_BITS).ok()?;
        if signer as usize >= n || signers.contains(&(signer as u32)) {
            return None;
        }
        let signer_id = NodeId(signer as u32);
        if chain_sig(keyring, signer_id, source, value, width, id_width) != sig {
            return None;
        }
        signers.push(signer as u32);
    }
    if signers.first() != Some(&source.0) {
        return None;
    }
    Some(ValidChain { value, signers })
}

/// One node's program for Dolev–Strong authenticated broadcast. See the
/// module docs for the schedule and guarantees.
///
/// Requires an engine with the same [`AuthKeyring`] attached (the
/// [`dolev_strong_broadcast`] wrapper enforces this): inbox frames carry
/// the engine's envelope tag, which this program strips before parsing
/// the chain — a frame that failed envelope verification never arrives
/// at all.
///
/// Rendering simplification: at most one newly-extracted value is
/// relayed per round (one message per link per round), at most two in
/// total (a third value cannot change a decision that is already
/// `None`). Under the modeled adversary this loses nothing — forging
/// the *second* validly-signed value that a same-round double-relay
/// would propagate requires minting a signature the adversary does not
/// have.
#[derive(Clone, Debug)]
pub struct DolevStrongBroadcast {
    source: NodeId,
    /// The source's input; ignored on other nodes.
    value: u64,
    width: usize,
    f: usize,
    keyring: AuthKeyring,
    n: usize,
    id_width: usize,
    /// Values extracted so far (accepted via a valid, on-time chain).
    extracted: BTreeSet<u64>,
    /// Relay frames queued for the next send opportunity.
    pending: VecDeque<BitString>,
    /// Relays actually sent (capped at 2, see above).
    relays_sent: usize,
}

impl DolevStrongBroadcast {
    /// Program for one node: `source`'s `width`-bit `value` is broadcast
    /// tolerating up to `f` Byzantine senders, under `keyring` — which
    /// must be the engine's keyring for the chains to verify.
    pub fn new(source: NodeId, value: u64, width: usize, f: usize, keyring: AuthKeyring) -> Self {
        assert!((1..=62).contains(&width), "width {width} out of range");
        Self {
            source,
            value,
            width,
            f,
            keyring,
            n: 0,
            id_width: 0,
            extracted: BTreeSet::new(),
            pending: VecDeque::new(),
            relays_sent: 0,
        }
    }

    /// Absorb the round's inbox: accept chains meeting this round's
    /// threshold, extract their values, and queue countersigned relays
    /// for values seen for the first time.
    fn absorb(&mut self, ctx: &NodeCtx, round: usize, inbox: &Inbox<'_>) {
        for (_, frame) in inbox.iter() {
            // The envelope already authenticated (sender, engine round);
            // the chain inside authenticates (source, value) transitively.
            let Some(payload) = strip_tag(frame) else {
                continue;
            };
            let Some(chain) = parse_chain(
                &payload,
                &self.keyring,
                self.source,
                self.width,
                self.id_width,
                self.n,
            ) else {
                continue;
            };
            if chain.signers.len() < round {
                continue; // Too few signatures for this round: stale.
            }
            if !self.extracted.insert(chain.value) {
                continue; // Already extracted; nothing new to relay.
            }
            let relay_budget = self.relays_sent + self.pending.len() < 2;
            if round <= self.f && relay_budget && !chain.signers.contains(&ctx.id.0) {
                let mut relay = payload.clone();
                relay.push_uint(ctx.id.0 as u64, self.id_width);
                relay.push_uint(
                    chain_sig(
                        &self.keyring,
                        ctx.id,
                        self.source,
                        chain.value,
                        self.width,
                        self.id_width,
                    ),
                    TAG_BITS,
                );
                self.pending.push_back(relay);
            }
        }
    }
}

impl NodeProgram for DolevStrongBroadcast {
    type Output = Option<u64>;

    fn init(&mut self, ctx: &NodeCtx) {
        self.n = ctx.n;
        self.id_width = BitString::width_for(ctx.n);
    }

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<Self::Output> {
        if round > 0 {
            self.absorb(ctx, round, inbox);
        }
        if round > self.f {
            // Decision round f + 1: exactly one extracted value is a
            // delivery; zero or several is the agreed-upon ⊥.
            let decision = match self.extracted.len() {
                1 => self.extracted.iter().next().copied(),
                _ => None,
            };
            return Status::Halt(decision);
        }
        if round == 0 {
            if ctx.id == self.source {
                self.extracted.insert(self.value);
                let mut init = BitString::new();
                init.push_uint(self.value, self.width);
                init.push_uint(self.source.0 as u64, self.id_width);
                init.push_uint(
                    chain_sig(
                        &self.keyring,
                        self.source,
                        self.source,
                        self.value,
                        self.width,
                        self.id_width,
                    ),
                    TAG_BITS,
                );
                outbox.broadcast(&init);
            }
        } else if let Some(relay) = self.pending.pop_front() {
            self.relays_sent += 1;
            outbox.broadcast(&relay);
        }
        Status::Continue
    }
}

/// Largest chain frame a run with parameters `(n, f, width)` can carry
/// (a chain of `f + 1` entries), excluding the engine's envelope tag.
fn max_frame_bits(n: usize, f: usize, width: usize) -> usize {
    width + (f + 1) * (BitString::width_for(n) + TAG_BITS)
}

/// Run [`DolevStrongBroadcast`] as one session phase in the
/// honest-majority regime `f < n/2` — the tolerance the workspace's
/// seeded acceptance sweep pins (Bracha stops at `f < n/3`; see
/// docs/THREAT-MODEL.md). Use [`dolev_strong_broadcast_classic`] for the
/// full `f < n` range of the classic result. Agreement should be
/// asserted with [`ByzantineOutcome::honest_unanimous`].
///
/// Panics if the session's engine has no keyring, if `f ≥ n/2`, or if
/// the engine bandwidth cannot carry a full `f + 1`-entry chain.
pub fn dolev_strong_broadcast(
    session: &mut Session,
    source: NodeId,
    value: u64,
    width: usize,
    f: usize,
) -> Result<ByzantineOutcome<Option<u64>>, SimError> {
    let n = session.n();
    assert!(
        2 * f < n,
        "dolev_strong_broadcast covers the honest-majority regime f < n/2 \
         (got n={n}, f={f}); use dolev_strong_broadcast_classic for f < n"
    );
    dolev_strong_broadcast_classic(session, source, value, width, f)
}

/// Run [`DolevStrongBroadcast`] for any `f < n` — the classic
/// Dolev–Strong tolerance. With signatures, agreement needs no honest
/// majority at all; the permissive wrapper exists so tests can pin the
/// claim, while [`dolev_strong_broadcast`] documents the regime the
/// acceptance sweep covers.
///
/// Panics if the session's engine has no keyring, if `f ≥ n`, or if the
/// engine bandwidth cannot carry a full `f + 1`-entry chain.
pub fn dolev_strong_broadcast_classic(
    session: &mut Session,
    source: NodeId,
    value: u64,
    width: usize,
    f: usize,
) -> Result<ByzantineOutcome<Option<u64>>, SimError> {
    let n = session.n();
    assert!(f < n, "f={f} traitors need at least f+1={} nodes", f + 1);
    let keyring = session
        .keyring()
        .unwrap_or_else(|| {
            panic!("dolev_strong_broadcast needs an engine keyring (Engine::with_auth)")
        })
        .clone();
    let frame = max_frame_bits(n, f, width);
    assert!(
        frame <= session.bandwidth(),
        "an f+1-entry chain needs {frame} bits but the engine bandwidth is {}",
        session.bandwidth()
    );
    let programs = (0..n)
        .map(|_| DolevStrongBroadcast::new(source, value, width, f, keyring.clone()))
        .collect();
    session.run_byzantine(programs)
}

/// Analytic cost of one fault-free [`DolevStrongBroadcast`] phase, for
/// [`Session::charge`]: `f + 1` rounds; the source's round-0 broadcast
/// (`n − 1` one-entry frames) plus, for `f ≥ 1`, one two-entry relay
/// broadcast per non-source node (`(n − 1)²` frames). Every copy is
/// envelope-signed, so `signed_messages = messages` and
/// `auth_bits = messages · TAG_BITS`; adversaries only ever *remove*
/// messages from this bound. Asserted against simulation field by field
/// in this module's tests and `tests/auth_suite.rs`.
pub fn dolev_strong_overhead(n: usize, f: usize, width: usize) -> RunStats {
    let entry = (BitString::width_for(n) + TAG_BITS) as u64;
    let frame1 = width as u64 + entry;
    let frame2 = width as u64 + 2 * entry;
    let init_msgs = n as u64 - 1;
    let relay_msgs = if f == 0 { 0 } else { init_msgs * init_msgs };
    let messages = init_msgs + relay_msgs;
    let bits = init_msgs * frame1 + relay_msgs * frame2;
    let max_message_bits = if relay_msgs > 0 {
        frame2 as usize
    } else if init_msgs > 0 {
        frame1 as usize
    } else {
        0
    };
    // Busiest boundary: the INIT round still live in one buffer while the
    // relay round fills the other (for f = 0, the INIT round alone).
    let peak_bits = init_msgs * frame1 + relay_msgs * frame2;
    RunStats {
        rounds: f + 1,
        messages,
        bits,
        max_message_bits,
        peak_live_payload_bytes: (peak_bits as usize).div_ceil(8),
        signed_messages: messages,
        auth_bits: messages * TAG_BITS as u64,
        ..RunStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesim::{ByzantinePlan, Engine, Lie};

    const WIDTH: usize = 8;
    const VALUE: u64 = 0xAB;

    fn engine(n: usize, f: usize, seed: u64) -> Engine {
        Engine::new(n)
            .with_auth(AuthKeyring::from_seed(n, seed))
            .with_bandwidth(max_frame_bits(n, f, WIDTH))
    }

    #[test]
    fn fault_free_dolev_strong_delivers_to_everyone() {
        for (n, f) in [(6, 0), (6, 2), (9, 4)] {
            let mut session = Session::new(engine(n, f, 7));
            let out = dolev_strong_broadcast(&mut session, NodeId(2), VALUE, WIDTH, f).unwrap();
            assert_eq!(out.outputs, vec![Some(Some(VALUE)); n], "n={n} f={f}");
            let predicted = dolev_strong_overhead(n, f, WIDTH);
            let got = out.stats;
            assert_eq!(got.rounds, predicted.rounds, "rounds n={n} f={f}");
            assert_eq!(got.messages, predicted.messages, "messages n={n} f={f}");
            assert_eq!(got.bits, predicted.bits, "bits n={n} f={f}");
            assert_eq!(
                got.max_message_bits, predicted.max_message_bits,
                "max_message_bits n={n} f={f}"
            );
            assert_eq!(
                got.peak_live_payload_bytes, predicted.peak_live_payload_bytes,
                "peak n={n} f={f}"
            );
            assert_eq!(
                got.signed_messages, predicted.signed_messages,
                "signed n={n} f={f}"
            );
            assert_eq!(got.auth_bits, predicted.auth_bits, "auth_bits n={n} f={f}");
            assert_eq!(got.rejected_tags, 0, "honest traffic never fails");
            assert_eq!(got.undelivered_messages, 0);
        }
    }

    #[test]
    fn garbling_traitors_cannot_break_agreement_on_an_honest_source() {
        // f = 4 traitors out of n = 9 — far beyond Bracha's n/3 ceiling.
        let n = 9;
        let f = 4;
        let plan = ByzantinePlan::new(404)
            .with_random_traitors(n, f, &[NodeId(0)])
            .garble(1.0)
            .silence(0.3);
        let mut session = Session::new(engine(n, f, 42).with_byzantine_plan(plan.clone()));
        let out = dolev_strong_broadcast(&mut session, NodeId(0), VALUE, WIDTH, f).unwrap();
        assert_eq!(
            out.honest_unanimous(&plan),
            Some(&Some(VALUE)),
            "honest nodes must deliver the honest source's value"
        );
    }

    #[test]
    fn classic_variant_agrees_with_a_traitor_majority() {
        // f = 5 of n = 7 traitors: impossible unauthenticated, fine here.
        let n = 7;
        let f = 5;
        let plan = ByzantinePlan::new(1313)
            .with_random_traitors(n, f, &[NodeId(3)])
            .garble(0.8)
            .silence(0.5);
        let mut session = Session::new(
            Engine::new(n)
                .with_auth(AuthKeyring::from_seed(n, 9))
                .with_bandwidth(max_frame_bits(n, f, WIDTH))
                .with_byzantine_plan(plan.clone()),
        );
        let out = dolev_strong_broadcast_classic(&mut session, NodeId(3), VALUE, WIDTH, f).unwrap();
        assert_eq!(out.honest_unanimous(&plan), Some(&Some(VALUE)));
    }

    #[test]
    fn a_silent_traitor_source_yields_unanimous_none() {
        let n = 8;
        let f = 3;
        let plan = ByzantinePlan::new(55)
            .traitor(NodeId(1))
            .force(0, NodeId(1), NodeId(2), Lie::Silence)
            .silence(1.0);
        let mut session = Session::new(engine(n, f, 3).with_byzantine_plan(plan.clone()));
        let out = dolev_strong_broadcast(&mut session, NodeId(1), VALUE, WIDTH, f).unwrap();
        // The traitor source sends nothing usable; every honest node must
        // land on the same ⊥ — agreement without validity.
        assert_eq!(out.honest_unanimous(&plan), Some(&None));
    }

    #[test]
    fn stale_chains_are_rejected_by_the_round_threshold() {
        // A one-entry chain parsed at round 2 is stale (threshold 2).
        let n = 5;
        let keyring = AuthKeyring::from_seed(n, 1);
        let mut payload = BitString::new();
        payload.push_uint(VALUE, WIDTH);
        payload.push_uint(0, BitString::width_for(n));
        payload.push_uint(
            chain_sig(
                &keyring,
                NodeId(0),
                NodeId(0),
                VALUE,
                WIDTH,
                BitString::width_for(n),
            ),
            TAG_BITS,
        );
        let chain = parse_chain(
            &payload,
            &keyring,
            NodeId(0),
            WIDTH,
            BitString::width_for(n),
            n,
        )
        .unwrap();
        assert_eq!(chain.value, VALUE);
        assert_eq!(chain.signers, vec![0]);
        assert!(chain.signers.len() < 2, "round-2 threshold rejects it");

        // Tampered value: the source signature no longer verifies.
        let mut bent = BitString::new();
        bent.push_uint(VALUE ^ 1, WIDTH);
        let mut r = payload.reader();
        r.skip(WIDTH).unwrap();
        bent.push_uint(
            r.read_uint(BitString::width_for(n)).unwrap(),
            BitString::width_for(n),
        );
        bent.push_uint(r.read_uint(TAG_BITS).unwrap(), TAG_BITS);
        assert!(parse_chain(
            &bent,
            &keyring,
            NodeId(0),
            WIDTH,
            BitString::width_for(n),
            n
        )
        .is_none());
    }

    #[test]
    #[should_panic(expected = "honest-majority regime")]
    fn default_wrapper_rejects_f_at_or_beyond_half() {
        let n = 6;
        let f = 3;
        let mut session = Session::new(engine(n, f, 1));
        let _ = dolev_strong_broadcast(&mut session, NodeId(0), VALUE, WIDTH, f);
    }

    #[test]
    #[should_panic(expected = "needs an engine keyring")]
    fn wrapper_rejects_an_unauthenticated_engine() {
        let mut session = Session::new(Engine::new(6).with_bandwidth(128));
        let _ = dolev_strong_broadcast(&mut session, NodeId(0), VALUE, WIDTH, 1);
    }
}
