//! Crash-tolerant aggregation by idempotent gossip.
//!
//! **Guarantee**: `max` is idempotent and monotone, so crashes, drops, and
//! duplicate deliveries can only delay convergence, never corrupt a correct
//! estimate downwards; with `r` rounds any value can hop `r` links around
//! failures.
//!
//! **Fault assumptions**: crash-stop and message-drop faults
//! ([`cliquesim::FaultPlan`]) with honest senders and intact payloads.
//! Corruption or a Byzantine sender can forge a too-large value that `max`
//! then propagates forever — for that tier use
//! [`crate::byzantine_max_gossip`], which gates every value behind a
//! reliable-broadcast quorum.
//!
//! **Overhead**: `r` rounds and at most `r·n(n-1)` messages of `width`
//! bits; one round suffices fault-free.

use cliquesim::{FaultedOutcome, Inbox, NodeCtx, NodeProgram, Outbox, Session, SimError, Status};

use crate::{decode_exact, encode};

/// Gossip the maximum of all inputs for a fixed number of rounds.
///
/// Every round each node broadcasts its current estimate and absorbs the
/// maximum of what it hears. Because `max` is idempotent and monotone, the
/// primitive degrades gracefully: crashes and drops can only delay
/// convergence, never corrupt a correct estimate downwards, and duplicated
/// deliveries are harmless. On a fault-free clique one round suffices; each
/// extra round lets estimates hop around failed links or dead nodes.
///
/// Corruption is the one adversary this primitive does *not* absorb: a
/// bit-flip can forge a too-large value that `max` then propagates. Pair it
/// with [`crate::RepeatBroadcast`]-style voting when links corrupt.
#[derive(Clone, Debug)]
pub struct MaxGossip {
    estimate: u64,
    width: usize,
    rounds: usize,
}

impl MaxGossip {
    /// Program for one node with local input `value` (`width` bits),
    /// gossiping for `rounds` rounds.
    pub fn new(value: u64, width: usize, rounds: usize) -> Self {
        assert!((1..=64).contains(&width), "width {width} out of range");
        assert!(rounds >= 1, "gossip needs at least one round");
        Self {
            estimate: value,
            width,
            rounds,
        }
    }
}

impl NodeProgram for MaxGossip {
    type Output = u64;

    fn step(
        &mut self,
        _ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<Self::Output> {
        for (_, m) in inbox.iter() {
            if let Some(v) = decode_exact(m, self.width) {
                self.estimate = self.estimate.max(v);
            }
        }
        if round < self.rounds {
            outbox.broadcast(&encode(self.estimate, self.width));
            return Status::Continue;
        }
        Status::Halt(self.estimate)
    }
}

/// Run [`MaxGossip`] as one session phase; `values[v]` is node `v`'s input.
pub fn max_gossip(
    session: &mut Session,
    values: &[u64],
    width: usize,
    rounds: usize,
) -> Result<FaultedOutcome<u64>, SimError> {
    assert_eq!(values.len(), session.n(), "one value per node");
    assert!(
        width <= session.bandwidth(),
        "value of {width} bits exceeds the engine bandwidth of {}",
        session.bandwidth()
    );
    let programs = values
        .iter()
        .map(|&v| MaxGossip::new(v, width, rounds))
        .collect();
    session.run_faulted(programs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesim::{Engine, FaultPlan, NodeId};

    #[test]
    fn one_round_suffices_without_faults() {
        let n = 6;
        let mut session = Session::new(Engine::new(n).with_bandwidth(8));
        let values = [3u64, 99, 7, 12, 0, 42];
        let out = max_gossip(&mut session, &values, 8, 1).unwrap();
        assert_eq!(out.unanimous(), Some(&99));
        assert_eq!(out.stats.rounds, 1);
    }

    #[test]
    fn survivors_agree_despite_a_crashed_maximum_holder() {
        // Node 1 holds the maximum and crashes right after its first
        // broadcast; the value still spreads because every survivor
        // re-gossips it.
        let n = 6;
        let values = [3u64, 99, 7, 12, 0, 42];
        let mut session = Session::new(
            Engine::new(n)
                .with_bandwidth(8)
                .with_fault_plan(FaultPlan::new(0).crash(NodeId(1), 1)),
        );
        let out = max_gossip(&mut session, &values, 8, 3).unwrap();
        assert_eq!(out.unanimous(), Some(&99));
        assert!(out.outputs[1].is_none());
        assert_eq!(out.stats.dead_nodes, 1);
    }
}
