//! # cc-resilient — fault-tolerant protocol wrappers
//!
//! The paper's model is fault-free, and every algorithm crate in this
//! workspace is written against that idealisation. This crate provides the
//! complementary layer: small, composable primitives that keep working when
//! the engine's [`cliquesim::FaultPlan`] adversary crashes nodes, drops
//! messages, or damages payloads — at a measured cost in extra rounds and
//! bits that shows up honestly in [`cliquesim::RunStats`].
//!
//! The primitives form a ladder, one per adversary tier (the full map with
//! guarantees and overheads is `docs/THREAT-MODEL.md` at the workspace
//! root):
//!
//! * [`EchoBroadcast`] — one node's value reaches every *surviving* node
//!   despite `f < n/3` crash faults, via a one-round echo and majority vote.
//! * [`RepeatBroadcast`] — all-to-all exchange that survives per-link
//!   message drop and corruption by repeating each broadcast `k` times and
//!   taking a per-link majority; [`retry_overhead`] prices extra repeats
//!   analytically for [`cliquesim::Session::charge`].
//! * [`MaxGossip`] — a crash- and drop-tolerant idempotent aggregation
//!   (maximum); extra gossip rounds only improve coverage, never change a
//!   correct value.
//! * [`BrachaBroadcast`] — Bracha-style reliable broadcast: unanimous
//!   delivery among honest nodes despite `f < n/3` *Byzantine* senders
//!   ([`cliquesim::ByzantinePlan`]), at a cost of `2f + 6` rounds;
//!   [`bracha_overhead`] prices it for [`cliquesim::Session::charge`].
//! * [`byzantine_max_gossip`] — Byzantine-tolerant maximum via `n`
//!   sequential Bracha phases (`n(2f + 6)` rounds).
//! * [`DolevStrongBroadcast`] — *authenticated* reliable broadcast over
//!   cliquesim's signed-message envelope ([`cliquesim::AuthKeyring`]):
//!   signature chains buy honest agreement past Bracha's `f < n/3` ceiling
//!   in only `f + 1` rounds — [`dolev_strong_broadcast`] covers the
//!   honest-majority regime `f < n/2` the acceptance sweep pins, and
//!   [`dolev_strong_broadcast_classic`] the full classic range `f < n`;
//!   [`dolev_strong_overhead`] prices it for [`cliquesim::Session::charge`].
//! * [`equivocation_accusation`] — upgrades two conflicting signed claims
//!   into a transferable [`EquivocationProof`] that convicts an equivocator
//!   to any third party holding the keyring.
//!
//! The first three do **not** tolerate Byzantine senders: a traitor that
//! equivocates — sends different payloads to different peers — makes every
//! copy on a link agree and still lie, so per-link majorities are forged by
//! a single traitor (`cc-testkit`'s `equivocation_witness` demonstrates
//! this against [`RepeatBroadcast`]). That tier needs the quorum layer —
//! and the quorum layer in turn stops at `f < n/3`, which only the
//! authenticated tier moves past.

#![deny(missing_docs)]

mod accusation;
mod aggregate;
mod bracha;
mod dolev_strong;
mod echo;
mod retransmit;

pub use accusation::{equivocation_accusation, AccusationError, EquivocationProof, SignedClaim};
pub use aggregate::{max_gossip, MaxGossip};
pub use bracha::{bracha_broadcast, bracha_overhead, byzantine_max_gossip, BrachaBroadcast};
pub use dolev_strong::{
    dolev_strong_broadcast, dolev_strong_broadcast_classic, dolev_strong_overhead,
    DolevStrongBroadcast,
};
pub use echo::{echo_broadcast, EchoBroadcast};
pub use retransmit::{repeat_broadcast, retry_overhead, RepeatBroadcast};

use cliquesim::BitString;

/// Decode a `width`-bit value from a (possibly damaged) payload. Returns
/// `None` for anything that is not *exactly* `width` bits — a truncated
/// frame never smuggles a short value into the vote.
pub(crate) fn decode_exact(msg: &BitString, width: usize) -> Option<u64> {
    if msg.len() != width {
        return None;
    }
    msg.reader().read_uint(width).ok()
}

/// Encode a `width`-bit value.
pub(crate) fn encode(value: u64, width: usize) -> BitString {
    let mut m = BitString::new();
    m.push_uint(value, width);
    m
}

/// Majority vote over raw payload copies: the most frequent bit string
/// wins, ties broken towards the lexicographically smallest (with a proper
/// prefix ordered before its extensions). Returns `None` for an empty
/// slice. This is the per-chunk vote `cc-routing`'s retransmitting
/// `route_resilient` takes over the `k` copies of each stream chunk, and
/// it follows the same deterministic tie-break discipline as the scalar
/// `majority` vote so all correct nodes agree on the winner.
pub fn majority_payload(copies: &[BitString]) -> Option<BitString> {
    let mut counts: std::collections::BTreeMap<Vec<bool>, usize> =
        std::collections::BTreeMap::new();
    for c in copies {
        *counts.entry(c.iter().collect()).or_insert(0) += 1;
    }
    // Ascending key order + strict `>` keeps the smallest among ties.
    let mut best: Option<(Vec<bool>, usize)> = None;
    for (v, c) in counts {
        if best.as_ref().is_none_or(|(_, bc)| c > *bc) {
            best = Some((v, c));
        }
    }
    best.map(|(bits, _)| bits.into_iter().collect())
}

/// Majority vote over candidate values: the most frequent value wins, ties
/// broken towards the smallest value (a deterministic rule shared by every
/// primitive here, so all correct nodes break ties identically).
pub(crate) fn majority(copies: &[u64]) -> Option<u64> {
    let mut counts: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    for &c in copies {
        *counts.entry(c).or_insert(0) += 1;
    }
    // BTreeMap iterates in ascending key order, so `>` keeps the smallest
    // among equally-frequent values.
    let mut best: Option<(u64, usize)> = None;
    for (v, c) in counts {
        if best.is_none_or(|(_, bc)| c > bc) {
            best = Some((v, c));
        }
    }
    best.map(|(v, _)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_prefers_frequency_then_smallness() {
        assert_eq!(majority(&[]), None);
        assert_eq!(majority(&[5]), Some(5));
        assert_eq!(majority(&[5, 3, 5]), Some(5));
        assert_eq!(majority(&[7, 3, 3, 7]), Some(3), "tie goes to the smaller");
    }

    #[test]
    fn majority_payload_prefers_frequency_then_lex_order() {
        let a = BitString::from_bits([true, false]);
        let b = BitString::from_bits([false, true]);
        assert_eq!(majority_payload(&[]), None);
        assert_eq!(majority_payload(std::slice::from_ref(&a)), Some(a.clone()));
        assert_eq!(
            majority_payload(&[a.clone(), b.clone(), a.clone()]),
            Some(a.clone())
        );
        assert_eq!(
            majority_payload(&[a.clone(), b.clone()]),
            Some(b.clone()),
            "tie goes to the lexicographically smaller string"
        );
        let short = BitString::from_bits([true]);
        assert_eq!(
            majority_payload(&[a, short.clone()]),
            Some(short),
            "a proper prefix orders before its extensions"
        );
        assert_eq!(
            majority_payload(&[BitString::new(), BitString::new()]),
            Some(BitString::new()),
            "empty copies are a legitimate (empty-chunk) winner"
        );
    }

    #[test]
    fn decode_exact_rejects_wrong_lengths() {
        let m = encode(13, 5);
        assert_eq!(decode_exact(&m, 5), Some(13));
        assert_eq!(decode_exact(&m, 4), None, "width mismatch");
        let mut t = m.clone();
        t.truncate(3);
        assert_eq!(decode_exact(&t, 5), None, "truncated frame");
        assert_eq!(decode_exact(&BitString::new(), 5), None);
    }
}
