//! Crash-tolerant single-source broadcast via echo and majority vote.
//!
//! **Guarantee**: if the source survives round 0 (or any node that received
//! the direct copy survives round 1), every surviving node outputs
//! `Some(value)`; a node that never sees a copy outputs `None` rather than
//! guessing.
//!
//! **Fault assumptions**: crash-stop nodes and (for the majority step)
//! per-link corruption with `f < n/3` faults, per [`cliquesim::FaultPlan`].
//! The sender is trusted — a Byzantine source defeats the vote; use
//! [`crate::BrachaBroadcast`] for that tier.
//!
//! **Overhead**: exactly 2 rounds and up to `(n-1)(n+1)` messages of
//! `width` bits — one echo round over the one-round bare broadcast.

use cliquesim::{
    FaultedOutcome, Inbox, NodeCtx, NodeId, NodeProgram, Outbox, Session, SimError, Status,
};

use crate::{decode_exact, encode, majority};

/// Echo-broadcast: the source's `width`-bit value reaches every surviving
/// node in two communication rounds despite crash faults.
///
/// * Round 0 — the source broadcasts its value.
/// * Round 1 — every node that holds a copy (the source included)
///   echo-broadcasts it.
/// * Round 2 — every node majority-votes over its direct copy plus all
///   echoes (ties to the smallest value) and halts.
///
/// **Guarantee** (crash-stop faults): if the source survives round 0, or at
/// least one node both received the direct copy and survived round 1, every
/// surviving node outputs `Some(value)`. Under `f < n/3` crashes the vote
/// also has a 2-to-1 honest majority against *corrupted* echoes, since a
/// corrupted copy must out-vote `n - 1 - f` intact ones. A node that never
/// sees any copy outputs `None` rather than guessing.
///
/// Cost: two communication rounds and up to `(n-1)(n+1)` messages of
/// `width` bits — the overhead over a bare one-round broadcast is exactly
/// the echo round, visible in [`cliquesim::RunStats`].
#[derive(Clone, Debug)]
pub struct EchoBroadcast {
    source: NodeId,
    /// The source's input; ignored on other nodes.
    value: u64,
    width: usize,
    copy: Option<u64>,
}

impl EchoBroadcast {
    /// Program for one node. `value` is only read on the source node.
    pub fn new(source: NodeId, value: u64, width: usize) -> Self {
        assert!((1..=64).contains(&width), "width {width} out of range");
        Self {
            source,
            value,
            width,
            copy: None,
        }
    }
}

impl NodeProgram for EchoBroadcast {
    type Output = Option<u64>;

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<Self::Output> {
        match round {
            0 => {
                if ctx.id == self.source {
                    self.copy = Some(self.value);
                    outbox.broadcast(&encode(self.value, self.width));
                }
                Status::Continue
            }
            1 => {
                if ctx.id != self.source {
                    self.copy = decode_exact(inbox.from(self.source), self.width);
                }
                if let Some(v) = self.copy {
                    outbox.broadcast(&encode(v, self.width));
                }
                Status::Continue
            }
            _ => {
                let mut copies: Vec<u64> = inbox
                    .iter()
                    .filter_map(|(_, m)| decode_exact(m, self.width))
                    .collect();
                copies.extend(self.copy);
                Status::Halt(majority(&copies))
            }
        }
    }
}

/// Run [`EchoBroadcast`] as one session phase: `source`'s `width`-bit
/// `value` is voted to every surviving node. Crashed nodes report `None`
/// slots in the outcome; the phase's rounds/bits/fault counters land in the
/// session ledger.
pub fn echo_broadcast(
    session: &mut Session,
    source: NodeId,
    value: u64,
    width: usize,
) -> Result<FaultedOutcome<Option<u64>>, SimError> {
    assert!(
        width <= session.bandwidth(),
        "echo value of {width} bits exceeds the engine bandwidth of {}",
        session.bandwidth()
    );
    let n = session.n();
    let programs = (0..n)
        .map(|_| EchoBroadcast::new(source, value, width))
        .collect();
    session.run_faulted(programs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesim::Engine;

    #[test]
    fn fault_free_echo_reaches_everyone() {
        let n = 7;
        let mut session = Session::new(Engine::new(n).with_bandwidth(8));
        let out = echo_broadcast(&mut session, NodeId(2), 0xA5, 8).unwrap();
        assert_eq!(out.unanimous(), Some(&Some(0xA5)));
        assert_eq!(out.stats.rounds, 2, "broadcast + echo exchanges");
        assert!(out.faults.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds the engine bandwidth")]
    fn echo_rejects_overwide_values() {
        let mut session = Session::new(Engine::new(4));
        let _ = echo_broadcast(&mut session, NodeId(0), 1, 40);
    }
}
