//! Drop-tolerant all-to-all exchange via k-fold retransmission.
//!
//! **Guarantee**: a link's exchange fails only if all `k` copies on it are
//! lost (probability `p^k` under independent drop `p`), and a corrupted
//! copy is outvoted while a majority of copies on the link arrive intact.
//!
//! **Fault assumptions**: oblivious per-link drop/corrupt/truncate faults
//! ([`cliquesim::FaultPlan`]) with *honest senders*. A Byzantine sender
//! defeats this primitive outright: every copy on a link carries the same
//! per-recipient lie, so the per-link majority votes unanimously for a
//! forgery (`cc-testkit`'s `equivocation_witness` exhibits this).
//!
//! **Overhead**: `k` rounds and `k·n(n-1)` messages of `width` bits — a
//! factor `k` over the one-round exchange; [`retry_overhead`] prices extra
//! repeats analytically.

use cliquesim::{
    FaultedOutcome, Inbox, NodeCtx, NodeProgram, Outbox, RunStats, Session, SimError, Status,
};

use crate::{decode_exact, encode, majority};

/// All-to-all broadcast repeated `repeats` times, with a per-link majority
/// vote: every node ends up with its best estimate of every other node's
/// `width`-bit value.
///
/// A link loses the exchange only if *all* `repeats` copies on it are
/// dropped (probability `p^k` under independent per-message drop `p`), and
/// a corrupted copy is outvoted as long as most copies on that link arrive
/// intact. The output is one slot per peer: `Some(majority)` or `None` when
/// nothing decodable ever arrived on that link; a node's own slot holds its
/// own value.
#[derive(Clone, Debug)]
pub struct RepeatBroadcast {
    value: u64,
    width: usize,
    repeats: usize,
    /// `copies[u]` = decodable values received from node `u` so far.
    copies: Vec<Vec<u64>>,
}

impl RepeatBroadcast {
    /// Program for one node broadcasting `value` (`width` bits) `repeats`
    /// times.
    pub fn new(value: u64, width: usize, repeats: usize) -> Self {
        assert!((1..=64).contains(&width), "width {width} out of range");
        assert!(repeats >= 1, "at least one transmission is required");
        Self {
            value,
            width,
            repeats,
            copies: Vec::new(),
        }
    }

    fn absorb(&mut self, inbox: &Inbox<'_>) {
        for (u, m) in inbox.iter() {
            if let Some(v) = decode_exact(m, self.width) {
                self.copies[u.index()].push(v);
            }
        }
    }
}

impl NodeProgram for RepeatBroadcast {
    type Output = Vec<Option<u64>>;

    fn init(&mut self, ctx: &NodeCtx) {
        self.copies = vec![Vec::new(); ctx.n];
    }

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<Self::Output> {
        if round > 0 {
            self.absorb(inbox);
        }
        if round < self.repeats {
            outbox.broadcast(&encode(self.value, self.width));
            return Status::Continue;
        }
        let me = ctx.id.index();
        let decided = self
            .copies
            .iter()
            .enumerate()
            .map(|(u, c)| {
                if u == me {
                    Some(self.value)
                } else {
                    majority(c)
                }
            })
            .collect();
        Status::Halt(decided)
    }
}

/// Run [`RepeatBroadcast`] as one session phase; `values[v]` is node `v`'s
/// input.
pub fn repeat_broadcast(
    session: &mut Session,
    values: &[u64],
    width: usize,
    repeats: usize,
) -> Result<FaultedOutcome<Vec<Option<u64>>>, SimError> {
    assert_eq!(values.len(), session.n(), "one value per node");
    assert!(
        width <= session.bandwidth(),
        "value of {width} bits exceeds the engine bandwidth of {}",
        session.bandwidth()
    );
    let programs = values
        .iter()
        .map(|&v| RepeatBroadcast::new(v, width, repeats))
        .collect();
    session.run_faulted(programs)
}

/// Analytic round-budget for `extra` additional retransmissions of a phase
/// that cost `base`: every model-level quantity scales linearly (each rerun
/// resends everything). Pass the result to [`Session::charge`] when the
/// retries are accounted rather than simulated — e.g. pricing a retry
/// budget for a phase whose fault-free transcript is already known.
pub fn retry_overhead(base: &RunStats, extra: usize) -> RunStats {
    let k = extra as u64;
    RunStats {
        rounds: base.rounds * extra,
        messages: base.messages * k,
        bits: base.bits * k,
        max_message_bits: base.max_message_bits,
        peak_live_payload_bytes: base.peak_live_payload_bytes,
        ..RunStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesim::{Engine, FaultPlan};

    #[test]
    fn fault_free_exchange_learns_everyone() {
        let n = 5;
        let mut session = Session::new(Engine::new(n).with_bandwidth(8));
        let values: Vec<u64> = (0..n as u64).map(|v| v * 3).collect();
        let out = repeat_broadcast(&mut session, &values, 8, 2).unwrap();
        let expect: Vec<Option<u64>> = values.iter().map(|&v| Some(v)).collect();
        for (v, got) in out.outputs.iter().enumerate() {
            assert_eq!(got.as_ref().unwrap(), &expect, "node {v}");
        }
        assert_eq!(out.stats.rounds, 2);
    }

    #[test]
    fn repetition_beats_a_lossy_link() {
        // Drop 40% of messages; with 7 repeats every link still gets a copy
        // through for this seed, which a single transmission does not.
        let n = 6;
        let values: Vec<u64> = (0..n as u64).collect();
        let lossy = |repeats: usize| {
            let mut session = Session::new(
                Engine::new(n)
                    .with_bandwidth(8)
                    .with_fault_plan(FaultPlan::new(11).drop_messages(0.4)),
            );
            repeat_broadcast(&mut session, &values, 8, repeats).unwrap()
        };
        let once = lossy(1);
        let holes = once
            .outputs
            .iter()
            .flat_map(|o| o.as_ref().unwrap())
            .filter(|s| s.is_none())
            .count();
        assert!(holes > 0, "seed 11 must actually drop something");
        let many = lossy(7);
        assert!(many.stats.dropped_messages > 0);
        for (v, got) in many.outputs.iter().enumerate() {
            let expect: Vec<Option<u64>> = values.iter().map(|&x| Some(x)).collect();
            assert_eq!(got.as_ref().unwrap(), &expect, "node {v}");
        }
    }

    #[test]
    fn retry_overhead_scales_linearly() {
        let base = RunStats {
            rounds: 3,
            messages: 10,
            bits: 80,
            max_message_bits: 8,
            peak_live_payload_bytes: 20,
            ..RunStats::default()
        };
        let extra = retry_overhead(&base, 2);
        assert_eq!(extra.rounds, 6);
        assert_eq!(extra.messages, 20);
        assert_eq!(extra.bits, 160);
        assert_eq!(extra.max_message_bits, 8);
        // Charging a session folds it into the ledger.
        let mut s = Session::new(Engine::new(2));
        s.charge(&extra);
        assert_eq!(s.stats().rounds, 6);
    }
}
