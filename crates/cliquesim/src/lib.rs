//! # cliquesim — a bandwidth-exact congested clique simulator
//!
//! This crate is the execution substrate for the `congested-clique`
//! workspace, which reproduces Korhonen & Suomela, *"Towards a complexity
//! theory for the congested clique"* (SPAA 2018).
//!
//! The model (paper §3): `n` nodes form a fully connected synchronous
//! network. Each round, every node performs unlimited local computation and
//! sends a possibly different message of at most `⌈log₂ n⌉` bits to each
//! other node. The complexity of an algorithm is its number of rounds.
//!
//! The simulator makes that model *checkable*:
//!
//! * messages are [`BitString`]s and the engine rejects any message over the
//!   bit budget — an algorithm cannot quietly cheat on bandwidth;
//! * round counts, message counts and bit totals are measured, not claimed;
//! * full per-node communication [`Transcript`]s can be recorded — these are
//!   exactly the certificates used by the paper's Theorem 3 normal form;
//! * node steps are independent within a round, so the engine can use
//!   multiple OS threads with bit-identical results.
//!
//! ## Quick example
//!
//! ```
//! use cliquesim::{BitString, Engine, Inbox, NodeCtx, NodeProgram, Outbox, Status};
//!
//! /// Each node learns the maximum id in the clique (one broadcast round).
//! struct MaxId(u64);
//!
//! impl NodeProgram for MaxId {
//!     type Output = u64;
//!     fn step(&mut self, ctx: &NodeCtx, round: usize, inbox: &Inbox<'_>, outbox: &mut Outbox<'_>)
//!         -> Status<u64>
//!     {
//!         if round == 0 {
//!             let mut m = BitString::new();
//!             m.push_uint(ctx.id.0 as u64, ctx.id_width());
//!             outbox.broadcast(&m);
//!             self.0 = ctx.id.0 as u64;
//!             Status::Continue
//!         } else {
//!             for (_, msg) in inbox.iter() {
//!                 self.0 = self.0.max(msg.reader().read_uint(ctx.id_width()).unwrap());
//!             }
//!             Status::Halt(self.0)
//!         }
//!     }
//! }
//!
//! let outcome = Engine::new(8).run((0..8).map(|_| MaxId(0)).collect()).unwrap();
//! assert_eq!(outcome.outputs, vec![7; 8]);
//! assert_eq!(outcome.stats.rounds, 1);
//! ```

#![warn(missing_docs)]
// Fault paths must surface `SimError`, not panic: non-test code may not
// unwrap/expect. Test modules are exempt (asserting via unwrap is idiomatic).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod auth;
pub mod bits;
pub mod byzantine;
pub mod delivery;
pub mod engine;
pub mod fault;
pub mod node;
pub mod session;
pub mod stats;
pub mod transcript;

pub use auth::{split_tagged, strip_tag, AuthKeyring, TAG_BITS};
pub use bits::{BitReader, BitString, DecodeError};
pub use byzantine::{ByzantineEvent, ByzantinePlan, ByzantineReport, ForcedLie, Lie};
pub use delivery::{DeliveryArena, DeliveryMode};
pub use engine::{ByzantineOutcome, Engine, FaultedOutcome, RunOutcome, SimError};
pub use fault::{
    sync_overhead, ChurnError, FaultEvent, FaultKind, FaultPlan, FaultReport, ForcedFault,
    SyncOverhead,
};
pub use node::{Inbox, NodeCtx, NodeId, NodeProgram, Outbox, Status};
pub use session::Session;
pub use stats::{EngineTiming, RunStats};
pub use transcript::{RoundTranscript, Transcript};
