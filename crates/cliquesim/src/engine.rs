//! The synchronous lockstep engine.
//!
//! Executes `n` copies of a [`NodeProgram`] in rounds, enforcing the model of
//! §3 of the paper: per round, every ordered pair of nodes may exchange at
//! most `bandwidth` bits (default `⌈log₂ n⌉`), local computation is free, and
//! the complexity of a run is its number of communication rounds.
//!
//! # Execution strategy
//!
//! Node steps within a round are independent, so the engine can execute them
//! on multiple OS threads. With `threads > 1` a **persistent worker pool** is
//! created once per run: workers park on a round barrier, step a fixed chunk
//! of nodes, publish a per-chunk accumulator, and park again — no per-round
//! thread creation. Message delivery is **double-buffered** behind a
//! pluggable backend (see [`DeliveryMode`]): the dense backend keeps a
//! sender-major `n × n` matrix, the sparse backend a per-sender edge list
//! with a shared broadcast payload. Either way nodes write sends into one
//! buffer while reading the previous round's through a receiver-oriented
//! inbox view, so delivery is a buffer swap (no O(n²) transpose, and
//! steady-state rounds allocate nothing — slots are cleared in place,
//! retaining capacity, and persist across runs via [`DeliveryArena`]).
//!
//! Parallel and sequential execution produce bit-identical outputs,
//! transcripts, and [`RunStats`] (wall-clock timing excluded).

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use crate::auth::{AuthKeyring, AuthLedger};
use crate::bits::BitString;
use crate::byzantine::{ByzantinePlan, ByzantineReport};
use crate::delivery::{BufView, DeliveryArena, DeliveryBuf, DeliveryMode, DenseBuf, SparseBuf};
use crate::fault::{FaultEvent, FaultPlan, FaultReport};
use crate::node::{Inbox, NodeCtx, NodeId, NodeProgram, Outbox, Status};
use crate::stats::RunStats;
use crate::transcript::{RoundTranscript, Transcript};

/// Errors surfaced by a run. Bandwidth violations are *bugs in the algorithm
/// under test* — the engine's job is to catch them, not to work around them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// In broadcast mode, a node sent different messages to different
    /// peers in the same round.
    BroadcastViolated {
        /// Offending sender.
        from: NodeId,
        /// Round in which the violation happened.
        round: usize,
    },
    /// In CONGEST mode, a node addressed a non-neighbour.
    TopologyViolated {
        /// Offending sender.
        from: NodeId,
        /// Illegal recipient (not adjacent in the communication graph).
        to: NodeId,
        /// Round in which the violation happened.
        round: usize,
    },
    /// A node emitted a message wider than the model allows.
    BandwidthExceeded {
        /// Offending sender.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
        /// Round in which the violation happened.
        round: usize,
        /// Size of the offending message.
        bits: usize,
        /// The engine's per-message budget.
        limit: usize,
    },
    /// The run did not terminate within the configured round limit.
    RoundLimit {
        /// The configured limit.
        limit: usize,
    },
    /// `run` was called with the wrong number of programs.
    WrongProgramCount {
        /// Number of nodes in the clique.
        expected: usize,
        /// Number of programs supplied.
        got: usize,
    },
    /// A node program panicked during its step. The engine converts the
    /// panic into this structured error on both execution paths, so a buggy
    /// program cannot poison the worker pool — the engine stays reusable.
    NodeProgramPanicked {
        /// The panicking node.
        node: NodeId,
        /// Round in which the panic happened.
        round: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The run exceeded the wall-clock budget set with
    /// [`Engine::with_deadline`]. Checked at round boundaries, so a single
    /// round's step phase can overshoot the limit before being caught.
    DeadlineExceeded {
        /// The configured budget.
        limit: Duration,
    },
    /// A node crash-stopped under a [`FaultPlan`], so [`Engine::run`] cannot
    /// produce an output for every node. Use [`Engine::run_faulted`] to
    /// observe the partial outputs of the surviving nodes instead.
    NodeCrashed {
        /// The crashed node.
        node: NodeId,
        /// Round at whose start it stopped participating.
        round: usize,
    },
    /// The run was aborted through the cooperative cancellation flag set
    /// with [`Engine::with_cancel`] (e.g. a batch service tearing down its
    /// in-flight jobs). Checked at round boundaries, like
    /// [`SimError::DeadlineExceeded`].
    Cancelled {
        /// Round after which the cancellation was observed.
        round: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BroadcastViolated { from, round } => write!(
                f,
                "broadcast mode violated in round {round}: node {} sent distinct messages",
                from.display()
            ),
            SimError::TopologyViolated { from, to, round } => write!(
                f,
                "CONGEST topology violated in round {round}: node {} sent to non-neighbour {}",
                from.display(),
                to.display()
            ),
            SimError::BandwidthExceeded { from, to, round, bits, limit } => write!(
                f,
                "bandwidth exceeded in round {round}: node {} sent {bits} bits to node {} (limit {limit})",
                from.display(),
                to.display()
            ),
            SimError::RoundLimit { limit } => {
                write!(f, "run exceeded the round limit of {limit}")
            }
            SimError::WrongProgramCount { expected, got } => {
                write!(f, "expected {expected} node programs, got {got}")
            }
            SimError::NodeProgramPanicked {
                node,
                round,
                message,
            } => write!(
                f,
                "node {} panicked in round {round}: {message}",
                node.display()
            ),
            SimError::DeadlineExceeded { limit } => {
                write!(f, "run exceeded the wall-clock deadline of {limit:?}")
            }
            SimError::NodeCrashed { node, round } => write!(
                f,
                "node {} crash-stopped in round {round} under the fault plan; \
                 use run_faulted to observe partial outputs",
                node.display()
            ),
            SimError::Cancelled { round } => {
                write!(f, "run cancelled cooperatively after round {round}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a completed run.
#[derive(Debug)]
pub struct RunOutcome<T> {
    /// Local output of each node, indexed by node.
    pub outputs: Vec<T>,
    /// Accounting for the run.
    pub stats: RunStats,
    /// Per-node communication transcripts, if recording was enabled.
    pub transcripts: Option<Vec<Transcript>>,
    /// Every fault the adversary applied (empty when no plan was attached —
    /// and for link-only plans in which no coin came up).
    pub faults: FaultReport,
}

impl<T: PartialEq> RunOutcome<T> {
    /// The common output if all nodes agree (the paper requires decision
    /// algorithms to be unanimous), `None` otherwise.
    pub fn unanimous(&self) -> Option<&T> {
        let first = self.outputs.first()?;
        self.outputs.iter().all(|o| o == first).then_some(first)
    }
}

/// Result of a run under a [`FaultPlan`]: crashed nodes have no output, so
/// each slot is an `Option`.
#[derive(Debug)]
pub struct FaultedOutcome<T> {
    /// Local output of each node, indexed by node; `None` for nodes the
    /// plan crash-stopped before they halted.
    pub outputs: Vec<Option<T>>,
    /// Accounting for the run, including the fault counters.
    pub stats: RunStats,
    /// Per-node communication transcripts, if recording was enabled. A
    /// crashed node's transcript simply ends at its crash round.
    pub transcripts: Option<Vec<Transcript>>,
    /// Every fault the adversary applied, in deterministic order.
    pub faults: FaultReport,
}

impl<T: PartialEq> FaultedOutcome<T> {
    /// Outputs of the nodes that survived to halt, with their ids.
    pub fn survivors(&self) -> impl Iterator<Item = (NodeId, &T)> + '_ {
        self.outputs
            .iter()
            .enumerate()
            .filter_map(|(v, o)| o.as_ref().map(|o| (NodeId::from(v), o)))
    }

    /// The common output if every *surviving* node agrees (and at least one
    /// node survived), `None` otherwise.
    pub fn unanimous(&self) -> Option<&T> {
        let mut survivors = self.survivors().map(|(_, o)| o);
        let first = survivors.next()?;
        survivors.all(|o| o == first).then_some(first)
    }
}

/// Result of a run under a [`ByzantinePlan`] (and, optionally, a concurrent
/// [`FaultPlan`]): a [`FaultedOutcome`] plus the Byzantine event log.
///
/// Traitor nodes still run their (honest) programs and still produce
/// outputs — it is their *outbound messages* the adversary rewrote — so
/// agreement claims about Byzantine-tolerant protocols should be stated
/// over the honest nodes only: see
/// [`ByzantineOutcome::honest_unanimous`].
#[derive(Debug)]
pub struct ByzantineOutcome<T> {
    /// Local output of each node, indexed by node; `None` for nodes a
    /// concurrent fault plan crash-stopped before they halted.
    pub outputs: Vec<Option<T>>,
    /// Accounting for the run, including the fault and Byzantine counters.
    pub stats: RunStats,
    /// Per-node communication transcripts, if recording was enabled.
    /// Transcripts record what each program *sent* — a traitor's lies are
    /// visible only in its recipients' inboxes and in the event log.
    pub transcripts: Option<Vec<Transcript>>,
    /// Every link/crash fault a concurrent [`FaultPlan`] applied.
    pub faults: FaultReport,
    /// Every rewrite the Byzantine adversary applied, in deterministic
    /// order.
    pub byzantine: ByzantineReport,
}

impl<T: PartialEq> ByzantineOutcome<T> {
    /// Outputs of the nodes that survived to halt, with their ids.
    pub fn survivors(&self) -> impl Iterator<Item = (NodeId, &T)> + '_ {
        self.outputs
            .iter()
            .enumerate()
            .filter_map(|(v, o)| o.as_ref().map(|o| (NodeId::from(v), o)))
    }

    /// The common output if every *surviving* node agrees (and at least one
    /// node survived), `None` otherwise. Includes traitors — use
    /// [`ByzantineOutcome::honest_unanimous`] for the guarantee
    /// Byzantine-tolerant protocols actually make.
    pub fn unanimous(&self) -> Option<&T> {
        let mut survivors = self.survivors().map(|(_, o)| o);
        let first = survivors.next()?;
        survivors.all(|o| o == first).then_some(first)
    }

    /// The common output if every surviving node *not marked as a traitor
    /// in `plan`* agrees (and at least one honest node survived), `None`
    /// otherwise. This is the agreement relation under which Bracha-style
    /// reliable broadcast is correct for `f < n/3`.
    pub fn honest_unanimous(&self, plan: &ByzantinePlan) -> Option<&T> {
        let mut honest = self
            .survivors()
            .filter(|(v, _)| !plan.is_traitor(*v))
            .map(|(_, o)| o);
        let first = honest.next()?;
        honest.all(|o| o == first).then_some(first)
    }
}

/// Engine configuration and entry point. Construct with [`Engine::new`] and
/// customise with the builder methods.
#[derive(Clone, Debug)]
pub struct Engine {
    n: usize,
    bandwidth: usize,
    max_rounds: usize,
    record_transcripts: bool,
    threads: usize,
    cap_threads_to_host: bool,
    broadcast_only: bool,
    /// CONGEST mode: `topology[v*n + u]` = v may send to u. Empty = clique.
    topology: Arc<[bool]>,
    /// Number of `true` entries in `topology` (0 for the clique); cached so
    /// [`Engine::resolved_delivery`] can judge link density without a scan.
    topology_edges: usize,
    /// Which delivery backend to use; `Auto` decides per run.
    delivery: DeliveryMode,
    /// Adversary schedule; `None` (and the empty plan) leave runs
    /// byte-identical to the fault-free engine.
    fault_plan: Option<Arc<FaultPlan>>,
    /// Shift applied to the fault plan's round addressing: local round `r`
    /// consults plan round `fault_offset + r`. Lets multi-phase sessions
    /// run one continuous churn timeline even though each phase restarts
    /// its round count at 0.
    fault_offset: usize,
    /// Byzantine sender schedule; `None` (and the empty plan) leave runs
    /// byte-identical to the honest engine.
    byzantine_plan: Option<Arc<ByzantinePlan>>,
    /// Authenticated-envelope keyring; `None` leaves runs byte-identical
    /// to the unauthenticated engine (see [`crate::auth`]).
    auth: Option<Arc<AuthKeyring>>,
    /// Wall-clock budget for a whole run, checked at round boundaries.
    deadline: Option<Duration>,
    /// Cooperative cancellation flag, checked at round boundaries; shared
    /// with whoever may want to abort the run (see [`Engine::with_cancel`]).
    cancel: Option<Arc<AtomicBool>>,
}

/// Default cap on rounds; generous enough for every algorithm in this
/// workspace while still catching livelocks quickly.
const DEFAULT_MAX_ROUNDS: usize = 1 << 20;

impl Engine {
    /// An engine for an `n`-node clique with the standard bandwidth of
    /// `⌈log₂ n⌉` bits per ordered pair per round.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a clique needs at least one node");
        Self {
            n,
            bandwidth: BitString::width_for(n),
            max_rounds: DEFAULT_MAX_ROUNDS,
            record_transcripts: false,
            threads: 1,
            cap_threads_to_host: true,
            broadcast_only: false,
            topology: Arc::from(Vec::new().into_boxed_slice()),
            topology_edges: 0,
            delivery: DeliveryMode::Auto,
            fault_plan: None,
            fault_offset: 0,
            byzantine_plan: None,
            auth: None,
            deadline: None,
            cancel: None,
        }
    }

    /// Restrict communication to the edges of a graph — the classic
    /// **CONGEST** model, of which the congested clique is the
    /// fully-connected special case (§3 of the paper). `adjacent[v*n+u]`
    /// must be true iff `{u, v}` is a communication link; sending to a
    /// non-neighbour becomes a runtime error. Used by the workbench to
    /// contrast bottlenecked topologies with the clique (§2).
    pub fn with_topology(mut self, adjacent: Vec<bool>) -> Self {
        assert_eq!(
            adjacent.len(),
            self.n * self.n,
            "need an n×n adjacency table"
        );
        for v in 0..self.n {
            for u in 0..self.n {
                assert_eq!(
                    adjacent[v * self.n + u],
                    adjacent[u * self.n + v],
                    "must be symmetric"
                );
            }
            assert!(!adjacent[v * self.n + v], "no self-loops");
        }
        self.topology_edges = adjacent.iter().filter(|a| **a).count();
        self.topology = Arc::from(adjacent.into_boxed_slice());
        self
    }

    /// Select the per-round message-delivery backend (see [`DeliveryMode`]).
    /// The default, [`DeliveryMode::Auto`], picks the sparse backend for
    /// broadcast-only engines, sparse CONGEST topologies, and crash-heavy
    /// fault plans, and the dense `n × n` matrices otherwise. Whatever the
    /// choice, outputs, transcripts, reports, and [`RunStats`] are
    /// bit-identical — only memory footprint and wall-clock differ.
    pub fn with_delivery(mut self, mode: DeliveryMode) -> Self {
        self.delivery = mode;
        self
    }

    /// The configured delivery mode (possibly [`DeliveryMode::Auto`]).
    pub fn delivery(&self) -> DeliveryMode {
        self.delivery
    }

    /// The backend a run would use right now: resolves
    /// [`DeliveryMode::Auto`] against the engine's configuration (never
    /// returns `Auto`). The heuristic prefers sparse whenever per-sender
    /// traffic is structurally far below `n - 1` distinct payloads:
    /// broadcast-only mode (one payload per sender), a CONGEST topology
    /// with at most 25% of ordered pairs adjacent, or a fault plan that
    /// leaves at least half the nodes *permanently* dead — net of rejoins
    /// (`dead_at(usize::MAX)` collapses crash/rejoin pairs), so a high-churn
    /// plan whose nodes keep coming back does not over-select Sparse.
    pub fn resolved_delivery(&self) -> DeliveryMode {
        match self.delivery {
            DeliveryMode::Dense => DeliveryMode::Dense,
            DeliveryMode::Sparse => DeliveryMode::Sparse,
            DeliveryMode::Auto => {
                let sparse_topology =
                    !self.topology.is_empty() && self.topology_edges * 4 <= self.n * self.n;
                let crash_heavy = self
                    .fault_plan
                    .as_deref()
                    .is_some_and(|p| p.dead_at(usize::MAX).len() * 2 >= self.n);
                if self.broadcast_only || sparse_topology || crash_heavy {
                    DeliveryMode::Sparse
                } else {
                    DeliveryMode::Dense
                }
            }
        }
    }

    /// Attach a fault-injection adversary (see [`crate::fault`]). The plan
    /// is applied identically on the sequential and pooled paths; an empty
    /// plan is guaranteed byte-identical to no plan at all. Runs whose plan
    /// crashes nodes should use [`Engine::run_faulted`] to observe partial
    /// outputs — [`Engine::run`] turns a crash into [`SimError::NodeCrashed`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(Arc::new(plan));
        self
    }

    /// Shift the fault plan's round addressing: local round `r` consults
    /// plan round `offset + r` for crashes, rejoins, and link-fault coins,
    /// and [`crate::FaultReport`] events carry plan rounds. The default
    /// offset 0 is today's behaviour exactly. A multi-phase
    /// [`crate::Session`] advances the offset between phases (see
    /// `Session::align_fault_clock`) so one continuous churn timeline spans
    /// phases that each restart their round count at 0.
    pub fn with_fault_offset(mut self, offset: usize) -> Self {
        self.fault_offset = offset;
        self
    }

    /// The configured fault-clock offset (see
    /// [`Engine::with_fault_offset`]).
    pub fn fault_offset(&self) -> usize {
        self.fault_offset
    }

    /// Attach a Byzantine sender adversary (see [`crate::byzantine`]): the
    /// plan's traitor nodes get their outbound messages rewritten per
    /// recipient. Applied identically on the sequential and pooled paths;
    /// an empty plan is guaranteed byte-identical to no plan at all.
    /// Composes with [`Engine::with_fault_plan`]: each round, traitors lie
    /// first, then link faults damage what was actually transmitted. Use
    /// [`Engine::run_byzantine`] to observe the per-event rewrite log.
    pub fn with_byzantine_plan(mut self, plan: ByzantinePlan) -> Self {
        self.byzantine_plan = Some(Arc::new(plan));
        self
    }

    /// Attach an authenticated-message keyring (see [`crate::auth`]):
    /// every round the engine appends a [`crate::auth::TAG_BITS`]-bit tag
    /// to each non-empty outbound message after the Byzantine rewrites
    /// (lies are validly signed with the traitor's own key) and verifies
    /// every frame after the link faults, clearing the ones whose tag
    /// fails. Inboxes then hold `payload ‖ tag` frames. The envelope's
    /// work is charged to `RunStats.signed_messages` / `auth_bits` /
    /// `rejected_tags`; an engine without a keyring takes the exact
    /// unauthenticated path.
    pub fn with_auth(mut self, keyring: AuthKeyring) -> Self {
        assert_eq!(
            keyring.n(),
            self.n,
            "keyring covers {} identities but the clique has {} nodes",
            keyring.n(),
            self.n
        );
        self.auth = Some(Arc::new(keyring));
        self
    }

    /// The attached keyring, if any (see [`Engine::with_auth`]).
    pub fn auth_keyring(&self) -> Option<&AuthKeyring> {
        self.auth.as_deref()
    }

    /// Abort the run with [`SimError::DeadlineExceeded`] once `limit` of
    /// wall-clock time has elapsed (a watchdog for runaway protocols, e.g.
    /// in CI). The check runs at round boundaries, so granularity is one
    /// round's step phase. Complements [`Engine::with_max_rounds`], which
    /// bounds rounds rather than time.
    pub fn with_deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Share a cooperative cancellation flag with the run: once any holder
    /// stores `true`, the run aborts with [`SimError::Cancelled`] at the
    /// next round boundary. This is the hook a multi-run host (e.g. the
    /// `cc-service` batch scheduler) uses to tear down in-flight
    /// simulations without killing the worker thread they run on. The
    /// check sits next to the [`Engine::with_deadline`] watchdog, so
    /// granularity is one round's step phase.
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Restrict the engine to the **broadcast congested clique** (§2 of
    /// the paper): each round every node must send the *same* message to
    /// every other node (or nothing at all). Violations are runtime
    /// errors, so a unicast algorithm cannot silently pass as a broadcast
    /// one.
    pub fn broadcast_only(mut self, on: bool) -> Self {
        self.broadcast_only = on;
        self
    }

    /// Override the per-message bit budget.
    ///
    /// The paper normalises algorithms to exactly `⌈log₂ n⌉` bits by moving
    /// constant factors into the round count; passing a multiple of
    /// `⌈log₂ n⌉` here models an `O(log n)`-bandwidth algorithm directly.
    pub fn with_bandwidth(mut self, bits: usize) -> Self {
        assert!(bits >= 1, "bandwidth must be at least one bit");
        self.bandwidth = bits;
        self
    }

    /// Bandwidth `c · ⌈log₂ n⌉` for an algorithm using `O(log n)`-bit
    /// messages with constant `c`.
    pub fn with_bandwidth_multiplier(self, c: usize) -> Self {
        let b = BitString::width_for(self.n) * c;
        self.with_bandwidth(b)
    }

    /// Cap the number of communication rounds (defense against
    /// non-terminating programs).
    ///
    /// `with_max_rounds(L)` means *at most `L` communication rounds*: a
    /// program that has not halted by step index `L` fails with
    /// [`SimError::RoundLimit`] before any further exchange, so every
    /// successful run satisfies `stats.rounds <= L`. A program halting at
    /// exactly step `L` (i.e. using exactly `L` exchanges) succeeds.
    pub fn with_max_rounds(mut self, limit: usize) -> Self {
        self.max_rounds = limit;
        self
    }

    /// Record full per-node communication transcripts (memory-heavy; used
    /// by the Theorem 3 normal-form machinery and by debugging).
    pub fn with_transcripts(mut self, on: bool) -> Self {
        self.record_transcripts = on;
        self
    }

    /// Step nodes on up to `threads` OS threads via a per-run persistent
    /// worker pool. Results are identical to the sequential engine; only
    /// wall-clock changes.
    ///
    /// The pool is capped at the host's available parallelism: workers
    /// beyond the core count cannot execute concurrently and would only add
    /// barrier latency. Use [`Engine::with_threads_exact`] when a test or
    /// benchmark must exercise a specific pool shape regardless of host.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1);
        self.threads = threads;
        self.cap_threads_to_host = true;
        self
    }

    /// Like [`Engine::with_threads`] but without the host-parallelism cap:
    /// exactly this many workers are spawned (pool-shape determinism for
    /// tests and benchmarks; on an undersized host this only costs
    /// wall-clock, never correctness).
    pub fn with_threads_exact(mut self, threads: usize) -> Self {
        assert!(threads >= 1);
        self.threads = threads;
        self.cap_threads_to_host = false;
        self
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Per-message bit budget.
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }

    /// Run one program instance per node to completion.
    ///
    /// If the attached [`FaultPlan`] crash-stops a node, the run fails with
    /// [`SimError::NodeCrashed`] — this entry point promises an output for
    /// every node. Protocols meant to tolerate crashes use
    /// [`Engine::run_faulted`] instead.
    pub fn run<P: NodeProgram>(&self, programs: Vec<P>) -> Result<RunOutcome<P::Output>, SimError> {
        self.run_in(programs, &mut DeliveryArena::new())
    }

    /// Like [`Engine::run`], but checking the delivery buffers out of (and
    /// back into) `arena`, so repeated runs reuse allocations instead of
    /// re-allocating per run. [`crate::Session`] routes every phase through
    /// its own arena; stats are unaffected by reuse (all accounting is in
    /// logical messages, never retained capacity).
    pub fn run_in<P: NodeProgram>(
        &self,
        programs: Vec<P>,
        arena: &mut DeliveryArena,
    ) -> Result<RunOutcome<P::Output>, SimError> {
        let faulted = self.run_faulted_in(programs, arena)?;
        let mut outputs = Vec::with_capacity(faulted.outputs.len());
        for (v, o) in faulted.outputs.into_iter().enumerate() {
            match o {
                Some(o) => outputs.push(o),
                None => {
                    let node = NodeId::from(v);
                    let round = match faulted.faults.crash_round(node) {
                        Some(r) => r,
                        // A missing output without a crash event would be an
                        // engine bug: every non-crashed node halts (with an
                        // output) before the run completes.
                        None => unreachable!("node without output must have crashed"),
                    };
                    return Err(SimError::NodeCrashed { node, round });
                }
            }
        }
        Ok(RunOutcome {
            outputs,
            stats: faulted.stats,
            transcripts: faulted.transcripts,
            faults: faulted.faults,
        })
    }

    /// Run one program instance per node under the attached [`FaultPlan`]
    /// (or none), reporting crashed nodes as `None` outputs instead of
    /// failing the run.
    ///
    /// Delegates to [`Engine::run_byzantine`] and drops the per-event
    /// Byzantine rewrite log; if a [`ByzantinePlan`] is attached, its
    /// aggregate counters still appear in the returned stats.
    pub fn run_faulted<P: NodeProgram>(
        &self,
        programs: Vec<P>,
    ) -> Result<FaultedOutcome<P::Output>, SimError> {
        self.run_faulted_in(programs, &mut DeliveryArena::new())
    }

    /// Like [`Engine::run_faulted`], but reusing `arena`'s delivery buffers
    /// (see [`Engine::run_in`]).
    pub fn run_faulted_in<P: NodeProgram>(
        &self,
        programs: Vec<P>,
        arena: &mut DeliveryArena,
    ) -> Result<FaultedOutcome<P::Output>, SimError> {
        let out = self.run_byzantine_in(programs, arena)?;
        Ok(FaultedOutcome {
            outputs: out.outputs,
            stats: out.stats,
            transcripts: out.transcripts,
            faults: out.faults,
        })
    }

    /// Run one program instance per node under the attached
    /// [`ByzantinePlan`] and/or [`FaultPlan`] (or neither), reporting
    /// crashed nodes as `None` outputs and returning the full Byzantine
    /// rewrite log alongside the fault report. This is the engine's most
    /// general entry point; [`Engine::run_faulted`] and [`Engine::run`]
    /// are restrictions of it.
    pub fn run_byzantine<P: NodeProgram>(
        &self,
        programs: Vec<P>,
    ) -> Result<ByzantineOutcome<P::Output>, SimError> {
        self.run_byzantine_in(programs, &mut DeliveryArena::new())
    }

    /// Like [`Engine::run_byzantine`], but reusing `arena`'s delivery
    /// buffers (see [`Engine::run_in`]). All three entry points funnel
    /// here, so validation and setup exist exactly once.
    pub fn run_byzantine_in<P: NodeProgram>(
        &self,
        programs: Vec<P>,
        arena: &mut DeliveryArena,
    ) -> Result<ByzantineOutcome<P::Output>, SimError> {
        // Validate before any buffer checkout: rejecting a wrong-sized
        // program vector must not cost 2·n² message slots.
        if programs.len() != self.n {
            return Err(SimError::WrongProgramCount {
                expected: self.n,
                got: programs.len(),
            });
        }
        match self.resolved_delivery() {
            DeliveryMode::Sparse => self.run_core::<P, SparseBuf>(programs, arena),
            _ => self.run_core::<P, DenseBuf>(programs, arena),
        }
    }

    /// The shared run loop, generic over the delivery backend.
    fn run_core<P: NodeProgram, B: DeliveryBuf>(
        &self,
        mut programs: Vec<P>,
        arena: &mut DeliveryArena,
    ) -> Result<ByzantineOutcome<P::Output>, SimError> {
        let n = self.n;
        let ctxs: Vec<NodeCtx> = (0..n)
            .map(|v| NodeCtx {
                id: NodeId::from(v),
                n,
                bandwidth: self.bandwidth,
            })
            .collect();
        for (p, ctx) in programs.iter_mut().zip(&ctxs) {
            p.init(ctx);
        }

        // Double-buffered sender-major delivery buffers: in round r the
        // nodes write sender rows of buffer `r % 2` and read buffer
        // `1 - r % 2` (written in round r-1) through an Inbox view.
        // Delivery is the implicit swap; rows are cleared in place at the
        // start of the round that rewrites them. The pair comes out of the
        // arena, so repeated runs reuse the allocations.
        let mut bufs = B::take(arena, n);
        let mut halted = vec![false; n];
        let mut outputs: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
        let mut transcripts: Option<Vec<Transcript>> = self
            .record_transcripts
            .then(|| vec![Transcript::default(); n]);
        let mut stats = RunStats::default();
        let mut report = FaultReport::default();
        let mut byz_report = ByzantineReport::default();
        // An empty plan must be transparent: skip every fault hook.
        let plan = self.fault_plan.as_deref().filter(|p| !p.is_empty());
        let byz = self.byzantine_plan.as_deref().filter(|p| !p.is_empty());
        let auth = self.auth.as_deref();
        // The round book borrows `stats` for the whole loop, so the
        // envelope passes charge a local ledger folded in afterwards.
        let mut auth_ledger = AuthLedger::default();
        let watchdog = self.deadline.map(|limit| (Instant::now(), limit));

        let threads = if self.cap_threads_to_host {
            let host = std::thread::available_parallelism().map_or(1, |p| p.get());
            self.threads.min(host)
        } else {
            self.threads
        };
        let result = if threads > 1 && n >= 2 * threads {
            self.run_pooled(
                threads,
                &mut programs,
                &ctxs,
                &mut bufs,
                &mut halted,
                &mut outputs,
                &mut transcripts,
                &mut stats,
                plan,
                &mut report,
                byz,
                &mut byz_report,
                auth,
                &mut auth_ledger,
                watchdog,
            )
        } else {
            self.run_sequential(
                &mut programs,
                &ctxs,
                &mut bufs,
                &mut halted,
                &mut outputs,
                &mut transcripts,
                &mut stats,
                plan,
                &mut report,
                byz,
                &mut byz_report,
                auth,
                &mut auth_ledger,
                watchdog,
            )
        };
        // Return the buffers even on a failed run, so the next run through
        // the same arena still reuses the allocations.
        B::put(arena, bufs);
        result?;

        report.tally_into(&mut stats);
        byz_report.tally_into(&mut stats);
        auth_ledger.tally_into(&mut stats);
        Ok(ByzantineOutcome {
            outputs,
            stats,
            transcripts,
            faults: report,
            byzantine: byz_report,
        })
    }

    /// Single-threaded round loop over the double-buffered delivery buffers.
    #[allow(clippy::too_many_arguments)]
    fn run_sequential<P: NodeProgram, B: DeliveryBuf>(
        &self,
        programs: &mut [P],
        ctxs: &[NodeCtx],
        bufs: &mut [B; 2],
        halted: &mut [bool],
        outputs: &mut [Option<P::Output>],
        transcripts: &mut Option<Vec<Transcript>>,
        stats: &mut RunStats,
        plan: Option<&FaultPlan>,
        report: &mut FaultReport,
        byz: Option<&ByzantinePlan>,
        byz_report: &mut ByzantineReport,
        auth: Option<&AuthKeyring>,
        auth_ledger: &mut AuthLedger,
        watchdog: Option<(Instant, Duration)>,
    ) -> Result<(), SimError> {
        let n = self.n;
        let mut book = RoundBook::new(
            n,
            self.max_rounds,
            stats,
            transcripts.as_mut(),
            plan,
            self.fault_offset,
        );
        let mut active = vec![true; n];
        let [buf_a, buf_b] = bufs;
        let mut round = 0usize;
        loop {
            if let Some(plan) = plan {
                // Crashes fire before the activity snapshot: a node crashing
                // in round r never steps in it, and the messages it was due
                // to read this round (written last round) are lost. Rejoins
                // fire right after: a node due back this round is replayed
                // over its missed window and steps again from this round on.
                let inbound: &B = if round.is_multiple_of(2) {
                    buf_b
                } else {
                    buf_a
                };
                let view = B::view(inbound.slots(), n);
                plan.apply_crashes(self.fault_offset + round, halted, &view, report);
                book.process_churn::<P>(
                    round, plan, programs, ctxs, halted, outputs, &view, report,
                )?;
            }
            for v in 0..n {
                active[v] = !halted[v];
            }
            let (cur, prev): (&mut B, &B) = if round.is_multiple_of(2) {
                (&mut *buf_a, &*buf_b)
            } else {
                (&mut *buf_b, &*buf_a)
            };
            let step_start = Instant::now();
            let mut acc = ChunkAcc::default();
            {
                let cur_slots = cur.slots_mut();
                let prev_slots = prev.slots();
                for v in 0..n {
                    B::clear_row(cur_slots, n, v);
                    if halted[v] {
                        continue;
                    }
                    step_one::<P, B>(
                        &mut programs[v],
                        &ctxs[v],
                        round,
                        prev_slots,
                        cur_slots,
                        v,
                        self.bandwidth,
                        self.broadcast_only,
                        &self.topology,
                        &mut halted[v],
                        &mut outputs[v],
                        &mut acc,
                    )?;
                }
            }
            let step_end = Instant::now();
            match book.close_round(
                round,
                acc,
                &B::view(cur.slots(), n),
                &B::view(prev.slots(), n),
                halted,
                &active,
                step_start,
                step_end,
            ) {
                Verdict::Continue => {
                    if let Some(byz) = byz {
                        // Byzantine rewrites strike first, after the round
                        // closes: stats and transcripts record what the
                        // traitor's (honest) program *sent*; next round's
                        // inboxes see the lies. `prev` is what the traitor
                        // received this round — the adaptive-lying input.
                        byz.apply_rewrites(
                            round,
                            &mut B::view_mut(cur.slots_mut(), n),
                            &B::view(prev.slots(), n),
                            byz_report,
                        );
                    }
                    if let Some(keyring) = auth {
                        // Signing runs after the payload rewrites: a
                        // traitor's lies are validly signed with its own
                        // key (it owns it), while everything downstream —
                        // forged tags, wire damage — breaks the tag.
                        keyring.sign_round(
                            round,
                            &mut B::view_mut(cur.slots_mut(), n),
                            auth_ledger,
                        );
                        if let Some(byz) = byz {
                            byz.apply_tag_forgeries(
                                round,
                                &mut B::view_mut(cur.slots_mut(), n),
                                byz_report,
                            );
                        }
                    }
                    if let Some(plan) = plan {
                        // Link faults strike after the round closes (and
                        // after any Byzantine rewrite): stats and
                        // transcripts record what was *sent*; next round's
                        // inboxes see what *survived* the wire.
                        plan.apply_link_faults(
                            self.fault_offset + round,
                            &mut B::view_mut(cur.slots_mut(), n),
                            report,
                        );
                    }
                    if let Some(keyring) = auth {
                        // Verification is the last word on the wire: any
                        // frame whose tag fails (forged or damaged after
                        // signing) is cleared before delivery.
                        keyring.verify_round(
                            round,
                            &mut B::view_mut(cur.slots_mut(), n),
                            auth_ledger,
                        );
                    }
                    if let Some((start, limit)) = watchdog {
                        if start.elapsed() >= limit {
                            return Err(SimError::DeadlineExceeded { limit });
                        }
                    }
                    if let Some(flag) = &self.cancel {
                        if flag.load(Ordering::Relaxed) {
                            return Err(SimError::Cancelled { round });
                        }
                    }
                    round += 1;
                }
                Verdict::Done => {
                    book.settle_churn();
                    return Ok(());
                }
                Verdict::Limit => {
                    return Err(SimError::RoundLimit {
                        limit: self.max_rounds,
                    })
                }
            }
        }
    }

    /// Persistent-worker-pool round loop: the pool is spawned once, workers
    /// park on `ctrl.barrier` between rounds, and the main thread does the
    /// bookkeeping while they are parked.
    #[allow(clippy::too_many_arguments)]
    fn run_pooled<P: NodeProgram, B: DeliveryBuf>(
        &self,
        threads: usize,
        programs: &mut [P],
        ctxs: &[NodeCtx],
        bufs: &mut [B; 2],
        halted: &mut [bool],
        outputs: &mut [Option<P::Output>],
        transcripts: &mut Option<Vec<Transcript>>,
        stats: &mut RunStats,
        plan: Option<&FaultPlan>,
        report: &mut FaultReport,
        byz: Option<&ByzantinePlan>,
        byz_report: &mut ByzantineReport,
        auth: Option<&AuthKeyring>,
        auth_ledger: &mut AuthLedger,
        watchdog: Option<(Instant, Duration)>,
    ) -> Result<(), SimError> {
        let n = self.n;
        let chunk = n.div_ceil(threads);
        let workers = n.div_ceil(chunk);
        let bandwidth = self.bandwidth;
        let broadcast_only = self.broadcast_only;
        let topology: &[bool] = &self.topology;
        let max_rounds = self.max_rounds;

        let mut book = RoundBook::new(
            n,
            max_rounds,
            stats,
            transcripts.as_mut(),
            plan,
            self.fault_offset,
        );
        let mut active = vec![true; n];

        let [buf_a, buf_b] = bufs;
        let buf_cells: [&[SyncCell<B::Slot>]; 2] = [
            SyncCell::share(buf_a.slots_mut()),
            SyncCell::share(buf_b.slots_mut()),
        ];
        let prog_cells = SyncCell::share(programs);
        let halted_cells = SyncCell::share(halted);
        let out_cells = SyncCell::share(outputs);
        let mut chunk_results: Vec<Result<ChunkAcc, StepAbort>> =
            (0..workers).map(|_| Ok(ChunkAcc::default())).collect();
        let result_cells = SyncCell::share(&mut chunk_results);
        let ctrl = PoolCtrl {
            barrier: Barrier::new(workers + 1),
            round: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
        };
        let ctrl = &ctrl;

        std::thread::scope(|s| {
            for (w, my_result) in result_cells.iter().enumerate().take(workers) {
                let lo = w * chunk;
                let hi = n.min(lo + chunk);
                s.spawn(move || loop {
                    ctrl.barrier.wait();
                    if ctrl.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let round = ctrl.round.load(Ordering::Relaxed);
                    let write = round % 2;
                    let caught =
                        catch_unwind(AssertUnwindSafe(|| -> Result<ChunkAcc, SimError> {
                            let mut acc = ChunkAcc::default();
                            // SAFETY (barrier protocol): between the
                            // round-start and round-end barriers this worker
                            // exclusively owns node range lo..hi of
                            // programs/halted/outputs and rows lo..hi of the
                            // write buffer; the read buffer is written by no
                            // one during the step phase.
                            let write_rows = unsafe {
                                SyncCell::exclusive(&buf_cells[write][B::slot_range(n, lo, hi)])
                            };
                            let prev = unsafe { SyncCell::shared(buf_cells[1 - write]) };
                            let my_halted = unsafe { SyncCell::exclusive(&halted_cells[lo..hi]) };
                            let my_progs = unsafe { SyncCell::exclusive(&prog_cells[lo..hi]) };
                            let my_outs = unsafe { SyncCell::exclusive(&out_cells[lo..hi]) };
                            for i in 0..hi - lo {
                                let v = lo + i;
                                B::clear_row(write_rows, n, i);
                                if my_halted[i] {
                                    continue;
                                }
                                step_one::<P, B>(
                                    &mut my_progs[i],
                                    &ctxs[v],
                                    round,
                                    prev,
                                    write_rows,
                                    i,
                                    bandwidth,
                                    broadcast_only,
                                    topology,
                                    &mut my_halted[i],
                                    &mut my_outs[i],
                                    &mut acc,
                                )?;
                            }
                            Ok(acc)
                        }));
                    let published = match caught {
                        Ok(Ok(acc)) => Ok(acc),
                        Ok(Err(err)) => Err(StepAbort::Sim(err)),
                        Err(payload) => Err(StepAbort::Panic(payload)),
                    };
                    // SAFETY (barrier protocol): this result slot belongs to
                    // this worker alone during the step phase.
                    unsafe {
                        *my_result.raw() = published;
                    }
                    ctrl.barrier.wait();
                });
            }

            let mut round = 0usize;
            loop {
                {
                    // SAFETY: workers are parked at the round-start barrier,
                    // so the main thread has exclusive access here. Faults
                    // are applied only on the main thread between barriers —
                    // that (plus address-keyed coins) is what makes the
                    // adversary pool-shape independent.
                    if let Some(plan) = plan {
                        let halted_mut = unsafe { SyncCell::exclusive(halted_cells) };
                        let progs_mut = unsafe { SyncCell::exclusive(prog_cells) };
                        let outs_mut = unsafe { SyncCell::exclusive(out_cells) };
                        let inbound = unsafe { SyncCell::shared(buf_cells[1 - round % 2]) };
                        let view = B::view(inbound, n);
                        plan.apply_crashes(self.fault_offset + round, halted_mut, &view, report);
                        // Rejoin replay also runs only here, between
                        // barriers on the main thread, which keeps the
                        // churn tier pool-shape independent.
                        if let Err(e) = book.process_churn::<P>(
                            round, plan, progs_mut, ctxs, halted_mut, outs_mut, &view, report,
                        ) {
                            shutdown(ctrl);
                            return Err(e);
                        }
                    }
                    let halted_now = unsafe { SyncCell::shared(halted_cells) };
                    for v in 0..n {
                        active[v] = !halted_now[v];
                    }
                }
                ctrl.round.store(round, Ordering::Relaxed);
                let step_start = Instant::now();
                ctrl.barrier.wait(); // release the step phase
                ctrl.barrier.wait(); // wait for every chunk to finish
                let step_end = Instant::now();

                // SAFETY: workers are parked at the round-start barrier
                // again; the main thread has exclusive access until it next
                // calls `ctrl.barrier.wait()`.
                let mut acc = ChunkAcc::default();
                let mut abort: Option<StepAbort> = None;
                for cell in result_cells.iter().take(workers) {
                    let published =
                        unsafe { std::mem::replace(&mut *cell.raw(), Ok(ChunkAcc::default())) };
                    match published {
                        Ok(a) => acc.fold(&a),
                        // Lowest worker index wins, which is the lowest node
                        // index: the same error a sequential run surfaces.
                        Err(e) => {
                            if abort.is_none() {
                                abort = Some(e);
                            }
                        }
                    }
                }
                if let Some(e) = abort {
                    shutdown(ctrl);
                    match e {
                        StepAbort::Sim(err) => return Err(err),
                        StepAbort::Panic(payload) => resume_unwind(payload),
                    }
                }

                let write = round % 2;
                let cur = unsafe { SyncCell::shared(buf_cells[write]) };
                let prev = unsafe { SyncCell::shared(buf_cells[1 - write]) };
                let halted_now = unsafe { SyncCell::shared(halted_cells) };
                match book.close_round(
                    round,
                    acc,
                    &B::view(cur, n),
                    &B::view(prev, n),
                    halted_now,
                    &active,
                    step_start,
                    step_end,
                ) {
                    Verdict::Continue => {
                        if let Some(byz) = byz {
                            // SAFETY: workers are still parked; the shared
                            // views taken for close_round are no longer used.
                            // Rewrites happen only here on the main thread
                            // between barriers, which (plus address-keyed
                            // coins) makes them pool-shape independent.
                            let cur_mut = unsafe { SyncCell::exclusive(buf_cells[write]) };
                            byz.apply_rewrites(
                                round,
                                &mut B::view_mut(cur_mut, n),
                                &B::view(prev, n),
                                byz_report,
                            );
                        }
                        if let Some(keyring) = auth {
                            // SAFETY: workers are still parked; the shared
                            // views taken for close_round are no longer
                            // used. Same hook order as the sequential path:
                            // rewrites → sign → forge → faults → verify.
                            let cur_mut = unsafe { SyncCell::exclusive(buf_cells[write]) };
                            keyring.sign_round(round, &mut B::view_mut(cur_mut, n), auth_ledger);
                            if let Some(byz) = byz {
                                let cur_mut = unsafe { SyncCell::exclusive(buf_cells[write]) };
                                byz.apply_tag_forgeries(
                                    round,
                                    &mut B::view_mut(cur_mut, n),
                                    byz_report,
                                );
                            }
                        }
                        if let Some(plan) = plan {
                            // SAFETY: workers are still parked; the shared
                            // views taken for close_round are no longer used.
                            let cur_mut = unsafe { SyncCell::exclusive(buf_cells[write]) };
                            plan.apply_link_faults(
                                self.fault_offset + round,
                                &mut B::view_mut(cur_mut, n),
                                report,
                            );
                        }
                        if let Some(keyring) = auth {
                            // SAFETY: workers are still parked (as above).
                            let cur_mut = unsafe { SyncCell::exclusive(buf_cells[write]) };
                            keyring.verify_round(round, &mut B::view_mut(cur_mut, n), auth_ledger);
                        }
                        if let Some((start, limit)) = watchdog {
                            if start.elapsed() >= limit {
                                shutdown(ctrl);
                                return Err(SimError::DeadlineExceeded { limit });
                            }
                        }
                        if let Some(flag) = &self.cancel {
                            if flag.load(Ordering::Relaxed) {
                                shutdown(ctrl);
                                return Err(SimError::Cancelled { round });
                            }
                        }
                        round += 1;
                    }
                    Verdict::Done => {
                        book.settle_churn();
                        shutdown(ctrl);
                        return Ok(());
                    }
                    Verdict::Limit => {
                        shutdown(ctrl);
                        return Err(SimError::RoundLimit { limit: max_rounds });
                    }
                }
            }
        })
    }
}

/// Release workers parked at the round-start barrier and let them exit.
fn shutdown(ctrl: &PoolCtrl) {
    ctrl.stop.store(true, Ordering::Relaxed);
    ctrl.barrier.wait();
}

/// Round-synchronisation state shared between the driver and the pool.
/// `Barrier::wait` is the only synchroniser (it orders all memory accesses
/// across the phase boundary); the atomics are plain mailboxes written
/// strictly between barriers, hence `Relaxed`.
struct PoolCtrl {
    barrier: Barrier,
    round: AtomicUsize,
    stop: AtomicBool,
}

/// Why a worker's step phase did not produce a [`ChunkAcc`].
enum StepAbort {
    /// The model rejected a node's behaviour.
    Sim(SimError),
    /// A node program panicked; the payload is re-thrown on the main thread.
    Panic(Box<dyn std::any::Any + Send>),
}

/// Interior-mutability wrapper that lets the persistent worker pool share
/// the engine's per-run state. All access goes through the `unsafe` views
/// below, whose soundness rests on the *barrier protocol*: during a step
/// phase each worker touches only its own node range (plus read-only shared
/// data), and between the round-end and round-start barriers only the main
/// thread touches anything.
#[repr(transparent)]
struct SyncCell<T>(std::cell::UnsafeCell<T>);

// SAFETY: references are only handed out through the views below, whose
// callers promise disjoint access via the barrier protocol.
unsafe impl<T: Send> Sync for SyncCell<T> {}

impl<T> SyncCell<T> {
    /// Wrap an exclusively-borrowed slice for sharing with the pool.
    fn share(slice: &mut [T]) -> &[SyncCell<T>] {
        // SAFETY: `repr(transparent)` gives identical layout, and the `&mut`
        // guarantees no other live borrow for the returned lifetime.
        unsafe { &*(slice as *mut [T] as *const [SyncCell<T>]) }
    }

    /// Raw pointer to the contents; the caller upholds the barrier protocol.
    fn raw(&self) -> *mut T {
        self.0.get()
    }

    /// View a cell slice as mutable data.
    ///
    /// # Safety
    /// The caller must hold exclusive access to every element per the
    /// barrier protocol.
    #[allow(clippy::mut_from_ref)]
    unsafe fn exclusive(cells: &[SyncCell<T>]) -> &mut [T] {
        // `repr(transparent)` lets the cell pointer double as the element
        // pointer; `raw_get` is the sanctioned `&UnsafeCell → *mut` route.
        let base = std::cell::UnsafeCell::raw_get(cells.as_ptr().cast());
        std::slice::from_raw_parts_mut(base, cells.len())
    }

    /// View a cell slice as shared data.
    ///
    /// # Safety
    /// The caller must guarantee no concurrent writers per the barrier
    /// protocol.
    unsafe fn shared(cells: &[SyncCell<T>]) -> &[T] {
        &*(cells as *const [SyncCell<T>] as *const [T])
    }
}

#[derive(Default, Clone, Copy)]
struct ChunkAcc {
    messages: u64,
    bits: u64,
    max_message_bits: usize,
}

impl ChunkAcc {
    fn fold(&mut self, other: &ChunkAcc) {
        self.messages += other.messages;
        self.bits += other.bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
    }
}

/// What the bookkeeper decided after a step phase.
enum Verdict {
    /// Run the next round.
    Continue,
    /// Every node halted; the run is complete.
    Done,
    /// The round limit was hit with nodes still active.
    Limit,
}

/// State-sync bookkeeping for one crash the plan will later rejoin.
struct PendingRejoin {
    /// Engine-local round the crash fired at the start of.
    crash_round: usize,
    /// Engine-local round the rejoin is due at the start of.
    rejoin_round: usize,
    /// Inbound columns for the missed rounds, recorded at each round start
    /// while the node is down: entry `j` is what the node would have read
    /// in round `crash_round + j` (entry 0 is the in-flight traffic at
    /// crash time).
    window: Vec<Vec<BitString>>,
    /// Per-round traffic sent *to* the node while down, keyed by the round
    /// it was written in — diverted from the undelivered counters until the
    /// rejoin settles whether the replay delivered it.
    diverted: Vec<(usize, u64, u64)>,
}

/// Churn bookkeeping: one pending slot per node, plus the fault-clock
/// offset. Only allocated when the plan schedules rejoins, so crash-only
/// plans take the exact pre-churn code path.
struct ChurnState {
    offset: usize,
    pending: Vec<Option<PendingRejoin>>,
}

/// Per-round main-thread bookkeeping shared by the sequential and pooled
/// drivers — one implementation keeps the two paths bit-identical by
/// construction.
struct RoundBook<'a> {
    n: usize,
    max_rounds: usize,
    stats: &'a mut RunStats,
    transcripts: Option<&'a mut Vec<Transcript>>,
    /// Payload bits written in the previous round, still live in the read
    /// buffer during this round's step phase.
    prev_round_bits: u64,
    /// Whether any node has halted so far; skips the undelivered scan on
    /// the all-active prefix of a run (the common case).
    any_halted: bool,
    /// Rejoin/state-sync bookkeeping; `None` for rejoin-free plans.
    churn: Option<ChurnState>,
}

impl<'a> RoundBook<'a> {
    fn new(
        n: usize,
        max_rounds: usize,
        stats: &'a mut RunStats,
        transcripts: Option<&'a mut Vec<Transcript>>,
        plan: Option<&FaultPlan>,
        fault_offset: usize,
    ) -> Self {
        let churn = plan.filter(|p| p.has_rejoins()).map(|_| ChurnState {
            offset: fault_offset,
            pending: (0..n).map(|_| None).collect(),
        });
        Self {
            n,
            max_rounds,
            stats,
            transcripts,
            prev_round_bits: 0,
            any_halted: false,
            churn,
        }
    }

    /// Round-start churn pass, called right after `apply_crashes` on both
    /// driver paths (main thread only): register fresh crash victims the
    /// plan will rejoin, replay the missed window to nodes due back this
    /// round, and record the inbound column for every node still down.
    #[allow(clippy::too_many_arguments)]
    fn process_churn<P: NodeProgram>(
        &mut self,
        round: usize,
        plan: &FaultPlan,
        programs: &mut [P],
        ctxs: &[NodeCtx],
        halted: &mut [bool],
        outputs: &mut [Option<P::Output>],
        inbound: &BufView<'_>,
        report: &mut FaultReport,
    ) -> Result<(), SimError> {
        let n = self.n;
        let Self {
            churn,
            transcripts,
            stats,
            ..
        } = self;
        let Some(churn) = churn.as_mut() else {
            return Ok(());
        };
        let plan_round = churn.offset + round;
        // 1. Fresh crashes: `apply_crashes` just appended this round's
        // Crashed events at the report's tail. A victim with a scheduled
        // future rejoin gets a pending window; one without follows the
        // plain crash path untouched.
        for e in report.events.iter().rev() {
            let FaultEvent::Crashed { node, round: r, .. } = e else {
                break;
            };
            if *r != plan_round {
                break;
            }
            if let Some(pr) = plan.next_rejoin_after(*node, plan_round) {
                churn.pending[node.index()] = Some(PendingRejoin {
                    crash_round: round,
                    rejoin_round: round + (pr - plan_round),
                    window: Vec::new(),
                    diverted: Vec::new(),
                });
            }
        }
        // 2. Rejoins due at this round start, in node order (deterministic
        // across pool shapes by construction: main thread only).
        for v in 0..n {
            let due = churn.pending[v]
                .as_ref()
                .is_some_and(|p| p.rejoin_round == round);
            if !due {
                continue;
            }
            if let Some(p) = churn.pending[v].take() {
                replay_rejoin::<P>(
                    v,
                    plan_round,
                    p,
                    &mut programs[v],
                    &ctxs[v],
                    &mut halted[v],
                    &mut outputs[v],
                    transcripts.as_deref_mut(),
                    stats,
                    report,
                )?;
            }
        }
        // 3. Record the inbound column (what the node would have read this
        // round) for every node still awaiting its rejoin.
        for v in 0..n {
            if let Some(p) = churn.pending[v].as_mut() {
                let mut column = Vec::with_capacity(n);
                for u in 0..n {
                    column.push(if u == v {
                        BitString::new()
                    } else {
                        inbound.get(u, v).clone()
                    });
                }
                p.window.push(column);
            }
        }
        Ok(())
    }

    /// Charge the diverted traffic of nodes whose rejoin never fired (the
    /// run completed first): their windows were never replayed, so those
    /// payloads really were undelivered. Called once on [`Verdict::Done`].
    fn settle_churn(&mut self) {
        let Self { churn, stats, .. } = self;
        if let Some(churn) = churn.as_mut() {
            for slot in churn.pending.iter_mut() {
                if let Some(p) = slot.take() {
                    for (_, msgs, bits) in p.diverted {
                        stats.undelivered_messages += msgs;
                        stats.undelivered_bits += bits;
                    }
                }
            }
        }
    }

    /// Account for one completed step phase: `cur` is the matrix the nodes
    /// just wrote, `prev` the one they read, `halted` the post-step halt
    /// flags, `active` the pre-step activity mask.
    #[allow(clippy::too_many_arguments)]
    fn close_round(
        &mut self,
        round: usize,
        acc: ChunkAcc,
        cur: &BufView<'_>,
        prev: &BufView<'_>,
        halted: &[bool],
        active: &[bool],
        step_start: Instant,
        step_end: Instant,
    ) -> Verdict {
        let n = self.n;
        self.stats.messages += acc.messages;
        self.stats.bits += acc.bits;
        self.stats.max_message_bits = self.stats.max_message_bits.max(acc.max_message_bits);
        let live_bits = self.prev_round_bits + acc.bits;
        self.stats.peak_live_payload_bytes = self
            .stats
            .peak_live_payload_bytes
            .max((live_bits as usize).div_ceil(8));
        self.prev_round_bits = acc.bits;

        if let Some(ts) = self.transcripts.as_deref_mut() {
            record_round(ts, active, prev, cur, n);
        }

        let mut all_halted = true;
        for h in halted {
            all_halted &= *h;
            self.any_halted |= *h;
        }
        // Sends towards nodes that will never step again are dead on the
        // wire; charge them to the undelivered counters (they remain part of
        // `messages`/`bits` — see stats module docs for the semantics). A
        // receiver with a pending rejoin is *not* charged yet: its traffic
        // is diverted into the pending ledger, and the rejoin (or the run's
        // end) settles whether the replay actually delivered it.
        if self.any_halted && acc.messages > 0 {
            let mut pending = self.churn.as_mut().map(|c| &mut c.pending);
            for (u, h) in halted.iter().enumerate() {
                if !*h {
                    continue;
                }
                let mut msgs = 0u64;
                let mut bits = 0u64;
                for v in 0..n {
                    let m = cur.get(v, u);
                    if !m.is_empty() {
                        msgs += 1;
                        bits += m.len() as u64;
                    }
                }
                if msgs == 0 {
                    continue;
                }
                match pending.as_mut().and_then(|p| p[u].as_mut()) {
                    Some(p) => p.diverted.push((round, msgs, bits)),
                    None => {
                        self.stats.undelivered_messages += msgs;
                        self.stats.undelivered_bits += bits;
                    }
                }
            }
        }

        let now = Instant::now();
        self.stats.timing.step_ns += nanos(step_start, step_end);
        self.stats.timing.delivery_ns += nanos(step_end, now);
        self.stats.timing.round_wall_ns.push(nanos(step_start, now));

        if all_halted {
            self.stats.rounds = round;
            return Verdict::Done;
        }
        if round >= self.max_rounds {
            return Verdict::Limit;
        }
        Verdict::Continue
    }
}

fn nanos(from: Instant, to: Instant) -> u64 {
    to.saturating_duration_since(from).as_nanos() as u64
}

/// Best-effort extraction of a panic payload's message (the payloads of
/// `panic!("…")` are `&str` or `String`; anything else is opaque).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast_ref::<&str>() {
        Some(s) => (*s).to_string(),
        None => match payload.downcast_ref::<String>() {
            Some(s) => s.clone(),
            None => "<non-string panic payload>".to_string(),
        },
    }
}

/// Replay a rejoining node's missed window as state-sync rounds.
///
/// Each recorded column is re-delivered through an [`Inbox`] with the
/// *original* round index, so the program observes exactly the rounds it
/// missed; its sends go into discarded scratch (a dead node put nothing on
/// the wire, and the live cluster already ran those rounds without it). The
/// replay's bandwidth is charged to the `sync_*` counters and its receives
/// are backfilled into the node's transcript as received-only rounds, so
/// cc-testkit's auditor can price and cross-check the sync protocol.
///
/// A program may legitimately halt (or panic) mid-replay; the rounds it
/// never re-read stay on the undelivered ledger via the diverted tuples.
#[allow(clippy::too_many_arguments)]
fn replay_rejoin<P: NodeProgram>(
    v: usize,
    rejoin_plan_round: usize,
    p: PendingRejoin,
    prog: &mut P,
    ctx: &NodeCtx,
    halted: &mut bool,
    output: &mut Option<P::Output>,
    mut transcripts: Option<&mut Vec<Transcript>>,
    stats: &mut RunStats,
    report: &mut FaultReport,
) -> Result<(), SimError> {
    let n = ctx.n;
    let PendingRejoin {
        crash_round,
        window,
        diverted,
        ..
    } = p;
    let mut scratch = vec![BitString::new(); n];
    let mut sync_rounds = 0u64;
    let mut sync_messages = 0u64;
    let mut sync_bits = 0u64;
    let mut halted_at: Option<usize> = None;
    for (j, column) in window.into_iter().enumerate() {
        let t = crash_round + j;
        sync_rounds += 1;
        for m in column.iter() {
            if !m.is_empty() {
                sync_messages += 1;
                sync_bits += m.len() as u64;
            }
        }
        if let Some(ts) = transcripts.as_deref_mut() {
            let mut rt = RoundTranscript::default();
            for (u, m) in column.iter().enumerate() {
                if !m.is_empty() {
                    rt.received.push((NodeId::from(u), m.clone()));
                }
            }
            ts[v].rounds.push(rt);
        }
        for s in scratch.iter_mut() {
            s.clear();
        }
        let inbox = Inbox::from_slots(&column, v);
        let status = {
            let mut outbox = Outbox::new(&mut scratch, v);
            catch_unwind(AssertUnwindSafe(|| prog.step(ctx, t, &inbox, &mut outbox))).map_err(
                |payload| SimError::NodeProgramPanicked {
                    node: NodeId::from(v),
                    round: t,
                    message: panic_message(payload),
                },
            )?
        };
        if let Status::Halt(out) = status {
            *output = Some(out);
            halted_at = Some(t);
            break;
        }
    }
    if halted_at.is_none() {
        *halted = false;
    }
    // Settle the diverted ledger: a full replay re-delivered everything, a
    // mid-replay halt leaves the rounds written at or after the halt unread
    // (the halt round itself read the column written one round earlier).
    if let Some(t) = halted_at {
        for (written, msgs, bits) in diverted {
            if written >= t {
                stats.undelivered_messages += msgs;
                stats.undelivered_bits += bits;
            }
        }
    }
    // The sync counters flow into `RunStats` when the run's report is
    // tallied (`FaultReport::tally_into`), exactly like the crash counters.
    report.events.push(FaultEvent::Rejoined {
        node: NodeId::from(v),
        round: rejoin_plan_round,
        sync_rounds,
        sync_messages,
        sync_bits,
    });
    Ok(())
}

/// Step a single node and validate its outbox against the bandwidth bound.
/// `prev` is the full slot slice written last round (the node reads it
/// through a receiver-oriented inbox view); `cur` is the slot slice the
/// caller owns for writing, with `row` the node's row index *relative to*
/// that slice (the sequential driver passes the full buffer and `row == v`;
/// pooled workers pass their carved chunk and a chunk-relative row).
#[allow(clippy::too_many_arguments)]
fn step_one<P: NodeProgram, B: DeliveryBuf>(
    prog: &mut P,
    ctx: &NodeCtx,
    round: usize,
    prev: &[B::Slot],
    cur: &mut [B::Slot],
    row: usize,
    bandwidth: usize,
    broadcast_only: bool,
    topology: &[bool],
    halted: &mut bool,
    output: &mut Option<P::Output>,
    acc: &mut ChunkAcc,
) -> Result<(), SimError> {
    let n = ctx.n;
    let v = ctx.id.index();
    let inbox = B::inbox(prev, n, v);
    let status = {
        let mut outbox = B::outbox(cur, n, row, v);
        // A panicking program becomes a structured error, not a torn-down
        // pool: the engine (and its caller) must stay usable after a buggy
        // algorithm.
        catch_unwind(AssertUnwindSafe(|| {
            prog.step(ctx, round, &inbox, &mut outbox)
        }))
        .map_err(|payload| SimError::NodeProgramPanicked {
            node: ctx.id,
            round,
            message: panic_message(payload),
        })?
    };
    match status {
        Status::Continue => {}
        Status::Halt(out) => {
            *halted = true;
            *output = Some(out);
        }
    }
    B::seal_row(cur, n, row);
    if !topology.is_empty() {
        for (u, _m) in B::row_iter(cur, n, row, v) {
            if !topology[v * n + u] {
                return Err(SimError::TopologyViolated {
                    from: ctx.id,
                    to: NodeId::from(u),
                    round,
                });
            }
        }
    }
    if broadcast_only {
        // All non-empty outgoing messages must be identical, and a node
        // either addresses everyone or no one.
        let mut common: Option<&BitString> = None;
        let mut nonempty = 0;
        for (_u, m) in B::row_iter(cur, n, row, v) {
            nonempty += 1;
            match common {
                None => common = Some(m),
                Some(c) if c == m => {}
                _ => {
                    return Err(SimError::BroadcastViolated {
                        from: ctx.id,
                        round,
                    })
                }
            }
        }
        if nonempty != 0 && nonempty != n - 1 {
            return Err(SimError::BroadcastViolated {
                from: ctx.id,
                round,
            });
        }
    }
    for (u, m) in B::row_iter(cur, n, row, v) {
        if m.len() > bandwidth {
            return Err(SimError::BandwidthExceeded {
                from: ctx.id,
                to: NodeId::from(u),
                round,
                bits: m.len(),
                limit: bandwidth,
            });
        }
        acc.messages += 1;
        acc.bits += m.len() as u64;
        acc.max_message_bits = acc.max_message_bits.max(m.len());
    }
    Ok(())
}

/// Append this round's sends and receives to the transcripts of the nodes
/// that were active when the round started. Both views are sender-major:
/// this round node `v` received `prev.get(u, v)` from `u` and sent
/// `cur.get(v, u)` to `u`.
fn record_round(
    transcripts: &mut [Transcript],
    active: &[bool],
    prev: &BufView<'_>,
    cur: &BufView<'_>,
    n: usize,
) {
    for v in 0..n {
        if !active[v] {
            continue;
        }
        let mut rt = RoundTranscript::default();
        for u in 0..n {
            let got = prev.get(u, v);
            if !got.is_empty() {
                rt.received.push((NodeId::from(u), got.clone()));
            }
            let put = cur.get(v, u);
            if !put.is_empty() {
                rt.sent.push((NodeId::from(u), put.clone()));
            }
        }
        transcripts[v].rounds.push(rt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Inbox, Outbox};

    /// Every node broadcasts its id, collects everyone else's, outputs the sum.
    struct SumIds {
        seen: u64,
    }

    impl NodeProgram for SumIds {
        type Output = u64;

        fn step(
            &mut self,
            ctx: &NodeCtx,
            round: usize,
            inbox: &Inbox<'_>,
            outbox: &mut Outbox<'_>,
        ) -> Status<u64> {
            match round {
                0 => {
                    let mut m = BitString::new();
                    m.push_uint(ctx.id.0 as u64, ctx.id_width());
                    outbox.broadcast(&m);
                    self.seen = ctx.id.0 as u64;
                    Status::Continue
                }
                _ => {
                    for (_, msg) in inbox.iter() {
                        self.seen += msg.reader().read_uint(ctx.id_width()).unwrap();
                    }
                    Status::Halt(self.seen)
                }
            }
        }
    }

    fn sum_ids(n: usize) -> Vec<SumIds> {
        (0..n).map(|_| SumIds { seen: 0 }).collect()
    }

    #[test]
    fn broadcast_sum_of_ids() {
        let n = 8;
        let out = Engine::new(n).run(sum_ids(n)).unwrap();
        let expect = (0..n as u64).sum::<u64>();
        assert_eq!(out.outputs, vec![expect; n]);
        assert_eq!(out.stats.rounds, 1);
        assert_eq!(out.stats.messages, (n * (n - 1)) as u64);
        assert_eq!(out.stats.max_message_bits, 3);
        assert_eq!(*out.unanimous().unwrap(), expect);
        // Nobody halts while payloads are in flight here.
        assert_eq!(out.stats.undelivered_messages, 0);
        assert_eq!(out.stats.undelivered_bits, 0);
        // 56 three-bit messages live at once: ceil(168/8) bytes.
        assert_eq!(out.stats.peak_live_payload_bytes, 21);
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 23;
        let seq = Engine::new(n).run(sum_ids(n)).unwrap();
        let par = Engine::new(n)
            .with_threads_exact(4)
            .run(sum_ids(n))
            .unwrap();
        assert_eq!(seq.outputs, par.outputs);
        assert_eq!(seq.stats, par.stats);
    }

    struct Silent;
    impl NodeProgram for Silent {
        type Output = ();
        fn step(&mut self, _: &NodeCtx, _: usize, _: &Inbox<'_>, _: &mut Outbox<'_>) -> Status<()> {
            Status::Halt(())
        }
    }

    #[test]
    fn zero_round_algorithm() {
        let out = Engine::new(5)
            .run(vec![Silent, Silent, Silent, Silent, Silent])
            .unwrap();
        assert_eq!(out.stats.rounds, 0);
        assert_eq!(out.stats.messages, 0);
    }

    struct TooWide;
    impl NodeProgram for TooWide {
        type Output = ();
        fn step(
            &mut self,
            ctx: &NodeCtx,
            _: usize,
            _: &Inbox<'_>,
            ob: &mut Outbox<'_>,
        ) -> Status<()> {
            if ctx.id.0 == 0 {
                ob.send(NodeId(1), BitString::zeros(ctx.bandwidth + 1));
            }
            Status::Halt(())
        }
    }

    #[test]
    fn bandwidth_violation_detected() {
        let err = Engine::new(4)
            .run(vec![TooWide, TooWide, TooWide, TooWide])
            .unwrap_err();
        match err {
            SimError::BandwidthExceeded {
                from,
                to,
                bits,
                limit,
                ..
            } => {
                assert_eq!(from, NodeId(0));
                assert_eq!(to, NodeId(1));
                assert_eq!(bits, limit + 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parallel_surfaces_the_same_error_as_sequential() {
        let seq = Engine::new(8)
            .run((0..8).map(|_| TooWide).collect::<Vec<_>>())
            .unwrap_err();
        let par = Engine::new(8)
            .with_threads_exact(4)
            .run((0..8).map(|_| TooWide).collect::<Vec<_>>())
            .unwrap_err();
        assert_eq!(seq, par);
    }

    struct Forever;
    impl NodeProgram for Forever {
        type Output = ();
        fn step(&mut self, _: &NodeCtx, _: usize, _: &Inbox<'_>, _: &mut Outbox<'_>) -> Status<()> {
            Status::Continue
        }
    }

    #[test]
    fn round_limit_enforced() {
        let err = Engine::new(2)
            .with_max_rounds(10)
            .run(vec![Forever, Forever])
            .unwrap_err();
        assert_eq!(err, SimError::RoundLimit { limit: 10 });
    }

    #[test]
    fn round_limit_enforced_in_parallel() {
        let err = Engine::new(8)
            .with_threads_exact(4)
            .with_max_rounds(3)
            .run((0..8).map(|_| Forever).collect::<Vec<_>>())
            .unwrap_err();
        assert_eq!(err, SimError::RoundLimit { limit: 3 });
    }

    #[test]
    fn wrong_program_count_rejected() {
        let err = Engine::new(3).run(vec![Silent, Silent]).unwrap_err();
        assert_eq!(
            err,
            SimError::WrongProgramCount {
                expected: 3,
                got: 2
            }
        );
    }

    /// Two nodes ping-pong a counter for a fixed number of rounds; checks
    /// that messages cross exactly one round later.
    struct PingPong {
        rounds: usize,
    }
    impl NodeProgram for PingPong {
        type Output = u64;
        fn step(
            &mut self,
            ctx: &NodeCtx,
            round: usize,
            inbox: &Inbox<'_>,
            ob: &mut Outbox<'_>,
        ) -> Status<u64> {
            let peer = NodeId(1 - ctx.id.0);
            let got = if round == 0 {
                0
            } else {
                inbox
                    .from(peer)
                    .reader()
                    .read_uint(ctx.bandwidth.min(8))
                    .unwrap_or(0)
            };
            if round == self.rounds {
                return Status::Halt(got);
            }
            let mut m = BitString::new();
            m.push_uint((got + 1).min(255), 8.min(ctx.bandwidth));
            ob.send(peer, m);
            Status::Continue
        }
    }

    #[test]
    fn ping_pong_counts_rounds() {
        let n = 2;
        let out = Engine::new(n)
            .with_bandwidth(8)
            .run(vec![PingPong { rounds: 5 }, PingPong { rounds: 5 }])
            .unwrap();
        // After 5 exchanges each node has seen a counter of 5.
        assert_eq!(out.outputs, vec![5, 5]);
        assert_eq!(out.stats.rounds, 5);
    }

    #[test]
    fn max_rounds_boundary_is_exact() {
        // A program halting at step index 5 uses exactly 5 communication
        // rounds; a limit of 5 must admit it...
        let out = Engine::new(2)
            .with_bandwidth(8)
            .with_max_rounds(5)
            .run(vec![PingPong { rounds: 5 }, PingPong { rounds: 5 }])
            .unwrap();
        assert_eq!(out.stats.rounds, 5);
        // ...and a limit of 4 must reject it before a sixth exchange.
        let err = Engine::new(2)
            .with_bandwidth(8)
            .with_max_rounds(4)
            .run(vec![PingPong { rounds: 5 }, PingPong { rounds: 5 }])
            .unwrap_err();
        assert_eq!(err, SimError::RoundLimit { limit: 4 });
    }

    #[test]
    fn max_rounds_zero_admits_zero_round_algorithms() {
        let out = Engine::new(3)
            .with_max_rounds(0)
            .run(vec![Silent, Silent, Silent])
            .unwrap();
        assert_eq!(out.stats.rounds, 0);
        let err = Engine::new(2)
            .with_max_rounds(0)
            .run(vec![Forever, Forever])
            .unwrap_err();
        assert_eq!(err, SimError::RoundLimit { limit: 0 });
    }

    /// Node 0 halts immediately; node 1 sends it a 3-bit payload in round 0
    /// (accepted on the wire, never read) and halts one round later.
    struct EagerAndSender;
    impl NodeProgram for EagerAndSender {
        type Output = ();
        fn step(
            &mut self,
            ctx: &NodeCtx,
            round: usize,
            _: &Inbox<'_>,
            ob: &mut Outbox<'_>,
        ) -> Status<()> {
            if ctx.id.0 == 0 {
                return Status::Halt(());
            }
            if round == 0 {
                ob.send(NodeId(0), BitString::from_bits([true, false, true]));
                Status::Continue
            } else {
                Status::Halt(())
            }
        }
    }

    #[test]
    fn undelivered_payloads_are_accounted() {
        let out = Engine::new(2)
            .with_bandwidth(3)
            .run(vec![EagerAndSender, EagerAndSender])
            .unwrap();
        // The payload is charged at send time...
        assert_eq!(out.stats.messages, 1);
        assert_eq!(out.stats.bits, 3);
        // ...and also recognised as dead on the wire: its recipient halted
        // in the same round it was sent.
        assert_eq!(out.stats.undelivered_messages, 1);
        assert_eq!(out.stats.undelivered_bits, 3);
        assert_eq!(out.stats.rounds, 1);
    }

    /// Node v halts at step v, counting every message it received; active
    /// nodes broadcast every round. Staggered halting exercises undelivered
    /// accounting and the clearing of halted nodes' buffer rows.
    struct Staggered {
        received: u64,
    }
    impl NodeProgram for Staggered {
        type Output = u64;
        fn step(
            &mut self,
            ctx: &NodeCtx,
            round: usize,
            inbox: &Inbox<'_>,
            ob: &mut Outbox<'_>,
        ) -> Status<u64> {
            self.received += inbox.iter().count() as u64;
            if round >= ctx.id.index() {
                return Status::Halt(self.received);
            }
            let mut m = BitString::new();
            m.push_uint(round as u64 & 0xff, 8);
            ob.broadcast(&m);
            Status::Continue
        }
    }

    /// Expected receive count for node v: at step r (1 ≤ r ≤ v) it hears
    /// from every u ≠ v that was still sending in round r-1, i.e. u > r-1.
    fn staggered_expect(n: usize) -> Vec<u64> {
        (0..n)
            .map(|v| {
                (1..=v)
                    .map(|r| (r..n).filter(|u| *u != v).count() as u64)
                    .sum()
            })
            .collect()
    }

    #[test]
    fn staggered_halts_are_bit_identical_across_thread_counts() {
        let n = 9;
        let mk = || {
            (0..n)
                .map(|_| Staggered { received: 0 })
                .collect::<Vec<_>>()
        };
        let run = |threads: usize| {
            Engine::new(n)
                .with_bandwidth(8)
                .with_threads_exact(threads)
                .with_transcripts(true)
                .run(mk())
                .unwrap()
        };
        let seq = run(1);
        assert_eq!(seq.outputs, staggered_expect(n), "ghost or lost deliveries");
        assert!(seq.stats.undelivered_messages > 0, "halted receivers exist");
        for threads in [2, 3, 4] {
            let par = run(threads);
            assert_eq!(seq.outputs, par.outputs, "threads={threads}");
            assert_eq!(seq.stats, par.stats, "threads={threads}");
            assert_eq!(seq.transcripts, par.transcripts, "threads={threads}");
        }
    }

    #[test]
    fn timing_is_recorded_but_ignored_by_equality() {
        let out = Engine::new(8).run(sum_ids(8)).unwrap();
        // One wall-time entry per step phase: rounds + the halting step.
        assert_eq!(out.stats.timing.round_wall_ns.len(), out.stats.rounds + 1);
        assert_eq!(
            out.stats.timing.total_ns(),
            out.stats.timing.step_ns + out.stats.timing.delivery_ns
        );
        let mut other = out.stats.clone();
        other.timing = Default::default();
        assert_eq!(out.stats, other);
    }

    struct Bomb;
    impl NodeProgram for Bomb {
        type Output = ();
        fn step(
            &mut self,
            ctx: &NodeCtx,
            round: usize,
            _: &Inbox<'_>,
            _: &mut Outbox<'_>,
        ) -> Status<()> {
            if round == 1 && ctx.id.0 == 7 {
                panic!("node exploded");
            }
            if round >= 2 {
                return Status::Halt(());
            }
            Status::Continue
        }
    }

    #[test]
    fn node_panic_is_a_structured_error_and_engine_stays_usable() {
        // The same engine value must survive a panicking program: run clean,
        // panic, then run clean again — sequentially and on the pool (no
        // poisoned barrier, no stuck parked workers).
        for threads in [1usize, 4] {
            let engine = Engine::new(16).with_threads_exact(threads);
            let n = 16;
            engine.run(sum_ids(n)).unwrap();
            let err = engine
                .run((0..n).map(|_| Bomb).collect::<Vec<_>>())
                .unwrap_err();
            match &err {
                SimError::NodeProgramPanicked {
                    node,
                    round,
                    message,
                } => {
                    assert_eq!(*node, NodeId(7), "threads={threads}");
                    assert_eq!(*round, 1, "threads={threads}");
                    assert!(message.contains("node exploded"), "got {message:?}");
                }
                other => panic!("unexpected error {other:?} (threads={threads})"),
            }
            let out = engine.run(sum_ids(n)).unwrap();
            assert_eq!(out.outputs, vec![(0..n as u64).sum::<u64>(); n]);
        }
    }

    #[test]
    fn panic_error_is_identical_across_pool_shapes() {
        let seq = Engine::new(16)
            .run((0..16).map(|_| Bomb).collect::<Vec<_>>())
            .unwrap_err();
        let par = Engine::new(16)
            .with_threads_exact(4)
            .run((0..16).map(|_| Bomb).collect::<Vec<_>>())
            .unwrap_err();
        assert_eq!(seq, par);
    }

    /// Spends real wall-clock every round and never halts.
    struct Sleeper;
    impl NodeProgram for Sleeper {
        type Output = ();
        fn step(&mut self, _: &NodeCtx, _: usize, _: &Inbox<'_>, _: &mut Outbox<'_>) -> Status<()> {
            std::thread::sleep(Duration::from_millis(2));
            Status::Continue
        }
    }

    #[test]
    fn deadline_aborts_runaway_programs() {
        for threads in [1usize, 4] {
            let limit = Duration::from_millis(20);
            let err = Engine::new(8)
                .with_threads_exact(threads)
                .with_deadline(limit)
                .run((0..8).map(|_| Sleeper).collect::<Vec<_>>())
                .unwrap_err();
            assert_eq!(
                err,
                SimError::DeadlineExceeded { limit },
                "threads={threads}"
            );
        }
        // A fast run under a generous deadline is unaffected.
        Engine::new(8)
            .with_deadline(Duration::from_secs(60))
            .run(sum_ids(8))
            .unwrap();
    }

    #[test]
    fn cancel_flag_aborts_at_the_next_round_boundary() {
        for threads in [1usize, 4] {
            // Pre-set flag: the run aborts after its very first round.
            let flag = Arc::new(AtomicBool::new(true));
            let err = Engine::new(8)
                .with_threads_exact(threads)
                .with_cancel(Arc::clone(&flag))
                .run((0..8).map(|_| Sleeper).collect::<Vec<_>>())
                .unwrap_err();
            assert_eq!(err, SimError::Cancelled { round: 0 }, "threads={threads}");
        }
        // An unset flag is transparent: the run completes normally.
        let flag = Arc::new(AtomicBool::new(false));
        let out = Engine::new(8).with_cancel(flag).run(sum_ids(8)).unwrap();
        assert_eq!(out.stats.rounds, 1);
    }

    #[test]
    fn cancel_flag_set_from_another_thread_stops_a_running_sim() {
        let flag = Arc::new(AtomicBool::new(false));
        let trigger = Arc::clone(&flag);
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            trigger.store(true, Ordering::Relaxed);
        });
        let err = Engine::new(8)
            .with_cancel(flag)
            .run((0..8).map(|_| Sleeper).collect::<Vec<_>>())
            .unwrap_err();
        killer.join().unwrap();
        assert!(matches!(err, SimError::Cancelled { .. }), "got {err:?}");
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_no_plan() {
        let n = 9;
        let mk = || {
            (0..n)
                .map(|_| Staggered { received: 0 })
                .collect::<Vec<_>>()
        };
        for threads in [1usize, 4] {
            let base = Engine::new(n)
                .with_bandwidth(8)
                .with_threads_exact(threads)
                .with_transcripts(true);
            let plain = base.clone().run(mk()).unwrap();
            let planned = base
                .with_fault_plan(crate::fault::FaultPlan::new(99))
                .run(mk())
                .unwrap();
            assert_eq!(plain.outputs, planned.outputs, "threads={threads}");
            assert_eq!(plain.stats, planned.stats, "threads={threads}");
            assert_eq!(plain.transcripts, planned.transcripts, "threads={threads}");
            assert!(planned.faults.is_empty());
        }
    }

    #[test]
    fn crashed_node_fails_run_but_not_run_faulted() {
        use crate::fault::FaultPlan;
        let n = 8;
        let mk = || {
            (0..n)
                .map(|_| Staggered { received: 0 })
                .collect::<Vec<_>>()
        };
        let engine = Engine::new(n)
            .with_bandwidth(8)
            .with_fault_plan(FaultPlan::new(1).crash(NodeId(6), 2));
        let err = engine.run(mk()).unwrap_err();
        assert_eq!(
            err,
            SimError::NodeCrashed {
                node: NodeId(6),
                round: 2
            }
        );
        let out = engine.run_faulted(mk()).unwrap();
        assert!(out.outputs[6].is_none(), "crashed node has no output");
        assert_eq!(out.outputs.iter().filter(|o| o.is_some()).count(), n - 1);
        assert_eq!(out.stats.dead_nodes, 1);
        assert_eq!(out.faults.crashed_nodes(), vec![NodeId(6)]);
        // The crash victim was still being broadcast to: its unread inbound
        // payloads are charged as undelivered.
        assert!(out.stats.undelivered_messages > 0);
    }

    #[test]
    fn dropping_every_message_silences_the_clique() {
        use crate::fault::FaultPlan;
        let n = 8;
        let out = Engine::new(n)
            .with_fault_plan(FaultPlan::new(3).drop_messages(1.0))
            .run(sum_ids(n))
            .unwrap();
        // Round-1 inboxes are empty, so every node only sees its own id.
        assert_eq!(out.outputs, (0..n as u64).collect::<Vec<_>>());
        assert_eq!(out.stats.dropped_messages, (n * (n - 1)) as u64);
        // Sent-based accounting still charges the wire for what was sent.
        assert_eq!(out.stats.messages, (n * (n - 1)) as u64);
    }

    #[test]
    fn faulted_runs_are_identical_across_pool_shapes() {
        use crate::fault::FaultPlan;
        let n = 12;
        let mk = || {
            (0..n)
                .map(|_| Staggered { received: 0 })
                .collect::<Vec<_>>()
        };
        let plan = FaultPlan::new(2024)
            .crash(NodeId(9), 3)
            .drop_messages(0.2)
            .corrupt_messages(0.1)
            .truncate_messages(0.1);
        let run = |threads: usize| {
            Engine::new(n)
                .with_bandwidth(8)
                .with_threads_exact(threads)
                .with_transcripts(true)
                .with_fault_plan(plan.clone())
                .run_faulted(mk())
                .unwrap()
        };
        let seq = run(1);
        assert!(
            seq.stats.dropped_messages > 0 && seq.stats.corrupted_messages > 0,
            "plan too weak to exercise the sweeps: {:?}",
            seq.stats
        );
        for threads in [4usize, 7] {
            let par = run(threads);
            assert_eq!(seq.outputs, par.outputs, "threads={threads}");
            assert_eq!(seq.stats, par.stats, "threads={threads}");
            assert_eq!(seq.faults, par.faults, "threads={threads}");
            assert_eq!(seq.transcripts, par.transcripts, "threads={threads}");
        }
    }

    /// Every node broadcasts an 8-bit payload each round and halts at a
    /// fixed round with its receive count — the probe for rejoin state
    /// sync: a full replay must leave the rejoiner's count equal to an
    /// uncrashed node's.
    struct Chatter {
        received: u64,
        halt_round: usize,
    }
    impl NodeProgram for Chatter {
        type Output = u64;
        fn step(
            &mut self,
            _ctx: &NodeCtx,
            round: usize,
            inbox: &Inbox<'_>,
            ob: &mut Outbox<'_>,
        ) -> Status<u64> {
            self.received += inbox.iter().count() as u64;
            if round >= self.halt_round {
                return Status::Halt(self.received);
            }
            let mut m = BitString::new();
            m.push_uint(round as u64 & 0xff, 8);
            ob.broadcast(&m);
            Status::Continue
        }
    }

    #[test]
    fn rejoined_node_is_state_synced_from_the_missed_window() {
        use crate::fault::FaultPlan;
        let n = 12;
        let halt_round = 6usize;
        let mk = || {
            (0..n)
                .map(|_| Chatter {
                    received: 0,
                    halt_round,
                })
                .collect::<Vec<_>>()
        };
        let plan = FaultPlan::new(7)
            .crash(NodeId(2), 2)
            .rejoin(NodeId(2), 4)
            .expect("crash precedes rejoin");
        let run = |threads: usize, mode: DeliveryMode| {
            Engine::new(n)
                .with_bandwidth(8)
                .with_threads_exact(threads)
                .with_transcripts(true)
                .with_delivery(mode)
                .with_fault_plan(plan.clone())
                .run_faulted(mk())
                .unwrap()
        };
        let seq = run(1, DeliveryMode::Dense);
        let peers = (n - 1) as u64;
        // The replay re-delivered rounds 2 and 3, so the rejoiner's count
        // matches a node that never crashed; everyone else is short exactly
        // the two broadcasts node 2 never put on the wire while down.
        assert_eq!(seq.outputs[2], Some(halt_round as u64 * peers));
        for v in (0..n).filter(|v| *v != 2) {
            assert_eq!(
                seq.outputs[v],
                Some(halt_round as u64 * peers - 2),
                "node {v}"
            );
        }
        assert_eq!(seq.stats.dead_nodes, 1);
        assert_eq!(seq.stats.rejoined_nodes, 1);
        assert_eq!(seq.stats.sync_rounds, 2);
        assert_eq!(seq.stats.sync_messages, 2 * peers);
        assert_eq!(seq.stats.sync_bits, 2 * peers * 8);
        // The in-flight column charged at crash time stays on the
        // undelivered ledger (see fault module docs); the diverted
        // down-window traffic was re-delivered by the replay and is not.
        assert_eq!(seq.stats.undelivered_messages, peers);
        assert_eq!(seq.stats.undelivered_bits, peers * 8);
        assert!(
            seq.faults.events.iter().any(|e| matches!(
                e,
                FaultEvent::Rejoined {
                    node: NodeId(2),
                    round: 4,
                    sync_rounds: 2,
                    ..
                }
            )),
            "missing Rejoined event: {:?}",
            seq.faults.events
        );
        // Transcript backfill: the rejoiner's missed rounds appear as
        // received-only entries, leaving every transcript the same length
        // and every index aligned with its round number.
        let ts = seq.transcripts.as_ref().unwrap();
        assert_eq!(ts[2].rounds.len(), ts[0].rounds.len());
        for r in [2usize, 3] {
            assert!(ts[2].rounds[r].sent.is_empty(), "round {r} was a replay");
            assert_eq!(ts[2].rounds[r].received.len(), n - 1, "round {r}");
        }
        // Bit-identical across pool shapes and delivery backends.
        for threads in [1usize, 4, 7] {
            for mode in [DeliveryMode::Dense, DeliveryMode::Sparse] {
                let got = run(threads, mode);
                assert_eq!(seq.outputs, got.outputs, "threads={threads} {mode:?}");
                assert_eq!(seq.stats, got.stats, "threads={threads} {mode:?}");
                assert_eq!(seq.faults, got.faults, "threads={threads} {mode:?}");
                assert_eq!(
                    seq.transcripts, got.transcripts,
                    "threads={threads} {mode:?}"
                );
            }
        }
    }

    #[test]
    fn mid_replay_halt_keeps_unread_sync_traffic_undelivered() {
        use crate::fault::FaultPlan;
        // Node 5 halts at round 3, its peers at round 8. Crashing it at
        // round 1 with a rejoin at round 6 puts its halt round strictly
        // inside the replay window: the replay steps rounds 1, 2 and halts
        // at 3, so the columns written in rounds 3..6 are never read and
        // must land back on the undelivered ledger.
        let n = 8;
        let mk = || {
            (0..n)
                .map(|v| Chatter {
                    received: 0,
                    halt_round: if v == 5 { 3 } else { 8 },
                })
                .collect::<Vec<_>>()
        };
        let plan = FaultPlan::new(1)
            .crash(NodeId(5), 1)
            .rejoin(NodeId(5), 6)
            .expect("crash precedes rejoin");
        let out = Engine::new(n)
            .with_bandwidth(8)
            .with_fault_plan(plan)
            .run_faulted(mk())
            .unwrap();
        let peers = (n - 1) as u64;
        // The replay stepped rounds 1, 2, 3 and halted at 3 — the node
        // still produced an output (its three replayed inboxes) and counts
        // as rejoined; sync priced all three replayed rounds.
        assert_eq!(out.outputs[5], Some(3 * peers));
        assert_eq!(out.stats.rejoined_nodes, 1);
        assert_eq!(out.stats.sync_rounds, 3);
        // Undelivered: the in-flight column charged at crash time (written
        // round 0), the diverted columns written in rounds 3, 4, 5 the
        // replay never reached, and the post-halt columns written in rounds
        // 6 and 7 while the peers kept broadcasting — six peer-columns in
        // all. The diverted rounds 1 and 2 were re-read by the replay.
        assert_eq!(out.stats.undelivered_messages, 6 * peers);
        assert_eq!(out.stats.undelivered_bits, 6 * peers * 8);
    }

    #[test]
    fn faulted_unanimity_is_over_survivors() {
        use crate::fault::FaultPlan;
        let n = 6;
        let out = Engine::new(n)
            .with_fault_plan(FaultPlan::new(0).crash(NodeId(2), 1))
            .run_faulted(sum_ids(n))
            .unwrap();
        // Node 2 received round-0 broadcasts but crashed before reading
        // them; survivors all computed the full sum.
        let expect = (0..n as u64).sum::<u64>();
        assert_eq!(out.unanimous(), Some(&expect));
        assert_eq!(out.survivors().count(), n - 1);
    }

    #[test]
    fn transcripts_record_both_directions() {
        let n = 4;
        let out = Engine::new(n)
            .with_transcripts(true)
            .run(sum_ids(n))
            .unwrap();
        let ts = out.transcripts.unwrap();
        assert_eq!(ts.len(), n);
        for (v, t) in ts.iter().enumerate() {
            assert_eq!(t.rounds.len(), 2, "node {v} took part in 2 step phases");
            assert_eq!(t.rounds[0].sent.len(), n - 1);
            assert_eq!(t.rounds[0].received.len(), 0);
            assert_eq!(t.rounds[1].sent.len(), 0);
            assert_eq!(t.rounds[1].received.len(), n - 1);
        }
        // Sent/received must be symmetric across nodes.
        for v in 0..n {
            for (dst, msg) in &ts[v].rounds[0].sent {
                let got = ts[dst.index()].rounds[1]
                    .received
                    .iter()
                    .find(|(src, _)| src.index() == v)
                    .expect("matching receive");
                assert_eq!(&got.1, msg);
            }
        }
    }

    /// Broadcasts its id (legal in broadcast mode).
    struct Broadcaster;
    impl NodeProgram for Broadcaster {
        type Output = ();
        fn step(
            &mut self,
            ctx: &NodeCtx,
            round: usize,
            _: &Inbox<'_>,
            ob: &mut Outbox<'_>,
        ) -> Status<()> {
            if round == 0 {
                let mut m = BitString::new();
                m.push_uint(ctx.id.0 as u64, ctx.id_width());
                ob.broadcast(&m);
                Status::Continue
            } else {
                Status::Halt(())
            }
        }
    }

    /// Sends distinct messages (illegal in broadcast mode).
    struct Unicaster;
    impl NodeProgram for Unicaster {
        type Output = ();
        fn step(
            &mut self,
            ctx: &NodeCtx,
            _: usize,
            _: &Inbox<'_>,
            ob: &mut Outbox<'_>,
        ) -> Status<()> {
            for u in 0..ctx.n {
                if u != ctx.id.index() {
                    let mut m = BitString::new();
                    m.push_uint((u % 2) as u64, 1);
                    ob.send(NodeId::from(u), m);
                }
            }
            Status::Halt(())
        }
    }

    #[test]
    fn broadcast_mode_accepts_broadcasts() {
        let out = Engine::new(5)
            .broadcast_only(true)
            .run((0..5).map(|_| Broadcaster).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(out.stats.rounds, 1);
    }

    #[test]
    fn broadcast_mode_rejects_unicasts() {
        let err = Engine::new(5)
            .broadcast_only(true)
            .run((0..5).map(|_| Unicaster).collect::<Vec<_>>())
            .unwrap_err();
        assert!(
            matches!(err, SimError::BroadcastViolated { .. }),
            "got {err:?}"
        );
        // The same program is fine in the unrestricted model.
        Engine::new(5)
            .run((0..5).map(|_| Unicaster).collect::<Vec<_>>())
            .unwrap();
    }

    #[test]
    fn congest_topology_enforced() {
        // A 4-path topology: node 0 may talk to 1 only.
        let n = 4;
        let mut adj = vec![false; n * n];
        for v in 1..n {
            adj[(v - 1) * n + v] = true;
            adj[v * n + (v - 1)] = true;
        }
        struct SendTo(u32);
        impl NodeProgram for SendTo {
            type Output = ();
            fn step(
                &mut self,
                ctx: &NodeCtx,
                _: usize,
                _: &Inbox<'_>,
                ob: &mut Outbox<'_>,
            ) -> Status<()> {
                if ctx.id.0 == 0 {
                    let mut m = BitString::new();
                    m.push(true);
                    ob.send(NodeId(self.0), m);
                }
                Status::Halt(())
            }
        }
        // Legal: 0 → 1.
        Engine::new(n)
            .with_topology(adj.clone())
            .run(vec![SendTo(1), SendTo(1), SendTo(1), SendTo(1)])
            .unwrap();
        // Illegal: 0 → 3 (not adjacent on the path).
        let err = Engine::new(n)
            .with_topology(adj)
            .run(vec![SendTo(3), SendTo(3), SendTo(3), SendTo(3)])
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::TopologyViolated {
                from: NodeId(0),
                to: NodeId(3),
                ..
            }
        ));
    }

    #[test]
    fn broadcast_mode_rejects_partial_addressing() {
        struct Partial;
        impl NodeProgram for Partial {
            type Output = ();
            fn step(
                &mut self,
                ctx: &NodeCtx,
                _: usize,
                _: &Inbox<'_>,
                ob: &mut Outbox<'_>,
            ) -> Status<()> {
                if ctx.id.0 == 0 {
                    let mut m = BitString::new();
                    m.push(true);
                    ob.send(NodeId(1), m); // only one recipient
                }
                Status::Halt(())
            }
        }
        let err = Engine::new(4)
            .broadcast_only(true)
            .run((0..4).map(|_| Partial).collect::<Vec<_>>())
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::BroadcastViolated {
                from: NodeId(0),
                ..
            }
        ));
    }

    #[test]
    fn single_node_clique_is_degenerate_but_legal() {
        struct Lonely;
        impl NodeProgram for Lonely {
            type Output = u32;
            fn step(
                &mut self,
                ctx: &NodeCtx,
                _: usize,
                _: &Inbox<'_>,
                _: &mut Outbox<'_>,
            ) -> Status<u32> {
                Status::Halt(ctx.id.0)
            }
        }
        let out = Engine::new(1).run(vec![Lonely]).unwrap();
        assert_eq!(out.outputs, vec![0]);
        assert_eq!(out.stats.rounds, 0);
    }

    #[test]
    fn empty_byzantine_plan_is_transparent() {
        use crate::byzantine::ByzantinePlan;
        let n = 9;
        let bare = Engine::new(n)
            .with_transcripts(true)
            .run(sum_ids(n))
            .unwrap();
        let planned = Engine::new(n)
            .with_transcripts(true)
            .with_byzantine_plan(ByzantinePlan::new(99))
            .run_byzantine(sum_ids(n))
            .unwrap();
        assert_eq!(
            planned
                .outputs
                .iter()
                .flatten()
                .copied()
                .collect::<Vec<_>>(),
            bare.outputs
        );
        assert_eq!(planned.stats, bare.stats);
        assert_eq!(planned.transcripts, bare.transcripts);
        assert!(planned.byzantine.is_empty());
        assert_eq!(planned.stats.forged_messages, 0);
        assert_eq!(planned.stats.traitor_nodes, 0);
    }

    #[test]
    fn byzantine_garble_disrupts_recipients_not_the_traitor() {
        use crate::byzantine::ByzantinePlan;
        let n = 8;
        let honest = Engine::new(n).run(sum_ids(n)).unwrap();
        let expect = (0..n as u64).sum::<u64>();
        assert_eq!(honest.outputs, vec![expect; n]);

        let plan = ByzantinePlan::new(17).traitor(NodeId(2)).garble(1.0);
        let out = Engine::new(n)
            .with_byzantine_plan(plan.clone())
            .run_byzantine(sum_ids(n))
            .unwrap();
        // Transcripts/stats still record the traitor's honest sends; the
        // rewrite log records the lies.
        assert_eq!(out.stats.messages, honest.stats.messages);
        assert_eq!(out.stats.forged_messages, (n - 1) as u64);
        assert_eq!(out.stats.traitor_nodes, 1);
        assert_eq!(out.byzantine.liars(), vec![NodeId(2)]);
        // The traitor itself read honest messages, so it still sums right.
        assert_eq!(out.outputs[2], Some(expect));
        // The paper's all-node unanimity fails; only honest agreement is a
        // meaningful question under this adversary.
        assert!(out.unanimous().is_none() || out.honest_unanimous(&plan).is_some());
    }

    #[test]
    fn byzantine_rewrites_are_pool_shape_independent() {
        use crate::byzantine::ByzantinePlan;
        let n = 15; // ≥ 2·7 keeps the 7-worker pool genuinely engaged
        let plan = ByzantinePlan::new(31)
            .with_random_traitors(n, 4, &[])
            .garble(0.5)
            .replay(0.3)
            .silence(0.2);
        let run = |threads: usize| {
            Engine::new(n)
                .with_transcripts(true)
                .with_threads_exact(threads)
                .with_byzantine_plan(plan.clone())
                .run_byzantine(sum_ids(n))
                .unwrap()
        };
        let base = run(1);
        assert!(!base.byzantine.is_empty());
        for threads in [4, 7] {
            let other = run(threads);
            assert_eq!(base.outputs, other.outputs, "{threads} workers");
            assert_eq!(base.stats, other.stats, "{threads} workers");
            assert_eq!(base.transcripts, other.transcripts, "{threads} workers");
            assert_eq!(base.byzantine, other.byzantine, "{threads} workers");
        }
    }

    #[test]
    fn byzantine_composes_with_link_faults() {
        use crate::byzantine::ByzantinePlan;
        let n = 10;
        let byz = ByzantinePlan::new(1).traitor(NodeId(0)).garble(1.0);
        let faults = FaultPlan::new(2).drop_messages(0.3);
        let out = Engine::new(n)
            .with_byzantine_plan(byz)
            .with_fault_plan(faults)
            .run_byzantine(sum_ids(n))
            .unwrap();
        assert_eq!(out.stats.forged_messages, (n - 1) as u64);
        assert!(out.stats.dropped_messages > 0, "both adversaries fired");
        assert!(!out.faults.is_empty());
        assert!(!out.byzantine.is_empty());
    }

    #[test]
    fn sparse_and_dense_backends_are_bit_identical() {
        use crate::byzantine::ByzantinePlan;
        let n = 15;
        let mk = || {
            (0..n)
                .map(|_| Staggered { received: 0 })
                .collect::<Vec<_>>()
        };
        // Staggered halting + link faults + Byzantine rewrites on the same
        // run is the adversarial worst case for the sparse override logic.
        let faults = FaultPlan::new(2024)
            .crash(NodeId(9), 3)
            .drop_messages(0.2)
            .corrupt_messages(0.1)
            .truncate_messages(0.1);
        let byz = ByzantinePlan::new(31)
            .with_random_traitors(n, 3, &[])
            .garble(0.5)
            .replay(0.3)
            .silence(0.2);
        let run = |mode: DeliveryMode, threads: usize| {
            Engine::new(n)
                .with_bandwidth(8)
                .with_threads_exact(threads)
                .with_transcripts(true)
                .with_fault_plan(faults.clone())
                .with_byzantine_plan(byz.clone())
                .with_delivery(mode)
                .run_byzantine(mk())
                .unwrap()
        };
        let base = run(DeliveryMode::Dense, 1);
        assert!(base.stats.dropped_messages > 0, "faults fired");
        assert!(!base.byzantine.is_empty(), "rewrites fired");
        for mode in [
            DeliveryMode::Dense,
            DeliveryMode::Sparse,
            DeliveryMode::Auto,
        ] {
            for threads in [1usize, 4, 7] {
                let other = run(mode, threads);
                let tag = mode.tag();
                assert_eq!(base.outputs, other.outputs, "{tag}/{threads}");
                assert_eq!(base.stats, other.stats, "{tag}/{threads}");
                assert_eq!(base.transcripts, other.transcripts, "{tag}/{threads}");
                assert_eq!(base.faults, other.faults, "{tag}/{threads}");
                assert_eq!(base.byzantine, other.byzantine, "{tag}/{threads}");
            }
        }
    }

    #[test]
    fn auto_delivery_resolution_follows_the_density_heuristic() {
        let n = 16;
        // Unrestricted clique: every pair may exchange messages — dense.
        assert_eq!(Engine::new(n).resolved_delivery(), DeliveryMode::Dense);
        // Broadcast-only runs carry one payload per sender — sparse.
        assert_eq!(
            Engine::new(n).broadcast_only(true).resolved_delivery(),
            DeliveryMode::Sparse
        );
        // A ring keeps 2 of n-1 potential edges per node — sparse.
        let mut ring = vec![false; n * n];
        for v in 0..n {
            ring[v * n + (v + 1) % n] = true;
            ring[v * n + (v + n - 1) % n] = true;
        }
        assert_eq!(
            Engine::new(n).with_topology(ring).resolved_delivery(),
            DeliveryMode::Sparse
        );
        // A crash-heavy fault plan empties half the rows — sparse.
        let mut plan = FaultPlan::new(0);
        for v in 0..n / 2 {
            plan = plan.crash(NodeId::from(v), 1);
        }
        assert_eq!(
            Engine::new(n)
                .with_fault_plan(plan.clone())
                .resolved_delivery(),
            DeliveryMode::Sparse
        );
        // Regression: the same crashes all rejoining leave zero nodes
        // permanently dead, so the heuristic must count net-dead and stay
        // dense — high churn is not the same as a half-empty matrix.
        for v in 0..n / 2 {
            plan = plan.rejoin(NodeId::from(v), 4).expect("crash precedes");
        }
        assert_eq!(
            Engine::new(n).with_fault_plan(plan).resolved_delivery(),
            DeliveryMode::Dense
        );
        // Explicit modes always win over the heuristic.
        assert_eq!(
            Engine::new(n)
                .broadcast_only(true)
                .with_delivery(DeliveryMode::Dense)
                .resolved_delivery(),
            DeliveryMode::Dense
        );
    }

    #[test]
    fn arena_reuse_leaves_run_stats_untouched() {
        // RunStats counts logical messages, so a warm arena (whatever
        // capacity the previous run left behind) must report exactly what a
        // cold one does — on both backends.
        let n = 9;
        let mk = || {
            (0..n)
                .map(|_| Staggered { received: 0 })
                .collect::<Vec<_>>()
        };
        for mode in [DeliveryMode::Dense, DeliveryMode::Sparse] {
            let engine = Engine::new(n)
                .with_bandwidth(8)
                .with_transcripts(true)
                .with_delivery(mode);
            let cold = engine.run(mk()).unwrap();
            let mut arena = DeliveryArena::new();
            let first = engine.run_in(mk(), &mut arena).unwrap();
            assert!(arena.slot_footprint() > 0, "arena retained the buffers");
            let warm = engine.run_in(mk(), &mut arena).unwrap();
            let tag = mode.tag();
            assert_eq!(cold.outputs, warm.outputs, "{tag}");
            assert_eq!(cold.stats, first.stats, "{tag}");
            assert_eq!(cold.stats, warm.stats, "{tag}");
            assert_eq!(cold.transcripts, warm.transcripts, "{tag}");
        }
    }

    #[test]
    fn wrong_program_count_is_rejected_before_buffers_are_allocated() {
        // n = 2²¹ would need 2·n² ≈ 8.8e12 message slots; this only passes
        // (quickly, without OOM) because validation precedes the checkout.
        let n = 1 << 21;
        let err = Engine::new(n).run(vec![Silent, Silent]).unwrap_err();
        assert_eq!(
            err,
            SimError::WrongProgramCount {
                expected: n,
                got: 2
            }
        );
    }

    #[test]
    fn sparse_backend_still_enforces_the_model() {
        // Broadcast violations...
        let err = Engine::new(5)
            .broadcast_only(true)
            .with_delivery(DeliveryMode::Sparse)
            .run((0..5).map(|_| Unicaster).collect::<Vec<_>>())
            .unwrap_err();
        assert!(
            matches!(err, SimError::BroadcastViolated { .. }),
            "got {err:?}"
        );
        // ...bandwidth violations...
        let err = Engine::new(4)
            .with_bandwidth(2)
            .with_delivery(DeliveryMode::Sparse)
            .run(vec![TooWide, TooWide, TooWide, TooWide])
            .unwrap_err();
        assert!(
            matches!(err, SimError::BandwidthExceeded { .. }),
            "got {err:?}"
        );
        // ...and round limits are all detected behind the sparse buffer.
        let err = Engine::new(4)
            .with_max_rounds(3)
            .with_delivery(DeliveryMode::Sparse)
            .run(vec![Forever, Forever, Forever, Forever])
            .unwrap_err();
        assert_eq!(err, SimError::RoundLimit { limit: 3 });
    }

    #[test]
    fn sparse_broadcast_footprint_is_linear_in_n() {
        let n = 256;
        let run = |mode: DeliveryMode| {
            let mut arena = DeliveryArena::new();
            Engine::new(n)
                .with_delivery(mode)
                .run_in(sum_ids(n), &mut arena)
                .unwrap();
            arena.slot_footprint()
        };
        let dense = run(DeliveryMode::Dense);
        let sparse = run(DeliveryMode::Sparse);
        assert_eq!(dense, 2 * n * n);
        // One broadcast payload per sender per buffer; no overrides.
        assert!(
            sparse <= 4 * n,
            "sparse footprint {sparse} should be O(n), not O(n²)"
        );
    }
}
