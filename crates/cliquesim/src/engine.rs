//! The synchronous lockstep engine.
//!
//! Executes `n` copies of a [`NodeProgram`] in rounds, enforcing the model of
//! §3 of the paper: per round, every ordered pair of nodes may exchange at
//! most `bandwidth` bits (default `⌈log₂ n⌉`), local computation is free, and
//! the complexity of a run is its number of communication rounds.
//!
//! Node steps within a round are independent, so the engine can execute them
//! on multiple OS threads; parallel and sequential execution produce
//! bit-identical results.

use std::fmt;

use crate::bits::BitString;
use crate::node::{Inbox, NodeCtx, NodeId, NodeProgram, Outbox, Status};
use crate::stats::RunStats;
use crate::transcript::{RoundTranscript, Transcript};

/// Errors surfaced by a run. Bandwidth violations are *bugs in the algorithm
/// under test* — the engine's job is to catch them, not to work around them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// In broadcast mode, a node sent different messages to different
    /// peers in the same round.
    BroadcastViolated {
        /// Offending sender.
        from: NodeId,
        /// Round in which the violation happened.
        round: usize,
    },
    /// In CONGEST mode, a node addressed a non-neighbour.
    TopologyViolated {
        /// Offending sender.
        from: NodeId,
        /// Illegal recipient (not adjacent in the communication graph).
        to: NodeId,
        /// Round in which the violation happened.
        round: usize,
    },
    /// A node emitted a message wider than the model allows.
    BandwidthExceeded {
        /// Offending sender.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
        /// Round in which the violation happened.
        round: usize,
        /// Size of the offending message.
        bits: usize,
        /// The engine's per-message budget.
        limit: usize,
    },
    /// The run did not terminate within the configured round limit.
    RoundLimit {
        /// The configured limit.
        limit: usize,
    },
    /// `run` was called with the wrong number of programs.
    WrongProgramCount {
        /// Number of nodes in the clique.
        expected: usize,
        /// Number of programs supplied.
        got: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BroadcastViolated { from, round } => write!(
                f,
                "broadcast mode violated in round {round}: node {} sent distinct messages",
                from.display()
            ),
            SimError::TopologyViolated { from, to, round } => write!(
                f,
                "CONGEST topology violated in round {round}: node {} sent to non-neighbour {}",
                from.display(),
                to.display()
            ),
            SimError::BandwidthExceeded { from, to, round, bits, limit } => write!(
                f,
                "bandwidth exceeded in round {round}: node {} sent {bits} bits to node {} (limit {limit})",
                from.display(),
                to.display()
            ),
            SimError::RoundLimit { limit } => {
                write!(f, "run exceeded the round limit of {limit}")
            }
            SimError::WrongProgramCount { expected, got } => {
                write!(f, "expected {expected} node programs, got {got}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a completed run.
#[derive(Debug)]
pub struct RunOutcome<T> {
    /// Local output of each node, indexed by node.
    pub outputs: Vec<T>,
    /// Accounting for the run.
    pub stats: RunStats,
    /// Per-node communication transcripts, if recording was enabled.
    pub transcripts: Option<Vec<Transcript>>,
}

impl<T: PartialEq> RunOutcome<T> {
    /// The common output if all nodes agree (the paper requires decision
    /// algorithms to be unanimous), `None` otherwise.
    pub fn unanimous(&self) -> Option<&T> {
        let first = self.outputs.first()?;
        self.outputs.iter().all(|o| o == first).then_some(first)
    }
}

/// Engine configuration and entry point. Construct with [`Engine::new`] and
/// customise with the builder methods.
#[derive(Clone, Debug)]
pub struct Engine {
    n: usize,
    bandwidth: usize,
    max_rounds: usize,
    record_transcripts: bool,
    threads: usize,
    broadcast_only: bool,
    /// CONGEST mode: `topology[v*n + u]` = v may send to u. Empty = clique.
    topology: std::sync::Arc<[bool]>,
}

/// Default cap on rounds; generous enough for every algorithm in this
/// workspace while still catching livelocks quickly.
const DEFAULT_MAX_ROUNDS: usize = 1 << 20;

impl Engine {
    /// An engine for an `n`-node clique with the standard bandwidth of
    /// `⌈log₂ n⌉` bits per ordered pair per round.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a clique needs at least one node");
        Self {
            n,
            bandwidth: BitString::width_for(n),
            max_rounds: DEFAULT_MAX_ROUNDS,
            record_transcripts: false,
            threads: 1,
            broadcast_only: false,
            topology: std::sync::Arc::from(Vec::new().into_boxed_slice()),
        }
    }

    /// Restrict communication to the edges of a graph — the classic
    /// **CONGEST** model, of which the congested clique is the
    /// fully-connected special case (§3 of the paper). `adjacent[v*n+u]`
    /// must be true iff `{u, v}` is a communication link; sending to a
    /// non-neighbour becomes a runtime error. Used by the workbench to
    /// contrast bottlenecked topologies with the clique (§2).
    pub fn with_topology(mut self, adjacent: Vec<bool>) -> Self {
        assert_eq!(adjacent.len(), self.n * self.n, "need an n×n adjacency table");
        for v in 0..self.n {
            for u in 0..self.n {
                assert_eq!(adjacent[v * self.n + u], adjacent[u * self.n + v], "must be symmetric");
            }
            assert!(!adjacent[v * self.n + v], "no self-loops");
        }
        self.topology = std::sync::Arc::from(adjacent.into_boxed_slice());
        self
    }

    /// Restrict the engine to the **broadcast congested clique** (§2 of
    /// the paper): each round every node must send the *same* message to
    /// every other node (or nothing at all). Violations are runtime
    /// errors, so a unicast algorithm cannot silently pass as a broadcast
    /// one.
    pub fn broadcast_only(mut self, on: bool) -> Self {
        self.broadcast_only = on;
        self
    }

    /// Override the per-message bit budget.
    ///
    /// The paper normalises algorithms to exactly `⌈log₂ n⌉` bits by moving
    /// constant factors into the round count; passing a multiple of
    /// `⌈log₂ n⌉` here models an `O(log n)`-bandwidth algorithm directly.
    pub fn with_bandwidth(mut self, bits: usize) -> Self {
        assert!(bits >= 1, "bandwidth must be at least one bit");
        self.bandwidth = bits;
        self
    }

    /// Bandwidth `c · ⌈log₂ n⌉` for an algorithm using `O(log n)`-bit
    /// messages with constant `c`.
    pub fn with_bandwidth_multiplier(self, c: usize) -> Self {
        let b = BitString::width_for(self.n) * c;
        self.with_bandwidth(b)
    }

    /// Cap the number of rounds (defense against non-terminating programs).
    pub fn with_max_rounds(mut self, limit: usize) -> Self {
        self.max_rounds = limit;
        self
    }

    /// Record full per-node communication transcripts (memory-heavy; used
    /// by the Theorem 3 normal-form machinery and by debugging).
    pub fn with_transcripts(mut self, on: bool) -> Self {
        self.record_transcripts = on;
        self
    }

    /// Step nodes on `threads` OS threads. Results are identical to the
    /// sequential engine; only wall-clock changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1);
        self.threads = threads;
        self
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Per-message bit budget.
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }

    /// Run one program instance per node to completion.
    pub fn run<P: NodeProgram>(&self, mut programs: Vec<P>) -> Result<RunOutcome<P::Output>, SimError> {
        let n = self.n;
        if programs.len() != n {
            return Err(SimError::WrongProgramCount { expected: n, got: programs.len() });
        }
        let ctxs: Vec<NodeCtx> = (0..n)
            .map(|v| NodeCtx { id: NodeId::from(v), n, bandwidth: self.bandwidth })
            .collect();
        for (p, ctx) in programs.iter_mut().zip(&ctxs) {
            p.init(ctx);
        }

        // `recv` is receiver-major: slot `u*n + v` holds the message from v
        // to u delivered this round. `sent` is sender-major: slot `v*n + u`
        // is where v writes its message for u.
        let mut recv: Vec<BitString> = vec![BitString::new(); n * n];
        let mut sent: Vec<BitString> = vec![BitString::new(); n * n];
        let mut halted = vec![false; n];
        let mut outputs: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
        let mut transcripts: Option<Vec<Transcript>> =
            self.record_transcripts.then(|| vec![Transcript::default(); n]);
        let mut stats = RunStats::default();

        let mut round = 0usize;
        loop {
            if round > self.max_rounds {
                return Err(SimError::RoundLimit { limit: self.max_rounds });
            }
            let active_before: Vec<bool> = halted.iter().map(|h| !h).collect();

            let acc = if self.threads > 1 && n >= 2 * self.threads {
                self.step_parallel(&mut programs, &ctxs, round, &recv, &mut sent, &mut halted, &mut outputs)?
            } else {
                self.step_sequential(&mut programs, &ctxs, round, &recv, &mut sent, &mut halted, &mut outputs)?
            };
            stats.messages += acc.messages;
            stats.bits += acc.bits;
            stats.max_message_bits = stats.max_message_bits.max(acc.max_message_bits);

            if let Some(ts) = transcripts.as_mut() {
                record_round(ts, &active_before, &recv, &sent, n, round);
            }

            if halted.iter().all(|h| *h) {
                stats.rounds = round;
                break;
            }

            // Deliver: transpose `sent` into `recv`, draining `sent` so the
            // next round starts from empty outboxes.
            for v in 0..n {
                for u in 0..n {
                    if u != v {
                        recv[u * n + v] = std::mem::take(&mut sent[v * n + u]);
                    }
                }
            }
            round += 1;
        }

        let outputs = outputs
            .into_iter()
            .map(|o| o.expect("halted node must have produced an output"))
            .collect();
        Ok(RunOutcome { outputs, stats, transcripts })
    }

    #[allow(clippy::too_many_arguments)]
    fn step_sequential<P: NodeProgram>(
        &self,
        programs: &mut [P],
        ctxs: &[NodeCtx],
        round: usize,
        recv: &[BitString],
        sent: &mut [BitString],
        halted: &mut [bool],
        outputs: &mut [Option<P::Output>],
    ) -> Result<ChunkAcc, SimError> {
        let n = self.n;
        let mut acc = ChunkAcc::default();
        for v in 0..n {
            if halted[v] {
                continue;
            }
            step_one(
                &mut programs[v],
                &ctxs[v],
                round,
                &recv[v * n..(v + 1) * n],
                &mut sent[v * n..(v + 1) * n],
                self.bandwidth,
                self.broadcast_only,
                &self.topology,
                &mut halted[v],
                &mut outputs[v],
                &mut acc,
            )?;
        }
        Ok(acc)
    }

    #[allow(clippy::too_many_arguments)]
    fn step_parallel<P: NodeProgram>(
        &self,
        programs: &mut [P],
        ctxs: &[NodeCtx],
        round: usize,
        recv: &[BitString],
        sent: &mut [BitString],
        halted: &mut [bool],
        outputs: &mut [Option<P::Output>],
    ) -> Result<ChunkAcc, SimError> {
        let n = self.n;
        let bw = self.bandwidth;
        let bcast = self.broadcast_only;
        let topo: &[bool] = &self.topology;
        let chunk = n.div_ceil(self.threads);
        let results: Vec<Result<ChunkAcc, SimError>> = std::thread::scope(|s| {
            let mut handles = Vec::new();
            let iter = programs
                .chunks_mut(chunk)
                .zip(sent.chunks_mut(chunk * n))
                .zip(halted.chunks_mut(chunk).zip(outputs.chunks_mut(chunk)))
                .enumerate();
            for (ci, ((progs, sent_rows), (halts, outs))) in iter {
                let base = ci * chunk;
                handles.push(s.spawn(move || {
                    let mut acc = ChunkAcc::default();
                    for (i, prog) in progs.iter_mut().enumerate() {
                        let v = base + i;
                        if halts[i] {
                            continue;
                        }
                        step_one(
                            prog,
                            &ctxs[v],
                            round,
                            &recv[v * n..(v + 1) * n],
                            &mut sent_rows[i * n..(i + 1) * n],
                            bw,
                            bcast,
                            topo,
                            &mut halts[i],
                            &mut outs[i],
                            &mut acc,
                        )?;
                    }
                    Ok(acc)
                }));
            }
            handles.into_iter().map(|h| h.join().expect("node step panicked")).collect()
        });
        let mut total = ChunkAcc::default();
        for r in results {
            let a = r?;
            total.messages += a.messages;
            total.bits += a.bits;
            total.max_message_bits = total.max_message_bits.max(a.max_message_bits);
        }
        Ok(total)
    }
}

#[derive(Default, Clone, Copy)]
struct ChunkAcc {
    messages: u64,
    bits: u64,
    max_message_bits: usize,
}

/// Step a single node and validate its outbox against the bandwidth bound.
#[allow(clippy::too_many_arguments)]
fn step_one<P: NodeProgram>(
    prog: &mut P,
    ctx: &NodeCtx,
    round: usize,
    recv_row: &[BitString],
    sent_row: &mut [BitString],
    bandwidth: usize,
    broadcast_only: bool,
    topology: &[bool],
    halted: &mut bool,
    output: &mut Option<P::Output>,
    acc: &mut ChunkAcc,
) -> Result<(), SimError> {
    let n = recv_row.len();
    let v = ctx.id.index();
    let inbox = Inbox { slots: recv_row, n, me: v };
    let mut outbox = Outbox::new(sent_row, v);
    match prog.step(ctx, round, &inbox, &mut outbox) {
        Status::Continue => {}
        Status::Halt(out) => {
            *halted = true;
            *output = Some(out);
        }
    }
    if !topology.is_empty() {
        for (u, m) in sent_row.iter().enumerate() {
            if !m.is_empty() && !topology[v * n + u] {
                return Err(SimError::TopologyViolated {
                    from: ctx.id,
                    to: NodeId::from(u),
                    round,
                });
            }
        }
    }
    if broadcast_only {
        // All non-empty outgoing messages must be identical, and a node
        // either addresses everyone or no one.
        let mut common: Option<&BitString> = None;
        let mut nonempty = 0;
        for (u, m) in sent_row.iter().enumerate() {
            if u == v {
                continue;
            }
            if m.is_empty() {
                continue;
            }
            nonempty += 1;
            match common {
                None => common = Some(m),
                Some(c) if c == m => {}
                _ => return Err(SimError::BroadcastViolated { from: ctx.id, round }),
            }
        }
        if nonempty != 0 && nonempty != n - 1 {
            return Err(SimError::BroadcastViolated { from: ctx.id, round });
        }
    }
    for (u, m) in sent_row.iter().enumerate() {
        if m.is_empty() {
            continue;
        }
        if m.len() > bandwidth {
            return Err(SimError::BandwidthExceeded {
                from: ctx.id,
                to: NodeId::from(u),
                round,
                bits: m.len(),
                limit: bandwidth,
            });
        }
        acc.messages += 1;
        acc.bits += m.len() as u64;
        acc.max_message_bits = acc.max_message_bits.max(m.len());
    }
    Ok(())
}

/// Append this round's sends and receives to the transcripts of the nodes
/// that were active when the round started.
fn record_round(
    transcripts: &mut [Transcript],
    active: &[bool],
    recv: &[BitString],
    sent: &[BitString],
    n: usize,
    _round: usize,
) {
    for v in 0..n {
        if !active[v] {
            continue;
        }
        let mut rt = RoundTranscript::default();
        for u in 0..n {
            let got = &recv[v * n + u];
            if !got.is_empty() {
                rt.received.push((NodeId::from(u), got.clone()));
            }
            let put = &sent[v * n + u];
            if !put.is_empty() {
                rt.sent.push((NodeId::from(u), put.clone()));
            }
        }
        transcripts[v].rounds.push(rt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every node broadcasts its id, collects everyone else's, outputs the sum.
    struct SumIds {
        seen: u64,
    }

    impl NodeProgram for SumIds {
        type Output = u64;

        fn step(
            &mut self,
            ctx: &NodeCtx,
            round: usize,
            inbox: &Inbox<'_>,
            outbox: &mut Outbox<'_>,
        ) -> Status<u64> {
            match round {
                0 => {
                    let mut m = BitString::new();
                    m.push_uint(ctx.id.0 as u64, ctx.id_width());
                    outbox.broadcast(&m);
                    self.seen = ctx.id.0 as u64;
                    Status::Continue
                }
                _ => {
                    for (_, msg) in inbox.iter() {
                        self.seen += msg.reader().read_uint(ctx.id_width()).unwrap();
                    }
                    Status::Halt(self.seen)
                }
            }
        }
    }

    fn sum_ids(n: usize) -> Vec<SumIds> {
        (0..n).map(|_| SumIds { seen: 0 }).collect()
    }

    #[test]
    fn broadcast_sum_of_ids() {
        let n = 8;
        let out = Engine::new(n).run(sum_ids(n)).unwrap();
        let expect = (0..n as u64).sum::<u64>();
        assert_eq!(out.outputs, vec![expect; n]);
        assert_eq!(out.stats.rounds, 1);
        assert_eq!(out.stats.messages, (n * (n - 1)) as u64);
        assert_eq!(out.stats.max_message_bits, 3);
        assert_eq!(*out.unanimous().unwrap(), expect);
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 23;
        let seq = Engine::new(n).run(sum_ids(n)).unwrap();
        let par = Engine::new(n).with_threads(4).run(sum_ids(n)).unwrap();
        assert_eq!(seq.outputs, par.outputs);
        assert_eq!(seq.stats, par.stats);
    }

    struct Silent;
    impl NodeProgram for Silent {
        type Output = ();
        fn step(&mut self, _: &NodeCtx, _: usize, _: &Inbox<'_>, _: &mut Outbox<'_>) -> Status<()> {
            Status::Halt(())
        }
    }

    #[test]
    fn zero_round_algorithm() {
        let out = Engine::new(5).run(vec![Silent, Silent, Silent, Silent, Silent]).unwrap();
        assert_eq!(out.stats.rounds, 0);
        assert_eq!(out.stats.messages, 0);
    }

    struct TooWide;
    impl NodeProgram for TooWide {
        type Output = ();
        fn step(&mut self, ctx: &NodeCtx, _: usize, _: &Inbox<'_>, ob: &mut Outbox<'_>) -> Status<()> {
            if ctx.id.0 == 0 {
                ob.send(NodeId(1), BitString::zeros(ctx.bandwidth + 1));
            }
            Status::Halt(())
        }
    }

    #[test]
    fn bandwidth_violation_detected() {
        let err = Engine::new(4).run(vec![TooWide, TooWide, TooWide, TooWide]).unwrap_err();
        match err {
            SimError::BandwidthExceeded { from, to, bits, limit, .. } => {
                assert_eq!(from, NodeId(0));
                assert_eq!(to, NodeId(1));
                assert_eq!(bits, limit + 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    struct Forever;
    impl NodeProgram for Forever {
        type Output = ();
        fn step(&mut self, _: &NodeCtx, _: usize, _: &Inbox<'_>, _: &mut Outbox<'_>) -> Status<()> {
            Status::Continue
        }
    }

    #[test]
    fn round_limit_enforced() {
        let err = Engine::new(2).with_max_rounds(10).run(vec![Forever, Forever]).unwrap_err();
        assert_eq!(err, SimError::RoundLimit { limit: 10 });
    }

    #[test]
    fn wrong_program_count_rejected() {
        let err = Engine::new(3).run(vec![Silent, Silent]).unwrap_err();
        assert_eq!(err, SimError::WrongProgramCount { expected: 3, got: 2 });
    }

    /// Two nodes ping-pong a counter for a fixed number of rounds; checks
    /// that messages cross exactly one round later.
    struct PingPong {
        rounds: usize,
    }
    impl NodeProgram for PingPong {
        type Output = u64;
        fn step(&mut self, ctx: &NodeCtx, round: usize, inbox: &Inbox<'_>, ob: &mut Outbox<'_>) -> Status<u64> {
            let peer = NodeId(1 - ctx.id.0);
            let got = if round == 0 {
                0
            } else {
                inbox.from(peer).reader().read_uint(ctx.bandwidth.min(8)).unwrap_or(0)
            };
            if round == self.rounds {
                return Status::Halt(got);
            }
            let mut m = BitString::new();
            m.push_uint((got + 1).min(255), 8.min(ctx.bandwidth));
            ob.send(peer, m);
            Status::Continue
        }
    }

    #[test]
    fn ping_pong_counts_rounds() {
        let n = 2;
        let out = Engine::new(n)
            .with_bandwidth(8)
            .run(vec![PingPong { rounds: 5 }, PingPong { rounds: 5 }])
            .unwrap();
        // After 5 exchanges each node has seen a counter of 5.
        assert_eq!(out.outputs, vec![5, 5]);
        assert_eq!(out.stats.rounds, 5);
    }

    #[test]
    fn transcripts_record_both_directions() {
        let n = 4;
        let out = Engine::new(n).with_transcripts(true).run(sum_ids(n)).unwrap();
        let ts = out.transcripts.unwrap();
        assert_eq!(ts.len(), n);
        for (v, t) in ts.iter().enumerate() {
            assert_eq!(t.rounds.len(), 2, "node {v} took part in 2 step phases");
            assert_eq!(t.rounds[0].sent.len(), n - 1);
            assert_eq!(t.rounds[0].received.len(), 0);
            assert_eq!(t.rounds[1].sent.len(), 0);
            assert_eq!(t.rounds[1].received.len(), n - 1);
        }
        // Sent/received must be symmetric across nodes.
        for v in 0..n {
            for (dst, msg) in &ts[v].rounds[0].sent {
                let got = ts[dst.index()].rounds[1]
                    .received
                    .iter()
                    .find(|(src, _)| src.index() == v)
                    .expect("matching receive");
                assert_eq!(&got.1, msg);
            }
        }
    }

    /// Broadcasts its id (legal in broadcast mode).
    struct Broadcaster;
    impl NodeProgram for Broadcaster {
        type Output = ();
        fn step(&mut self, ctx: &NodeCtx, round: usize, _: &Inbox<'_>, ob: &mut Outbox<'_>) -> Status<()> {
            if round == 0 {
                let mut m = BitString::new();
                m.push_uint(ctx.id.0 as u64, ctx.id_width());
                ob.broadcast(&m);
                Status::Continue
            } else {
                Status::Halt(())
            }
        }
    }

    /// Sends distinct messages (illegal in broadcast mode).
    struct Unicaster;
    impl NodeProgram for Unicaster {
        type Output = ();
        fn step(&mut self, ctx: &NodeCtx, _: usize, _: &Inbox<'_>, ob: &mut Outbox<'_>) -> Status<()> {
            for u in 0..ctx.n {
                if u != ctx.id.index() {
                    let mut m = BitString::new();
                    m.push_uint((u % 2) as u64, 1);
                    ob.send(NodeId::from(u), m);
                }
            }
            Status::Halt(())
        }
    }

    #[test]
    fn broadcast_mode_accepts_broadcasts() {
        let out = Engine::new(5)
            .broadcast_only(true)
            .run((0..5).map(|_| Broadcaster).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(out.stats.rounds, 1);
    }

    #[test]
    fn broadcast_mode_rejects_unicasts() {
        let err = Engine::new(5)
            .broadcast_only(true)
            .run((0..5).map(|_| Unicaster).collect::<Vec<_>>())
            .unwrap_err();
        assert!(matches!(err, SimError::BroadcastViolated { .. }), "got {err:?}");
        // The same program is fine in the unrestricted model.
        Engine::new(5).run((0..5).map(|_| Unicaster).collect::<Vec<_>>()).unwrap();
    }

    #[test]
    fn congest_topology_enforced() {
        // A 4-path topology: node 0 may talk to 1 only.
        let n = 4;
        let mut adj = vec![false; n * n];
        for v in 1..n {
            adj[(v - 1) * n + v] = true;
            adj[v * n + (v - 1)] = true;
        }
        struct SendTo(u32);
        impl NodeProgram for SendTo {
            type Output = ();
            fn step(&mut self, ctx: &NodeCtx, _: usize, _: &Inbox<'_>, ob: &mut Outbox<'_>) -> Status<()> {
                if ctx.id.0 == 0 {
                    let mut m = BitString::new();
                    m.push(true);
                    ob.send(NodeId(self.0), m);
                }
                Status::Halt(())
            }
        }
        // Legal: 0 → 1.
        Engine::new(n)
            .with_topology(adj.clone())
            .run(vec![SendTo(1), SendTo(1), SendTo(1), SendTo(1)])
            .unwrap();
        // Illegal: 0 → 3 (not adjacent on the path).
        let err = Engine::new(n)
            .with_topology(adj)
            .run(vec![SendTo(3), SendTo(3), SendTo(3), SendTo(3)])
            .unwrap_err();
        assert!(matches!(err, SimError::TopologyViolated { from: NodeId(0), to: NodeId(3), .. }));
    }

    #[test]
    fn broadcast_mode_rejects_partial_addressing() {
        struct Partial;
        impl NodeProgram for Partial {
            type Output = ();
            fn step(&mut self, ctx: &NodeCtx, _: usize, _: &Inbox<'_>, ob: &mut Outbox<'_>) -> Status<()> {
                if ctx.id.0 == 0 {
                    let mut m = BitString::new();
                    m.push(true);
                    ob.send(NodeId(1), m); // only one recipient
                }
                Status::Halt(())
            }
        }
        let err = Engine::new(4)
            .broadcast_only(true)
            .run((0..4).map(|_| Partial).collect::<Vec<_>>())
            .unwrap_err();
        assert!(matches!(err, SimError::BroadcastViolated { from: NodeId(0), .. }));
    }

    #[test]
    fn single_node_clique_is_degenerate_but_legal() {
        struct Lonely;
        impl NodeProgram for Lonely {
            type Output = u32;
            fn step(&mut self, ctx: &NodeCtx, _: usize, _: &Inbox<'_>, _: &mut Outbox<'_>) -> Status<u32> {
                Status::Halt(ctx.id.0)
            }
        }
        let out = Engine::new(1).run(vec![Lonely]).unwrap();
        assert_eq!(out.outputs, vec![0]);
        assert_eq!(out.stats.rounds, 0);
    }
}
