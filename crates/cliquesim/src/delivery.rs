//! Pluggable per-round message-delivery backends.
//!
//! The engine's delivery state is a pair of double-buffered sender-major
//! buffers: nodes write round `r`'s sends into buffer `r % 2` and read round
//! `r-1`'s sends from the other. Historically both buffers were dense
//! `n × n` [`BitString`] matrices — quadratic memory even when the traffic
//! is linear (broadcast-only runs, CONGEST rings, crash-heavy fault plans).
//!
//! This module abstracts the buffer behind the crate-internal `DeliveryBuf`
//! trait and
//! provides two implementations the engine picks between per run (see
//! [`DeliveryMode`]):
//!
//! * `DenseBuf` — the original flat `n × n` matrix. Best when most ordered
//!   pairs exchange a message most rounds (all-to-all routing).
//! * `SparseBuf` — one compacted edge list per sender (a `SparseRow`):
//!   a shared broadcast payload plus sorted `(recipient, payload)` override
//!   entries. A broadcast round stores **one** payload per sender instead of
//!   `n - 1` clones, and a ring round stores two entries per sender, so the
//!   footprint is `O(edges)` rather than `O(n²)`.
//!
//! Both backends produce bit-identical outputs, transcripts, reports, and
//! [`crate::RunStats`] — cc-testkit's differential runners check every
//! conformance family against all backends across pool shapes.
//!
//! Buffers are checked out of a [`DeliveryArena`] at the start of a run and
//! returned at the end, so repeated runs (a [`crate::Session`]'s phases)
//! reuse the same allocations: steady-state rounds allocate nothing in
//! either backend.

use std::ops::Range;

use crate::bits::{BitString, EMPTY};
use crate::node::{Inbox, Outbox};

/// Which delivery backend the engine uses for a run.
///
/// Attach with [`crate::Engine::with_delivery`]; the default is
/// [`DeliveryMode::Auto`]. Whatever the choice, results are bit-identical —
/// only memory footprint and wall-clock differ.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DeliveryMode {
    /// Decide per run from the engine's configuration: broadcast-only mode,
    /// a sparse CONGEST topology (≤ 25% of ordered pairs adjacent), or a
    /// fault plan that crashes at least half the nodes select
    /// [`DeliveryMode::Sparse`]; everything else gets
    /// [`DeliveryMode::Dense`].
    #[default]
    Auto,
    /// Always use the dense `n × n` double-buffered matrices.
    Dense,
    /// Always use the compacted per-sender edge lists.
    Sparse,
}

impl DeliveryMode {
    /// Short lowercase name (`"auto"`, `"dense"`, `"sparse"`), used in
    /// replayable test labels such as `apsp[64, 7]@sparse`.
    pub fn tag(self) -> &'static str {
        match self {
            DeliveryMode::Auto => "auto",
            DeliveryMode::Dense => "dense",
            DeliveryMode::Sparse => "sparse",
        }
    }
}

/// Reusable backing storage for the engine's delivery buffers.
///
/// A run checks its buffer pair out at the start and returns it at the end,
/// so the arena holds at most one dense pair and one sparse pair. Entry
/// points that take an arena ([`crate::Engine::run_in`] and friends, or a
/// [`crate::Session`], which owns one) make every run after the first
/// allocation-free in steady state; the plain entry points create a fresh
/// arena per run. Statistics are unaffected by reuse: all accounting is in
/// terms of logical messages, never retained capacity.
#[derive(Debug, Default)]
pub struct DeliveryArena {
    dense: Option<[DenseBuf; 2]>,
    sparse: Option<[SparseBuf; 2]>,
}

impl DeliveryArena {
    /// An empty arena; buffers are allocated on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of retained message slots across both backends and both
    /// buffers of each pair — the delivery-buffer footprint in units of
    /// payload slots. A dense pair contributes `2·n²`; a sparse pair
    /// contributes one broadcast slot plus the override entries per sender
    /// row, i.e. `O(n + edges)`.
    pub fn slot_footprint(&self) -> usize {
        let dense = self
            .dense
            .as_ref()
            .map_or(0, |b| b[0].slots.len() + b[1].slots.len());
        let sparse = self.sparse.as_ref().map_or(0, |b| {
            b.iter()
                .flat_map(|buf| buf.rows.iter())
                .map(|r| 1 + r.slots.len())
                .sum()
        });
        dense + sparse
    }
}

/// A double-buffered delivery backend: everything the engine's round loop
/// needs, expressed over a flat slice of `Slot`s so the worker pool can
/// carve disjoint per-worker ranges.
///
/// `Slot` granularity differs per backend — a dense buffer has `n²`
/// [`BitString`] slots (one per ordered pair), a sparse buffer has `n`
/// [`SparseRow`] slots (one per sender) — which is why carving goes through
/// [`DeliveryBuf::slot_range`] and row addressing is relative to the carved
/// slice.
pub(crate) trait DeliveryBuf: Sized + Send {
    /// Element type of the flat slot slice.
    type Slot: Send;

    /// Check a buffer pair out of the arena (reusing a retained pair of the
    /// right size) and reset it: round 0 reads the previous-round buffer
    /// without clearing it first, so stale content from an earlier run must
    /// be gone.
    fn take(arena: &mut DeliveryArena, n: usize) -> [Self; 2];

    /// Return the pair to the arena for the next run.
    fn put(arena: &mut DeliveryArena, bufs: [Self; 2]);

    /// The full slot slice.
    fn slots(&self) -> &[Self::Slot];

    /// The full slot slice, mutably.
    fn slots_mut(&mut self) -> &mut [Self::Slot];

    /// Slot range owned by a worker stepping nodes `lo..hi`.
    fn slot_range(n: usize, lo: usize, hi: usize) -> Range<usize>;

    /// Clear sender row `row` (relative to `slots`) in place, retaining
    /// capacity.
    fn clear_row(slots: &mut [Self::Slot], n: usize, row: usize);

    /// Finish sender row `row` after its node stepped (the sparse backend
    /// sorts override entries here so later reads can binary-search).
    fn seal_row(slots: &mut [Self::Slot], n: usize, row: usize);

    /// Outbox over sender row `row` (relative) for node `me` (absolute).
    fn outbox<'a>(slots: &'a mut [Self::Slot], n: usize, row: usize, me: usize) -> Outbox<'a>;

    /// Inbox for node `me` over a full previous-round buffer.
    fn inbox<'a>(slots: &'a [Self::Slot], n: usize, me: usize) -> Inbox<'a>;

    /// Iterate the non-empty messages of sealed sender row `row` (relative)
    /// for node `me` (absolute), as `(recipient, payload)` with recipients
    /// ascending — the order the validation passes and accounting rely on.
    fn row_iter<'a>(slots: &'a [Self::Slot], n: usize, row: usize, me: usize) -> RowIter<'a>;

    /// Read-only whole-buffer view for bookkeeping (transcripts, crash
    /// charging, undelivered scans).
    fn view<'a>(slots: &'a [Self::Slot], n: usize) -> BufView<'a>;

    /// Mutable whole-buffer view for the adversary hooks.
    fn view_mut<'a>(slots: &'a mut [Self::Slot], n: usize) -> BufViewMut<'a>;
}

/// The dense backend: a flat sender-major `n × n` matrix of message slots,
/// `slots[v*n + u]` = payload `v → u`.
#[derive(Debug)]
pub(crate) struct DenseBuf {
    n: usize,
    slots: Vec<BitString>,
}

impl DenseBuf {
    fn fresh(n: usize) -> Self {
        Self {
            n,
            slots: vec![BitString::new(); n * n],
        }
    }
}

impl DeliveryBuf for DenseBuf {
    type Slot = BitString;

    fn take(arena: &mut DeliveryArena, n: usize) -> [Self; 2] {
        match arena.dense.take() {
            Some(mut bufs) if bufs[0].n == n => {
                for b in &mut bufs {
                    for m in &mut b.slots {
                        m.clear();
                    }
                }
                bufs
            }
            _ => [Self::fresh(n), Self::fresh(n)],
        }
    }

    fn put(arena: &mut DeliveryArena, bufs: [Self; 2]) {
        arena.dense = Some(bufs);
    }

    fn slots(&self) -> &[BitString] {
        &self.slots
    }

    fn slots_mut(&mut self) -> &mut [BitString] {
        &mut self.slots
    }

    fn slot_range(n: usize, lo: usize, hi: usize) -> Range<usize> {
        lo * n..hi * n
    }

    fn clear_row(slots: &mut [BitString], n: usize, row: usize) {
        for m in &mut slots[row * n..(row + 1) * n] {
            m.clear();
        }
    }

    fn seal_row(_slots: &mut [BitString], _n: usize, _row: usize) {}

    fn outbox<'a>(slots: &'a mut [BitString], n: usize, row: usize, me: usize) -> Outbox<'a> {
        Outbox::new(&mut slots[row * n..(row + 1) * n], me)
    }

    fn inbox<'a>(slots: &'a [BitString], n: usize, me: usize) -> Inbox<'a> {
        Inbox::transposed(slots, n, me)
    }

    fn row_iter<'a>(slots: &'a [BitString], n: usize, row: usize, _me: usize) -> RowIter<'a> {
        RowIter::Dense {
            row: &slots[row * n..(row + 1) * n],
            u: 0,
        }
    }

    fn view<'a>(slots: &'a [BitString], n: usize) -> BufView<'a> {
        BufView::Dense { slots, n }
    }

    fn view_mut<'a>(slots: &'a mut [BitString], n: usize) -> BufViewMut<'a> {
        BufViewMut::Dense { slots, n }
    }
}

/// The sparse backend: one [`SparseRow`] per sender.
#[derive(Debug)]
pub(crate) struct SparseBuf {
    n: usize,
    rows: Vec<SparseRow>,
}

impl SparseBuf {
    fn fresh(n: usize) -> Self {
        Self {
            n,
            rows: (0..n).map(|_| SparseRow::default()).collect(),
        }
    }
}

impl DeliveryBuf for SparseBuf {
    type Slot = SparseRow;

    fn take(arena: &mut DeliveryArena, n: usize) -> [Self; 2] {
        match arena.sparse.take() {
            Some(mut bufs) if bufs[0].n == n => {
                for b in &mut bufs {
                    for r in &mut b.rows {
                        r.clear();
                    }
                }
                bufs
            }
            _ => [Self::fresh(n), Self::fresh(n)],
        }
    }

    fn put(arena: &mut DeliveryArena, bufs: [Self; 2]) {
        arena.sparse = Some(bufs);
    }

    fn slots(&self) -> &[SparseRow] {
        &self.rows
    }

    fn slots_mut(&mut self) -> &mut [SparseRow] {
        &mut self.rows
    }

    fn slot_range(_n: usize, lo: usize, hi: usize) -> Range<usize> {
        lo..hi
    }

    fn clear_row(slots: &mut [SparseRow], _n: usize, row: usize) {
        slots[row].clear();
    }

    fn seal_row(slots: &mut [SparseRow], _n: usize, row: usize) {
        slots[row].seal();
    }

    fn outbox<'a>(slots: &'a mut [SparseRow], n: usize, row: usize, me: usize) -> Outbox<'a> {
        Outbox::sparse(&mut slots[row], n, me)
    }

    fn inbox<'a>(slots: &'a [SparseRow], n: usize, me: usize) -> Inbox<'a> {
        Inbox::sparse(slots, n, me)
    }

    fn row_iter<'a>(slots: &'a [SparseRow], n: usize, row: usize, me: usize) -> RowIter<'a> {
        let r = &slots[row];
        if r.bcast.is_empty() {
            RowIter::SparseEntries {
                entries: r.entries(),
                i: 0,
            }
        } else {
            RowIter::SparseBcast {
                row: r,
                n,
                me,
                u: 0,
                e: 0,
            }
        }
    }

    fn view<'a>(slots: &'a [SparseRow], _n: usize) -> BufView<'a> {
        BufView::Sparse { rows: slots }
    }

    fn view_mut<'a>(slots: &'a mut [SparseRow], n: usize) -> BufViewMut<'a> {
        BufViewMut::Sparse { rows: slots, n }
    }
}

/// One sender's messages for one round in the sparse backend: an optional
/// broadcast payload shared by every recipient, plus per-recipient override
/// entries. An override (even an empty one) beats the broadcast payload for
/// its recipient, mirroring the dense backend's last-write-wins slots; the
/// broadcast payload being empty means "no broadcast".
#[derive(Debug, Default)]
pub(crate) struct SparseRow {
    /// Payload sent to every non-overridden recipient (empty = none).
    bcast: BitString,
    /// Number of live entries at the front of `slots`.
    live: usize,
    /// Override entries `(recipient, payload)`. `[..live]` is this round's
    /// data (sorted by recipient once sealed); the tail is spare capacity
    /// retained across rounds so steady-state sends allocate nothing.
    slots: Vec<(u32, BitString)>,
}

impl SparseRow {
    /// Reset for a new round, retaining all payload allocations.
    fn clear(&mut self) {
        self.bcast.clear();
        self.live = 0;
    }

    /// Record a unicast (last write to a recipient wins, like a dense slot).
    pub(crate) fn send(&mut self, to: u32, msg: BitString) {
        for e in &mut self.slots[..self.live] {
            if e.0 == to {
                e.1 = msg;
                return;
            }
        }
        if self.live < self.slots.len() {
            self.slots[self.live] = (to, msg);
        } else {
            self.slots.push((to, msg));
        }
        self.live += 1;
    }

    /// Record a broadcast: one shared payload, all previous overrides
    /// discarded (a dense broadcast overwrites every slot).
    pub(crate) fn set_broadcast(&mut self, msg: &BitString) {
        self.bcast.copy_from(msg);
        self.live = 0;
    }

    /// Sort the live entries by recipient so reads can binary-search.
    pub(crate) fn seal(&mut self) {
        self.slots[..self.live].sort_unstable_by_key(|e| e.0);
    }

    /// The message to `u` (requires a sealed row; `u` must not be the
    /// sender itself — the engine's views guard the diagonal).
    pub(crate) fn get(&self, u: usize) -> &BitString {
        match self.slots[..self.live].binary_search_by_key(&(u as u32), |e| e.0) {
            Ok(i) => &self.slots[i].1,
            Err(_) => &self.bcast,
        }
    }

    /// The live (sealed) override entries.
    fn entries(&self) -> &[(u32, BitString)] {
        &self.slots[..self.live]
    }

    /// Visit every non-empty message of this sealed row in ascending
    /// recipient order, mutably. Recipients covered by the shared broadcast
    /// payload get a scratch copy; if the visitor changes it, the changed
    /// copy is materialised as an override entry — the adversary hooks
    /// damage *copies per link*, never the shared payload.
    fn for_each_msg_mut(&mut self, me: usize, n: usize, mut f: impl FnMut(usize, &mut BitString)) {
        if self.bcast.is_empty() {
            for e in &mut self.slots[..self.live] {
                if !e.1.is_empty() {
                    f(e.0 as usize, &mut e.1);
                }
            }
            return;
        }
        let mut pending: Vec<(u32, BitString)> = Vec::new();
        let mut scratch = BitString::new();
        let mut e = 0usize;
        for u in 0..n {
            if u == me {
                continue;
            }
            while e < self.live && (self.slots[e].0 as usize) < u {
                e += 1;
            }
            if e < self.live && self.slots[e].0 as usize == u {
                let m = &mut self.slots[e].1;
                if !m.is_empty() {
                    f(u, m);
                }
            } else {
                scratch.copy_from(&self.bcast);
                f(u, &mut scratch);
                if scratch != self.bcast {
                    pending.push((u as u32, scratch.clone()));
                }
            }
        }
        for (u, payload) in pending {
            match self.slots[..self.live].binary_search_by_key(&u, |e| e.0) {
                Ok(_) => unreachable!("pending overrides never duplicate an existing entry"),
                Err(i) => {
                    self.slots.insert(i, (u, payload));
                    self.live += 1;
                }
            }
        }
    }

    /// Visit each distinct non-empty *payload* of this sealed row, with
    /// the number of recipients it reaches. Unlike
    /// [`SparseRow::for_each_msg_mut`], the shared broadcast payload is
    /// handed to the visitor **once** (with multiplicity `n − 1 − live`),
    /// in place — for sweeps that rewrite every copy identically (message
    /// signing/verification), mutating the shared storage is both correct
    /// and preserves the backend's memory sharing. Overrides never target
    /// the sender ([`crate::node::Outbox::send`] rejects self-sends), so
    /// the multiplicity arithmetic needs no diagonal adjustment.
    fn for_each_payload_mut(&mut self, n: usize, mut f: impl FnMut(usize, &mut BitString)) {
        if !self.bcast.is_empty() {
            let covered = n - 1 - self.live;
            if covered > 0 {
                f(covered, &mut self.bcast);
            }
        }
        for e in &mut self.slots[..self.live] {
            if !e.1.is_empty() {
                f(1, &mut e.1);
            }
        }
    }
}

/// Iterator over the non-empty `(recipient, payload)` messages of one
/// sealed sender row, recipients ascending. A concrete enum (rather than
/// `impl Iterator` per backend) so [`DeliveryBuf`] stays object-simple.
pub(crate) enum RowIter<'a> {
    /// Dense row slice; empty slots (including the diagonal) are skipped.
    Dense {
        /// The sender's `n` slots.
        row: &'a [BitString],
        /// Next recipient to inspect.
        u: usize,
    },
    /// Sparse row with no broadcast payload: walk the sorted entries.
    SparseEntries {
        /// The sealed override entries.
        entries: &'a [(u32, BitString)],
        /// Next entry to inspect.
        i: usize,
    },
    /// Sparse row with a broadcast payload: merge the shared payload with
    /// the sorted overrides, two-pointer style.
    SparseBcast {
        /// The sealed row.
        row: &'a SparseRow,
        /// Number of nodes.
        n: usize,
        /// The sender (skipped).
        me: usize,
        /// Next recipient to inspect.
        u: usize,
        /// Cursor into the sorted entries.
        e: usize,
    },
}

impl<'a> Iterator for RowIter<'a> {
    type Item = (usize, &'a BitString);

    fn next(&mut self) -> Option<(usize, &'a BitString)> {
        match self {
            RowIter::Dense { row, u } => {
                let row: &'a [BitString] = row;
                while *u < row.len() {
                    let i = *u;
                    *u += 1;
                    if !row[i].is_empty() {
                        return Some((i, &row[i]));
                    }
                }
                None
            }
            RowIter::SparseEntries { entries, i } => {
                let entries: &'a [(u32, BitString)] = entries;
                while *i < entries.len() {
                    let j = *i;
                    *i += 1;
                    if !entries[j].1.is_empty() {
                        return Some((entries[j].0 as usize, &entries[j].1));
                    }
                }
                None
            }
            RowIter::SparseBcast { row, n, me, u, e } => {
                let row: &'a SparseRow = row;
                let entries = row.entries();
                while *u < *n {
                    let cur = *u;
                    *u += 1;
                    if cur == *me {
                        continue;
                    }
                    while *e < entries.len() && (entries[*e].0 as usize) < cur {
                        *e += 1;
                    }
                    let m = if *e < entries.len() && entries[*e].0 as usize == cur {
                        &entries[*e].1
                    } else {
                        &row.bcast
                    };
                    if !m.is_empty() {
                        return Some((cur, m));
                    }
                }
                None
            }
        }
    }
}

/// Read-only view of one whole delivery buffer, backend-erased. Used by the
/// bookkeeping paths (crash charging, undelivered scans, transcripts) so
/// they stay a single implementation across backends.
pub(crate) enum BufView<'a> {
    /// Dense sender-major matrix.
    Dense {
        /// The `n²` slots.
        slots: &'a [BitString],
        /// Number of nodes.
        n: usize,
    },
    /// Sparse per-sender rows.
    Sparse {
        /// The `n` sealed rows.
        rows: &'a [SparseRow],
    },
}

impl<'a> BufView<'a> {
    /// A view over a dense sender-major matrix, for in-crate tests that
    /// drive the adversary hooks directly.
    #[cfg(test)]
    pub(crate) fn dense(slots: &'a [BitString], n: usize) -> Self {
        debug_assert_eq!(slots.len(), n * n);
        BufView::Dense { slots, n }
    }

    /// Number of nodes.
    pub(crate) fn n(&self) -> usize {
        match self {
            BufView::Dense { n, .. } => *n,
            BufView::Sparse { rows } => rows.len(),
        }
    }

    /// The message `v → u` (empty if none; the diagonal is always empty).
    pub(crate) fn get(&self, v: usize, u: usize) -> &'a BitString {
        match self {
            BufView::Dense { slots, n } => {
                let slots: &'a [BitString] = slots;
                &slots[v * *n + u]
            }
            BufView::Sparse { rows } => {
                let rows: &'a [SparseRow] = rows;
                if u == v {
                    &EMPTY
                } else {
                    rows[v].get(u)
                }
            }
        }
    }
}

/// Mutable view of one whole delivery buffer, backend-erased. The adversary
/// hooks (link faults, Byzantine rewrites) mutate messages through this so
/// their sweep order and semantics are backend-independent.
pub(crate) enum BufViewMut<'a> {
    /// Dense sender-major matrix.
    Dense {
        /// The `n²` slots.
        slots: &'a mut [BitString],
        /// Number of nodes.
        n: usize,
    },
    /// Sparse per-sender rows.
    Sparse {
        /// The `n` sealed rows.
        rows: &'a mut [SparseRow],
        /// Number of nodes.
        n: usize,
    },
}

impl<'a> BufViewMut<'a> {
    /// A mutable view over a dense sender-major matrix, for in-crate tests
    /// that drive the adversary hooks directly.
    #[cfg(test)]
    pub(crate) fn dense(slots: &'a mut [BitString], n: usize) -> Self {
        debug_assert_eq!(slots.len(), n * n);
        BufViewMut::Dense { slots, n }
    }

    /// Number of nodes.
    pub(crate) fn n(&self) -> usize {
        match self {
            BufViewMut::Dense { n, .. } | BufViewMut::Sparse { n, .. } => *n,
        }
    }

    /// Visit sender `v`'s non-empty messages in ascending recipient order,
    /// mutably — the adversary sweep order both backends share.
    pub(crate) fn for_each_msg_mut(&mut self, v: usize, f: impl FnMut(usize, &mut BitString)) {
        match self {
            BufViewMut::Dense { slots, n } => {
                let n = *n;
                let mut f = f;
                for u in 0..n {
                    if u == v {
                        continue;
                    }
                    let m = &mut slots[v * n + u];
                    if !m.is_empty() {
                        f(u, m);
                    }
                }
            }
            BufViewMut::Sparse { rows, n } => rows[v].for_each_msg_mut(v, *n, f),
        }
    }

    /// Visit sender `v`'s distinct non-empty payloads with their recipient
    /// multiplicities (dense: always 1; sparse: the shared broadcast
    /// payload once with its coverage, then each override). The sweep for
    /// per-payload rewrites that must treat every copy identically —
    /// equal payloads stay equal, so dense and sparse remain
    /// bit-identical while the sparse backend keeps its sharing.
    pub(crate) fn for_each_payload_mut(&mut self, v: usize, f: impl FnMut(usize, &mut BitString)) {
        match self {
            BufViewMut::Dense { slots, n } => {
                let n = *n;
                let mut f = f;
                for u in 0..n {
                    if u == v {
                        continue;
                    }
                    let m = &mut slots[v * n + u];
                    if !m.is_empty() {
                        f(1, m);
                    }
                }
            }
            BufViewMut::Sparse { rows, n } => rows[v].for_each_payload_mut(*n, f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &[bool]) -> BitString {
        BitString::from_bits(s.iter().copied())
    }

    #[test]
    fn sparse_row_send_overrides_and_seals() {
        let mut r = SparseRow::default();
        r.send(3, bits(&[true]));
        r.send(1, bits(&[false, true]));
        r.send(3, bits(&[true, true])); // last write wins
        r.seal();
        assert_eq!(r.get(1), &bits(&[false, true]));
        assert_eq!(r.get(3), &bits(&[true, true]));
        assert!(r.get(2).is_empty(), "no broadcast, no entry");
        // Clear retains the entry allocations but drops the content.
        r.clear();
        r.seal();
        assert!(r.get(1).is_empty());
        assert!(r.get(3).is_empty());
    }

    #[test]
    fn sparse_row_broadcast_then_override() {
        let n = 5;
        let mut r = SparseRow::default();
        r.send(4, bits(&[true, true, true]));
        r.set_broadcast(&bits(&[true, false])); // discards the earlier send
        r.send(2, bits(&[false])); // override one copy
        r.send(3, BitString::new()); // empty override = no message to 3
        r.seal();
        assert_eq!(r.get(1), &bits(&[true, false]));
        assert_eq!(r.get(2), &bits(&[false]));
        assert!(r.get(3).is_empty());
        assert_eq!(r.get(4), &bits(&[true, false]), "broadcast override gone");
        // Row iteration merges broadcast and overrides, recipients ascending.
        let rows = vec![r];
        let got: Vec<(usize, usize)> = SparseBuf::row_iter(&rows, n, 0, 0)
            .map(|(u, m)| (u, m.len()))
            .collect();
        assert_eq!(got, vec![(1, 2), (2, 1), (4, 2)]);
    }

    #[test]
    fn sparse_row_iter_without_broadcast_skips_empties() {
        let mut r = SparseRow::default();
        r.send(2, bits(&[true]));
        r.send(0, BitString::new());
        r.send(4, bits(&[false, false]));
        r.seal();
        let rows = vec![r];
        let got: Vec<usize> = SparseBuf::row_iter(&rows, 6, 0, 1)
            .map(|(u, _)| u)
            .collect();
        assert_eq!(got, vec![2, 4]);
    }

    #[test]
    fn for_each_msg_mut_materialises_changed_broadcast_copies() {
        let n = 4;
        let me = 0;
        let mut r = SparseRow::default();
        r.set_broadcast(&bits(&[true, true]));
        r.seal();
        // Damage only recipient 2's copy.
        r.for_each_msg_mut(me, n, |u, m| {
            if u == 2 {
                m.set(0, false);
            }
        });
        assert_eq!(r.get(1), &bits(&[true, true]), "shared payload untouched");
        assert_eq!(r.get(2), &bits(&[false, true]), "changed copy materialised");
        assert_eq!(r.get(3), &bits(&[true, true]));
        // A second sweep sees the override in place of the broadcast copy.
        let mut seen = Vec::new();
        r.for_each_msg_mut(me, n, |u, m| seen.push((u, m.get(0))));
        assert_eq!(seen, vec![(1, true), (2, false), (3, true)]);
    }

    #[test]
    fn views_agree_between_backends() {
        let n = 3;
        // Dense: 0 → 1 and 2 → 0.
        let mut dense = vec![BitString::new(); n * n];
        dense[1] = bits(&[true]);
        dense[2 * n] = bits(&[false, true]);
        // Sparse mirror.
        let mut rows: Vec<SparseRow> = (0..n).map(|_| SparseRow::default()).collect();
        rows[0].send(1, bits(&[true]));
        rows[2].send(0, bits(&[false, true]));
        for r in &mut rows {
            r.seal();
        }
        let dv = BufView::dense(&dense, n);
        let sv = SparseBuf::view(&rows, n);
        assert_eq!(dv.n(), sv.n());
        for v in 0..n {
            for u in 0..n {
                assert_eq!(dv.get(v, u), sv.get(v, u), "({v},{u})");
            }
        }
    }

    #[test]
    fn arena_reuses_and_reports_footprint() {
        let mut arena = DeliveryArena::new();
        assert_eq!(arena.slot_footprint(), 0);
        let bufs = SparseBuf::take(&mut arena, 4);
        SparseBuf::put(&mut arena, bufs);
        // 2 buffers × 4 rows × (1 broadcast slot + 0 entries).
        assert_eq!(arena.slot_footprint(), 8);
        // Same n: the pair is reused, cleared.
        let bufs = SparseBuf::take(&mut arena, 4);
        assert_eq!(arena.slot_footprint(), 0, "checked out");
        assert!(bufs[0]
            .rows
            .iter()
            .all(|r| r.bcast.is_empty() && r.live == 0));
        SparseBuf::put(&mut arena, bufs);
        // Different n: a fresh pair replaces the stale one.
        let bufs = SparseBuf::take(&mut arena, 2);
        assert_eq!(bufs[0].rows.len(), 2);
        SparseBuf::put(&mut arena, bufs);
        assert_eq!(arena.slot_footprint(), 4);

        let dense = DenseBuf::take(&mut arena, 3);
        DenseBuf::put(&mut arena, dense);
        assert_eq!(arena.slot_footprint(), 4 + 2 * 9);
    }

    #[test]
    fn delivery_mode_tags() {
        assert_eq!(DeliveryMode::Auto.tag(), "auto");
        assert_eq!(DeliveryMode::Dense.tag(), "dense");
        assert_eq!(DeliveryMode::Sparse.tag(), "sparse");
        assert_eq!(DeliveryMode::default(), DeliveryMode::Auto);
    }
}
