//! Bit-exact message payloads.
//!
//! The congested clique model measures bandwidth in *bits*: each ordered pair
//! of nodes may exchange at most `O(log n)` bits per round. Byte-oriented
//! buffers would make it too easy to silently leak a factor of 8, so every
//! message in the simulator is a [`BitString`] and the engine enforces the
//! bound at bit granularity.

use std::fmt;

/// A growable, bit-addressed string of bits.
///
/// Bits are stored little-endian within `u64` words: bit `i` lives in word
/// `i / 64` at position `i % 64`. All append operations keep the unused tail
/// of the last word zeroed, so equality and hashing of the word vector agree
/// with logical equality of the bit sequences.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitString {
    len: usize,
    words: Vec<u64>,
}

/// The empty bit string with a `'static` lifetime, so engine internals can
/// hand out `&BitString` for "no message" slots that have no physical
/// storage (the sparse delivery backend's misses and self-slots).
pub(crate) static EMPTY: BitString = BitString {
    len: 0,
    words: Vec::new(),
};

impl BitString {
    /// The empty bit string. In the model, sending an empty message is the
    /// same as sending no message at all.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty bit string with room for `bits` bits pre-allocated.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            len: 0,
            words: Vec::with_capacity(bits.div_ceil(64)),
        }
    }

    /// Build from an iterator of booleans, preserving order.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut s = Self::new();
        for b in bits {
            s.push(b);
        }
        s
    }

    /// Reset to the empty string, retaining the allocated word capacity.
    ///
    /// The engine's double-buffered delivery clears and refills the same
    /// message slots every round; keeping capacity makes steady-state rounds
    /// allocation-free.
    pub fn clear(&mut self) {
        self.len = 0;
        self.words.clear();
    }

    /// A bit string of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the string holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`. Panics if out of range.
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i`. Panics if out of range.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        let w = &mut self.words[i / 64];
        if value {
            *w |= 1u64 << (i % 64);
        } else {
            *w &= !(1u64 << (i % 64));
        }
    }

    /// Append a single bit.
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if bit {
            match self.words.last_mut() {
                Some(w) => *w |= 1u64 << (self.len % 64),
                None => unreachable!("a word was pushed above"),
            }
        }
        self.len += 1;
    }

    /// Append the low `width` bits of `value`, least-significant bit first.
    ///
    /// Panics if `width > 64` or if `value` has bits above `width` set; the
    /// latter catches encoding bugs where a field silently overflows its
    /// allotted width (which in a bandwidth-bounded model is data loss).
    pub fn push_uint(&mut self, value: u64, width: usize) {
        assert!(width <= 64, "width {width} exceeds u64");
        if width < 64 {
            assert!(
                value < (1u64 << width),
                "value {value} does not fit in {width} bits"
            );
        }
        if width == 0 {
            return;
        }
        // Word-level append; the assert above guarantees `value` has no bits
        // at or above `width`, which preserves the zero-tail invariant.
        let shift = self.len % 64;
        if shift == 0 {
            self.words.push(value);
        } else {
            match self.words.last_mut() {
                Some(w) => *w |= value << shift,
                None => unreachable!("shift != 0 implies a non-empty word vector"),
            }
            if shift + width > 64 {
                self.words.push(value >> (64 - shift));
            }
        }
        self.len += width;
    }

    /// Append all bits of another string (word-level; hot path for the
    /// routing layer's stream assembly).
    pub fn extend_from(&mut self, other: &BitString) {
        if other.len == 0 {
            return;
        }
        let shift = self.len % 64;
        self.len += other.len;
        let needed = self.len.div_ceil(64);
        let src_words = other.len.div_ceil(64);
        if shift == 0 {
            // Word-aligned: plain copy (the old last word was full).
            self.words.extend_from_slice(&other.words[..src_words]);
            self.words.truncate(needed);
        } else {
            for &w in &other.words[..src_words] {
                // Source invariant: bits past `other.len` are zero.
                match self.words.last_mut() {
                    Some(last) => *last |= w << shift,
                    None => unreachable!("shift != 0 implies a non-empty word vector"),
                }
                if self.words.len() < needed {
                    self.words.push(w >> (64 - shift));
                }
            }
            self.words.truncate(needed);
        }
    }

    /// Overwrite `self` with the contents of `other`, retaining `self`'s
    /// allocated word capacity (word-level copy).
    ///
    /// This is the delivery backends' broadcast fan-out primitive: cloning a
    /// payload into a retained slot must not allocate in steady state, so
    /// `slot.copy_from(msg)` replaces `slot = msg.clone()` on the hot path.
    pub fn copy_from(&mut self, other: &BitString) {
        self.len = other.len;
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }

    /// XOR another string of the same length into `self`, one word at a time.
    ///
    /// Both operands keep the zero-tail invariant, so the result does too.
    /// Panics if the lengths differ — in a bandwidth-bounded model a silent
    /// length mismatch is data loss, not a convenience.
    pub fn xor_words(&mut self, other: &BitString) {
        assert_eq!(
            self.len, other.len,
            "xor_words requires equal lengths ({} vs {})",
            self.len, other.len
        );
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w ^= *o;
        }
    }

    /// Flip every bit in place (word-level), masking the tail word to keep
    /// the zero-tail invariant.
    pub fn invert(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Shorten to the first `len` bits; a no-op if already that short.
    ///
    /// Keeps the zero-tail invariant by masking the new last word, so
    /// equality/hashing stay consistent (the fault layer uses this to model
    /// links that lose the tail of a frame).
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len {
            return;
        }
        self.len = len;
        self.words.truncate(len.div_ceil(64));
        let tail = len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Concatenation convenience.
    pub fn concat(mut self, other: &BitString) -> Self {
        self.extend_from(other);
        self
    }

    /// Iterate over bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// The minimum number of bits needed to encode values in `0..domain`,
    /// i.e. `ceil(log2(domain))`, with the convention that a singleton
    /// domain still needs one bit (so a message is never zero-width).
    pub fn width_for(domain: usize) -> usize {
        match domain {
            0..=2 => 1,
            d => (usize::BITS - (d - 1).leading_zeros()) as usize,
        }
    }

    /// Interpret the whole string as a little-endian unsigned integer.
    /// Panics if longer than 64 bits.
    pub fn as_uint(&self) -> u64 {
        assert!(
            self.len <= 64,
            "bit string of {} bits does not fit in u64",
            self.len
        );
        // Bits past `len` are zero by invariant, so the first word is exact.
        self.words.first().copied().unwrap_or(0)
    }

    /// A reader positioned at the first bit.
    pub fn reader(&self) -> BitReader<'_> {
        BitReader { bits: self, pos: 0 }
    }
}

impl fmt::Debug for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitString[{}]\"", self.len)?;
        // Long payloads are truncated: debug output is for humans.
        for i in 0..self.len.min(96) {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        if self.len > 96 {
            write!(f, "…")?;
        }
        write!(f, "\"")
    }
}

impl FromIterator<bool> for BitString {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::from_bits(iter)
    }
}

/// Sequential decoder over a [`BitString`].
///
/// Reads must consume exactly the encoded layout; all methods return
/// [`DecodeError`] instead of panicking so that *verifiers* (which receive
/// adversarial certificates) can reject malformed inputs gracefully.
#[derive(Clone)]
pub struct BitReader<'a> {
    bits: &'a BitString,
    pos: usize,
}

/// Error produced when a [`BitReader`] runs past the end of its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// Position at which the read was attempted.
    pub at: usize,
    /// Number of bits requested.
    pub wanted: usize,
    /// Total length of the underlying string.
    pub len: usize,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bit decode error: wanted {} bits at position {} of {}",
            self.wanted, self.at, self.len
        )
    }
}

impl std::error::Error for DecodeError {}

impl<'a> BitReader<'a> {
    /// Bits not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.pos
    }

    /// Current read position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Read one bit.
    pub fn read_bit(&mut self) -> Result<bool, DecodeError> {
        if self.pos >= self.bits.len() {
            return Err(DecodeError {
                at: self.pos,
                wanted: 1,
                len: self.bits.len(),
            });
        }
        let b = self.bits.get(self.pos);
        self.pos += 1;
        Ok(b)
    }

    /// Read `width` bits as a little-endian unsigned integer.
    pub fn read_uint(&mut self, width: usize) -> Result<u64, DecodeError> {
        assert!(width <= 64, "width {width} exceeds u64");
        if self.remaining() < width {
            return Err(DecodeError {
                at: self.pos,
                wanted: width,
                len: self.bits.len(),
            });
        }
        if width == 0 {
            return Ok(0);
        }
        // Word-level read across at most two words.
        let off = self.pos % 64;
        let base = self.pos / 64;
        let lo = self.bits.words[base] >> off;
        let hi = if off == 0 {
            0
        } else {
            self.bits.words.get(base + 1).copied().unwrap_or(0) << (64 - off)
        };
        let v = lo | hi;
        self.pos += width;
        Ok(if width == 64 {
            v
        } else {
            v & ((1u64 << width) - 1)
        })
    }

    /// Advance the cursor by `len` bits without materialising them (O(1)).
    pub fn skip(&mut self, len: usize) -> Result<(), DecodeError> {
        if self.remaining() < len {
            return Err(DecodeError {
                at: self.pos,
                wanted: len,
                len: self.bits.len(),
            });
        }
        self.pos += len;
        Ok(())
    }

    /// Read `len` bits as a fresh [`BitString`] (word-level).
    pub fn read_bits(&mut self, len: usize) -> Result<BitString, DecodeError> {
        if self.remaining() < len {
            return Err(DecodeError {
                at: self.pos,
                wanted: len,
                len: self.bits.len(),
            });
        }
        let out_words = len.div_ceil(64);
        let mut words = Vec::with_capacity(out_words);
        let off = self.pos % 64;
        let base = self.pos / 64;
        for j in 0..out_words {
            let lo = self.bits.words.get(base + j).copied().unwrap_or(0) >> off;
            let hi = if off == 0 {
                0
            } else {
                self.bits.words.get(base + j + 1).copied().unwrap_or(0) << (64 - off)
            };
            words.push(lo | hi);
        }
        // Keep the zero-tail invariant.
        let tail = len % 64;
        if tail != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        self.pos += len;
        Ok(BitString { len, words })
    }

    /// Succeeds only if every bit has been consumed; verifiers use this to
    /// reject certificates with trailing garbage.
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError {
                at: self.pos,
                wanted: 0,
                len: self.bits.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_string_basics() {
        let s = BitString::new();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s, BitString::default());
    }

    #[test]
    fn push_and_get_across_word_boundary() {
        let mut s = BitString::new();
        for i in 0..130 {
            s.push(i % 3 == 0);
        }
        assert_eq!(s.len(), 130);
        for i in 0..130 {
            assert_eq!(s.get(i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn set_flips_bits() {
        let mut s = BitString::zeros(70);
        s.set(0, true);
        s.set(69, true);
        assert!(s.get(0));
        assert!(s.get(69));
        assert!(!s.get(35));
        s.set(0, false);
        assert!(!s.get(0));
    }

    #[test]
    fn uint_roundtrip_simple() {
        let mut s = BitString::new();
        s.push_uint(0b1011, 4);
        s.push_uint(7, 3);
        let mut r = s.reader();
        assert_eq!(r.read_uint(4).unwrap(), 0b1011);
        assert_eq!(r.read_uint(3).unwrap(), 7);
        r.expect_end().unwrap();
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn push_uint_overflow_panics() {
        let mut s = BitString::new();
        s.push_uint(4, 2);
    }

    #[test]
    fn width_for_domains() {
        assert_eq!(BitString::width_for(0), 1);
        assert_eq!(BitString::width_for(1), 1);
        assert_eq!(BitString::width_for(2), 1);
        assert_eq!(BitString::width_for(3), 2);
        assert_eq!(BitString::width_for(4), 2);
        assert_eq!(BitString::width_for(5), 3);
        assert_eq!(BitString::width_for(1024), 10);
        assert_eq!(BitString::width_for(1025), 11);
    }

    #[test]
    fn reader_rejects_overrun() {
        let mut s = BitString::new();
        s.push_uint(3, 2);
        let mut r = s.reader();
        assert_eq!(r.read_uint(2).unwrap(), 3);
        assert!(r.read_bit().is_err());
        assert!(r.read_uint(1).is_err());
    }

    #[test]
    fn skip_is_equivalent_to_discarding_reads() {
        let s = BitString::from_bits((0..200).map(|i| i % 7 < 3));
        let mut a = s.reader();
        let mut b = s.reader();
        a.skip(67).unwrap();
        let _ = b.read_bits(67).unwrap();
        assert_eq!(a.position(), b.position());
        assert_eq!(a.read_bits(70).unwrap(), b.read_bits(70).unwrap());
        let mut c = s.reader();
        assert!(c.skip(201).is_err());
        assert_eq!(c.position(), 0, "failed skip must not move the cursor");
    }

    #[test]
    fn expect_end_detects_trailing_bits() {
        let mut s = BitString::new();
        s.push(true);
        let r = s.reader();
        assert!(r.expect_end().is_err());
    }

    #[test]
    fn extend_concatenates_in_order() {
        let a = BitString::from_bits([true, false, true]);
        let b = BitString::from_bits([false, false]);
        let c = a.clone().concat(&b);
        assert_eq!(c.len(), 5);
        let expect = [true, false, true, false, false];
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(c.get(i), *e);
        }
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut a = BitString::with_capacity(1000);
        a.push(true);
        let b = BitString::from_bits([true]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut s = BitString::from_bits((0..200).map(|i| i % 3 == 0));
        let cap = s.words.capacity();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.words.capacity(), cap);
        assert_eq!(s, BitString::new());
        // Reusable after clearing.
        s.push(true);
        assert_eq!(s.len(), 1);
        assert!(s.get(0));
    }

    #[test]
    fn truncate_masks_the_tail_word() {
        let mut s = BitString::from_bits((0..130).map(|_| true));
        s.truncate(65);
        assert_eq!(s.len(), 65);
        assert!(s.iter().all(|b| b));
        // Equality with a freshly built string proves the tail was zeroed.
        assert_eq!(s, BitString::from_bits((0..65).map(|_| true)));
        s.truncate(64);
        assert_eq!(s, BitString::from_bits((0..64).map(|_| true)));
        s.truncate(200);
        assert_eq!(s.len(), 64, "truncate never grows");
        s.truncate(0);
        assert_eq!(s, BitString::new());
        // Truncated strings keep working as append targets.
        let mut t = BitString::from_bits([true, true, true]);
        t.truncate(1);
        t.push(false);
        t.push_uint(3, 2);
        assert_eq!(t, BitString::from_bits([true, false, true, true]));
    }

    #[test]
    fn as_uint_little_endian() {
        let s = BitString::from_bits([true, false, false, true]); // 1 + 8
        assert_eq!(s.as_uint(), 9);
    }

    #[test]
    fn width_zero_is_a_legal_no_op() {
        let mut s = BitString::new();
        s.push_uint(0, 0);
        assert!(s.is_empty());
        // Zero-width fields interleave freely with real ones.
        s.push_uint(5, 3);
        s.push_uint(0, 0);
        s.push_uint(1, 1);
        assert_eq!(s.len(), 4);
        let mut r = s.reader();
        assert_eq!(r.read_uint(0).unwrap(), 0);
        assert_eq!(r.position(), 0, "width-0 read must not advance");
        assert_eq!(r.read_uint(3).unwrap(), 5);
        assert_eq!(r.read_uint(0).unwrap(), 0);
        assert_eq!(r.read_uint(1).unwrap(), 1);
        r.expect_end().unwrap();
        // And an exhausted reader still serves width-0 reads.
        assert_eq!(r.read_uint(0).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit in 0 bits")]
    fn width_zero_rejects_nonzero_values() {
        BitString::new().push_uint(1, 0);
    }

    #[test]
    fn width_64_roundtrips_aligned_and_unaligned() {
        // Aligned: a full word, extreme values.
        for v in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63] {
            let mut s = BitString::new();
            s.push_uint(v, 64);
            assert_eq!(s.len(), 64);
            assert_eq!(s.reader().read_uint(64).unwrap(), v);
            assert_eq!(s.as_uint(), v);
        }
        // Unaligned: a 64-bit value straddling two words at every offset.
        for off in 1usize..64 {
            let mut s = BitString::new();
            s.push_uint((1u64 << off) - 1, off);
            s.push_uint(u64::MAX, 64);
            s.push_uint(0b101, 3);
            let mut r = s.reader();
            assert_eq!(r.read_uint(off).unwrap(), (1u64 << off) - 1, "off={off}");
            assert_eq!(r.read_uint(64).unwrap(), u64::MAX, "off={off}");
            assert_eq!(r.read_uint(3).unwrap(), 0b101, "off={off}");
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn values_straddling_word_boundaries_roundtrip() {
        // A 2-bit value written at offset 63 occupies the last bit of word
        // 0 and the first of word 1.
        let mut s = BitString::new();
        s.push_uint(0, 63);
        s.push_uint(0b11, 2);
        assert_eq!(s.len(), 65);
        assert!(s.get(63) && s.get(64));
        let mut r = s.reader();
        r.skip(63).unwrap();
        assert_eq!(r.read_uint(2).unwrap(), 0b11);
        // Same via bit-level access after a word-straddling extend.
        let mut t = BitString::zeros(61);
        t.extend_from(&BitString::from_bits([true; 7]));
        assert_eq!(t.len(), 68);
        assert!((61..68).all(|i| t.get(i)));
        assert!((0..61).all(|i| !t.get(i)));
    }

    #[test]
    fn as_uint_boundaries() {
        assert_eq!(BitString::new().as_uint(), 0);
        let mut s = BitString::new();
        s.push_uint(u64::MAX, 64);
        assert_eq!(s.as_uint(), u64::MAX, "exactly 64 bits is allowed");
    }

    #[test]
    #[should_panic(expected = "does not fit in u64")]
    fn as_uint_rejects_65_bits() {
        BitString::zeros(65).as_uint();
    }

    proptest! {
        #[test]
        fn prop_bit_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
            let s = BitString::from_bits(bits.iter().copied());
            prop_assert_eq!(s.len(), bits.len());
            for (i, b) in bits.iter().enumerate() {
                prop_assert_eq!(s.get(i), *b);
            }
            let back: Vec<bool> = s.iter().collect();
            prop_assert_eq!(back, bits);
        }

        #[test]
        fn prop_uint_roundtrip(values in proptest::collection::vec((any::<u64>(), 1usize..=64), 0..20)) {
            let mut s = BitString::new();
            let mut expected = Vec::new();
            for (v, w) in &values {
                let v = if *w == 64 { *v } else { v & ((1u64 << w) - 1) };
                s.push_uint(v, *w);
                expected.push((v, *w));
            }
            let mut r = s.reader();
            for (v, w) in expected {
                prop_assert_eq!(r.read_uint(w).unwrap(), v);
            }
            r.expect_end().unwrap();
        }

        #[test]
        fn prop_uint_roundtrip_with_boundary_widths(
            values in proptest::collection::vec((any::<u64>(), 0usize..=64), 0..24),
        ) {
            // Unlike `prop_uint_roundtrip`, widths include 0 (legal no-op)
            // and 64 (full word) so the boundary paths stay covered.
            let mut s = BitString::new();
            let mut expected = Vec::new();
            let mut total = 0usize;
            for (v, w) in &values {
                let v = match *w {
                    0 => 0,
                    64 => *v,
                    w => v & ((1u64 << w) - 1),
                };
                s.push_uint(v, *w);
                total += w;
                expected.push((v, *w));
            }
            prop_assert_eq!(s.len(), total);
            let mut r = s.reader();
            for (v, w) in expected {
                prop_assert_eq!(r.read_uint(w).unwrap(), v);
            }
            r.expect_end().unwrap();
        }

        #[test]
        fn prop_concat_is_associative(
            a in proptest::collection::vec(any::<bool>(), 0..50),
            b in proptest::collection::vec(any::<bool>(), 0..50),
            c in proptest::collection::vec(any::<bool>(), 0..50),
        ) {
            let (sa, sb, sc) = (
                BitString::from_bits(a),
                BitString::from_bits(b),
                BitString::from_bits(c),
            );
            let left = sa.clone().concat(&sb).concat(&sc);
            let right = sa.concat(&sb.concat(&sc));
            prop_assert_eq!(left, right);
        }

        #[test]
        fn prop_truncate_extend_push_matches_bit_model(
            bits in proptest::collection::vec(any::<bool>(), 0..200),
            cut in 0usize..=200,
            ext in proptest::collection::vec(any::<bool>(), 0..130),
            v in any::<u64>(),
            w in 0usize..=64,
        ) {
            // The sparse delivery path's hot loop: truncate a reused slot to
            // an arbitrary length, re-extend it, then append a possibly
            // word-straddling uint. Checked against a plain Vec<bool> model
            // and, for the zero-tail invariant, against a string rebuilt bit
            // by bit (equality is word-vector equality).
            let mut s = BitString::from_bits(bits.iter().copied());
            let mut model = bits.clone();
            let cut = cut.min(model.len());
            s.truncate(cut);
            model.truncate(cut);
            s.extend_from(&BitString::from_bits(ext.iter().copied()));
            model.extend(ext.iter().copied());
            let v = match w {
                0 => 0,
                64 => v,
                w => v & ((1u64 << w) - 1),
            };
            s.push_uint(v, w);
            for i in 0..w {
                model.push((v >> i) & 1 == 1);
            }
            prop_assert_eq!(s.len(), model.len());
            prop_assert_eq!(s.iter().collect::<Vec<_>>(), model.clone());
            prop_assert_eq!(&s, &BitString::from_bits(model.iter().copied()));
            prop_assert_eq!(s.words.len(), s.len().div_ceil(64));
        }

        #[test]
        fn prop_word_level_ops_match_bit_model(
            a in proptest::collection::vec(any::<bool>(), 0..200),
            b in proptest::collection::vec(any::<bool>(), 0..200),
        ) {
            let sa = BitString::from_bits(a.iter().copied());
            let sb = BitString::from_bits(b.iter().copied());
            // copy_from overwrites content, keeping only destination capacity.
            let mut c = sb.clone();
            c.copy_from(&sa);
            prop_assert_eq!(&c, &sa);
            // xor over the common prefix, checked bitwise, then invert.
            let n = a.len().min(b.len());
            let mut x = sa.clone();
            x.truncate(n);
            let mut y = sb.clone();
            y.truncate(n);
            x.xor_words(&y);
            let expect: Vec<bool> = (0..n).map(|i| a[i] ^ b[i]).collect();
            prop_assert_eq!(x.iter().collect::<Vec<_>>(), expect.clone());
            x.invert();
            let flipped: Vec<bool> = expect.iter().map(|e| !e).collect();
            prop_assert_eq!(x.iter().collect::<Vec<_>>(), flipped.clone());
            prop_assert_eq!(&x, &BitString::from_bits(flipped));
        }

        #[test]
        fn prop_read_bits_matches_slice(
            bits in proptest::collection::vec(any::<bool>(), 0..120),
            cut in 0usize..=120,
        ) {
            let cut = cut.min(bits.len());
            let s = BitString::from_bits(bits.iter().copied());
            let mut r = s.reader();
            let head = r.read_bits(cut).unwrap();
            let tail = r.read_bits(bits.len() - cut).unwrap();
            prop_assert_eq!(head.iter().collect::<Vec<_>>(), bits[..cut].to_vec());
            prop_assert_eq!(tail.iter().collect::<Vec<_>>(), bits[cut..].to_vec());
        }
    }
}
