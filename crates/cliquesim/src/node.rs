//! The node-side programming interface.
//!
//! A congested clique algorithm is given as a [`NodeProgram`]: a state
//! machine that the engine steps once per synchronous round. Within a round
//! the node reads its [`Inbox`] (one message slot per other node), performs
//! unlimited local computation, and fills its [`Outbox`] (at most one
//! bandwidth-bounded message per other node).

use crate::bits::{BitString, EMPTY};
use crate::delivery::SparseRow;

/// Identity of a node. The paper numbers nodes `1..=n`; internally we use
/// `0..n` and expose [`NodeId::display`] for one-based reporting.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into per-node arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// One-based id as in the paper.
    pub fn display(self) -> u32 {
        self.0 + 1
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        match u32::try_from(i) {
            Ok(v) => NodeId(v),
            Err(_) => panic!("node index {i} does not fit in u32"),
        }
    }
}

/// Static per-node context, fixed for the whole execution.
#[derive(Clone, Debug)]
pub struct NodeCtx {
    /// This node's identity.
    pub id: NodeId,
    /// Total number of nodes in the clique.
    pub n: usize,
    /// Message size bound in bits (per ordered pair per round).
    pub bandwidth: usize,
}

impl NodeCtx {
    /// Bits needed to name a node, `ceil(log2 n)` (at least 1).
    pub fn id_width(&self) -> usize {
        BitString::width_for(self.n)
    }
}

/// What a node decided to do after a round.
#[derive(Debug)]
pub enum Status<T> {
    /// Keep participating in subsequent rounds.
    Continue,
    /// Stop; the node's local output is `T`. Messages placed in the outbox
    /// during the halting round are still delivered, but a halted node never
    /// sends again.
    Halt(T),
}

/// A congested clique node program.
///
/// All nodes run the *same* program (the paper's uniformity assumption); the
/// program may branch on `ctx.id`. Programs must be deterministic —
/// randomised algorithms model their coins as part of the program state,
/// seeded deterministically from the id, which keeps every run replayable.
pub trait NodeProgram: Send {
    /// The node's local output when it halts.
    type Output: Send;

    /// Called once before round 0.
    fn init(&mut self, _ctx: &NodeCtx) {}

    /// Execute one synchronous round.
    ///
    /// `round` counts from 0. `inbox` holds the messages sent to this node
    /// in the previous round (empty on round 0). Messages for the *next*
    /// round are placed in `outbox`.
    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<Self::Output>;
}

impl<T: NodeProgram + ?Sized> NodeProgram for Box<T> {
    type Output = T::Output;

    fn init(&mut self, ctx: &NodeCtx) {
        (**self).init(ctx);
    }

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<Self::Output> {
        (**self).step(ctx, round, inbox, outbox)
    }
}

/// Messages received by one node in one round.
///
/// Logically, slot `u` holds the message from node `u`; an empty
/// [`BitString`] means node `u` sent nothing. Physically the inbox is a view
/// into whichever delivery backend the engine is running: a *strided view*
/// into the dense sender-major matrix (the message from `u` lives at
/// `slots[u * stride + offset]`), or a lookup into the sparse backend's
/// compacted per-sender rows. Either way delivery is a buffer swap, never an
/// O(n²) transpose. Standalone harnesses use the flat layout (`stride = 1`,
/// `offset = 0`) via [`Inbox::from_slots`].
pub struct Inbox<'a> {
    inner: InboxInner<'a>,
    n: usize,
    me: usize,
}

/// Backend-specific storage behind an [`Inbox`].
enum InboxInner<'a> {
    /// Strided view into a flat slice of message slots.
    Slots {
        slots: &'a [BitString],
        stride: usize,
        offset: usize,
    },
    /// Sealed per-sender rows of the sparse backend.
    Sparse { rows: &'a [SparseRow] },
}

impl<'a> Inbox<'a> {
    /// Build an inbox from raw slots (slot `u` = message from node `u`).
    ///
    /// Intended for harnesses that execute node programs *outside* the
    /// engine: the virtual-clique simulation of Theorem 10 and the
    /// transcript replay of Theorem 3's normal form.
    pub fn from_slots(slots: &'a [BitString], me: usize) -> Self {
        Self {
            inner: InboxInner::Slots {
                slots,
                stride: 1,
                offset: 0,
            },
            n: slots.len(),
            me,
        }
    }

    /// Build a transposed view into a sender-major `n × n` message matrix:
    /// the message from `u` to `me` is `matrix[u * n + me]`.
    pub(crate) fn transposed(matrix: &'a [BitString], n: usize, me: usize) -> Self {
        debug_assert_eq!(matrix.len(), n * n);
        Self {
            inner: InboxInner::Slots {
                slots: matrix,
                stride: n,
                offset: me,
            },
            n,
            me,
        }
    }

    /// Build a view into the sparse backend's sealed per-sender rows.
    pub(crate) fn sparse(rows: &'a [SparseRow], n: usize, me: usize) -> Self {
        debug_assert_eq!(rows.len(), n);
        Self {
            inner: InboxInner::Sparse { rows },
            n,
            me,
        }
    }

    /// The message from node `from` (empty if none). A node never receives
    /// from itself; that slot is always empty.
    pub fn from(&self, from: NodeId) -> &'a BitString {
        match &self.inner {
            InboxInner::Slots {
                slots,
                stride,
                offset,
            } => {
                let slots: &'a [BitString] = slots;
                &slots[from.index() * stride + offset]
            }
            InboxInner::Sparse { rows } => {
                let rows: &'a [SparseRow] = rows;
                if from.index() == self.me {
                    &EMPTY
                } else {
                    rows[from.index()].get(self.me)
                }
            }
        }
    }

    /// Iterate over `(sender, message)` for all non-empty messages.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &'a BitString)> + '_ {
        let me = self.me;
        (0..self.n)
            .filter(move |u| *u != me)
            .map(move |u| (u, self.from(NodeId::from(u))))
            .filter(|(_, m)| !m.is_empty())
            .map(|(u, m)| (NodeId::from(u), m))
    }

    /// Number of nodes in the clique.
    pub fn n(&self) -> usize {
        self.n
    }
}

/// Messages sent by one node in one round: at most one per other node, each
/// at most `bandwidth` bits (the engine enforces the bound on delivery).
///
/// Borrows its slot row (or compacted sparse row) from the engine's send
/// buffer so that node steps can run in parallel without per-round
/// allocation.
pub struct Outbox<'a> {
    inner: OutboxInner<'a>,
    n: usize,
    me: usize,
}

/// Backend-specific storage behind an [`Outbox`].
enum OutboxInner<'a> {
    /// One flat slot per recipient (dense backend and harnesses).
    Slots { slots: &'a mut [BitString] },
    /// The sender's compacted row in the sparse backend.
    Sparse { row: &'a mut SparseRow },
}

impl<'a> Outbox<'a> {
    /// Build an outbox over raw slots (slot `u` = message to node `u`).
    ///
    /// Public for the same out-of-engine harnesses as
    /// [`Inbox::from_slots`]; inside the engine the slots are rows of its
    /// send buffer.
    pub fn new(slots: &'a mut [BitString], me: usize) -> Self {
        let n = slots.len();
        Self {
            inner: OutboxInner::Slots { slots },
            n,
            me,
        }
    }

    /// Build an outbox over a cleared sparse-backend row.
    pub(crate) fn sparse(row: &'a mut SparseRow, n: usize, me: usize) -> Self {
        Self {
            inner: OutboxInner::Sparse { row },
            n,
            me,
        }
    }

    /// Queue `msg` for delivery to `to` next round. Replaces any message
    /// already queued for `to` this round. Sending to oneself or to a node
    /// outside the clique is a programming error.
    pub fn send(&mut self, to: NodeId, msg: BitString) {
        assert_ne!(
            to.index(),
            self.me,
            "node {} attempted to send to itself",
            self.me
        );
        assert!(
            to.index() < self.n,
            "node {} attempted to send to nonexistent node {}",
            self.me,
            to.index()
        );
        match &mut self.inner {
            OutboxInner::Slots { slots } => slots[to.index()] = msg,
            OutboxInner::Sparse { row } => row.send(to.0, msg),
        }
    }

    /// Send the same message to every other node (the broadcast primitive;
    /// costs the same as n-1 unicasts in this model).
    pub fn broadcast(&mut self, msg: &BitString) {
        match &mut self.inner {
            OutboxInner::Slots { slots } => {
                for (u, slot) in slots.iter_mut().enumerate() {
                    if u != self.me {
                        slot.copy_from(msg);
                    }
                }
            }
            OutboxInner::Sparse { row } => row.set_broadcast(msg),
        }
    }

    /// The number of destination slots (= n).
    pub fn n(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_is_one_based() {
        assert_eq!(NodeId(0).display(), 1);
        assert_eq!(NodeId(6).display(), 7);
        assert_eq!(NodeId::from(3usize).index(), 3);
    }

    #[test]
    fn outbox_send_and_broadcast() {
        let mut slots = vec![BitString::new(); 4];
        let m = BitString::from_bits([true]);
        {
            let mut ob = Outbox::new(&mut slots, 1);
            ob.send(NodeId(0), m.clone());
        }
        assert_eq!(slots[0], m);
        assert!(slots[2].is_empty());
        {
            let mut ob = Outbox::new(&mut slots, 1);
            ob.broadcast(&m);
        }
        for u in [0usize, 2, 3] {
            assert_eq!(slots[u], m);
        }
        assert!(slots[1].is_empty(), "broadcast must skip self");
    }

    #[test]
    #[should_panic(expected = "nonexistent node")]
    fn outbox_rejects_out_of_range_send() {
        let mut slots = vec![BitString::new(); 3];
        let mut ob = Outbox::new(&mut slots, 0);
        ob.send(NodeId(7), BitString::new());
    }

    #[test]
    fn sparse_outbox_and_inbox_round_trip() {
        let n = 4;
        let mut rows: Vec<SparseRow> = (0..n).map(|_| SparseRow::default()).collect();
        {
            let mut ob = Outbox::sparse(&mut rows[1], n, 1);
            assert_eq!(ob.n(), n);
            ob.broadcast(&BitString::from_bits([true, false]));
            ob.send(NodeId(3), BitString::from_bits([false]));
        }
        for r in &mut rows {
            r.seal();
        }
        let ib = Inbox::sparse(&rows, n, 3);
        assert_eq!(ib.from(NodeId(1)), &BitString::from_bits([false]));
        assert!(ib.from(NodeId(3)).is_empty(), "self slot is empty");
        let ib0 = Inbox::sparse(&rows, n, 0);
        assert_eq!(ib0.from(NodeId(1)), &BitString::from_bits([true, false]));
        let got: Vec<_> = ib0.iter().map(|(u, m)| (u.index(), m.len())).collect();
        assert_eq!(got, vec![(1, 2)]);
    }

    #[test]
    #[should_panic(expected = "send to itself")]
    fn outbox_rejects_self_send() {
        let mut slots = vec![BitString::new(); 3];
        let mut ob = Outbox::new(&mut slots, 2);
        ob.send(NodeId(2), BitString::new());
    }

    #[test]
    fn inbox_iter_skips_empty() {
        let slots = vec![
            BitString::from_bits([true]),
            BitString::new(),
            BitString::from_bits([false, true]),
        ];
        let ib = Inbox::from_slots(&slots, 1);
        let got: Vec<_> = ib.iter().map(|(u, m)| (u.index(), m.len())).collect();
        assert_eq!(got, vec![(0, 1), (2, 2)]);
        assert_eq!(ib.from(NodeId(0)).len(), 1);
        assert!(ib.from(NodeId(1)).is_empty());
    }

    #[test]
    fn transposed_inbox_reads_sender_major_matrix() {
        // 3×3 sender-major matrix: slot v*n+u = message v → u.
        let n = 3;
        let mut matrix = vec![BitString::new(); n * n];
        matrix[n + 2] = BitString::from_bits([true]); // 1 → 2
        matrix[2] = BitString::from_bits([false, true]); // 0 → 2
        matrix[n] = BitString::from_bits([true, true, true]); // 1 → 0
        let ib = Inbox::transposed(&matrix, n, 2);
        assert_eq!(ib.from(NodeId(1)).len(), 1);
        assert_eq!(ib.from(NodeId(0)).len(), 2);
        let got: Vec<_> = ib.iter().map(|(u, m)| (u.index(), m.len())).collect();
        assert_eq!(got, vec![(0, 2), (1, 1)]);
        // Node 2 does not see the 1 → 0 message.
        let ib0 = Inbox::transposed(&matrix, n, 0);
        assert_eq!(ib0.from(NodeId(1)).len(), 3);
    }
}
