//! The node-side programming interface.
//!
//! A congested clique algorithm is given as a [`NodeProgram`]: a state
//! machine that the engine steps once per synchronous round. Within a round
//! the node reads its [`Inbox`] (one message slot per other node), performs
//! unlimited local computation, and fills its [`Outbox`] (at most one
//! bandwidth-bounded message per other node).

use crate::bits::BitString;

/// Identity of a node. The paper numbers nodes `1..=n`; internally we use
/// `0..n` and expose [`NodeId::display`] for one-based reporting.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into per-node arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// One-based id as in the paper.
    pub fn display(self) -> u32 {
        self.0 + 1
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        match u32::try_from(i) {
            Ok(v) => NodeId(v),
            Err(_) => panic!("node index {i} does not fit in u32"),
        }
    }
}

/// Static per-node context, fixed for the whole execution.
#[derive(Clone, Debug)]
pub struct NodeCtx {
    /// This node's identity.
    pub id: NodeId,
    /// Total number of nodes in the clique.
    pub n: usize,
    /// Message size bound in bits (per ordered pair per round).
    pub bandwidth: usize,
}

impl NodeCtx {
    /// Bits needed to name a node, `ceil(log2 n)` (at least 1).
    pub fn id_width(&self) -> usize {
        BitString::width_for(self.n)
    }
}

/// What a node decided to do after a round.
#[derive(Debug)]
pub enum Status<T> {
    /// Keep participating in subsequent rounds.
    Continue,
    /// Stop; the node's local output is `T`. Messages placed in the outbox
    /// during the halting round are still delivered, but a halted node never
    /// sends again.
    Halt(T),
}

/// A congested clique node program.
///
/// All nodes run the *same* program (the paper's uniformity assumption); the
/// program may branch on `ctx.id`. Programs must be deterministic —
/// randomised algorithms model their coins as part of the program state,
/// seeded deterministically from the id, which keeps every run replayable.
pub trait NodeProgram: Send {
    /// The node's local output when it halts.
    type Output: Send;

    /// Called once before round 0.
    fn init(&mut self, _ctx: &NodeCtx) {}

    /// Execute one synchronous round.
    ///
    /// `round` counts from 0. `inbox` holds the messages sent to this node
    /// in the previous round (empty on round 0). Messages for the *next*
    /// round are placed in `outbox`.
    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<Self::Output>;
}

impl<T: NodeProgram + ?Sized> NodeProgram for Box<T> {
    type Output = T::Output;

    fn init(&mut self, ctx: &NodeCtx) {
        (**self).init(ctx);
    }

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<Self::Output> {
        (**self).step(ctx, round, inbox, outbox)
    }
}

/// Messages received by one node in one round.
///
/// Logically, slot `u` holds the message from node `u`; an empty
/// [`BitString`] means node `u` sent nothing. Physically the slots are a
/// *strided view*: the message from `u` lives at `slots[u * stride +
/// offset]`. The engine hands out views directly into its sender-major
/// delivery buffer (`stride = n`, `offset = me`), so delivery is a buffer
/// swap instead of an O(n²) transpose; standalone harnesses use the dense
/// layout (`stride = 1`, `offset = 0`) via [`Inbox::from_slots`].
pub struct Inbox<'a> {
    pub(crate) slots: &'a [BitString],
    pub(crate) stride: usize,
    pub(crate) offset: usize,
    pub(crate) n: usize,
    pub(crate) me: usize,
}

impl<'a> Inbox<'a> {
    /// Build an inbox from raw slots (slot `u` = message from node `u`).
    ///
    /// Intended for harnesses that execute node programs *outside* the
    /// engine: the virtual-clique simulation of Theorem 10 and the
    /// transcript replay of Theorem 3's normal form.
    pub fn from_slots(slots: &'a [BitString], me: usize) -> Self {
        Self {
            slots,
            stride: 1,
            offset: 0,
            n: slots.len(),
            me,
        }
    }

    /// Build a transposed view into a sender-major `n × n` message matrix:
    /// the message from `u` to `me` is `matrix[u * n + me]`.
    pub(crate) fn transposed(matrix: &'a [BitString], n: usize, me: usize) -> Self {
        debug_assert_eq!(matrix.len(), n * n);
        Self {
            slots: matrix,
            stride: n,
            offset: me,
            n,
            me,
        }
    }

    /// The message from node `from` (empty if none). A node never receives
    /// from itself; that slot is always empty.
    pub fn from(&self, from: NodeId) -> &'a BitString {
        &self.slots[from.index() * self.stride + self.offset]
    }

    /// Iterate over `(sender, message)` for all non-empty messages.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &'a BitString)> + '_ {
        let me = self.me;
        (0..self.n)
            .map(move |u| (u, &self.slots[u * self.stride + self.offset]))
            .filter(move |(u, m)| *u != me && !m.is_empty())
            .map(|(u, m)| (NodeId::from(u), m))
    }

    /// Number of nodes in the clique.
    pub fn n(&self) -> usize {
        self.n
    }
}

/// Messages sent by one node in one round: at most one per other node, each
/// at most `bandwidth` bits (the engine enforces the bound on delivery).
///
/// Borrows its slot row from the engine's send buffer so that node steps can
/// run in parallel without per-round allocation.
pub struct Outbox<'a> {
    pub(crate) slots: &'a mut [BitString],
    pub(crate) me: usize,
}

impl<'a> Outbox<'a> {
    /// Build an outbox over raw slots (slot `u` = message to node `u`).
    ///
    /// Public for the same out-of-engine harnesses as
    /// [`Inbox::from_slots`]; inside the engine the slots are rows of its
    /// send buffer.
    pub fn new(slots: &'a mut [BitString], me: usize) -> Self {
        Self { slots, me }
    }

    /// Queue `msg` for delivery to `to` next round. Replaces any message
    /// already queued for `to` this round. Sending to oneself is a
    /// programming error.
    pub fn send(&mut self, to: NodeId, msg: BitString) {
        assert_ne!(
            to.index(),
            self.me,
            "node {} attempted to send to itself",
            self.me
        );
        self.slots[to.index()] = msg;
    }

    /// Send the same message to every other node (the broadcast primitive;
    /// costs the same as n-1 unicasts in this model).
    pub fn broadcast(&mut self, msg: &BitString) {
        for u in 0..self.slots.len() {
            if u != self.me {
                self.slots[u] = msg.clone();
            }
        }
    }

    /// The number of destination slots (= n).
    pub fn n(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_is_one_based() {
        assert_eq!(NodeId(0).display(), 1);
        assert_eq!(NodeId(6).display(), 7);
        assert_eq!(NodeId::from(3usize).index(), 3);
    }

    #[test]
    fn outbox_send_and_broadcast() {
        let mut slots = vec![BitString::new(); 4];
        let mut ob = Outbox::new(&mut slots, 1);
        let m = BitString::from_bits([true]);
        ob.send(NodeId(0), m.clone());
        assert_eq!(ob.slots[0], m);
        assert!(ob.slots[2].is_empty());
        ob.broadcast(&m);
        for u in [0usize, 2, 3] {
            assert_eq!(ob.slots[u], m);
        }
        assert!(ob.slots[1].is_empty(), "broadcast must skip self");
    }

    #[test]
    #[should_panic(expected = "send to itself")]
    fn outbox_rejects_self_send() {
        let mut slots = vec![BitString::new(); 3];
        let mut ob = Outbox::new(&mut slots, 2);
        ob.send(NodeId(2), BitString::new());
    }

    #[test]
    fn inbox_iter_skips_empty() {
        let slots = vec![
            BitString::from_bits([true]),
            BitString::new(),
            BitString::from_bits([false, true]),
        ];
        let ib = Inbox::from_slots(&slots, 1);
        let got: Vec<_> = ib.iter().map(|(u, m)| (u.index(), m.len())).collect();
        assert_eq!(got, vec![(0, 1), (2, 2)]);
        assert_eq!(ib.from(NodeId(0)).len(), 1);
        assert!(ib.from(NodeId(1)).is_empty());
    }

    #[test]
    fn transposed_inbox_reads_sender_major_matrix() {
        // 3×3 sender-major matrix: slot v*n+u = message v → u.
        let n = 3;
        let mut matrix = vec![BitString::new(); n * n];
        matrix[n + 2] = BitString::from_bits([true]); // 1 → 2
        matrix[2] = BitString::from_bits([false, true]); // 0 → 2
        matrix[n] = BitString::from_bits([true, true, true]); // 1 → 0
        let ib = Inbox::transposed(&matrix, n, 2);
        assert_eq!(ib.from(NodeId(1)).len(), 1);
        assert_eq!(ib.from(NodeId(0)).len(), 2);
        let got: Vec<_> = ib.iter().map(|(u, m)| (u.index(), m.len())).collect();
        assert_eq!(got, vec![(0, 2), (1, 1)]);
        // Node 2 does not see the 1 → 0 message.
        let ib0 = Inbox::transposed(&matrix, n, 0);
        assert_eq!(ib0.from(NodeId(1)).len(), 3);
    }
}
