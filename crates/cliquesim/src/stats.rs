//! Execution accounting.
//!
//! Round counts are the paper's complexity measure; bit and message totals
//! let experiments check bandwidth-sensitive claims (e.g. Theorem 3's
//! certificate bound) without trusting the algorithm under test.
//!
//! # Accounting semantics
//!
//! `messages` and `bits` are **sent-based**: a payload is counted the moment
//! the engine accepts it onto the wire (at the end of the sender's step
//! phase, after bandwidth validation), not when a recipient reads it. This
//! matches the model — a message occupies its link for the round whether or
//! not anyone is listening. Payloads whose recipient halted in the same
//! round or earlier are therefore still charged; the `undelivered_*` fields
//! break out exactly that subset so experiments can distinguish useful from
//! wasted bandwidth.
//!
//! Every counter is **logical**: it measures messages and payload bits as
//! the model sees them, never the delivery buffers behind them. In
//! particular `peak_live_payload_bytes` tracks payload bits live on the
//! wire, not slot capacity, so a run on a warm, reused
//! [`crate::DeliveryArena`] (whatever capacity earlier runs left parked)
//! reports byte-identical stats to a run on a cold one, on either delivery
//! backend — pinned by the engine's arena-reuse regression test.

/// Totals for one run (or one session of composed runs).
///
/// Equality deliberately ignores [`RunStats::timing`]: wall-clock is
/// nondeterministic, while every other field is part of the engine's
/// bit-identity contract between sequential and parallel execution.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Synchronous communication rounds. An algorithm that halts before any
    /// message exchange has `rounds == 0`.
    pub rounds: usize,
    /// Total messages accepted on the wire (non-empty payloads), counted at
    /// send time (see module docs).
    pub messages: u64,
    /// Total payload bits accepted on the wire, counted at send time.
    pub bits: u64,
    /// Largest single message observed, in bits.
    pub max_message_bits: usize,
    /// Messages whose recipient never stepped again (it halted in the
    /// sending round or earlier), so the payload was never read. A subset of
    /// `messages`.
    pub undelivered_messages: u64,
    /// Payload bits of the undelivered messages. A subset of `bits`.
    pub undelivered_bits: u64,
    /// Peak bytes of payload simultaneously live in the engine's two
    /// delivery buffers (this round's sends plus the previous round's
    /// not-yet-consumed deliveries), maximised over rounds.
    pub peak_live_payload_bytes: usize,
    /// Messages removed from the wire by a fault plan. Like all fault
    /// counters, this is disjoint from `undelivered_*`: a dropped message
    /// was destroyed by the adversary, not ignored by a halted recipient.
    pub dropped_messages: u64,
    /// Messages that had one payload bit flipped by a fault plan.
    pub corrupted_messages: u64,
    /// Messages cut to a strict prefix by a fault plan.
    pub truncated_messages: u64,
    /// Nodes that crash-stopped under a fault plan (never produced an
    /// output). In-flight payloads they never read are charged to
    /// `undelivered_*`.
    pub dead_nodes: u64,
    /// Crashed nodes a fault plan brought back via a rejoin, each
    /// state-synced over its missed window.
    pub rejoined_nodes: u64,
    /// Missed rounds replayed to rejoining nodes as out-of-band state-sync
    /// rounds. Not added to `rounds`: sync rides alongside the live clock.
    pub sync_rounds: u64,
    /// Messages re-delivered to rejoining nodes during state sync. Not
    /// added to `messages` — the originals were already counted at send
    /// time (sent-based accounting, see module docs), so the live totals
    /// stay transcript-exact; this counter is the price of the replay.
    pub sync_messages: u64,
    /// Payload bits of the re-delivered state-sync messages. Disjoint from
    /// `bits`, like `sync_messages`.
    pub sync_bits: u64,
    /// Messages whose content a Byzantine plan rewrote (garbled, inverted,
    /// or replayed). The payload still occupies the wire, so it stays in
    /// `messages`/`bits`; this counter marks it as a lie.
    pub forged_messages: u64,
    /// Messages a Byzantine traitor selectively withheld from a recipient.
    /// Like the link-fault counters, disjoint from `undelivered_*`.
    pub silenced_messages: u64,
    /// Distinct traitor nodes that actually rewrote at least one message
    /// under a Byzantine plan.
    pub traitor_nodes: u64,
    /// Message copies the authenticated envelope signed (one per delivered
    /// copy — a broadcast charges `n − 1` even where the sparse backend
    /// stores one shared payload). Zero when no keyring is attached.
    pub signed_messages: u64,
    /// Tag bits the authenticated envelope appended, `TAG_BITS` per signed
    /// copy. Deliberately disjoint from `bits`: authentication is envelope
    /// overhead, not algorithm traffic.
    pub auth_bits: u64,
    /// Frames the verification pass cleared because their tag failed —
    /// forged-tag rewrites and post-signing wire damage. Honest traffic is
    /// never rejected.
    pub rejected_tags: u64,
    /// Wall-clock measurements; excluded from `==` (see type docs).
    pub timing: EngineTiming,
}

/// Wall-clock measurements for one run.
///
/// Timing is inherently nondeterministic, so it lives outside the
/// [`RunStats`] equality relation: asserting `seq.stats == par.stats` checks
/// the model-level fields only.
#[derive(Clone, Debug, Default)]
pub struct EngineTiming {
    /// Nanoseconds spent stepping nodes, summed over rounds. In parallel
    /// runs this is the wall-clock of the step phases, not CPU time.
    pub step_ns: u64,
    /// Nanoseconds spent in delivery bookkeeping between step phases
    /// (transcript recording, undelivered accounting, halt detection),
    /// summed over rounds.
    pub delivery_ns: u64,
    /// Total wall-clock nanoseconds of each round (step + delivery), one
    /// entry per step phase executed.
    pub round_wall_ns: Vec<u64>,
}

impl EngineTiming {
    /// Total wall-clock nanoseconds across all rounds.
    pub fn total_ns(&self) -> u64 {
        self.round_wall_ns.iter().sum()
    }

    /// Fold another run's timing into this one (phases run back to back).
    pub fn absorb(&mut self, other: &EngineTiming) {
        self.step_ns += other.step_ns;
        self.delivery_ns += other.delivery_ns;
        self.round_wall_ns.extend_from_slice(&other.round_wall_ns);
    }
}

impl PartialEq for RunStats {
    fn eq(&self, other: &Self) -> bool {
        // `timing` intentionally omitted: see type docs.
        self.rounds == other.rounds
            && self.messages == other.messages
            && self.bits == other.bits
            && self.max_message_bits == other.max_message_bits
            && self.undelivered_messages == other.undelivered_messages
            && self.undelivered_bits == other.undelivered_bits
            && self.peak_live_payload_bytes == other.peak_live_payload_bytes
            && self.dropped_messages == other.dropped_messages
            && self.corrupted_messages == other.corrupted_messages
            && self.truncated_messages == other.truncated_messages
            && self.dead_nodes == other.dead_nodes
            && self.rejoined_nodes == other.rejoined_nodes
            && self.sync_rounds == other.sync_rounds
            && self.sync_messages == other.sync_messages
            && self.sync_bits == other.sync_bits
            && self.forged_messages == other.forged_messages
            && self.silenced_messages == other.silenced_messages
            && self.traitor_nodes == other.traitor_nodes
            && self.signed_messages == other.signed_messages
            && self.auth_bits == other.auth_bits
            && self.rejected_tags == other.rejected_tags
    }
}

impl Eq for RunStats {}

impl RunStats {
    /// Fold another run's totals into this one; rounds add (sequential
    /// composition of phases is free synchronisation in this model), peak
    /// buffer residency maxes (phases reuse the buffers, they don't stack).
    pub fn absorb(&mut self, other: &RunStats) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.bits += other.bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.undelivered_messages += other.undelivered_messages;
        self.undelivered_bits += other.undelivered_bits;
        self.peak_live_payload_bytes = self
            .peak_live_payload_bytes
            .max(other.peak_live_payload_bytes);
        self.dropped_messages += other.dropped_messages;
        self.corrupted_messages += other.corrupted_messages;
        self.truncated_messages += other.truncated_messages;
        self.dead_nodes += other.dead_nodes;
        self.rejoined_nodes += other.rejoined_nodes;
        self.sync_rounds += other.sync_rounds;
        self.sync_messages += other.sync_messages;
        self.sync_bits += other.sync_bits;
        self.forged_messages += other.forged_messages;
        self.silenced_messages += other.silenced_messages;
        self.traitor_nodes += other.traitor_nodes;
        self.signed_messages += other.signed_messages;
        self.auth_bits += other.auth_bits;
        self.rejected_tags += other.rejected_tags;
        self.timing.absorb(&other.timing);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_rounds_and_maxes_width() {
        let mut a = RunStats {
            rounds: 3,
            messages: 10,
            bits: 50,
            max_message_bits: 5,
            undelivered_messages: 1,
            undelivered_bits: 4,
            peak_live_payload_bytes: 100,
            ..RunStats::default()
        };
        let b = RunStats {
            rounds: 2,
            messages: 1,
            bits: 3,
            max_message_bits: 9,
            undelivered_messages: 2,
            undelivered_bits: 5,
            peak_live_payload_bytes: 60,
            ..RunStats::default()
        };
        a.absorb(&b);
        assert_eq!(
            a,
            RunStats {
                rounds: 5,
                messages: 11,
                bits: 53,
                max_message_bits: 9,
                undelivered_messages: 3,
                undelivered_bits: 9,
                peak_live_payload_bytes: 100,
                ..RunStats::default()
            }
        );
    }

    #[test]
    fn absorb_adds_fault_counters() {
        let mut a = RunStats {
            dropped_messages: 1,
            corrupted_messages: 2,
            truncated_messages: 3,
            dead_nodes: 1,
            rejoined_nodes: 1,
            sync_rounds: 4,
            sync_messages: 7,
            sync_bits: 21,
            forged_messages: 4,
            silenced_messages: 5,
            traitor_nodes: 1,
            signed_messages: 9,
            auth_bits: 288,
            rejected_tags: 2,
            ..RunStats::default()
        };
        let b = a.clone();
        a.absorb(&b);
        assert_eq!(a.dropped_messages, 2);
        assert_eq!(a.corrupted_messages, 4);
        assert_eq!(a.truncated_messages, 6);
        assert_eq!(a.dead_nodes, 2);
        assert_eq!(a.rejoined_nodes, 2);
        assert_eq!(a.sync_rounds, 8);
        assert_eq!(a.sync_messages, 14);
        assert_eq!(a.sync_bits, 42);
        assert_eq!(a.forged_messages, 8);
        assert_eq!(a.silenced_messages, 10);
        assert_eq!(a.traitor_nodes, 2);
        assert_eq!(a.signed_messages, 18);
        assert_eq!(a.auth_bits, 576);
        assert_eq!(a.rejected_tags, 4);
        assert_ne!(a, b, "fault counters participate in equality");
    }

    #[test]
    fn equality_ignores_timing() {
        let mut a = RunStats {
            rounds: 1,
            ..RunStats::default()
        };
        let b = a.clone();
        a.timing.step_ns = 123;
        a.timing.round_wall_ns.push(456);
        assert_eq!(a, b, "wall-clock must not break bit-identity checks");
    }

    #[test]
    fn timing_absorb_concatenates_rounds() {
        let mut t = EngineTiming {
            step_ns: 10,
            delivery_ns: 5,
            round_wall_ns: vec![8, 7],
        };
        t.absorb(&EngineTiming {
            step_ns: 1,
            delivery_ns: 2,
            round_wall_ns: vec![3],
        });
        assert_eq!(t.step_ns, 11);
        assert_eq!(t.delivery_ns, 7);
        assert_eq!(t.round_wall_ns, vec![8, 7, 3]);
        assert_eq!(t.total_ns(), 18);
    }
}
