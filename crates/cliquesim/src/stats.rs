//! Execution accounting.
//!
//! Round counts are the paper's complexity measure; bit and message totals
//! let experiments check bandwidth-sensitive claims (e.g. Theorem 3's
//! certificate bound) without trusting the algorithm under test.

/// Totals for one run (or one session of composed runs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RunStats {
    /// Synchronous communication rounds. An algorithm that halts before any
    /// message exchange has `rounds == 0`.
    pub rounds: usize,
    /// Total messages delivered (non-empty payloads).
    pub messages: u64,
    /// Total payload bits delivered.
    pub bits: u64,
    /// Largest single message observed, in bits.
    pub max_message_bits: usize,
}

impl RunStats {
    /// Fold another run's totals into this one; rounds add (sequential
    /// composition of phases is free synchronisation in this model).
    pub fn absorb(&mut self, other: &RunStats) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.bits += other.bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_rounds_and_maxes_width() {
        let mut a = RunStats { rounds: 3, messages: 10, bits: 50, max_message_bits: 5 };
        let b = RunStats { rounds: 2, messages: 1, bits: 3, max_message_bits: 9 };
        a.absorb(&b);
        assert_eq!(a, RunStats { rounds: 5, messages: 11, bits: 53, max_message_bits: 9 });
    }
}
