//! Authenticated messages: a seeded keyring issuing HMAC-style tags.
//!
//! The Byzantine tier (docs/THREAT-MODEL.md, tier 3) caps reliable
//! broadcast at `f < n/3` because a recipient cannot *transfer* what it
//! heard: "node `t` told me `x`" is hearsay, so every claim must be
//! re-validated by quorum counting. Message authentication removes that
//! cap — a signed message is a per-link certificate any third node can
//! check, equivocation becomes a provable accusation (two signed
//! conflicting messages, see `cc-resilient`'s accusation module), and
//! Dolev–Strong-style signature chains push agreement to `f < n/2` and
//! beyond.
//!
//! # The offline substitution
//!
//! A real deployment would use MACs or digital signatures. Offline we
//! model *unforgeability* rather than implement cryptography: a tag is a
//! pure ChaCha8 function of `(per-node key, round, sender, payload)`, the
//! per-node keys are derived from one keyring seed, and the adversary is
//! code in this workspace that never calls [`AuthKeyring::sign`] with an
//! honest node's identity. A traitor *can* sign its own lies (it owns its
//! key — equivocation stays possible) and *cannot* produce a valid tag
//! for a payload it altered in transit (the forged-tag attack,
//! [`crate::byzantine::Lie::ForgeTag`], draws a fresh tag that is checked
//! unequal to the genuine one). What this proves: protocol logic above
//! the signature abstraction — acceptance rules, chain growth, agreement.
//! What it does not prove: anything about real cryptographic hardness.
//!
//! # Determinism contract
//!
//! Tags are pure functions of `(keyring seed, round, sender, payload)` —
//! no iteration-order, pool-shape, host, or delivery-backend dependence —
//! so an authenticated run replays bit-identically across pool shapes
//! {1, 4, 7} and backends {Dense, Sparse}, exactly like the fault and
//! Byzantine tiers below it. Keyrings print as replayable labels, e.g.
//! `auth[n=9, seed=42]`.
//!
//! # Engine integration
//!
//! Attaching a keyring with [`crate::Engine::with_auth`] turns on the
//! envelope protocol: at the end of every round (after Byzantine payload
//! rewrites, before link faults) the engine appends a [`TAG_BITS`]-bit
//! tag to every non-empty outbound message, signed with the *actual
//! sender's* key — so a traitor's equivocating payloads are validly
//! signed lies, while wire damage after signing is detectable. After the
//! link-fault pass the engine verifies every frame and clears any whose
//! tag fails, counting it in [`crate::RunStats::rejected_tags`]. Inboxes
//! therefore hold `payload ‖ tag` frames: programs strip the trailing
//! [`TAG_BITS`] bits (see [`strip_tag`]) and may keep the tagged frame as
//! transferable evidence. An engine without a keyring takes the exact
//! pre-auth path — the transparency invariant of every tier.
//!
//! # Accounting
//!
//! `RunStats.messages`/`bits`, transcripts' *sent* rounds, and the
//! undelivered scan all record pre-tag payloads (the round closes before
//! the envelope pass), preserving the honest-accounting invariant. The
//! envelope's own work lands in three dedicated counters:
//! [`crate::RunStats::signed_messages`], [`crate::RunStats::auth_bits`]
//! (both counted per delivered copy, so a broadcast charges `n − 1`
//! tags even though the sparse backend stores one), and
//! [`crate::RunStats::rejected_tags`]. Received transcript rounds and
//! churn replay windows carry the tagged frames — a rejoiner re-enters
//! with exactly the signed evidence an always-alive node would hold, so
//! `sync_bits` includes tag bits.

use std::fmt;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::bits::BitString;
use crate::delivery::BufViewMut;
use crate::fault::mix;
use crate::node::NodeId;
use crate::stats::RunStats;

/// Width of an authentication tag in bits. Fixed so frame layouts (and
/// the analytic overhead formulas built on them) are architecture
/// constants, not run parameters.
pub const TAG_BITS: usize = 32;

/// Domain separator for per-node key derivation from the keyring seed.
const KEY_DOMAIN: u64 = 0xA07A_11CE;

/// A seeded keyring: one signing key per node, all derived from a single
/// seed, issuing [`TAG_BITS`]-bit HMAC-style tags.
///
/// **Guarantee:** `sign(from, round, payload)` is a pure function of the
/// keyring seed and its arguments; two keyrings with equal `(n, seed)`
/// are interchangeable, and tags replay bit-identically across pool
/// shapes, delivery backends, and hosts.
///
/// **Assumptions:** the adversary models unforgeability by convention —
/// it signs only with identities it owns (see the module docs for what
/// the substitution does and does not prove).
///
/// **Overhead:** [`TAG_BITS`] extra bits per signed message copy, charged
/// to `RunStats.auth_bits`, never to `bits`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuthKeyring {
    n: usize,
    seed: u64,
    keys: Vec<u64>,
}

impl AuthKeyring {
    /// Derive an `n`-node keyring from `seed`. Key `v` is a mixed
    /// function of `(seed, v)`; knowing one key reveals nothing usable
    /// about another (within the model's ChaCha-quality mixing).
    pub fn from_seed(n: usize, seed: u64) -> Self {
        let keys = (0..n).map(|v| mix(seed, KEY_DOMAIN, v as u64, 1)).collect();
        Self { n, seed, keys }
    }

    /// Number of node identities the keyring covers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The seed every key derives from (part of the replay label).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Tag for `payload` signed by `from` in round-context `round`.
    ///
    /// The round context binds a tag to one round so a frame replayed in
    /// a later round verifies as stale, not as fresh. Protocol-level
    /// signatures that must stay valid across rounds (e.g. Dolev–Strong
    /// chain entries) pick a fixed out-of-band context instead.
    pub fn sign(&self, from: NodeId, round: usize, payload: &BitString) -> u64 {
        self.tag_for(from, round, hash_prefix(payload, payload.len()))
    }

    /// Check a claimed `(from, round, payload, tag)` quadruple.
    pub fn verify(&self, from: NodeId, round: usize, payload: &BitString, tag: u64) -> bool {
        self.sign(from, round, payload) == tag
    }

    /// Tag over the first `prefix_len` bits of `frame` — what the engine
    /// verifies without copying the payload out of a tagged frame.
    fn tag_over_prefix(&self, from: NodeId, round: usize, frame: &BitString, len: usize) -> u64 {
        self.tag_for(from, round, hash_prefix(frame, len))
    }

    fn tag_for(&self, from: NodeId, round: usize, payload_hash: u64) -> u64 {
        let key = self.keys[from.index()];
        let mut rng =
            ChaCha8Rng::seed_from_u64(mix(key, round as u64, from.index() as u64, payload_hash));
        rng.gen::<u64>() & ((1 << TAG_BITS) - 1)
    }

    /// Validity of one wire frame (`payload ‖ tag`) as produced by the
    /// engine's signing pass. Frames too short to contain a non-empty
    /// payload plus a tag are invalid by construction.
    pub fn verify_frame(&self, from: NodeId, round: usize, frame: &BitString) -> bool {
        if frame.len() <= TAG_BITS {
            return false;
        }
        let plen = frame.len() - TAG_BITS;
        let mut r = frame.reader();
        let tag = match r.skip(plen).and_then(|()| r.read_uint(TAG_BITS)) {
            Ok(t) => t,
            Err(_) => return false,
        };
        self.tag_over_prefix(from, round, frame, plen) == tag
    }

    /// Engine signing sweep: append a tag to every non-empty outbound
    /// payload of round `round`. Runs payload-level so the sparse
    /// backend's shared broadcast payload is signed once in place (equal
    /// payloads get equal tags, keeping dense and sparse bit-identical),
    /// while the ledger still charges one tag per delivered copy.
    pub(crate) fn sign_round(
        &self,
        round: usize,
        cur: &mut BufViewMut<'_>,
        ledger: &mut AuthLedger,
    ) {
        for v in 0..cur.n() {
            cur.for_each_payload_mut(v, |copies, m| {
                let tag = self.sign(NodeId::from(v), round, m);
                m.push_uint(tag, TAG_BITS);
                ledger.signed += copies as u64;
                ledger.auth_bits += (copies * TAG_BITS) as u64;
            });
        }
    }

    /// Engine verification sweep: clear every frame whose tag fails for
    /// `(sender, round)`, counting one rejection per cleared copy. Honest
    /// traffic signed by [`AuthKeyring::sign_round`] always passes; only
    /// forged-tag rewrites and post-signing wire damage are rejected.
    pub(crate) fn verify_round(
        &self,
        round: usize,
        cur: &mut BufViewMut<'_>,
        ledger: &mut AuthLedger,
    ) {
        for v in 0..cur.n() {
            let from = NodeId::from(v);
            cur.for_each_payload_mut(v, |copies, m| {
                if !self.verify_frame(from, round, m) {
                    m.clear();
                    ledger.rejected += copies as u64;
                }
            });
        }
    }
}

impl fmt::Display for AuthKeyring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "auth[n={}, seed={}]", self.n, self.seed)
    }
}

/// Split a wire frame into `(payload, tag)`, or `None` if the frame is
/// too short to be a signed message. The payload is copied out; use
/// [`AuthKeyring::verify_frame`] when only validity is needed.
pub fn split_tagged(frame: &BitString) -> Option<(BitString, u64)> {
    if frame.len() <= TAG_BITS {
        return None;
    }
    let plen = frame.len() - TAG_BITS;
    let mut r = frame.reader();
    let payload = r.read_bits(plen).ok()?;
    let tag = r.read_uint(TAG_BITS).ok()?;
    Some((payload, tag))
}

/// The payload prefix of a wire frame (the frame minus its trailing
/// [`TAG_BITS`]-bit tag), or `None` for frames too short to be signed.
/// The program-side accessor: inboxes under an authenticated engine hold
/// verified `payload ‖ tag` frames.
pub fn strip_tag(frame: &BitString) -> Option<BitString> {
    split_tagged(frame).map(|(p, _)| p)
}

/// FNV-1a-style fold of the first `len` bits of `m`, length-prefixed so
/// distinct-length payloads with a shared prefix hash apart.
fn hash_prefix(m: &BitString, len: usize) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = 0xCBF2_9CE4_8422_2325 ^ (len as u64).wrapping_mul(PRIME);
    for b in m.iter().take(len) {
        h = (h ^ (b as u64 + 1)).wrapping_mul(PRIME);
    }
    h
}

/// Per-run envelope accounting, folded into [`RunStats`] by the engine
/// once the round loop finishes (the round book holds the stats borrow
/// during the loop).
#[derive(Debug, Default)]
pub(crate) struct AuthLedger {
    /// Message copies signed by the envelope pass.
    pub(crate) signed: u64,
    /// Tag bits appended by the envelope pass.
    pub(crate) auth_bits: u64,
    /// Frames cleared because their tag failed verification.
    pub(crate) rejected: u64,
}

impl AuthLedger {
    pub(crate) fn tally_into(&self, stats: &mut RunStats) {
        stats.signed_messages += self.signed;
        stats.auth_bits += self.auth_bits;
        stats.rejected_tags += self.rejected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(bits: &[bool]) -> BitString {
        BitString::from_bits(bits.iter().copied())
    }

    #[test]
    fn tags_are_pure_functions_of_their_inputs() {
        let k1 = AuthKeyring::from_seed(8, 42);
        let k2 = AuthKeyring::from_seed(8, 42);
        let m = payload(&[true, false, true]);
        assert_eq!(k1.sign(NodeId(3), 5, &m), k2.sign(NodeId(3), 5, &m));
        assert_eq!(k1, k2);
        assert_eq!(k1.to_string(), "auth[n=8, seed=42]");
    }

    #[test]
    fn any_input_change_changes_the_tag() {
        let k = AuthKeyring::from_seed(8, 42);
        let m = payload(&[true, false, true]);
        let t = k.sign(NodeId(3), 5, &m);
        assert_ne!(t, k.sign(NodeId(4), 5, &m), "sender is bound");
        assert_ne!(t, k.sign(NodeId(3), 6, &m), "round is bound");
        assert_ne!(
            t,
            k.sign(NodeId(3), 5, &payload(&[true, false, false])),
            "payload is bound"
        );
        assert_ne!(
            t,
            AuthKeyring::from_seed(8, 43).sign(NodeId(3), 5, &m),
            "keyring seed is bound"
        );
        // Shared-prefix payloads of different lengths hash apart.
        assert_ne!(t, k.sign(NodeId(3), 5, &payload(&[true, false])));
    }

    #[test]
    fn signed_frames_verify_and_tampered_frames_do_not() {
        let k = AuthKeyring::from_seed(6, 7);
        let m = payload(&[true, true, false, true]);
        let tag = k.sign(NodeId(2), 3, &m);
        assert!(k.verify(NodeId(2), 3, &m, tag));

        let mut frame = m.clone();
        frame.push_uint(tag, TAG_BITS);
        assert!(k.verify_frame(NodeId(2), 3, &frame));
        assert!(!k.verify_frame(NodeId(1), 3, &frame), "wrong sender");
        assert!(!k.verify_frame(NodeId(2), 4, &frame), "wrong round");

        let (p, t) = split_tagged(&frame).unwrap();
        assert_eq!(p, m);
        assert_eq!(t, tag);
        assert_eq!(strip_tag(&frame).unwrap(), m);

        // Flip one payload bit inside the frame: verification must fail.
        let mut bent: BitString = frame.iter().collect();
        let first = bent.get(0);
        bent.set(0, !first);
        assert!(!k.verify_frame(NodeId(2), 3, &bent));
    }

    #[test]
    fn short_frames_are_invalid_not_panics() {
        let k = AuthKeyring::from_seed(4, 1);
        let mut short = BitString::new();
        short.push_uint(0xFFFF_FFFF, TAG_BITS); // tag-sized, no payload
        assert!(!k.verify_frame(NodeId(0), 0, &short));
        assert!(split_tagged(&short).is_none());
        assert!(!k.verify_frame(NodeId(0), 0, &BitString::new()));
    }

    #[test]
    fn engine_envelope_signs_delivers_and_charges_identically_per_backend() {
        use crate::delivery::DeliveryMode;
        use crate::engine::Engine;
        use crate::node::{Inbox, NodeCtx, NodeProgram, Outbox, Status};

        /// Broadcast own id in round 0; halt with the sum of inbound frame
        /// lengths (which exposes whether tags reached the inbox).
        struct IdBlast;
        impl NodeProgram for IdBlast {
            type Output = usize;
            fn step(
                &mut self,
                ctx: &NodeCtx,
                round: usize,
                inbox: &Inbox<'_>,
                ob: &mut Outbox<'_>,
            ) -> Status<usize> {
                if round == 0 {
                    let mut m = BitString::new();
                    m.push_uint(ctx.id.0 as u64, ctx.id_width());
                    ob.broadcast(&m);
                    Status::Continue
                } else {
                    Status::Halt(inbox.iter().map(|(_, m)| m.len()).sum())
                }
            }
        }

        let n = 5;
        let keyring = AuthKeyring::from_seed(n, 11);
        let run = |mode: DeliveryMode| {
            Engine::new(n)
                .with_auth(keyring.clone())
                .with_delivery(mode)
                .run((0..n).map(|_| IdBlast).collect())
                .unwrap()
        };
        let dense = run(DeliveryMode::Dense);
        let sparse = run(DeliveryMode::Sparse);
        assert_eq!(dense.outputs, sparse.outputs);
        assert_eq!(dense.stats, sparse.stats);

        let id_width = BitString::width_for(n);
        let frame = id_width + TAG_BITS;
        assert_eq!(
            dense.outputs,
            vec![(n - 1) * frame; n],
            "inboxes hold payload ‖ tag frames"
        );
        let copies = (n * (n - 1)) as u64;
        assert_eq!(dense.stats.signed_messages, copies);
        assert_eq!(dense.stats.auth_bits, copies * TAG_BITS as u64);
        assert_eq!(dense.stats.rejected_tags, 0, "honest traffic never fails");
        // Honest accounting: `bits` and `max_message_bits` stay pre-tag.
        assert_eq!(dense.stats.bits, copies * id_width as u64);
        assert_eq!(dense.stats.max_message_bits, id_width);
    }

    #[test]
    fn ledger_tallies_into_stats() {
        let ledger = AuthLedger {
            signed: 10,
            auth_bits: 320,
            rejected: 3,
        };
        let mut stats = RunStats::default();
        ledger.tally_into(&mut stats);
        assert_eq!(stats.signed_messages, 10);
        assert_eq!(stats.auth_bits, 320);
        assert_eq!(stats.rejected_tags, 3);
    }
}
