//! Sequential composition of algorithm phases.
//!
//! Congested clique algorithms are routinely built from phases ("run matrix
//! multiplication, then redistribute, then …"). Synchronisation is free in
//! the model, so running phases as separate engine executions and summing
//! their round counts is semantically identical to one monolithic program —
//! and far easier to write. A [`Session`] wraps an [`Engine`] and accumulates
//! statistics across such phase runs.
//!
//! Distributed fidelity is a *discipline* at this layer: driver code must
//! construct each phase's per-node programs only from that node's previous
//! outputs (plus globally known parameters). Every algorithm crate in this
//! workspace follows that rule.

use crate::auth::{AuthKeyring, TAG_BITS};
use crate::bits::BitString;
use crate::delivery::DeliveryArena;
use crate::engine::{ByzantineOutcome, Engine, FaultedOutcome, RunOutcome, SimError};
use crate::node::{NodeId, NodeProgram};
use crate::stats::RunStats;

/// An engine plus cumulative statistics across phase runs.
///
/// The session also owns a [`DeliveryArena`]: delivery buffers checked out
/// for one phase are returned and reused by the next, so steady-state phases
/// allocate no message slots at all.
#[derive(Debug)]
pub struct Session {
    engine: Engine,
    arena: DeliveryArena,
    stats: RunStats,
    phases: usize,
}

impl Session {
    /// Start a session on the given engine.
    pub fn new(engine: Engine) -> Self {
        Self::with_arena(engine, DeliveryArena::new())
    }

    /// Start a session on the given engine, checking delivery buffers out
    /// of a caller-supplied arena instead of a fresh one. This is the
    /// service-friendly entry point: a host that runs many short sessions
    /// back to back (e.g. a `cc-service` worker) keeps one warm arena per
    /// worker and threads it through successive sessions, so only the
    /// first session of a given shape allocates message slots. Reclaim the
    /// arena afterwards with [`Session::into_arena`].
    pub fn with_arena(engine: Engine, arena: DeliveryArena) -> Self {
        Self {
            engine,
            arena,
            stats: RunStats::default(),
            phases: 0,
        }
    }

    /// Consume the session and hand back its arena (with whatever buffers
    /// the session's runs parked in it), so the next session can reuse the
    /// allocations. Statistics are unaffected by reuse — see
    /// [`crate::RunStats`]'s logical-counter contract.
    pub fn into_arena(self) -> DeliveryArena {
        self.arena
    }

    /// Number of nodes in the clique.
    pub fn n(&self) -> usize {
        self.engine.n()
    }

    /// Per-message bit budget of the underlying engine.
    pub fn bandwidth(&self) -> usize {
        self.engine.bandwidth()
    }

    /// Access the underlying engine (e.g. to run with transcripts).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Address the engine's fault plan at `offset + local round` for this
    /// and subsequent phases (see [`Engine::with_fault_offset`]). Use
    /// [`Session::align_fault_clock`] to derive the offset from the
    /// session's own ledger.
    pub fn set_fault_offset(&mut self, offset: usize) {
        self.engine = self.engine.clone().with_fault_offset(offset);
    }

    /// Point the fault clock at the session's cumulative round count, so a
    /// single absolute-round churn timeline (crashes, rejoins, link-fault
    /// coins) spans phases that each restart their local round count at 0.
    /// Call between phases; analytic rounds added via [`Session::charge`]
    /// advance the clock too, matching their free-synchronisation reading.
    pub fn align_fault_clock(&mut self) {
        let rounds = self.stats.rounds;
        self.set_fault_offset(rounds);
    }

    /// Run one phase; its rounds/bits are added to the session totals.
    pub fn run<P: NodeProgram>(
        &mut self,
        programs: Vec<P>,
    ) -> Result<RunOutcome<P::Output>, SimError> {
        let out = self.engine.run_in(programs, &mut self.arena)?;
        self.stats.absorb(&out.stats);
        self.phases += 1;
        Ok(out)
    }

    /// Run one phase under the engine's fault plan, tolerating crashed
    /// nodes (their output slots are `None`). Rounds, bits, and the fault
    /// counters are added to the session totals, so a resilient protocol's
    /// overhead is visible in the same ledger as its fault exposure.
    pub fn run_faulted<P: NodeProgram>(
        &mut self,
        programs: Vec<P>,
    ) -> Result<FaultedOutcome<P::Output>, SimError> {
        let out = self.engine.run_faulted_in(programs, &mut self.arena)?;
        self.stats.absorb(&out.stats);
        self.phases += 1;
        Ok(out)
    }

    /// Run one phase under the engine's Byzantine plan (and fault plan, if
    /// any), keeping the per-event rewrite log. Rounds, bits, and all
    /// adversary counters are added to the session totals. Note that each
    /// phase restarts its round count at 0, so a plan's round-addressed
    /// schedule re-applies per phase unless the fault clock is advanced
    /// with [`Session::align_fault_clock`].
    pub fn run_byzantine<P: NodeProgram>(
        &mut self,
        programs: Vec<P>,
    ) -> Result<ByzantineOutcome<P::Output>, SimError> {
        let out = self.engine.run_byzantine_in(programs, &mut self.arena)?;
        self.stats.absorb(&out.stats);
        self.phases += 1;
        Ok(out)
    }

    /// Cumulative statistics over all phases so far. Timing fields are
    /// concatenated across phases; see [`RunStats::absorb`].
    pub fn stats(&self) -> RunStats {
        self.stats.clone()
    }

    /// Number of phases executed.
    pub fn phases(&self) -> usize {
        self.phases
    }

    /// Total message slots currently parked in the session's delivery
    /// arena (both double-buffer halves). For the dense backend this is
    /// `2·n²` regardless of traffic; for the sparse backend it scales with
    /// the edges actually used, so it doubles as a footprint probe in tests
    /// and benchmarks.
    pub fn delivery_footprint(&self) -> usize {
        self.arena.slot_footprint()
    }

    /// Add rounds charged by an analytical sub-protocol (used when a phase's
    /// cost is accounted rather than simulated; see `cc-routing`'s oracle).
    pub fn charge(&mut self, stats: &RunStats) {
        self.stats.absorb(stats);
        self.phases += 1;
    }

    /// The engine's attached keyring, if any (see [`Engine::with_auth`]).
    pub fn keyring(&self) -> Option<&AuthKeyring> {
        self.engine.auth_keyring()
    }

    /// Sign `payload` as `from` in round-context `round` with the
    /// session's keyring, charging one signature ([`TAG_BITS`] bits) to
    /// the session ledger. `None` when no keyring is attached. This is
    /// the protocol-level signing entry point (e.g. Dolev–Strong chain
    /// entries, accusation claims); the engine's per-message envelope
    /// signs and charges automatically.
    pub fn sign(&mut self, from: NodeId, round: usize, payload: &BitString) -> Option<u64> {
        let tag = self.engine.auth_keyring()?.sign(from, round, payload);
        self.stats.signed_messages += 1;
        self.stats.auth_bits += TAG_BITS as u64;
        Some(tag)
    }

    /// Verify a claimed `(from, round, payload, tag)` quadruple against
    /// the session's keyring, charging failures to the session's
    /// `rejected_tags`. `None` when no keyring is attached.
    pub fn verify(
        &mut self,
        from: NodeId,
        round: usize,
        payload: &BitString,
        tag: u64,
    ) -> Option<bool> {
        let ok = self
            .engine
            .auth_keyring()?
            .verify(from, round, payload, tag);
        if !ok {
            self.stats.rejected_tags += 1;
        }
        Some(ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitString;
    use crate::node::{Inbox, NodeCtx, NodeId, Outbox, Status};

    struct OneRound;
    impl NodeProgram for OneRound {
        type Output = ();
        fn step(
            &mut self,
            ctx: &NodeCtx,
            round: usize,
            _: &Inbox<'_>,
            ob: &mut Outbox<'_>,
        ) -> Status<()> {
            if round == 0 {
                let mut m = BitString::new();
                m.push_uint(1, 1);
                if ctx.n > 1 {
                    ob.send(NodeId((ctx.id.0 + 1) % ctx.n as u32), m);
                }
                Status::Continue
            } else {
                Status::Halt(())
            }
        }
    }

    #[test]
    fn session_accumulates_rounds_across_phases() {
        let mut s = Session::new(Engine::new(4));
        for _ in 0..3 {
            s.run((0..4).map(|_| OneRound).collect()).unwrap();
        }
        assert_eq!(s.stats().rounds, 3);
        assert_eq!(s.phases(), 3);
        assert_eq!(s.stats().messages, 12);
    }

    #[test]
    fn run_faulted_accumulates_fault_counters() {
        use crate::fault::FaultPlan;
        let mut s =
            Session::new(Engine::new(4).with_fault_plan(FaultPlan::new(0).crash(NodeId(3), 1)));
        let out = s.run_faulted((0..4).map(|_| OneRound).collect()).unwrap();
        assert!(out.outputs[3].is_none());
        assert_eq!(s.stats().dead_nodes, 1);
        assert_eq!(s.phases(), 1);
    }

    #[test]
    fn fault_clock_alignment_spans_phases() {
        use crate::fault::FaultPlan;
        let mk = || (0..4).map(|_| OneRound).collect::<Vec<_>>();
        // The crash is scheduled at absolute round 2 — inside the *second*
        // one-round phase once the clock is aligned, unreachable otherwise.
        let plan = FaultPlan::new(0).crash(NodeId(3), 2);
        let mut s = Session::new(Engine::new(4).with_fault_plan(plan));
        let p1 = s.run_faulted(mk()).unwrap();
        assert!(p1.outputs[3].is_some(), "plan round 2 is outside phase 1");
        s.align_fault_clock();
        assert_eq!(s.engine().fault_offset(), 1);
        let p2 = s.run_faulted(mk()).unwrap();
        assert!(
            p2.outputs[3].is_none(),
            "plan round 2 = phase-2 local round 1"
        );
        assert_eq!(s.stats().dead_nodes, 1);
    }

    #[test]
    fn session_parks_delivery_buffers_between_phases() {
        use crate::delivery::DeliveryMode;
        // Dense arena: exactly 2·n² slots, stable across phases.
        let mut s = Session::new(Engine::new(4).with_delivery(DeliveryMode::Dense));
        assert_eq!(s.delivery_footprint(), 0, "nothing parked before a run");
        s.run((0..4).map(|_| OneRound).collect()).unwrap();
        assert_eq!(s.delivery_footprint(), 2 * 4 * 4);
        s.run((0..4).map(|_| OneRound).collect()).unwrap();
        assert_eq!(s.delivery_footprint(), 2 * 4 * 4);
        // Sparse arena: one row header per sender per buffer plus the
        // overrides that were actually sent.
        let mut s = Session::new(Engine::new(4).with_delivery(DeliveryMode::Sparse));
        s.run((0..4).map(|_| OneRound).collect()).unwrap();
        let footprint = s.delivery_footprint();
        assert!(footprint > 0 && footprint < 2 * 4 * 4, "got {footprint}");
        s.run((0..4).map(|_| OneRound).collect()).unwrap();
        assert_eq!(s.delivery_footprint(), footprint, "reuse is steady-state");
    }

    #[test]
    fn arena_threads_through_successive_sessions() {
        use crate::delivery::DeliveryMode;
        // First session allocates the dense pair; the second reuses it,
        // so the footprint is identical before and after its run.
        let mut s = Session::new(Engine::new(4).with_delivery(DeliveryMode::Dense));
        s.run((0..4).map(|_| OneRound).collect()).unwrap();
        let arena = s.into_arena();
        assert_eq!(arena.slot_footprint(), 2 * 4 * 4);
        let mut s = Session::with_arena(Engine::new(4).with_delivery(DeliveryMode::Dense), arena);
        assert_eq!(s.delivery_footprint(), 2 * 4 * 4, "warm before first run");
        let out = s.run((0..4).map(|_| OneRound).collect()).unwrap();
        assert_eq!(out.stats.rounds, 1);
        assert_eq!(s.delivery_footprint(), 2 * 4 * 4);
        assert_eq!(s.phases(), 1, "stats are per-session, not per-arena");
    }

    #[test]
    fn charge_adds_analytical_costs() {
        let mut s = Session::new(Engine::new(2));
        s.charge(&RunStats {
            rounds: 7,
            ..RunStats::default()
        });
        assert_eq!(s.stats().rounds, 7);
    }
}
