//! Byzantine sender adversary: seed-addressed per-recipient equivocation.
//!
//! The [`crate::fault::FaultPlan`] adversary is *oblivious*: it damages
//! links without regard to content, and in particular it damages every
//! recipient of a broadcast identically or independently at random. The
//! next tier up the threat-model ladder (docs/THREAT-MODEL.md) is a
//! **Byzantine sender** — a traitor node whose outbound messages are
//! rewritten *per recipient*, so that it can tell different peers
//! different things (equivocation) and can base its lies on what it has
//! heard (adaptive lying). A single equivocating traitor defeats every
//! per-link majority vote, which is why `cc-resilient` pairs this plan
//! with Bracha-style reliable broadcast.
//!
//! # Determinism contract
//!
//! A [`ByzantinePlan`] follows the same replayability discipline as
//! [`crate::fault::FaultPlan`]: every lie is a pure function of
//! `(plan seed, round, traitor, recipient)` — a fresh ChaCha8 stream is
//! keyed per message, so decisions do not depend on iteration order, pool
//! shape, or host. The adaptive [`Lie::Replay`] additionally reads the
//! traitor's *received* matrix column for the round, which the engine
//! fixes before any rewrite is applied, so it is equally schedule-free.
//! Plans print as replayable labels, e.g.
//! `byz[seed=7, traitors=1, garble=1]`.
//!
//! An **empty plan is transparent**: no traitors, or traitors with no lie
//! probabilities and no forced lies, produces byte-identical outputs,
//! transcripts, and [`crate::RunStats`] to a run with no plan at all.
//!
//! # Semantics
//!
//! Rewrites apply only to **non-empty messages sent by traitor nodes** —
//! the adversary can corrupt, replace, or suppress what a traitor sends,
//! but it cannot inject messages the traitor never sent (injection would
//! bypass the engine's bandwidth accounting). Honest nodes' messages are
//! never touched; under a pure Byzantine plan, honest-to-honest links are
//! reliable. Every rewrite preserves the bandwidth bound: garbles and
//! inversions keep the payload length, and replays reuse a payload that
//! already passed the bound.
//!
//! Rewrites are applied on the main thread between round barriers, after
//! the sender-side accounting and transcript recording — a traitor's
//! transcript records what its (honest) program *sent*, and recipients
//! see what the adversary *substituted*. Byzantine rewrites strike
//! **before** link faults when both plans are attached: the sender lies
//! first, then the wire damages what was actually transmitted.

use std::fmt;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::bits::BitString;
use crate::delivery::{BufView, BufViewMut};
use crate::fault::mix;
use crate::node::NodeId;
use crate::stats::RunStats;

/// One way a traitor's outbound message can be rewritten.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lie {
    /// Replace the payload with address-keyed random bits of the same
    /// length. Distinct recipients draw distinct streams, so a garbled
    /// broadcast *equivocates*: every peer sees a different payload.
    Garble,
    /// Flip every payload bit (deterministic content-dependent lie).
    Invert,
    /// Replace the payload with one the traitor *received* this round
    /// (adaptive lying: the substitute is drawn from the traitor's inbound
    /// history). Falls back to [`Lie::Garble`] when the traitor received
    /// nothing this round.
    Replay,
    /// Suppress the message towards this recipient (selective silence —
    /// distinct from a link drop because it is sender-chosen and
    /// per-recipient).
    Silence,
    /// Replace the trailing [`crate::auth::TAG_BITS`]-bit authentication
    /// tag of an already-signed frame with an address-keyed random tag,
    /// guaranteed unequal to the genuine one — the adversary trying (and
    /// provably failing) to forge a signature. Only meaningful on an
    /// engine with an attached [`crate::AuthKeyring`]: the forgery pass
    /// runs between the signing and verification sweeps, so every forged
    /// frame is rejected and counted in `RunStats.rejected_tags`. Inert
    /// (never fires) without a keyring.
    ForgeTag,
}

/// One scheduled forced lie: `(round, from, to, lie)`. Fires only if
/// `from` is marked as a traitor in the plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ForcedLie {
    /// Round in which the targeted message is sent.
    pub round: usize,
    /// The traitor sending the message.
    pub from: NodeId,
    /// The recipient whose copy is rewritten.
    pub to: NodeId,
    /// How the copy is rewritten.
    pub lie: Lie,
}

/// A seed-addressed Byzantine sender schedule. Pure data: construct with
/// the builder methods, attach to an engine with
/// [`crate::Engine::with_byzantine_plan`], replay by reconstructing from
/// the same parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct ByzantinePlan {
    seed: u64,
    traitors: Vec<NodeId>,
    garble_p: f64,
    replay_p: f64,
    silence_p: f64,
    forge_p: f64,
    forced: Vec<ForcedLie>,
}

/// Domain separator for the forged-tag coin stream, so adding a forge
/// probability never perturbs the payload-stage draws of the same plan.
const FORGE_DOMAIN: u64 = 0xF026_E7A6;

impl ByzantinePlan {
    /// An empty plan (no traitors). Attaching it to an engine is
    /// guaranteed to leave every run byte-identical to a plan-less run.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            traitors: Vec::new(),
            garble_p: 0.0,
            replay_p: 0.0,
            silence_p: 0.0,
            forge_p: 0.0,
            forced: Vec::new(),
        }
    }

    /// The plan's seed (drives every probabilistic lie).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True if the plan can never rewrite anything: no traitors, or no
    /// lie probabilities and no forced lies.
    pub fn is_empty(&self) -> bool {
        self.traitors.is_empty()
            || (self.garble_p == 0.0
                && self.replay_p == 0.0
                && self.silence_p == 0.0
                && self.forge_p == 0.0
                && self.forced.is_empty())
    }

    /// Mark `node` as a traitor (its outbound messages become subject to
    /// the plan's lies). Duplicates are idempotent.
    pub fn traitor(mut self, node: NodeId) -> Self {
        if !self.traitors.contains(&node) {
            self.traitors.push(node);
        }
        self
    }

    /// Mark `f` ChaCha-chosen distinct traitors among `n` nodes, excluding
    /// the nodes in `spare` (e.g. a broadcast source that a test wants
    /// honest). The traitor set is a pure function of the plan seed.
    pub fn with_random_traitors(mut self, n: usize, f: usize, spare: &[NodeId]) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(mix(self.seed, 0x0B12_A471, 0, 0));
        let mut pool: Vec<usize> = (0..n)
            .filter(|v| !spare.iter().any(|s| s.index() == *v))
            .collect();
        // Fisher–Yates prefix selection, mirroring FaultPlan's crash picker.
        for i in 0..f.min(pool.len()) {
            let j = i + rng.gen_range(0..pool.len() - i);
            pool.swap(i, j);
            let t = NodeId::from(pool[i]);
            if !self.traitors.contains(&t) {
                self.traitors.push(t);
            }
        }
        self
    }

    /// The traitor set, in insertion order.
    pub fn traitors(&self) -> &[NodeId] {
        &self.traitors
    }

    /// Number of traitors `f` the plan marks.
    pub fn f(&self) -> usize {
        self.traitors.len()
    }

    /// True if `node` is marked as a traitor.
    pub fn is_traitor(&self, node: NodeId) -> bool {
        self.traitors.contains(&node)
    }

    /// Garble every traitor message independently with probability `p`
    /// (per recipient — a garbled broadcast equivocates).
    pub fn garble(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.garble_p = p;
        self
    }

    /// Replace every traitor message independently with probability `p`
    /// by a payload the traitor received this round (adaptive lying).
    pub fn replay(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.replay_p = p;
        self
    }

    /// Suppress every traitor message independently with probability `p`
    /// (selective per-recipient silence).
    pub fn silence(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.silence_p = p;
        self
    }

    /// Forge the authentication tag of every traitor message independently
    /// with probability `p` (per recipient, on engines with an attached
    /// keyring). The coin stream is domain-separated from the payload-stage
    /// lies, so composing `forge` with `garble`/`replay`/`silence` never
    /// changes which payload lies fire.
    pub fn forge(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.forge_p = p;
        self
    }

    /// Force a specific lie on the message `from → to` sent in `round`.
    /// The lie fires only if `from` is (also) marked as a traitor.
    pub fn force(mut self, round: usize, from: NodeId, to: NodeId, lie: Lie) -> Self {
        self.forced.push(ForcedLie {
            round,
            from,
            to,
            lie,
        });
        self
    }

    /// The replayable adversary label, `byz[seed=…, …]`.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// The forced *payload-stage* lie scheduled for `(round, from, to)`,
    /// if any (first match wins). [`Lie::ForgeTag`] entries belong to the
    /// envelope stage and are skipped here.
    fn forced_for(&self, round: usize, from: usize, to: usize) -> Option<Lie> {
        self.forced
            .iter()
            .find(|l| {
                l.lie != Lie::ForgeTag
                    && l.round == round
                    && l.from.index() == from
                    && l.to.index() == to
            })
            .map(|l| l.lie)
    }

    /// Whether a forced [`Lie::ForgeTag`] is scheduled for
    /// `(round, from, to)`.
    fn forced_forge_for(&self, round: usize, from: usize, to: usize) -> bool {
        self.forced.iter().any(|l| {
            l.lie == Lie::ForgeTag
                && l.round == round
                && l.from.index() == from
                && l.to.index() == to
        })
    }

    /// True if the plan can ever forge a tag (probabilistically or via a
    /// forced entry); lets the engine skip the forgery sweep entirely for
    /// plans below the authenticated tier.
    pub(crate) fn has_tag_forgeries(&self) -> bool {
        !self.traitors.is_empty()
            && (self.forge_p > 0.0 || self.forced.iter().any(|l| l.lie == Lie::ForgeTag))
    }

    /// Rewrite the traitor rows of the buffer written in `round` (read
    /// next round). `cur` is the sender-major send buffer; `prev` is the
    /// buffer the nodes read this round, i.e. each traitor's received
    /// history for adaptive replays. Sweep order is sender-major and every
    /// decision is keyed per `(seed, round, from, to)`, so the result is
    /// independent of pool shape and of delivery backend.
    pub(crate) fn apply_rewrites(
        &self,
        round: usize,
        cur: &mut BufViewMut<'_>,
        prev: &BufView<'_>,
        report: &mut ByzantineReport,
    ) {
        if self.is_empty() {
            return;
        }
        for v in 0..cur.n() {
            if !self.is_traitor(NodeId::from(v)) {
                continue;
            }
            cur.for_each_msg_mut(v, |u, m| self.lie_one(round, v, u, m, prev, report));
        }
    }

    /// Envelope-stage rewrite: forge the trailing authentication tag of
    /// traitor frames. Called by the engine between its signing and
    /// verification sweeps, so `cur` holds `payload ‖ tag` frames; the
    /// forged tag is drawn from a domain-separated address-keyed stream
    /// and nudged if it ever collides with the genuine tag, so a forgery
    /// is *guaranteed* invalid — the model's unforgeability assumption
    /// made mechanical. Frames too short to carry a tag (impossible right
    /// after signing, kept as a guard) are left alone.
    pub(crate) fn apply_tag_forgeries(
        &self,
        round: usize,
        cur: &mut BufViewMut<'_>,
        report: &mut ByzantineReport,
    ) {
        use crate::auth::TAG_BITS;
        if !self.has_tag_forgeries() {
            return;
        }
        for v in 0..cur.n() {
            if !self.is_traitor(NodeId::from(v)) {
                continue;
            }
            cur.for_each_msg_mut(v, |u, m| {
                if m.len() <= TAG_BITS {
                    return;
                }
                let mut rng = ChaCha8Rng::seed_from_u64(mix(
                    self.seed ^ FORGE_DOMAIN,
                    round as u64,
                    v as u64,
                    u as u64,
                ));
                let fire = rng.gen_bool(self.forge_p) || self.forced_forge_for(round, v, u);
                if !fire {
                    return;
                }
                let plen = m.len() - TAG_BITS;
                let genuine = {
                    let mut r = m.reader();
                    // A signed frame always splits; treat a failure as
                    // "leave the frame alone" to honour the no-panic lint.
                    match r.skip(plen).and_then(|()| r.read_uint(TAG_BITS)) {
                        Ok(t) => t,
                        Err(_) => return,
                    }
                };
                let mut forged = rng.gen::<u64>() & ((1 << TAG_BITS) - 1);
                if forged == genuine {
                    forged ^= 1;
                }
                m.truncate(plen);
                m.push_uint(forged, TAG_BITS);
                report.events.push(ByzantineEvent::ForgedTag {
                    from: NodeId::from(v),
                    to: NodeId::from(u),
                    round,
                    bits: plen,
                });
            });
        }
    }

    /// Decide and apply the lie (if any) for one non-empty traitor
    /// message `from → to` in `round`.
    fn lie_one(
        &self,
        round: usize,
        from: usize,
        to: usize,
        m: &mut BitString,
        prev: &BufView<'_>,
        report: &mut ByzantineReport,
    ) {
        let n = prev.n();
        let forced = self.forced_for(round, from, to);
        // The coin stream is keyed per message: same (seed, round, link) →
        // same draws, regardless of how many other messages exist.
        let mut rng =
            ChaCha8Rng::seed_from_u64(mix(self.seed, round as u64, from as u64, to as u64));
        // Fixed draw order keeps partial plans deterministic.
        let silence = rng.gen_bool(self.silence_p);
        let garble = rng.gen_bool(self.garble_p);
        let replay = rng.gen_bool(self.replay_p);
        let lie = match forced {
            Some(l) => Some(l),
            None if silence => Some(Lie::Silence),
            None if garble => Some(Lie::Garble),
            None if replay => Some(Lie::Replay),
            None => None,
        };
        let Some(mut lie) = lie else { return };
        let (from_id, to_id) = (NodeId::from(from), NodeId::from(to));
        // An adaptive replay needs inbound history; without any it
        // degrades to a garble (still a lie, still deterministic).
        let mut replay_source = None;
        if lie == Lie::Replay {
            let inbound: Vec<usize> = (0..n)
                .filter(|w| *w != from && !prev.get(*w, from).is_empty())
                .collect();
            match inbound.is_empty() {
                true => lie = Lie::Garble,
                false => replay_source = Some(inbound[rng.gen_range(0..inbound.len())]),
            }
        }
        match lie {
            Lie::Silence => {
                report.events.push(ByzantineEvent::Silenced {
                    from: from_id,
                    to: to_id,
                    round,
                    bits: m.len(),
                });
                m.clear();
            }
            Lie::Invert => {
                m.invert();
                report.events.push(ByzantineEvent::Inverted {
                    from: from_id,
                    to: to_id,
                    round,
                    bits: m.len(),
                });
            }
            Lie::Garble => {
                let forged: BitString = (0..m.len()).map(|_| rng.gen::<bool>()).collect();
                *m = forged;
                report.events.push(ByzantineEvent::Garbled {
                    from: from_id,
                    to: to_id,
                    round,
                    bits: m.len(),
                });
            }
            Lie::Replay => {
                // `replay_source` is always set on this path (see above);
                // guard instead of unwrap to honour the no-panic lint.
                let Some(src) = replay_source else { return };
                let substitute = prev.get(src, from).clone();
                let from_bits = m.len();
                let to_bits = substitute.len();
                *m = substitute;
                report.events.push(ByzantineEvent::Replayed {
                    from: from_id,
                    to: to_id,
                    round,
                    source: NodeId::from(src),
                    from_bits,
                    to_bits,
                });
            }
            // Envelope-stage lie; never reaches the payload stage
            // (`forced_for` filters it and no coin produces it).
            Lie::ForgeTag => {}
        }
    }
}

impl fmt::Display for ByzantinePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byz[seed={}", self.seed)?;
        if !self.traitors.is_empty() {
            write!(f, ", traitors={}", self.traitors.len())?;
        }
        if self.garble_p > 0.0 {
            write!(f, ", garble={}", self.garble_p)?;
        }
        if self.replay_p > 0.0 {
            write!(f, ", replay={}", self.replay_p)?;
        }
        if self.silence_p > 0.0 {
            write!(f, ", silence={}", self.silence_p)?;
        }
        if self.forge_p > 0.0 {
            write!(f, ", forge={}", self.forge_p)?;
        }
        if !self.forced.is_empty() {
            write!(f, ", forced={}", self.forced.len())?;
        }
        write!(f, "]")
    }
}

/// One rewrite the engine actually applied during a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ByzantineEvent {
    /// A traitor message was replaced with random bits of the same length.
    Garbled {
        /// The lying traitor.
        from: NodeId,
        /// The recipient whose copy was rewritten.
        to: NodeId,
        /// Round the message was sent in.
        round: usize,
        /// Payload size (unchanged by a garble).
        bits: usize,
    },
    /// A traitor message had every bit flipped.
    Inverted {
        /// The lying traitor.
        from: NodeId,
        /// The recipient whose copy was rewritten.
        to: NodeId,
        /// Round the message was sent in.
        round: usize,
        /// Payload size (unchanged by an inversion).
        bits: usize,
    },
    /// A traitor message was replaced by a payload the traitor received.
    Replayed {
        /// The lying traitor.
        from: NodeId,
        /// The recipient whose copy was rewritten.
        to: NodeId,
        /// Round the message was sent in.
        round: usize,
        /// Whose inbound payload was substituted.
        source: NodeId,
        /// Payload size before the substitution.
        from_bits: usize,
        /// Payload size after the substitution.
        to_bits: usize,
    },
    /// A traitor message was suppressed towards one recipient.
    Silenced {
        /// The lying traitor.
        from: NodeId,
        /// The recipient whose copy was suppressed.
        to: NodeId,
        /// Round the message was sent in.
        round: usize,
        /// Payload size of the suppressed message.
        bits: usize,
    },
    /// A traitor frame's authentication tag was replaced with an invalid
    /// one (the frame is rejected by the engine's verification sweep).
    ForgedTag {
        /// The lying traitor.
        from: NodeId,
        /// The recipient whose copy carries the forged tag.
        to: NodeId,
        /// Round the frame was sent in.
        round: usize,
        /// Payload size of the frame, excluding the tag.
        bits: usize,
    },
}

impl ByzantineEvent {
    /// The traitor that performed this rewrite.
    pub fn from(&self) -> NodeId {
        match self {
            ByzantineEvent::Garbled { from, .. }
            | ByzantineEvent::Inverted { from, .. }
            | ByzantineEvent::Replayed { from, .. }
            | ByzantineEvent::Silenced { from, .. }
            | ByzantineEvent::ForgedTag { from, .. } => *from,
        }
    }
}

/// Everything the Byzantine adversary did in one run, in deterministic
/// order (ascending rounds; within a round sender-major, recipients
/// ascending).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ByzantineReport {
    /// Applied rewrites in order.
    pub events: Vec<ByzantineEvent>,
}

impl ByzantineReport {
    /// True if the adversary rewrote nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Distinct traitors that actually lied, in first-lie order.
    pub fn liars(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        for e in &self.events {
            let t = e.from();
            if !out.contains(&t) {
                out.push(t);
            }
        }
        out
    }

    /// Rewrites applied to messages from `traitor` to `recipient`.
    pub fn on_link(&self, traitor: NodeId, recipient: NodeId) -> Vec<&ByzantineEvent> {
        self.events
            .iter()
            .filter(|e| match e {
                ByzantineEvent::Garbled { from, to, .. }
                | ByzantineEvent::Inverted { from, to, .. }
                | ByzantineEvent::Replayed { from, to, .. }
                | ByzantineEvent::Silenced { from, to, .. }
                | ByzantineEvent::ForgedTag { from, to, .. } => {
                    *from == traitor && *to == recipient
                }
            })
            .collect()
    }

    /// Fold the report's totals into run statistics: content rewrites go
    /// to `forged_messages`, suppressions to `silenced_messages`, and the
    /// number of distinct lying traitors to `traitor_nodes`.
    pub fn tally_into(&self, stats: &mut RunStats) {
        for e in &self.events {
            match e {
                ByzantineEvent::Garbled { .. }
                | ByzantineEvent::Inverted { .. }
                | ByzantineEvent::Replayed { .. }
                | ByzantineEvent::ForgedTag { .. } => stats.forged_messages += 1,
                ByzantineEvent::Silenced { .. } => stats.silenced_messages += 1,
            }
        }
        stats.traitor_nodes += self.liars().len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_matrix(n: usize, bits: usize) -> Vec<BitString> {
        let mut m = vec![BitString::new(); n * n];
        for v in 0..n {
            for u in 0..n {
                if u != v {
                    m[v * n + u] = (0..bits).map(|i| i % 2 == 0).collect();
                }
            }
        }
        m
    }

    #[test]
    fn empty_plan_is_empty_and_labelled() {
        let p = ByzantinePlan::new(42);
        assert!(p.is_empty());
        assert_eq!(p.label(), "byz[seed=42]");
        // Traitors without lies are still transparent.
        let q = ByzantinePlan::new(42).traitor(NodeId(1));
        assert!(q.is_empty());
        // Lies without traitors are transparent too.
        let r = ByzantinePlan::new(42).garble(1.0);
        assert!(r.is_empty());
    }

    #[test]
    fn builder_composes_and_labels() {
        let p = ByzantinePlan::new(7)
            .traitor(NodeId(3))
            .traitor(NodeId(3)) // idempotent
            .garble(0.5)
            .force(0, NodeId(3), NodeId(1), Lie::Silence);
        assert!(!p.is_empty());
        assert_eq!(p.f(), 1);
        assert!(p.is_traitor(NodeId(3)));
        assert!(!p.is_traitor(NodeId(0)));
        assert_eq!(p.label(), "byz[seed=7, traitors=1, garble=0.5, forced=1]");
    }

    #[test]
    fn random_traitors_are_seed_deterministic_and_spare_nodes() {
        let mk = |seed| ByzantinePlan::new(seed).with_random_traitors(10, 3, &[NodeId(0)]);
        let a = mk(9);
        let b = mk(9);
        let c = mk(10);
        assert_eq!(a, b, "same seed, same traitor set");
        assert_ne!(a, c, "different seed, different traitor set");
        assert_eq!(a.f(), 3);
        assert!(!a.is_traitor(NodeId(0)), "spared node is never a traitor");
    }

    #[test]
    fn rewrites_touch_only_traitor_rows() {
        let n = 4;
        let plan = ByzantinePlan::new(5).traitor(NodeId(1)).garble(1.0);
        let mut cur = full_matrix(n, 8);
        let prev = vec![BitString::new(); n * n];
        let before = cur.clone();
        let mut report = ByzantineReport::default();
        plan.apply_rewrites(
            0,
            &mut BufViewMut::dense(&mut cur, n),
            &BufView::dense(&prev, n),
            &mut report,
        );
        for v in 0..n {
            for u in 0..n {
                if u == v {
                    continue;
                }
                if v == 1 {
                    assert_eq!(cur[v * n + u].len(), 8, "garble preserves length");
                } else {
                    assert_eq!(cur[v * n + u], before[v * n + u], "honest row untouched");
                }
            }
        }
        assert_eq!(report.events.len(), n - 1);
        assert_eq!(report.liars(), vec![NodeId(1)]);
    }

    #[test]
    fn garbled_broadcast_equivocates() {
        // A traitor broadcasting the same payload to everyone ends up
        // with per-recipient distinct payloads under a full garble: the
        // definition of equivocation.
        let n = 8;
        let plan = ByzantinePlan::new(3).traitor(NodeId(0)).garble(1.0);
        let mut cur = full_matrix(n, 32);
        let prev = vec![BitString::new(); n * n];
        let mut report = ByzantineReport::default();
        plan.apply_rewrites(
            0,
            &mut BufViewMut::dense(&mut cur, n),
            &BufView::dense(&prev, n),
            &mut report,
        );
        let copies: Vec<&BitString> = (1..n).map(|u| &cur[u]).collect();
        let distinct = copies
            .iter()
            .enumerate()
            .any(|(i, a)| copies.iter().skip(i + 1).any(|b| a != b));
        assert!(distinct, "32-bit garbles must differ between recipients");
    }

    #[test]
    fn decisions_are_address_keyed() {
        let n = 6;
        let plan = ByzantinePlan::new(123)
            .traitor(NodeId(2))
            .garble(0.5)
            .silence(0.2);
        let mut a = full_matrix(n, 8);
        let mut b = full_matrix(n, 8);
        let prev = full_matrix(n, 8);
        let mut ra = ByzantineReport::default();
        let mut rb = ByzantineReport::default();
        plan.apply_rewrites(
            3,
            &mut BufViewMut::dense(&mut a, n),
            &BufView::dense(&prev, n),
            &mut ra,
        );
        plan.apply_rewrites(
            3,
            &mut BufViewMut::dense(&mut b, n),
            &BufView::dense(&prev, n),
            &mut rb,
        );
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        assert!(!ra.is_empty());
    }

    #[test]
    fn forced_lies_apply_exactly_and_only_to_traitors() {
        let n = 3;
        let plan = ByzantinePlan::new(0)
            .traitor(NodeId(0))
            .force(1, NodeId(0), NodeId(1), Lie::Invert)
            .force(1, NodeId(0), NodeId(2), Lie::Silence)
            // Node 1 is honest: this forced lie must never fire.
            .force(1, NodeId(1), NodeId(0), Lie::Silence);
        let mut cur = vec![BitString::new(); n * n];
        cur[1] = BitString::from_bits([true, true, false]); // 0 → 1
        cur[2] = BitString::from_bits([true, true, true]); // 0 → 2
        cur[n] = BitString::from_bits([true, true, true]); // 1 → 0
        let prev = vec![BitString::new(); n * n];
        let mut report = ByzantineReport::default();
        plan.apply_rewrites(
            1,
            &mut BufViewMut::dense(&mut cur, n),
            &BufView::dense(&prev, n),
            &mut report,
        );
        assert_eq!(
            cur[1],
            BitString::from_bits([false, false, true]),
            "inverted"
        );
        assert!(cur[2].is_empty(), "silenced");
        assert_eq!(cur[n].len(), 3, "honest sender's forced lie ignored");
        // Wrong round: nothing happens.
        let mut c2 = vec![BitString::new(); n * n];
        c2[1] = BitString::from_bits([true]);
        let mut r2 = ByzantineReport::default();
        plan.apply_rewrites(
            0,
            &mut BufViewMut::dense(&mut c2, n),
            &BufView::dense(&prev, n),
            &mut r2,
        );
        assert!(r2.is_empty());
        assert_eq!(c2[1].len(), 1);
    }

    #[test]
    fn replay_substitutes_received_payloads_adaptively() {
        let n = 3;
        let plan =
            ByzantinePlan::new(9)
                .traitor(NodeId(0))
                .force(2, NodeId(0), NodeId(1), Lie::Replay);
        let mut cur = vec![BitString::new(); n * n];
        cur[1] = BitString::from_bits([true, true]); // 0 → 1 (truth)
        let mut prev = vec![BitString::new(); n * n];
        // The traitor received exactly one payload this round, from node 2.
        prev[2 * n] = BitString::from_bits([false, true, false, true]); // 2 → 0
        let mut report = ByzantineReport::default();
        plan.apply_rewrites(
            2,
            &mut BufViewMut::dense(&mut cur, n),
            &BufView::dense(&prev, n),
            &mut report,
        );
        assert_eq!(
            cur[1],
            prev[2 * n],
            "the only inbound payload is the substitute"
        );
        match &report.events[..] {
            [ByzantineEvent::Replayed {
                source,
                from_bits,
                to_bits,
                ..
            }] => {
                assert_eq!(*source, NodeId(2));
                assert_eq!((*from_bits, *to_bits), (2, 4));
            }
            other => panic!("unexpected events {other:?}"),
        }
        // With an empty inbound history the replay degrades to a garble.
        let mut c2 = vec![BitString::new(); n * n];
        c2[1] = BitString::from_bits([true, true]);
        let empty = vec![BitString::new(); n * n];
        let mut r2 = ByzantineReport::default();
        plan.apply_rewrites(
            2,
            &mut BufViewMut::dense(&mut c2, n),
            &BufView::dense(&empty, n),
            &mut r2,
        );
        assert_eq!(c2[1].len(), 2, "garble fallback preserves length");
        assert!(matches!(r2.events[..], [ByzantineEvent::Garbled { .. }]));
    }

    #[test]
    fn tally_folds_counters_into_stats() {
        let report = ByzantineReport {
            events: vec![
                ByzantineEvent::Garbled {
                    from: NodeId(1),
                    to: NodeId(0),
                    round: 0,
                    bits: 8,
                },
                ByzantineEvent::Replayed {
                    from: NodeId(1),
                    to: NodeId(2),
                    round: 1,
                    source: NodeId(0),
                    from_bits: 8,
                    to_bits: 4,
                },
                ByzantineEvent::Silenced {
                    from: NodeId(3),
                    to: NodeId(2),
                    round: 1,
                    bits: 8,
                },
            ],
        };
        let mut stats = RunStats::default();
        report.tally_into(&mut stats);
        assert_eq!(stats.forged_messages, 2);
        assert_eq!(stats.silenced_messages, 1);
        assert_eq!(stats.traitor_nodes, 2);
        assert_eq!(report.liars(), vec![NodeId(1), NodeId(3)]);
        assert_eq!(report.on_link(NodeId(1), NodeId(2)).len(), 1);
    }
}
