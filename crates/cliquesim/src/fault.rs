//! Deterministic fault injection: seed-addressed adversary plans.
//!
//! The paper's model (§3) assumes a perfectly reliable synchronous clique.
//! A production-scale simulator must also answer the question the model
//! abstracts away: *what does this protocol do when the network misbehaves?*
//! A [`FaultPlan`] is a pure-data, ChaCha-seeded schedule of adversarial
//! events — crash-stop at a round, per-link message drop, deterministic
//! bit-flip corruption, and bandwidth truncation — that the engine applies
//! identically on its sequential and worker-pool paths.
//!
//! # Determinism contract
//!
//! Every fault decision is a pure function of `(plan seed, round, sender,
//! receiver)` — a fresh ChaCha8 stream is keyed per message, so decisions do
//! not depend on iteration order, pool shape, or host. The same plan against
//! the same programs replays the same faults, bit for bit; a plan's
//! [`FaultPlan::label`] (e.g. `plan[seed=7, drop=0.25, crashes=2]`) names
//! the adversary the way testkit's `family[n, seed]` labels name instances.
//!
//! An **empty plan is transparent**: `FaultPlan::new(seed)` with no faults
//! configured produces byte-identical outputs, transcripts, and
//! [`crate::RunStats`] to a run with no plan at all.
//!
//! # Semantics
//!
//! * **Crash-stop** at round `r`: the node does not step in round `r` or any
//!   later round — unless the plan schedules a *rejoin*. Messages it sent in
//!   round `r - 1` are still delivered (they were on the wire before the
//!   crash); messages addressed *to* it that it never read are charged to
//!   the undelivered counters. A node that already halted normally is
//!   unaffected.
//! * **Rejoin** at round `r`: a previously crashed node resumes stepping at
//!   the start of round `r`. The engine first *state-syncs* it by replaying
//!   the missed transcript window (what was on the wire to it each missed
//!   round) as out-of-band `StateSync` rounds; the replay's bandwidth is
//!   priced in the dedicated sync counters of [`crate::RunStats`] and in the
//!   [`FaultEvent::Rejoined`] event, never in the live `messages`/`bits`
//!   totals (sent-based accounting stays transcript-exact). Build with
//!   [`FaultPlan::rejoin`] (validated, see [`ChurnError`]) or sample a whole
//!   Poisson-style churn schedule with [`FaultPlan::with_random_churn`].
//! * **Drop**: the message is removed from the wire after the sender is
//!   charged for it (sent-based accounting, see [`crate::stats`]).
//! * **Corrupt**: exactly one bit of the payload is flipped; the length is
//!   unchanged, so a corrupted message still satisfies the bandwidth bound.
//! * **Truncate**: the payload is cut to a strict prefix (possibly empty),
//!   modelling a link that loses the tail of a frame.
//!
//! Faults are applied on the main thread between round barriers, after the
//! sender-side accounting and transcript recording for the round — so a
//! node's transcript records what it *sent* pre-fault and what it
//! *received* post-fault, exactly the asymmetry a real lossy network shows.
//!
//! # Position in the adversary ladder
//!
//! This plan is the *oblivious* tier of the workspace's threat model
//! (`docs/THREAT-MODEL.md`): faults are content-blind and link-local, so a
//! broadcast is damaged independently per link but the sender itself never
//! lies. The stronger tier — a sender that equivocates per recipient and
//! adapts to what it heard — is [`crate::byzantine::ByzantinePlan`], which
//! shares this module's seed-addressed keying and composes with it (lies
//! first, then link damage).

use std::fmt;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::bits::BitString;
use crate::delivery::{BufView, BufViewMut};
use crate::node::NodeId;
use crate::stats::RunStats;

/// A deterministic, forced fault on one message (as opposed to the
/// probabilistic coins, which apply to every link).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Remove the message from the wire.
    Drop,
    /// Flip payload bit `bit % len` (no-op on an empty payload).
    Flip {
        /// Bit position to flip, reduced modulo the payload length.
        bit: usize,
    },
    /// Keep only the first `min(keep, len)` payload bits.
    Truncate {
        /// Number of prefix bits to keep.
        keep: usize,
    },
}

/// One scheduled forced fault: `(round, from, to, kind)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ForcedFault {
    /// Round in which the message is sent.
    pub round: usize,
    /// Sender of the targeted message.
    pub from: NodeId,
    /// Recipient of the targeted message.
    pub to: NodeId,
    /// What happens to it.
    pub kind: FaultKind,
}

/// A seed-addressed adversary schedule. Pure data: construct with the
/// builder methods, attach to an engine with
/// [`crate::Engine::with_fault_plan`], replay by reconstructing from the
/// same parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    crashes: Vec<(NodeId, usize)>,
    rejoins: Vec<(NodeId, usize)>,
    drop_p: f64,
    corrupt_p: f64,
    truncate_p: f64,
    forced: Vec<ForcedFault>,
}

/// Why a rejoin entry was rejected at plan-build time. Churn schedules are
/// validated eagerly so an impossible plan is a structured error at the
/// builder, not a silent no-op (or a panic) mid-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnError {
    /// The node has no crash entry at all, so there is nothing to rejoin
    /// from.
    RejoinWithoutCrash {
        /// The node the rejoin addressed.
        node: NodeId,
        /// The rejected rejoin round.
        round: usize,
    },
    /// At the start of the rejoin round the node would still be alive under
    /// the schedule built so far (its crash comes later, or an earlier
    /// rejoin already revived it). Add crashes before their rejoins; a
    /// rejoin round must be strictly greater than the crash it recovers
    /// from, so `rejoin(v, 0)` is always rejected.
    RejoinWhileAlive {
        /// The node the rejoin addressed.
        node: NodeId,
        /// The rejected rejoin round.
        round: usize,
    },
}

impl fmt::Display for ChurnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChurnError::RejoinWithoutCrash { node, round } => write!(
                f,
                "rejoin of node {} at round {round} rejected: the plan never crashes it",
                node.display()
            ),
            ChurnError::RejoinWhileAlive { node, round } => write!(
                f,
                "rejoin of node {} at round {round} rejected: it is still alive at that point \
                 (crashes must precede their rejoins, strictly)",
                node.display()
            ),
        }
    }
}

impl std::error::Error for ChurnError {}

impl FaultPlan {
    /// An empty plan. Attaching it to an engine is guaranteed to leave
    /// every run byte-identical to a plan-less run.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            crashes: Vec::new(),
            rejoins: Vec::new(),
            drop_p: 0.0,
            corrupt_p: 0.0,
            truncate_p: 0.0,
            forced: Vec::new(),
        }
    }

    /// The plan's seed (drives every probabilistic coin).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True if the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.rejoins.is_empty()
            && self.forced.is_empty()
            && self.drop_p == 0.0
            && self.corrupt_p == 0.0
            && self.truncate_p == 0.0
    }

    /// Crash-stop `node` at the start of `round`. Without a matching
    /// [`FaultPlan::rejoin`] it never steps again.
    pub fn crash(mut self, node: NodeId, round: usize) -> Self {
        self.crashes.push((node, round));
        self
    }

    /// Bring a crashed `node` back at the start of `round`: the engine
    /// state-syncs it over the missed window and it resumes stepping in
    /// `round`. Validated against the schedule built **so far** — add the
    /// crash first. The rejoin round must be strictly after the crash it
    /// recovers from; see [`ChurnError`] for the rejection cases.
    pub fn rejoin(mut self, node: NodeId, round: usize) -> Result<Self, ChurnError> {
        if !self.crashes.iter().any(|(v, _)| *v == node) {
            return Err(ChurnError::RejoinWithoutCrash { node, round });
        }
        let dead_before = round > 0 && !self.alive_at(node, round - 1);
        if !dead_before {
            return Err(ChurnError::RejoinWhileAlive { node, round });
        }
        self.rejoins.push((node, round));
        Ok(self)
    }

    /// Sample a whole crash/rejoin churn schedule: every node outside
    /// `spare` walks a two-state Markov chain over rounds `1..=max_round`,
    /// crashing while alive with probability `crash_per_mille / 1000` and
    /// rejoining while down with probability `rejoin_per_mille / 1000`,
    /// per round. Each coin is a fresh ChaCha8 stream keyed by
    /// `(plan seed, node, round)`, so the schedule is a pure function of the
    /// seed — bit-identical across pool shapes, delivery backends, and
    /// hosts — and valid by construction (strictly alternating crash/rejoin
    /// per node, never at round 0).
    pub fn with_random_churn(
        mut self,
        n: usize,
        crash_per_mille: u32,
        rejoin_per_mille: u32,
        max_round: usize,
        spare: &[NodeId],
    ) -> Self {
        assert!(crash_per_mille <= 1000, "crash rate is per mille");
        assert!(rejoin_per_mille <= 1000, "rejoin rate is per mille");
        for v in 0..n {
            if spare.iter().any(|s| s.index() == v) {
                continue;
            }
            let mut alive = true;
            for r in 1..=max_round {
                let mut rng =
                    ChaCha8Rng::seed_from_u64(mix(self.seed, 0x0C48_5242, v as u64, r as u64));
                let coin = rng.gen_range(0..1000u32);
                if alive {
                    if coin < crash_per_mille {
                        self.crashes.push((NodeId::from(v), r));
                        alive = false;
                    }
                } else if coin < rejoin_per_mille {
                    self.rejoins.push((NodeId::from(v), r));
                    alive = true;
                }
            }
        }
        self
    }

    /// Schedule `f` distinct crash victims among `n` nodes, each at a
    /// ChaCha-chosen round in `1..=max_round`, excluding the nodes in
    /// `spare` (e.g. a broadcast source). Victims and rounds are a pure
    /// function of the plan seed.
    pub fn with_random_crashes(
        mut self,
        n: usize,
        f: usize,
        max_round: usize,
        spare: &[NodeId],
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(mix(self.seed, 0xC4A5_4ED0, 0, 0));
        let mut victims: Vec<usize> = (0..n)
            .filter(|v| !spare.iter().any(|s| s.index() == *v))
            .collect();
        // Fisher–Yates prefix selection.
        for i in 0..f.min(victims.len()) {
            let j = i + rng.gen_range(0..victims.len() - i);
            victims.swap(i, j);
            let round = rng.gen_range(1..=max_round.max(1));
            self.crashes.push((NodeId::from(victims[i]), round));
        }
        self
    }

    /// Drop every message independently with probability `p`.
    pub fn drop_messages(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.drop_p = p;
        self
    }

    /// Flip one bit of every message independently with probability `p`.
    pub fn corrupt_messages(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.corrupt_p = p;
        self
    }

    /// Truncate every message independently with probability `p`.
    pub fn truncate_messages(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.truncate_p = p;
        self
    }

    /// Force a specific fault on the message `from → to` sent in `round`.
    pub fn force(mut self, round: usize, from: NodeId, to: NodeId, kind: FaultKind) -> Self {
        self.forced.push(ForcedFault {
            round,
            from,
            to,
            kind,
        });
        self
    }

    /// The round at which `node` is scheduled to crash (minimum over
    /// duplicate entries), if any.
    pub fn crash_round(&self, node: NodeId) -> Option<usize> {
        self.crashes
            .iter()
            .filter(|(v, _)| *v == node)
            .map(|(_, r)| *r)
            .min()
    }

    /// The downtime intervals the schedule implies for `node`, as
    /// half-open `[crash_round, rejoin_round)` pairs in ascending order; a
    /// final crash without a rejoin yields `[crash_round, usize::MAX)`.
    /// Duplicate crashes of an already-down node (and duplicate rejoins of
    /// an already-revived one) are collapsed, matching what the engine
    /// actually applies.
    pub fn downtime(&self, node: NodeId) -> Vec<(usize, usize)> {
        let mut events: Vec<(usize, bool)> = self
            .crashes
            .iter()
            .filter(|(v, _)| *v == node)
            .map(|(_, r)| (*r, false))
            .chain(
                self.rejoins
                    .iter()
                    .filter(|(v, _)| *v == node)
                    .map(|(_, r)| (*r, true)),
            )
            .collect();
        // `false` (crash) sorts before `true` (rejoin) at equal rounds —
        // the engine processes crashes first within a round.
        events.sort_unstable();
        let mut out = Vec::new();
        let mut open: Option<usize> = None;
        for (r, is_rejoin) in events {
            match (is_rejoin, open) {
                (false, None) => open = Some(r),
                (true, Some(s)) => {
                    out.push((s, r));
                    open = None;
                }
                _ => {}
            }
        }
        if let Some(s) = open {
            out.push((s, usize::MAX));
        }
        out
    }

    /// Whether `node` is scheduled to step at the start of `round`: false
    /// exactly while a crash is in effect and no rejoin has fired yet. The
    /// churn tier's ground truth — [`FaultPlan::dead_at`] and `cc-routing`'s
    /// round-aware crash sets are derived from it.
    pub fn alive_at(&self, node: NodeId, round: usize) -> bool {
        // `e == usize::MAX` is the "never rejoins" sentinel and must cover
        // every round including `usize::MAX` itself.
        !self
            .downtime(node)
            .iter()
            .any(|&(s, e)| s <= round && (round < e || e == usize::MAX))
    }

    /// The crash set this plan implies at `round`: every node down at that
    /// round **net of rejoins** (a node crashing at round `r` misses `r` and
    /// later rounds until — if ever — its rejoin). Ascending node order,
    /// duplicates collapsed; `dead_at(usize::MAX)` is the set of nodes that
    /// never come back. For the conservative *ever-dead* population (e.g. a
    /// router refusing any intermediate with scheduled downtime) use
    /// [`FaultPlan::ever_dead_in`].
    pub fn dead_at(&self, round: usize) -> Vec<NodeId> {
        let mut dead: Vec<NodeId> = self
            .crashes
            .iter()
            .map(|(v, _)| *v)
            .filter(|v| !self.alive_at(*v, round))
            .collect();
        dead.sort_by_key(|v| v.index());
        dead.dedup();
        dead
    }

    /// Every node with scheduled downtime intersecting the half-open round
    /// range `rounds` — the conservative crash set a planner should avoid
    /// for work spanning that window. `ever_dead_in(0..usize::MAX)` is the
    /// plan's full ever-crashed population.
    pub fn ever_dead_in(&self, rounds: std::ops::Range<usize>) -> Vec<NodeId> {
        let mut dead: Vec<NodeId> = self
            .crashes
            .iter()
            .map(|(v, _)| *v)
            .filter(|v| {
                self.downtime(*v)
                    .iter()
                    .any(|&(s, e)| s < rounds.end && e > rounds.start)
            })
            .collect();
        dead.sort_by_key(|v| v.index());
        dead.dedup();
        dead
    }

    /// The first rejoin of `node` scheduled strictly after `round`, if any.
    /// The engine calls this at crash time to decide whether to keep a
    /// state-sync window for the victim.
    pub fn next_rejoin_after(&self, node: NodeId, round: usize) -> Option<usize> {
        self.rejoins
            .iter()
            .filter(|(v, r)| *v == node && *r > round)
            .map(|(_, r)| *r)
            .min()
    }

    /// True if the plan schedules any rejoin (gates the engine's state-sync
    /// machinery; crash-only plans take the exact pre-churn code path).
    pub(crate) fn has_rejoins(&self) -> bool {
        !self.rejoins.is_empty()
    }

    /// True if the plan crashes `node` exactly at `round` (not merely at or
    /// before it — with rejoins a node can crash more than once).
    fn crashes_at(&self, node: NodeId, round: usize) -> bool {
        self.crashes.iter().any(|(v, r)| *v == node && *r == round)
    }

    /// The replayable adversary label, `plan[seed=…, …]`.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// The forced fault scheduled for `(round, from, to)`, if any (first
    /// match wins).
    fn forced_for(&self, round: usize, from: usize, to: usize) -> Option<FaultKind> {
        self.forced
            .iter()
            .find(|f| f.round == round && f.from.index() == from && f.to.index() == to)
            .map(|f| f.kind)
    }

    /// True if any link fault (probabilistic or forced) can ever fire.
    pub(crate) fn has_link_faults(&self) -> bool {
        self.drop_p > 0.0
            || self.corrupt_p > 0.0
            || self.truncate_p > 0.0
            || !self.forced.is_empty()
    }

    /// Apply the crash schedule for `round`: mark scheduled victims halted,
    /// record one [`FaultEvent::Crashed`] per victim still running, and
    /// charge the messages the victim will now never read (column `v` of
    /// the matrix this round reads).
    pub(crate) fn apply_crashes(
        &self,
        round: usize,
        halted: &mut [bool],
        inbound: &BufView<'_>,
        report: &mut FaultReport,
    ) {
        if self.crashes.is_empty() {
            return;
        }
        let n = inbound.n();
        for (v, h) in halted.iter_mut().enumerate() {
            // Exact-round membership, not the earliest crash round: with
            // rejoins a node can crash, come back, and crash again. A node
            // already halted (normally or by an earlier crash) is skipped,
            // which also collapses duplicate crash entries.
            if *h || !self.crashes_at(NodeId::from(v), round) {
                continue;
            }
            *h = true;
            let mut lost_messages = 0u64;
            let mut lost_bits = 0u64;
            for u in 0..n {
                if u == v {
                    continue;
                }
                let m = inbound.get(u, v);
                if !m.is_empty() {
                    lost_messages += 1;
                    lost_bits += m.len() as u64;
                }
            }
            report.events.push(FaultEvent::Crashed {
                node: NodeId::from(v),
                round,
                lost_messages,
                lost_bits,
            });
        }
    }

    /// Apply link faults to the buffer written in `round` (it will be read
    /// next round). Sweep order is sender-major and decisions are keyed per
    /// `(seed, round, from, to)`, so the result is independent of pool
    /// shape *and* of delivery backend.
    pub(crate) fn apply_link_faults(
        &self,
        round: usize,
        cur: &mut BufViewMut<'_>,
        report: &mut FaultReport,
    ) {
        if !self.has_link_faults() {
            return;
        }
        for v in 0..cur.n() {
            cur.for_each_msg_mut(v, |u, m| self.fault_one(round, v, u, m, report));
        }
    }

    /// Decide and apply the fault (if any) for one non-empty message.
    fn fault_one(
        &self,
        round: usize,
        from: usize,
        to: usize,
        m: &mut BitString,
        report: &mut FaultReport,
    ) {
        let forced = self.forced_for(round, from, to);
        // The coin stream is keyed per message: same (seed, round, link) →
        // same draws, regardless of how many other messages exist.
        let mut rng =
            ChaCha8Rng::seed_from_u64(mix(self.seed, round as u64, from as u64, to as u64));
        // Fixed draw order keeps partial plans deterministic.
        let drop = rng.gen_bool(self.drop_p) || forced == Some(FaultKind::Drop);
        let corrupt = rng.gen_bool(self.corrupt_p);
        let corrupt_bit = rng.gen_range(0..m.len());
        let truncate = rng.gen_bool(self.truncate_p);
        let truncate_keep = rng.gen_range(0..m.len());
        let (from_id, to_id) = (NodeId::from(from), NodeId::from(to));
        if drop {
            report.events.push(FaultEvent::Dropped {
                from: from_id,
                to: to_id,
                round,
                bits: m.len(),
            });
            m.clear();
            return;
        }
        let flip = match forced {
            Some(FaultKind::Flip { bit }) => Some(bit % m.len()),
            _ if corrupt => Some(corrupt_bit),
            _ => None,
        };
        if let Some(bit) = flip {
            m.set(bit, !m.get(bit));
            report.events.push(FaultEvent::Corrupted {
                from: from_id,
                to: to_id,
                round,
                bit,
            });
        }
        let keep = match forced {
            Some(FaultKind::Truncate { keep }) => Some(keep.min(m.len())),
            _ if truncate => Some(truncate_keep),
            _ => None,
        };
        if let Some(keep) = keep {
            if keep < m.len() {
                let from_bits = m.len();
                m.truncate(keep);
                report.events.push(FaultEvent::Truncated {
                    from: from_id,
                    to: to_id,
                    round,
                    from_bits,
                    to_bits: keep,
                });
            }
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan[seed={}", self.seed)?;
        if !self.crashes.is_empty() {
            write!(f, ", crashes={}", self.crashes.len())?;
        }
        if !self.rejoins.is_empty() {
            write!(f, ", rejoins={}", self.rejoins.len())?;
        }
        if self.drop_p > 0.0 {
            write!(f, ", drop={}", self.drop_p)?;
        }
        if self.corrupt_p > 0.0 {
            write!(f, ", corrupt={}", self.corrupt_p)?;
        }
        if self.truncate_p > 0.0 {
            write!(f, ", trunc={}", self.truncate_p)?;
        }
        if !self.forced.is_empty() {
            write!(f, ", forced={}", self.forced.len())?;
        }
        write!(f, "]")
    }
}

/// SplitMix64-style finalizer mixing the plan seed with a message address.
/// Any bijective avalanche works here; what matters is that distinct
/// `(round, from, to)` triples get statistically independent streams.
/// Shared with the Byzantine adversary so both tiers use one keying scheme.
pub(crate) fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut x = seed
        ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ c.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// One fault the engine actually applied during a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// A node crash-stopped.
    Crashed {
        /// The victim.
        node: NodeId,
        /// Round at whose start it stopped participating.
        round: usize,
        /// In-flight messages addressed to it that it never read.
        lost_messages: u64,
        /// Payload bits of those messages.
        lost_bits: u64,
    },
    /// A crashed node came back and was state-synced over its missed
    /// window.
    Rejoined {
        /// The recovered node.
        node: NodeId,
        /// Round at whose start it resumed stepping.
        round: usize,
        /// Missed rounds replayed to it (`rejoin round − crash round`,
        /// fewer if it halted mid-replay).
        sync_rounds: u64,
        /// In-flight messages re-delivered during the replay.
        sync_messages: u64,
        /// Payload bits of those messages.
        sync_bits: u64,
    },
    /// A message was removed from the wire.
    Dropped {
        /// Sender of the lost message.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
        /// Round the message was sent in.
        round: usize,
        /// Payload size of the lost message.
        bits: usize,
    },
    /// One bit of a message was flipped.
    Corrupted {
        /// Sender of the damaged message.
        from: NodeId,
        /// Recipient of the damaged message.
        to: NodeId,
        /// Round the message was sent in.
        round: usize,
        /// Which bit was flipped.
        bit: usize,
    },
    /// A message lost its tail.
    Truncated {
        /// Sender of the damaged message.
        from: NodeId,
        /// Recipient of the damaged message.
        to: NodeId,
        /// Round the message was sent in.
        round: usize,
        /// Payload size before truncation.
        from_bits: usize,
        /// Payload size after truncation.
        to_bits: usize,
    },
}

/// Everything the adversary did in one run, in deterministic order
/// (ascending rounds; within a round crashes by node id, then rejoins by
/// node id, then link faults sender-major).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Applied faults in order.
    pub events: Vec<FaultEvent>,
}

impl FaultReport {
    /// True if the adversary did nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Nodes that crash-stopped, in event order.
    pub fn crashed_nodes(&self) -> Vec<NodeId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Crashed { node, .. } => Some(*node),
                _ => None,
            })
            .collect()
    }

    /// The round `node` crashed in, if it did.
    pub fn crash_round(&self, node: NodeId) -> Option<usize> {
        self.events.iter().find_map(|e| match e {
            FaultEvent::Crashed { node: v, round, .. } if *v == node => Some(*round),
            _ => None,
        })
    }

    /// Fold the report's totals into run statistics: the fault counters,
    /// plus the in-flight payloads crash victims never read (charged to the
    /// undelivered counters, consistent with sent-based accounting).
    pub fn tally_into(&self, stats: &mut RunStats) {
        for e in &self.events {
            match e {
                FaultEvent::Crashed {
                    lost_messages,
                    lost_bits,
                    ..
                } => {
                    stats.dead_nodes += 1;
                    stats.undelivered_messages += lost_messages;
                    stats.undelivered_bits += lost_bits;
                }
                FaultEvent::Rejoined {
                    sync_rounds,
                    sync_messages,
                    sync_bits,
                    ..
                } => {
                    stats.rejoined_nodes += 1;
                    stats.sync_rounds += sync_rounds;
                    stats.sync_messages += sync_messages;
                    stats.sync_bits += sync_bits;
                }
                FaultEvent::Dropped { .. } => stats.dropped_messages += 1,
                FaultEvent::Corrupted { .. } => stats.corrupted_messages += 1,
                FaultEvent::Truncated { .. } => stats.truncated_messages += 1,
            }
        }
    }
}

/// Analytic price of state sync under an all-chatter workload, mirroring
/// `cc-routing`'s `resilient_overhead`: predicted totals for the sync
/// counters of [`crate::RunStats`], asserted against simulated stats in the
/// churn conformance suite (see docs/THREAT-MODEL.md).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncOverhead {
    /// Rejoins that fire (finite downtime intervals in the plan).
    pub rejoins: u64,
    /// Total missed rounds replayed across all rejoins.
    pub sync_rounds: u64,
    /// Total messages re-delivered during replays.
    pub sync_messages: u64,
    /// Total payload bits of those messages.
    pub sync_bits: u64,
}

/// Predict the state-sync bill of `plan` on an `n`-node clique whose nodes
/// all send a `width`-bit payload to every peer every round until after the
/// last rejoin (the maximum-bandwidth workload: every missed slot is a real
/// re-delivery). For each finite downtime window `[c, r)` the rejoiner
/// replays rounds `c..r`; replay round `t` re-delivers one `width`-bit
/// message from every other node that was alive at `t - 1` (round 0 has no
/// inbound traffic). Protocols that send less simply cost less — this bound
/// is exact for all-chatter and an upper bound otherwise.
pub fn sync_overhead(n: usize, plan: &FaultPlan, width: usize) -> SyncOverhead {
    let mut out = SyncOverhead::default();
    for v in plan.ever_dead_in(0..usize::MAX) {
        for (c, r) in plan.downtime(v) {
            if r == usize::MAX {
                continue;
            }
            out.rejoins += 1;
            out.sync_rounds += (r - c) as u64;
            for t in c..r {
                if t == 0 {
                    continue;
                }
                let senders = (0..n)
                    .filter(|&u| u != v.index() && plan.alive_at(NodeId::from(u), t - 1))
                    .count() as u64;
                out.sync_messages += senders;
                out.sync_bits += senders * width as u64;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_labelled() {
        let p = FaultPlan::new(42);
        assert!(p.is_empty());
        assert_eq!(p.label(), "plan[seed=42]");
    }

    #[test]
    fn builder_composes_and_labels() {
        let p = FaultPlan::new(7)
            .crash(NodeId(3), 2)
            .drop_messages(0.25)
            .force(0, NodeId(0), NodeId(1), FaultKind::Drop);
        assert!(!p.is_empty());
        assert_eq!(p.crash_round(NodeId(3)), Some(2));
        assert_eq!(p.crash_round(NodeId(0)), None);
        assert_eq!(p.label(), "plan[seed=7, crashes=1, drop=0.25, forced=1]");
    }

    #[test]
    fn duplicate_crashes_take_the_earliest_round() {
        let p = FaultPlan::new(0).crash(NodeId(1), 5).crash(NodeId(1), 2);
        assert_eq!(p.crash_round(NodeId(1)), Some(2));
    }

    #[test]
    fn dead_at_exposes_the_per_round_crash_set() {
        let p = FaultPlan::new(0)
            .crash(NodeId(4), 3)
            .crash(NodeId(1), 1)
            .crash(NodeId(4), 7); // duplicate, later round: collapsed
        assert_eq!(p.dead_at(0), vec![]);
        assert_eq!(p.dead_at(1), vec![NodeId(1)]);
        assert_eq!(p.dead_at(2), vec![NodeId(1)]);
        assert_eq!(p.dead_at(3), vec![NodeId(1), NodeId(4)]);
        assert_eq!(p.dead_at(usize::MAX), vec![NodeId(1), NodeId(4)]);
        assert_eq!(FaultPlan::new(9).dead_at(usize::MAX), vec![]);
    }

    #[test]
    fn rejoin_before_crash_is_rejected_structurally() {
        // No crash at all.
        assert_eq!(
            FaultPlan::new(0).rejoin(NodeId(3), 5),
            Err(ChurnError::RejoinWithoutCrash {
                node: NodeId(3),
                round: 5
            })
        );
        // Crash exists but only later: still alive at the rejoin round.
        assert_eq!(
            FaultPlan::new(0).crash(NodeId(3), 7).rejoin(NodeId(3), 5),
            Err(ChurnError::RejoinWhileAlive {
                node: NodeId(3),
                round: 5
            })
        );
        // Same round as the crash: rejoins must be strictly later.
        assert_eq!(
            FaultPlan::new(0).crash(NodeId(3), 5).rejoin(NodeId(3), 5),
            Err(ChurnError::RejoinWhileAlive {
                node: NodeId(3),
                round: 5
            })
        );
        // Errors render a human-readable rejection.
        let e = FaultPlan::new(0).rejoin(NodeId(3), 5).unwrap_err();
        assert!(e.to_string().contains("never crashes"));
    }

    #[test]
    fn rejoin_at_round_zero_is_always_rejected() {
        // No crash can strictly precede round 0.
        assert_eq!(
            FaultPlan::new(0).crash(NodeId(1), 0).rejoin(NodeId(1), 0),
            Err(ChurnError::RejoinWhileAlive {
                node: NodeId(1),
                round: 0
            })
        );
    }

    #[test]
    fn crash_rejoin_crash_again_composes() {
        let p = FaultPlan::new(0)
            .crash(NodeId(2), 1)
            .rejoin(NodeId(2), 3)
            .expect("dead at 1..3")
            .crash(NodeId(2), 6);
        assert_eq!(p.downtime(NodeId(2)), vec![(1, 3), (6, usize::MAX)]);
        // A second rejoin after the second crash is valid again.
        let p = p.rejoin(NodeId(2), 8).expect("dead at 6..8");
        assert_eq!(p.downtime(NodeId(2)), vec![(1, 3), (6, 8)]);
        // But a rejoin in the alive gap is not.
        assert_eq!(
            p.clone().rejoin(NodeId(2), 4),
            Err(ChurnError::RejoinWhileAlive {
                node: NodeId(2),
                round: 4
            })
        );
        assert_eq!(p.next_rejoin_after(NodeId(2), 1), Some(3));
        assert_eq!(p.next_rejoin_after(NodeId(2), 6), Some(8));
        assert_eq!(p.next_rejoin_after(NodeId(2), 8), None);
        assert_eq!(p.label(), "plan[seed=0, crashes=2, rejoins=2]");
    }

    #[test]
    fn alive_at_and_dead_at_agree_around_a_rejoin() {
        let p = FaultPlan::new(0)
            .crash(NodeId(1), 2)
            .rejoin(NodeId(1), 5)
            .expect("valid rejoin")
            .crash(NodeId(4), 3);
        // Positive and negative checks round by round for node 1.
        assert!(p.alive_at(NodeId(1), 0));
        assert!(p.alive_at(NodeId(1), 1));
        assert!(!p.alive_at(NodeId(1), 2), "missed its crash round");
        assert!(!p.alive_at(NodeId(1), 4));
        assert!(p.alive_at(NodeId(1), 5), "steps again at the rejoin round");
        assert!(p.alive_at(NodeId(1), 100));
        // Node 4 never rejoins; node 0 never crashes.
        assert!(!p.alive_at(NodeId(4), 3));
        assert!(!p.alive_at(NodeId(4), usize::MAX));
        assert!(p.alive_at(NodeId(0), usize::MAX));
        // dead_at is the net-dead set per round.
        assert_eq!(p.dead_at(1), vec![]);
        assert_eq!(p.dead_at(2), vec![NodeId(1)]);
        assert_eq!(p.dead_at(3), vec![NodeId(1), NodeId(4)]);
        assert_eq!(p.dead_at(5), vec![NodeId(4)]);
        assert_eq!(p.dead_at(usize::MAX), vec![NodeId(4)]);
        // ever_dead_in is the conservative window population.
        assert_eq!(p.ever_dead_in(0..2), vec![]);
        assert_eq!(p.ever_dead_in(0..3), vec![NodeId(1)]);
        assert_eq!(p.ever_dead_in(4..6), vec![NodeId(1), NodeId(4)]);
        assert_eq!(p.ever_dead_in(5..9), vec![NodeId(4)]);
        assert_eq!(p.ever_dead_in(0..usize::MAX), vec![NodeId(1), NodeId(4)]);
    }

    #[test]
    fn random_churn_is_seed_deterministic_and_valid() {
        let mk = |seed| FaultPlan::new(seed).with_random_churn(12, 300, 400, 20, &[NodeId(0)]);
        let a = mk(5);
        assert_eq!(a, mk(5), "same seed, same schedule");
        assert_ne!(a, mk(6), "different seed, different schedule");
        assert!(!a.crashes.is_empty(), "p=0.3 over 11×20 coins fires");
        assert!(a.has_rejoins(), "p=0.4 recovery fires");
        assert!(a.alive_at(NodeId(0), usize::MAX), "spared node never down");
        // Valid by construction: per node strictly alternating, never at
        // round 0 — every interval is well-formed and re-insertable through
        // the validated builder.
        for v in 0..12 {
            let mut replay = FaultPlan::new(a.seed);
            for &(s, e) in &a.downtime(NodeId(v)) {
                assert!(s >= 1);
                replay = replay.crash(NodeId(v), s);
                if e != usize::MAX {
                    replay = replay.rejoin(NodeId(v), e).expect("interval is valid");
                }
            }
        }
    }

    #[test]
    fn rejoined_tally_fills_the_sync_counters() {
        let report = FaultReport {
            events: vec![
                FaultEvent::Rejoined {
                    node: NodeId(1),
                    round: 4,
                    sync_rounds: 3,
                    sync_messages: 6,
                    sync_bits: 18,
                },
                FaultEvent::Rejoined {
                    node: NodeId(2),
                    round: 9,
                    sync_rounds: 1,
                    sync_messages: 2,
                    sync_bits: 4,
                },
            ],
        };
        let mut stats = RunStats::default();
        report.tally_into(&mut stats);
        assert_eq!(stats.rejoined_nodes, 2);
        assert_eq!(stats.sync_rounds, 4);
        assert_eq!(stats.sync_messages, 8);
        assert_eq!(stats.sync_bits, 22);
        assert_eq!(stats.dead_nodes, 0, "rejoin events are not crash events");
    }

    #[test]
    fn sync_overhead_prices_the_missed_window() {
        // n = 4 all-chatter, node 1 down for rounds 2..4 (two missed
        // rounds). Replay round 2 re-delivers 3 senders' messages, round 3
        // likewise: 6 messages of `width` bits.
        let plan = FaultPlan::new(0)
            .crash(NodeId(1), 2)
            .rejoin(NodeId(1), 4)
            .expect("valid rejoin");
        let o = sync_overhead(4, &plan, 5);
        assert_eq!(o.rejoins, 1);
        assert_eq!(o.sync_rounds, 2);
        assert_eq!(o.sync_messages, 6);
        assert_eq!(o.sync_bits, 30);
        // A permanent crash prices nothing.
        let permanent = sync_overhead(4, &FaultPlan::new(0).crash(NodeId(1), 2), 5);
        assert_eq!(permanent, SyncOverhead::default());
        // Overlapping downtime of another node thins the sender population.
        let plan = FaultPlan::new(0)
            .crash(NodeId(1), 2)
            .rejoin(NodeId(1), 4)
            .expect("valid")
            .crash(NodeId(3), 1);
        let o = sync_overhead(4, &plan, 5);
        // Node 3 is dead at rounds 1 and 3 (the `t-1` instants of both
        // replay rounds), so each replay round has only 2 live senders.
        assert_eq!(o.sync_messages, 4);
        assert_eq!(o.sync_bits, 20);
    }

    #[test]
    fn random_crashes_are_seed_deterministic_and_spare_nodes() {
        let mk = |seed| FaultPlan::new(seed).with_random_crashes(10, 3, 4, &[NodeId(0)]);
        let a = mk(9);
        let b = mk(9);
        let c = mk(10);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert_eq!(a.crashes_len(), 3);
        assert_eq!(a.crash_round(NodeId(0)), None, "spared node never crashes");
    }

    impl FaultPlan {
        fn crashes_len(&self) -> usize {
            self.crashes.len()
        }
    }

    #[test]
    fn link_decisions_are_address_keyed() {
        // Same (seed, round, from, to) → same decision, independent of the
        // order messages are visited in.
        let plan = FaultPlan::new(123).drop_messages(0.5);
        let n = 6;
        let mk_matrix = || {
            let mut m = vec![BitString::new(); n * n];
            for v in 0..n {
                for u in 0..n {
                    if u != v {
                        m[v * n + u] = BitString::from_bits([true, false, true]);
                    }
                }
            }
            m
        };
        let mut a = mk_matrix();
        let mut b = mk_matrix();
        let mut ra = FaultReport::default();
        let mut rb = FaultReport::default();
        plan.apply_link_faults(3, &mut BufViewMut::dense(&mut a, n), &mut ra);
        plan.apply_link_faults(3, &mut BufViewMut::dense(&mut b, n), &mut rb);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        // With p = 0.5 over 30 messages, both outcomes occur.
        assert!(!ra.is_empty());
        assert!(ra.events.len() < 30);
    }

    #[test]
    fn forced_faults_apply_exactly() {
        let n = 3;
        let plan = FaultPlan::new(0)
            .force(1, NodeId(0), NodeId(1), FaultKind::Flip { bit: 0 })
            .force(1, NodeId(0), NodeId(2), FaultKind::Truncate { keep: 1 })
            .force(1, NodeId(1), NodeId(0), FaultKind::Drop);
        let mut m = vec![BitString::new(); n * n];
        m[1] = BitString::from_bits([true, true, true]); // 0 → 1
        m[2] = BitString::from_bits([true, true, true]); // 0 → 2
        m[n] = BitString::from_bits([true, true, true]); // 1 → 0
        let mut report = FaultReport::default();
        plan.apply_link_faults(1, &mut BufViewMut::dense(&mut m, n), &mut report);
        assert_eq!(
            m[1],
            BitString::from_bits([false, true, true]),
            "bit 0 flipped"
        );
        assert_eq!(m[2], BitString::from_bits([true]), "truncated to 1 bit");
        assert!(m[n].is_empty(), "dropped");
        // Wrong round: nothing happens.
        let mut m2 = vec![BitString::new(); n * n];
        m2[1] = BitString::from_bits([true]);
        let mut r2 = FaultReport::default();
        plan.apply_link_faults(0, &mut BufViewMut::dense(&mut m2, n), &mut r2);
        assert!(r2.is_empty());
        assert_eq!(m2[1].len(), 1);
    }

    #[test]
    fn crash_sweep_marks_halted_and_charges_inflight() {
        let n = 3;
        let plan = FaultPlan::new(0).crash(NodeId(1), 4);
        let mut halted = vec![false; n];
        let mut inbound = vec![BitString::new(); n * n];
        inbound[1] = BitString::from_bits([true, true]); // 0 → 1, never read
        let mut report = FaultReport::default();
        plan.apply_crashes(4, &mut halted, &BufView::dense(&inbound, n), &mut report);
        assert!(halted[1]);
        assert_eq!(
            report.events,
            vec![FaultEvent::Crashed {
                node: NodeId(1),
                round: 4,
                lost_messages: 1,
                lost_bits: 2,
            }]
        );
        // Already-halted nodes are not crashed again.
        let mut r2 = FaultReport::default();
        plan.apply_crashes(4, &mut halted, &BufView::dense(&inbound, n), &mut r2);
        assert!(r2.is_empty());
    }

    #[test]
    fn tally_folds_counters_into_stats() {
        let report = FaultReport {
            events: vec![
                FaultEvent::Crashed {
                    node: NodeId(2),
                    round: 1,
                    lost_messages: 2,
                    lost_bits: 5,
                },
                FaultEvent::Dropped {
                    from: NodeId(0),
                    to: NodeId(1),
                    round: 0,
                    bits: 3,
                },
                FaultEvent::Corrupted {
                    from: NodeId(0),
                    to: NodeId(1),
                    round: 2,
                    bit: 1,
                },
                FaultEvent::Truncated {
                    from: NodeId(1),
                    to: NodeId(0),
                    round: 2,
                    from_bits: 4,
                    to_bits: 1,
                },
            ],
        };
        let mut stats = RunStats::default();
        report.tally_into(&mut stats);
        assert_eq!(stats.dead_nodes, 1);
        assert_eq!(stats.dropped_messages, 1);
        assert_eq!(stats.corrupted_messages, 1);
        assert_eq!(stats.truncated_messages, 1);
        assert_eq!(stats.undelivered_messages, 2);
        assert_eq!(stats.undelivered_bits, 5);
        assert_eq!(report.crashed_nodes(), vec![NodeId(2)]);
        assert_eq!(report.crash_round(NodeId(2)), Some(1));
        assert_eq!(report.crash_round(NodeId(0)), None);
    }

    #[test]
    fn corruption_preserves_length_truncation_shortens() {
        let plan = FaultPlan::new(5).corrupt_messages(1.0);
        let n = 2;
        let mut m = vec![BitString::new(); n * n];
        m[1] = BitString::from_bits([true, false, true, false]);
        let before = m[1].clone();
        let mut report = FaultReport::default();
        plan.apply_link_faults(0, &mut BufViewMut::dense(&mut m, n), &mut report);
        assert_eq!(m[1].len(), before.len());
        assert_ne!(m[1], before, "exactly one bit differs");
        let differing = before
            .iter()
            .zip(m[1].iter())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(differing, 1);

        let plan = FaultPlan::new(5).truncate_messages(1.0);
        let mut m = vec![BitString::new(); n * n];
        m[1] = BitString::from_bits([true, false, true, false]);
        let mut report = FaultReport::default();
        plan.apply_link_faults(0, &mut BufViewMut::dense(&mut m, n), &mut report);
        assert!(m[1].len() < 4, "strict prefix");
    }
}
