//! Deterministic fault injection: seed-addressed adversary plans.
//!
//! The paper's model (§3) assumes a perfectly reliable synchronous clique.
//! A production-scale simulator must also answer the question the model
//! abstracts away: *what does this protocol do when the network misbehaves?*
//! A [`FaultPlan`] is a pure-data, ChaCha-seeded schedule of adversarial
//! events — crash-stop at a round, per-link message drop, deterministic
//! bit-flip corruption, and bandwidth truncation — that the engine applies
//! identically on its sequential and worker-pool paths.
//!
//! # Determinism contract
//!
//! Every fault decision is a pure function of `(plan seed, round, sender,
//! receiver)` — a fresh ChaCha8 stream is keyed per message, so decisions do
//! not depend on iteration order, pool shape, or host. The same plan against
//! the same programs replays the same faults, bit for bit; a plan's
//! [`FaultPlan::label`] (e.g. `plan[seed=7, drop=0.25, crashes=2]`) names
//! the adversary the way testkit's `family[n, seed]` labels name instances.
//!
//! An **empty plan is transparent**: `FaultPlan::new(seed)` with no faults
//! configured produces byte-identical outputs, transcripts, and
//! [`crate::RunStats`] to a run with no plan at all.
//!
//! # Semantics
//!
//! * **Crash-stop** at round `r`: the node does not step in round `r` or any
//!   later round. Messages it sent in round `r - 1` are still delivered
//!   (they were on the wire before the crash); messages addressed *to* it
//!   that it never read are charged to the undelivered counters. A node
//!   that already halted normally is unaffected.
//! * **Drop**: the message is removed from the wire after the sender is
//!   charged for it (sent-based accounting, see [`crate::stats`]).
//! * **Corrupt**: exactly one bit of the payload is flipped; the length is
//!   unchanged, so a corrupted message still satisfies the bandwidth bound.
//! * **Truncate**: the payload is cut to a strict prefix (possibly empty),
//!   modelling a link that loses the tail of a frame.
//!
//! Faults are applied on the main thread between round barriers, after the
//! sender-side accounting and transcript recording for the round — so a
//! node's transcript records what it *sent* pre-fault and what it
//! *received* post-fault, exactly the asymmetry a real lossy network shows.
//!
//! # Position in the adversary ladder
//!
//! This plan is the *oblivious* tier of the workspace's threat model
//! (`docs/THREAT-MODEL.md`): faults are content-blind and link-local, so a
//! broadcast is damaged independently per link but the sender itself never
//! lies. The stronger tier — a sender that equivocates per recipient and
//! adapts to what it heard — is [`crate::byzantine::ByzantinePlan`], which
//! shares this module's seed-addressed keying and composes with it (lies
//! first, then link damage).

use std::fmt;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::bits::BitString;
use crate::delivery::{BufView, BufViewMut};
use crate::node::NodeId;
use crate::stats::RunStats;

/// A deterministic, forced fault on one message (as opposed to the
/// probabilistic coins, which apply to every link).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Remove the message from the wire.
    Drop,
    /// Flip payload bit `bit % len` (no-op on an empty payload).
    Flip {
        /// Bit position to flip, reduced modulo the payload length.
        bit: usize,
    },
    /// Keep only the first `min(keep, len)` payload bits.
    Truncate {
        /// Number of prefix bits to keep.
        keep: usize,
    },
}

/// One scheduled forced fault: `(round, from, to, kind)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ForcedFault {
    /// Round in which the message is sent.
    pub round: usize,
    /// Sender of the targeted message.
    pub from: NodeId,
    /// Recipient of the targeted message.
    pub to: NodeId,
    /// What happens to it.
    pub kind: FaultKind,
}

/// A seed-addressed adversary schedule. Pure data: construct with the
/// builder methods, attach to an engine with
/// [`crate::Engine::with_fault_plan`], replay by reconstructing from the
/// same parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    crashes: Vec<(NodeId, usize)>,
    drop_p: f64,
    corrupt_p: f64,
    truncate_p: f64,
    forced: Vec<ForcedFault>,
}

impl FaultPlan {
    /// An empty plan. Attaching it to an engine is guaranteed to leave
    /// every run byte-identical to a plan-less run.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            crashes: Vec::new(),
            drop_p: 0.0,
            corrupt_p: 0.0,
            truncate_p: 0.0,
            forced: Vec::new(),
        }
    }

    /// The plan's seed (drives every probabilistic coin).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True if the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.forced.is_empty()
            && self.drop_p == 0.0
            && self.corrupt_p == 0.0
            && self.truncate_p == 0.0
    }

    /// Crash-stop `node` at the start of `round` (it never steps again).
    pub fn crash(mut self, node: NodeId, round: usize) -> Self {
        self.crashes.push((node, round));
        self
    }

    /// Schedule `f` distinct crash victims among `n` nodes, each at a
    /// ChaCha-chosen round in `1..=max_round`, excluding the nodes in
    /// `spare` (e.g. a broadcast source). Victims and rounds are a pure
    /// function of the plan seed.
    pub fn with_random_crashes(
        mut self,
        n: usize,
        f: usize,
        max_round: usize,
        spare: &[NodeId],
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(mix(self.seed, 0xC4A5_4ED0, 0, 0));
        let mut victims: Vec<usize> = (0..n)
            .filter(|v| !spare.iter().any(|s| s.index() == *v))
            .collect();
        // Fisher–Yates prefix selection.
        for i in 0..f.min(victims.len()) {
            let j = i + rng.gen_range(0..victims.len() - i);
            victims.swap(i, j);
            let round = rng.gen_range(1..=max_round.max(1));
            self.crashes.push((NodeId::from(victims[i]), round));
        }
        self
    }

    /// Drop every message independently with probability `p`.
    pub fn drop_messages(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.drop_p = p;
        self
    }

    /// Flip one bit of every message independently with probability `p`.
    pub fn corrupt_messages(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.corrupt_p = p;
        self
    }

    /// Truncate every message independently with probability `p`.
    pub fn truncate_messages(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.truncate_p = p;
        self
    }

    /// Force a specific fault on the message `from → to` sent in `round`.
    pub fn force(mut self, round: usize, from: NodeId, to: NodeId, kind: FaultKind) -> Self {
        self.forced.push(ForcedFault {
            round,
            from,
            to,
            kind,
        });
        self
    }

    /// The round at which `node` is scheduled to crash (minimum over
    /// duplicate entries), if any.
    pub fn crash_round(&self, node: NodeId) -> Option<usize> {
        self.crashes
            .iter()
            .filter(|(v, _)| *v == node)
            .map(|(_, r)| *r)
            .min()
    }

    /// The crash set this plan implies at `round`: every node whose
    /// scheduled crash round is `≤ round` (a node crashing at round `r`
    /// never steps in `r` or later). Ascending node order, duplicates
    /// collapsed; `dead_at(usize::MAX)` is the plan's full crash set.
    /// Fault-aware planners (`cc-routing`'s crash-set layer) consume this
    /// to re-plan demands around nodes the plan will kill.
    pub fn dead_at(&self, round: usize) -> Vec<NodeId> {
        let mut dead: Vec<NodeId> = self
            .crashes
            .iter()
            .filter(|(_, r)| *r <= round)
            .map(|(v, _)| *v)
            .collect();
        dead.sort_by_key(|v| v.index());
        dead.dedup();
        dead
    }

    /// The replayable adversary label, `plan[seed=…, …]`.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// The forced fault scheduled for `(round, from, to)`, if any (first
    /// match wins).
    fn forced_for(&self, round: usize, from: usize, to: usize) -> Option<FaultKind> {
        self.forced
            .iter()
            .find(|f| f.round == round && f.from.index() == from && f.to.index() == to)
            .map(|f| f.kind)
    }

    /// True if any link fault (probabilistic or forced) can ever fire.
    pub(crate) fn has_link_faults(&self) -> bool {
        self.drop_p > 0.0
            || self.corrupt_p > 0.0
            || self.truncate_p > 0.0
            || !self.forced.is_empty()
    }

    /// Apply the crash schedule for `round`: mark scheduled victims halted,
    /// record one [`FaultEvent::Crashed`] per victim still running, and
    /// charge the messages the victim will now never read (column `v` of
    /// the matrix this round reads).
    pub(crate) fn apply_crashes(
        &self,
        round: usize,
        halted: &mut [bool],
        inbound: &BufView<'_>,
        report: &mut FaultReport,
    ) {
        if self.crashes.is_empty() {
            return;
        }
        let n = inbound.n();
        for (v, h) in halted.iter_mut().enumerate() {
            if *h || self.crash_round(NodeId::from(v)) != Some(round) {
                continue;
            }
            *h = true;
            let mut lost_messages = 0u64;
            let mut lost_bits = 0u64;
            for u in 0..n {
                if u == v {
                    continue;
                }
                let m = inbound.get(u, v);
                if !m.is_empty() {
                    lost_messages += 1;
                    lost_bits += m.len() as u64;
                }
            }
            report.events.push(FaultEvent::Crashed {
                node: NodeId::from(v),
                round,
                lost_messages,
                lost_bits,
            });
        }
    }

    /// Apply link faults to the buffer written in `round` (it will be read
    /// next round). Sweep order is sender-major and decisions are keyed per
    /// `(seed, round, from, to)`, so the result is independent of pool
    /// shape *and* of delivery backend.
    pub(crate) fn apply_link_faults(
        &self,
        round: usize,
        cur: &mut BufViewMut<'_>,
        report: &mut FaultReport,
    ) {
        if !self.has_link_faults() {
            return;
        }
        for v in 0..cur.n() {
            cur.for_each_msg_mut(v, |u, m| self.fault_one(round, v, u, m, report));
        }
    }

    /// Decide and apply the fault (if any) for one non-empty message.
    fn fault_one(
        &self,
        round: usize,
        from: usize,
        to: usize,
        m: &mut BitString,
        report: &mut FaultReport,
    ) {
        let forced = self.forced_for(round, from, to);
        // The coin stream is keyed per message: same (seed, round, link) →
        // same draws, regardless of how many other messages exist.
        let mut rng =
            ChaCha8Rng::seed_from_u64(mix(self.seed, round as u64, from as u64, to as u64));
        // Fixed draw order keeps partial plans deterministic.
        let drop = rng.gen_bool(self.drop_p) || forced == Some(FaultKind::Drop);
        let corrupt = rng.gen_bool(self.corrupt_p);
        let corrupt_bit = rng.gen_range(0..m.len());
        let truncate = rng.gen_bool(self.truncate_p);
        let truncate_keep = rng.gen_range(0..m.len());
        let (from_id, to_id) = (NodeId::from(from), NodeId::from(to));
        if drop {
            report.events.push(FaultEvent::Dropped {
                from: from_id,
                to: to_id,
                round,
                bits: m.len(),
            });
            m.clear();
            return;
        }
        let flip = match forced {
            Some(FaultKind::Flip { bit }) => Some(bit % m.len()),
            _ if corrupt => Some(corrupt_bit),
            _ => None,
        };
        if let Some(bit) = flip {
            m.set(bit, !m.get(bit));
            report.events.push(FaultEvent::Corrupted {
                from: from_id,
                to: to_id,
                round,
                bit,
            });
        }
        let keep = match forced {
            Some(FaultKind::Truncate { keep }) => Some(keep.min(m.len())),
            _ if truncate => Some(truncate_keep),
            _ => None,
        };
        if let Some(keep) = keep {
            if keep < m.len() {
                let from_bits = m.len();
                m.truncate(keep);
                report.events.push(FaultEvent::Truncated {
                    from: from_id,
                    to: to_id,
                    round,
                    from_bits,
                    to_bits: keep,
                });
            }
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan[seed={}", self.seed)?;
        if !self.crashes.is_empty() {
            write!(f, ", crashes={}", self.crashes.len())?;
        }
        if self.drop_p > 0.0 {
            write!(f, ", drop={}", self.drop_p)?;
        }
        if self.corrupt_p > 0.0 {
            write!(f, ", corrupt={}", self.corrupt_p)?;
        }
        if self.truncate_p > 0.0 {
            write!(f, ", trunc={}", self.truncate_p)?;
        }
        if !self.forced.is_empty() {
            write!(f, ", forced={}", self.forced.len())?;
        }
        write!(f, "]")
    }
}

/// SplitMix64-style finalizer mixing the plan seed with a message address.
/// Any bijective avalanche works here; what matters is that distinct
/// `(round, from, to)` triples get statistically independent streams.
/// Shared with the Byzantine adversary so both tiers use one keying scheme.
pub(crate) fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut x = seed
        ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ c.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// One fault the engine actually applied during a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// A node crash-stopped.
    Crashed {
        /// The victim.
        node: NodeId,
        /// Round at whose start it stopped participating.
        round: usize,
        /// In-flight messages addressed to it that it never read.
        lost_messages: u64,
        /// Payload bits of those messages.
        lost_bits: u64,
    },
    /// A message was removed from the wire.
    Dropped {
        /// Sender of the lost message.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
        /// Round the message was sent in.
        round: usize,
        /// Payload size of the lost message.
        bits: usize,
    },
    /// One bit of a message was flipped.
    Corrupted {
        /// Sender of the damaged message.
        from: NodeId,
        /// Recipient of the damaged message.
        to: NodeId,
        /// Round the message was sent in.
        round: usize,
        /// Which bit was flipped.
        bit: usize,
    },
    /// A message lost its tail.
    Truncated {
        /// Sender of the damaged message.
        from: NodeId,
        /// Recipient of the damaged message.
        to: NodeId,
        /// Round the message was sent in.
        round: usize,
        /// Payload size before truncation.
        from_bits: usize,
        /// Payload size after truncation.
        to_bits: usize,
    },
}

/// Everything the adversary did in one run, in deterministic order
/// (ascending rounds; within a round crashes by node id, then link faults
/// sender-major).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Applied faults in order.
    pub events: Vec<FaultEvent>,
}

impl FaultReport {
    /// True if the adversary did nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Nodes that crash-stopped, in event order.
    pub fn crashed_nodes(&self) -> Vec<NodeId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Crashed { node, .. } => Some(*node),
                _ => None,
            })
            .collect()
    }

    /// The round `node` crashed in, if it did.
    pub fn crash_round(&self, node: NodeId) -> Option<usize> {
        self.events.iter().find_map(|e| match e {
            FaultEvent::Crashed { node: v, round, .. } if *v == node => Some(*round),
            _ => None,
        })
    }

    /// Fold the report's totals into run statistics: the fault counters,
    /// plus the in-flight payloads crash victims never read (charged to the
    /// undelivered counters, consistent with sent-based accounting).
    pub fn tally_into(&self, stats: &mut RunStats) {
        for e in &self.events {
            match e {
                FaultEvent::Crashed {
                    lost_messages,
                    lost_bits,
                    ..
                } => {
                    stats.dead_nodes += 1;
                    stats.undelivered_messages += lost_messages;
                    stats.undelivered_bits += lost_bits;
                }
                FaultEvent::Dropped { .. } => stats.dropped_messages += 1,
                FaultEvent::Corrupted { .. } => stats.corrupted_messages += 1,
                FaultEvent::Truncated { .. } => stats.truncated_messages += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_labelled() {
        let p = FaultPlan::new(42);
        assert!(p.is_empty());
        assert_eq!(p.label(), "plan[seed=42]");
    }

    #[test]
    fn builder_composes_and_labels() {
        let p = FaultPlan::new(7)
            .crash(NodeId(3), 2)
            .drop_messages(0.25)
            .force(0, NodeId(0), NodeId(1), FaultKind::Drop);
        assert!(!p.is_empty());
        assert_eq!(p.crash_round(NodeId(3)), Some(2));
        assert_eq!(p.crash_round(NodeId(0)), None);
        assert_eq!(p.label(), "plan[seed=7, crashes=1, drop=0.25, forced=1]");
    }

    #[test]
    fn duplicate_crashes_take_the_earliest_round() {
        let p = FaultPlan::new(0).crash(NodeId(1), 5).crash(NodeId(1), 2);
        assert_eq!(p.crash_round(NodeId(1)), Some(2));
    }

    #[test]
    fn dead_at_exposes_the_per_round_crash_set() {
        let p = FaultPlan::new(0)
            .crash(NodeId(4), 3)
            .crash(NodeId(1), 1)
            .crash(NodeId(4), 7); // duplicate, later round: collapsed
        assert_eq!(p.dead_at(0), vec![]);
        assert_eq!(p.dead_at(1), vec![NodeId(1)]);
        assert_eq!(p.dead_at(2), vec![NodeId(1)]);
        assert_eq!(p.dead_at(3), vec![NodeId(1), NodeId(4)]);
        assert_eq!(p.dead_at(usize::MAX), vec![NodeId(1), NodeId(4)]);
        assert_eq!(FaultPlan::new(9).dead_at(usize::MAX), vec![]);
    }

    #[test]
    fn random_crashes_are_seed_deterministic_and_spare_nodes() {
        let mk = |seed| FaultPlan::new(seed).with_random_crashes(10, 3, 4, &[NodeId(0)]);
        let a = mk(9);
        let b = mk(9);
        let c = mk(10);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert_eq!(a.crashes_len(), 3);
        assert_eq!(a.crash_round(NodeId(0)), None, "spared node never crashes");
    }

    impl FaultPlan {
        fn crashes_len(&self) -> usize {
            self.crashes.len()
        }
    }

    #[test]
    fn link_decisions_are_address_keyed() {
        // Same (seed, round, from, to) → same decision, independent of the
        // order messages are visited in.
        let plan = FaultPlan::new(123).drop_messages(0.5);
        let n = 6;
        let mk_matrix = || {
            let mut m = vec![BitString::new(); n * n];
            for v in 0..n {
                for u in 0..n {
                    if u != v {
                        m[v * n + u] = BitString::from_bits([true, false, true]);
                    }
                }
            }
            m
        };
        let mut a = mk_matrix();
        let mut b = mk_matrix();
        let mut ra = FaultReport::default();
        let mut rb = FaultReport::default();
        plan.apply_link_faults(3, &mut BufViewMut::dense(&mut a, n), &mut ra);
        plan.apply_link_faults(3, &mut BufViewMut::dense(&mut b, n), &mut rb);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        // With p = 0.5 over 30 messages, both outcomes occur.
        assert!(!ra.is_empty());
        assert!(ra.events.len() < 30);
    }

    #[test]
    fn forced_faults_apply_exactly() {
        let n = 3;
        let plan = FaultPlan::new(0)
            .force(1, NodeId(0), NodeId(1), FaultKind::Flip { bit: 0 })
            .force(1, NodeId(0), NodeId(2), FaultKind::Truncate { keep: 1 })
            .force(1, NodeId(1), NodeId(0), FaultKind::Drop);
        let mut m = vec![BitString::new(); n * n];
        m[1] = BitString::from_bits([true, true, true]); // 0 → 1
        m[2] = BitString::from_bits([true, true, true]); // 0 → 2
        m[n] = BitString::from_bits([true, true, true]); // 1 → 0
        let mut report = FaultReport::default();
        plan.apply_link_faults(1, &mut BufViewMut::dense(&mut m, n), &mut report);
        assert_eq!(
            m[1],
            BitString::from_bits([false, true, true]),
            "bit 0 flipped"
        );
        assert_eq!(m[2], BitString::from_bits([true]), "truncated to 1 bit");
        assert!(m[n].is_empty(), "dropped");
        // Wrong round: nothing happens.
        let mut m2 = vec![BitString::new(); n * n];
        m2[1] = BitString::from_bits([true]);
        let mut r2 = FaultReport::default();
        plan.apply_link_faults(0, &mut BufViewMut::dense(&mut m2, n), &mut r2);
        assert!(r2.is_empty());
        assert_eq!(m2[1].len(), 1);
    }

    #[test]
    fn crash_sweep_marks_halted_and_charges_inflight() {
        let n = 3;
        let plan = FaultPlan::new(0).crash(NodeId(1), 4);
        let mut halted = vec![false; n];
        let mut inbound = vec![BitString::new(); n * n];
        inbound[1] = BitString::from_bits([true, true]); // 0 → 1, never read
        let mut report = FaultReport::default();
        plan.apply_crashes(4, &mut halted, &BufView::dense(&inbound, n), &mut report);
        assert!(halted[1]);
        assert_eq!(
            report.events,
            vec![FaultEvent::Crashed {
                node: NodeId(1),
                round: 4,
                lost_messages: 1,
                lost_bits: 2,
            }]
        );
        // Already-halted nodes are not crashed again.
        let mut r2 = FaultReport::default();
        plan.apply_crashes(4, &mut halted, &BufView::dense(&inbound, n), &mut r2);
        assert!(r2.is_empty());
    }

    #[test]
    fn tally_folds_counters_into_stats() {
        let report = FaultReport {
            events: vec![
                FaultEvent::Crashed {
                    node: NodeId(2),
                    round: 1,
                    lost_messages: 2,
                    lost_bits: 5,
                },
                FaultEvent::Dropped {
                    from: NodeId(0),
                    to: NodeId(1),
                    round: 0,
                    bits: 3,
                },
                FaultEvent::Corrupted {
                    from: NodeId(0),
                    to: NodeId(1),
                    round: 2,
                    bit: 1,
                },
                FaultEvent::Truncated {
                    from: NodeId(1),
                    to: NodeId(0),
                    round: 2,
                    from_bits: 4,
                    to_bits: 1,
                },
            ],
        };
        let mut stats = RunStats::default();
        report.tally_into(&mut stats);
        assert_eq!(stats.dead_nodes, 1);
        assert_eq!(stats.dropped_messages, 1);
        assert_eq!(stats.corrupted_messages, 1);
        assert_eq!(stats.truncated_messages, 1);
        assert_eq!(stats.undelivered_messages, 2);
        assert_eq!(stats.undelivered_bits, 5);
        assert_eq!(report.crashed_nodes(), vec![NodeId(2)]);
        assert_eq!(report.crash_round(NodeId(2)), Some(1));
        assert_eq!(report.crash_round(NodeId(0)), None);
    }

    #[test]
    fn corruption_preserves_length_truncation_shortens() {
        let plan = FaultPlan::new(5).corrupt_messages(1.0);
        let n = 2;
        let mut m = vec![BitString::new(); n * n];
        m[1] = BitString::from_bits([true, false, true, false]);
        let before = m[1].clone();
        let mut report = FaultReport::default();
        plan.apply_link_faults(0, &mut BufViewMut::dense(&mut m, n), &mut report);
        assert_eq!(m[1].len(), before.len());
        assert_ne!(m[1], before, "exactly one bit differs");
        let differing = before
            .iter()
            .zip(m[1].iter())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(differing, 1);

        let plan = FaultPlan::new(5).truncate_messages(1.0);
        let mut m = vec![BitString::new(); n * n];
        m[1] = BitString::from_bits([true, false, true, false]);
        let mut report = FaultReport::default();
        plan.apply_link_faults(0, &mut BufViewMut::dense(&mut m, n), &mut report);
        assert!(m[1].len() < 4, "strict prefix");
    }
}
