//! Per-node communication transcripts.
//!
//! Theorem 3 of the paper converts any nondeterministic algorithm to a
//! normal form whose certificates are *communication transcripts*: "a bit
//! vector consisting of all messages sent and received by v during the
//! execution". The engine can record exactly that, and this module defines
//! the canonical bit-level encoding used as certificate format.
//!
//! # Faulted runs
//!
//! Under a [`crate::FaultPlan`] a transcript stays *locally honest*: `sent`
//! records what the node handed to the engine (pre-fault), `received`
//! records what survived the wire (post-fault). Cross-node symmetry — every
//! send matched by a receive — therefore holds only for fault-free runs; a
//! crashed node's transcript simply ends at its crash round.
//!
//! # Rejoins and state sync
//!
//! When the plan schedules a rejoin, the engine backfills the rejoiner's
//! missed window as *received-only* rounds (`sent` empty — a dead node put
//! nothing on the wire), one per missed round and in round order, so index
//! `r` of every transcript still describes round `r`. For pure churn plans
//! (no link faults) this keeps the transcripts conformant with
//! `cc-testkit`'s auditor: each backfilled receive matches the sender's
//! recorded send from the previous round. Link faults break that payload
//! symmetry exactly as they do for live nodes (see above).

use crate::bits::{BitReader, BitString, DecodeError};
use crate::node::NodeId;

/// Everything one node sent and received in one round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundTranscript {
    /// Messages this node sent, as `(destination, payload)`, sorted by
    /// destination. Only non-empty payloads are recorded.
    pub sent: Vec<(NodeId, BitString)>,
    /// Messages this node received, as `(source, payload)`, sorted by
    /// source.
    pub received: Vec<(NodeId, BitString)>,
}

/// The full communication transcript of one node across an execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Transcript {
    /// One entry per round the node was active in, in order.
    pub rounds: Vec<RoundTranscript>,
}

impl Transcript {
    /// Total payload bits appearing in the transcript (sent + received).
    pub fn payload_bits(&self) -> usize {
        self.rounds
            .iter()
            .flat_map(|r| r.sent.iter().chain(r.received.iter()))
            .map(|(_, m)| m.len())
            .sum()
    }

    /// Serialise to the canonical certificate encoding.
    ///
    /// Layout (all integers little-endian, width `w = ceil(log2(n+1))` for
    /// ids and counts, 16 bits for round count and payload lengths):
    /// `round_count:16` then per round: `sent_count:w`, per message
    /// (`dst:w`, `len:16`, payload), then `recv_count:w`, per message
    /// (`src:w`, `len:16`, payload).
    pub fn encode(&self, n: usize) -> BitString {
        let w = BitString::width_for(n + 1);
        let mut out = BitString::new();
        out.push_uint(self.rounds.len() as u64, 16);
        for round in &self.rounds {
            out.push_uint(round.sent.len() as u64, w);
            for (dst, msg) in &round.sent {
                out.push_uint(dst.0 as u64, w);
                out.push_uint(msg.len() as u64, 16);
                out.extend_from(msg);
            }
            out.push_uint(round.received.len() as u64, w);
            for (src, msg) in &round.received {
                out.push_uint(src.0 as u64, w);
                out.push_uint(msg.len() as u64, 16);
                out.extend_from(msg);
            }
        }
        out
    }

    /// Decode a certificate produced by [`Transcript::encode`].
    ///
    /// Returns an error on any malformed input (verifiers must reject, not
    /// panic, when handed adversarial certificates).
    pub fn decode(bits: &BitString, n: usize) -> Result<Self, DecodeError> {
        let w = BitString::width_for(n + 1);
        let mut r = bits.reader();
        let round_count = r.read_uint(16)? as usize;
        let mut rounds = Vec::with_capacity(round_count.min(1 << 12));
        for _ in 0..round_count {
            let sent = Self::decode_msgs(&mut r, w)?;
            let received = Self::decode_msgs(&mut r, w)?;
            rounds.push(RoundTranscript { sent, received });
        }
        r.expect_end()?;
        Ok(Self { rounds })
    }

    fn decode_msgs(
        r: &mut BitReader<'_>,
        w: usize,
    ) -> Result<Vec<(NodeId, BitString)>, DecodeError> {
        let count = r.read_uint(w)? as usize;
        let mut msgs = Vec::with_capacity(count.min(1 << 12));
        for _ in 0..count {
            let peer = r.read_uint(w)? as u32;
            let len = r.read_uint(16)? as usize;
            let payload = r.read_bits(len)?;
            msgs.push((NodeId(peer), payload));
        }
        Ok(msgs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Transcript {
        Transcript {
            rounds: vec![
                RoundTranscript {
                    sent: vec![(NodeId(1), BitString::from_bits([true, false]))],
                    received: vec![],
                },
                RoundTranscript {
                    sent: vec![],
                    received: vec![
                        (NodeId(0), BitString::from_bits([true])),
                        (NodeId(2), BitString::from_bits([false, false, true])),
                    ],
                },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = sample();
        let enc = t.encode(4);
        let back = Transcript::decode(&enc, 4).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn payload_bits_counts_both_directions() {
        assert_eq!(sample().payload_bits(), 2 + 1 + 3);
    }

    #[test]
    fn decode_rejects_truncation() {
        let t = sample();
        let enc = t.encode(4);
        let truncated = enc.reader().read_bits(enc.len() - 3).unwrap();
        assert!(Transcript::decode(&truncated, 4).is_err());
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let t = sample();
        let mut enc = t.encode(4);
        enc.push(true);
        assert!(Transcript::decode(&enc, 4).is_err());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            n in 2usize..10,
            spec in proptest::collection::vec(
                proptest::collection::vec((0u32..10, proptest::collection::vec(any::<bool>(), 0..12)), 0..4),
                0..4,
            ),
        ) {
            // Build a transcript whose peers are valid for n.
            let rounds: Vec<RoundTranscript> = spec
                .iter()
                .map(|msgs| RoundTranscript {
                    sent: msgs
                        .iter()
                        .map(|(p, bits)| (NodeId(p % n as u32), BitString::from_bits(bits.iter().copied())))
                        .collect(),
                    received: vec![],
                })
                .collect();
            let t = Transcript { rounds };
            let enc = t.encode(n);
            prop_assert_eq!(Transcript::decode(&enc, n).unwrap(), t);
        }

        #[test]
        fn prop_random_bits_never_panic(bits in proptest::collection::vec(any::<bool>(), 0..200), n in 2usize..8) {
            // Adversarial certificates must be rejected or decoded, never panic.
            let s = BitString::from_bits(bits);
            let _ = Transcript::decode(&s, n);
        }
    }
}
