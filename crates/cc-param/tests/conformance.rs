//! Testkit conformance for the parameterized algorithms: Theorem 11's
//! k-vertex-cover (a broadcast-only protocol with a k+2 round bound) and
//! Theorem 9's k-dominating-set, judged against brute-force oracles.

use cc_param::{dominating_set, vertex_cover};
use cc_testkit::{
    corpus, differential_broadcast_only, differential_session, oracle, Family, Instance,
};
use cliquesim::{Engine, Session};

#[test]
fn vertex_cover_conforms_and_respects_the_theorem_bounds() {
    let k = 4;
    for inst in corpus(&[9, 12], &[1]) {
        let g = inst.graph();
        // The kernel protocol only ever broadcasts, so it must behave
        // identically under the broadcast-only restriction — and across
        // every pool shape in both models.
        let got =
            differential_broadcast_only(&inst.label(), g.n(), |s| vertex_cover(s, &g, k).unwrap());
        oracle::judge_vertex_cover(&inst.label(), &g, k, &got);

        // Theorem 11: at most k + 2 rounds, within the model bandwidth.
        let mut s = Session::new(Engine::new(g.n()));
        vertex_cover(&mut s, &g, k).unwrap();
        oracle::assert_round_bound(&inst.label(), &s.stats(), k + 2);
        oracle::assert_bandwidth(&inst.label(), &s.stats(), s.bandwidth());
    }
}

#[test]
fn dominating_set_conforms() {
    let k = 2;
    for family in [
        Family::Star,       // dominated by its centre: always a yes-instance
        Family::ErDense,    // dense: small dominating sets exist
        Family::ErSparse,   // sparse: usually a no-instance for k = 2
        Family::TwoCliques, // needs one vertex per component
        Family::Empty,      // no-instance for n > k
    ] {
        for seed in [1u64, 3] {
            let inst = Instance::new(family, 9, seed);
            let g = inst.graph();
            let got =
                differential_session(&inst.label(), g.n(), |s| dominating_set(s, &g, k).unwrap());
            oracle::judge_dominating_set(&inst.label(), &g, k, &got);
        }
    }
}
